#pragma once
// Control point insertion (CPI).
//
// Section 2.2 of the paper notes its test-point methodology applies to
// control points as well as observation points; this module provides the
// control-side flow: find nodes random patterns can almost never drive to
// one of their values (COP probability below threshold) and insert a
// control point forcing that value (Fig. 2's CP1/CP2). With the control
// input at its inactive value the circuit is functionally unchanged.

#include <cstddef>
#include <vector>

#include "netlist/netlist.h"

namespace gcnt {

struct CpiOptions {
  /// A node needs a CP when min(P(=1), P(=0)) falls below this.
  double probability_threshold = 0.01;
  std::size_t max_rounds = 16;
  /// Fraction of the candidate list fixed per round (rarest value first).
  double insert_fraction = 0.35;
  std::size_t min_inserts_per_round = 4;
};

struct CpiResult {
  std::vector<Netlist::ControlPoint> inserted;
  std::size_t rounds = 0;
  std::size_t remaining_below_threshold = 0;
};

/// Analytic (COP-threshold) control point insertion; mutates `netlist`.
CpiResult run_baseline_cpi(Netlist& netlist, const CpiOptions& options = {});

}  // namespace gcnt
