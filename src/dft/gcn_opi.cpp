#include "dft/gcn_opi.h"

#include <algorithm>

#include "common/log.h"
#include "common/trace.h"
#include "dft/impact.h"
#include "gcn/graph_tensors.h"
#include "scoap/scoap.h"

namespace gcnt {

namespace {

/// Whole-graph cascade prediction: positive iff every stage keeps the node.
std::vector<std::int32_t> predict_cascade(
    const std::vector<const GcnModel*>& stages, const GraphTensors& tensors) {
  std::vector<std::int32_t> predictions(tensors.node_count(), 1);
  for (const GcnModel* stage : stages) {
    const auto positive = stage->predict_positive_probability(tensors);
    for (std::size_t v = 0; v < predictions.size(); ++v) {
      if (positive[v] < 0.5f) predictions[v] = 0;
    }
  }
  return predictions;
}

/// OP targets must drive a real signal; pins and already-inserted OPs are
/// excluded, as are nodes that already feed an OP.
bool valid_target(const Netlist& netlist, NodeId v) {
  const CellType t = netlist.type(v);
  if (is_sink(t) || t == CellType::kInput) return false;
  for (NodeId g : netlist.fanouts(v)) {
    if (netlist.type(g) == CellType::kObserve) return false;
  }
  return true;
}

}  // namespace

OpiResult run_gcn_opi(Netlist& netlist,
                      const std::vector<const GcnModel*>& stages,
                      const GcnOpiOptions& options) {
  GCNT_KERNEL_SCOPE("opi.run");
  static Counter& iterations_counter =
      StatsRegistry::instance().counter("opi.iterations");
  static Counter& inserted_counter =
      StatsRegistry::instance().counter("opi.inserted_points");
  ScoapMeasures scoap = compute_scoap(netlist);
  std::vector<std::uint32_t> levels = netlist.logic_levels();
  GraphTensors tensors = build_graph_tensors(netlist, scoap, levels);
  if (options.standardize_features) tensors.standardize_features();

  OpiResult result;
  for (std::size_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    TraceSpan iteration_span("opi.iteration");
    iterations_counter.add();
    const auto predictions = predict_cascade(stages, tensors);
    std::vector<NodeId> candidates;
    for (NodeId v = 0; v < predictions.size(); ++v) {
      if (predictions[v] == 1 && valid_target(netlist, v)) {
        candidates.push_back(v);
      }
    }
    result.final_positive_predictions = candidates.size();
    if (candidates.empty()) break;
    result.iterations = iteration + 1;

    // Rank every positive prediction by impact (Fig. 6).
    ImpactEvaluator evaluator(stages, netlist, tensors, scoap, levels);
    std::vector<std::pair<int, NodeId>> ranked;
    ranked.reserve(candidates.size());
    for (NodeId v : candidates) {
      ranked.emplace_back(
          evaluator.impact_of(v, predictions, options.impact_cone_limit), v);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first > b.first;
    });

    std::size_t budget = std::max<std::size_t>(
        options.min_inserts_per_iteration,
        static_cast<std::size_t>(options.insert_fraction *
                                 static_cast<double>(ranked.size())));
    budget = std::min(budget, ranked.size());

    std::size_t inserted = 0;
    for (const auto& [impact, target] : ranked) {
      if (inserted >= budget) break;
      // Low-impact candidates are deferred, but always make progress: a
      // positive with no upstream coverage still needs its own OP.
      if (impact < options.min_impact && inserted > 0) break;
      const NodeId op = netlist.insert_observe_point(target);
      update_observability_after_observe(netlist, target, scoap);
      levels.resize(netlist.size(), 0);
      levels[op] = levels[target] + 1;
      append_observe_point(tensors, netlist, target, op, scoap,
                           netlist.fanin_cone(target));
      result.inserted.push_back(target);
      ++inserted;
    }
    tensors.rebuild_csr();
    iteration_span.arg("positives", static_cast<double>(candidates.size()));
    iteration_span.arg("inserted", static_cast<double>(inserted));
    inserted_counter.add(inserted);
    log_info("gcn-opi iteration ", iteration + 1, ": ", candidates.size(),
             " positives, inserted ", inserted, " OPs");
  }
  return result;
}

}  // namespace gcnt
