#include "dft/gcn_opi.h"

#include <algorithm>

#include "common/log.h"
#include "common/trace.h"
#include "dft/flow_journal.h"
#include "dft/impact.h"
#include "gcn/graph_tensors.h"
#include "gcn/incremental.h"
#include "gcn/shard.h"
#include "scoap/scoap.h"

#include <memory>
#include <string>

namespace gcnt {

namespace {

/// Per-stage prediction engine: the monolithic incremental engine by
/// default, or the sharded out-of-core engine when the options ask for
/// it. Both produce bit-identical logits (pinned by tests/shard_test.cpp),
/// so the flow logic above never needs to know which one runs.
class PredictionEngine {
 public:
  PredictionEngine(const GcnModel& model, const GcnOpiOptions& options,
                   std::size_t stage) {
    if (options.shards > 0) {
      ShardedGcnOptions sharded;
      sharded.shards = options.shards;
      sharded.halo = options.shard_halo;
      sharded.full_fallback_fraction = options.full_fallback_fraction;
      if (!options.shard_spill_dir.empty()) {
        // Cascade stages must not collide on block keys.
        sharded.spill_dir =
            options.shard_spill_dir + "/stage" + std::to_string(stage);
      }
      sharded_ = std::make_unique<ShardedGcnEngine>(model, sharded);
    } else {
      monolithic_ = std::make_unique<IncrementalGcnEngine>(
          model, IncrementalGcnOptions{options.full_fallback_fraction});
    }
  }

  void refresh(const GraphTensors& tensors) {
    if (sharded_) {
      sharded_->refresh(tensors);
    } else {
      monolithic_->refresh(tensors);
    }
  }

  void update(const GraphTensors& tensors, const std::vector<NodeId>& dirty) {
    if (sharded_) {
      sharded_->update(tensors, dirty);
    } else {
      monolithic_->update(tensors, dirty);
    }
  }

  std::vector<float> positive_probability() const {
    return sharded_ ? sharded_->positive_probability()
                    : monolithic_->positive_probability();
  }

  bool last_was_full() const {
    return sharded_ ? sharded_->last_was_full()
                    : monolithic_->last_was_full();
  }

 private:
  std::unique_ptr<IncrementalGcnEngine> monolithic_;
  std::unique_ptr<ShardedGcnEngine> sharded_;
};

/// Whole-graph cascade prediction from the per-stage engine logits:
/// positive iff every stage keeps the node.
std::vector<std::int32_t> cascade_predictions(
    const std::vector<PredictionEngine>& engines, std::size_t n) {
  std::vector<std::int32_t> predictions(n, 1);
  for (const PredictionEngine& engine : engines) {
    const auto positive = engine.positive_probability();
    for (std::size_t v = 0; v < predictions.size(); ++v) {
      if (positive[v] < 0.5f) predictions[v] = 0;
    }
  }
  return predictions;
}

/// OP targets must drive a real signal; pins and already-inserted OPs are
/// excluded, as are nodes that already feed an OP.
bool valid_target(const Netlist& netlist, NodeId v) {
  const CellType t = netlist.type(v);
  if (is_sink(t) || t == CellType::kInput) return false;
  for (NodeId g : netlist.fanouts(v)) {
    if (netlist.type(g) == CellType::kObserve) return false;
  }
  return true;
}

}  // namespace

OpiResult run_gcn_opi(Netlist& netlist,
                      const std::vector<const GcnModel*>& stages,
                      const GcnOpiOptions& options) {
  GCNT_KERNEL_SCOPE("opi.run");
  static Counter& iterations_counter =
      StatsRegistry::instance().counter("opi.iterations");
  static Counter& inserted_counter =
      StatsRegistry::instance().counter("opi.inserted_points");
  static Counter& dirty_nodes_counter =
      StatsRegistry::instance().counter("opi.dirty_nodes");
  static Counter& full_fallbacks_counter =
      StatsRegistry::instance().counter("opi.full_fallbacks");
  static Counter& replayed_counter =
      StatsRegistry::instance().counter("opi.replayed_records");

  // The journal must record the pre-insertion node count: resume replays
  // onto the original netlist, so identity is checked against it.
  FlowJournal journal;
  if (!options.journal_path.empty()) {
    journal.open(options.journal_path, "opi", options.journal_design,
                 netlist.size(), options.resume);
  }

  ScoapMeasures scoap = compute_scoap(netlist);
  std::vector<std::uint32_t> levels = netlist.logic_levels();
  GraphTensors tensors = build_graph_tensors(netlist, scoap, levels);
  if (options.standardize_features) tensors.standardize_features();

  // One prediction engine per cascade stage (monolithic incremental or
  // sharded out-of-core); the dirty cone is expanded to the deepest stage
  // so every engine's closure is covered.
  std::vector<PredictionEngine> engines;
  engines.reserve(stages.size());
  int max_depth = 0;
  for (std::size_t stage = 0; stage < stages.size(); ++stage) {
    engines.emplace_back(*stages[stage], options, stage);
    max_depth = std::max(max_depth, stages[stage]->config().depth);
  }
  DirtyConeTracker tracker;
  bool have_cache = false;

  OpiResult result;

  // Single mutation path, shared by the live sweep and journal replay, so
  // a resumed run reproduces the interrupted run's netlist exactly.
  const auto apply_insertion = [&](NodeId target) {
    const NodeId op = netlist.insert_observe_point(target);
    update_observability_after_observe(netlist, target, scoap);
    levels.resize(netlist.size(), 0);
    levels[op] = levels[target] + 1;
    const std::vector<NodeId> cone = netlist.fanin_cone(target);
    std::vector<NodeId> changed_rows;
    append_observe_point(tensors, netlist, target, op, scoap, cone,
                         &changed_rows);
    // Record the perturbation for the next iteration's dirty cone: the
    // appended edge, the new node, and the feature rows whose stored
    // value actually changed (a tight subset of the refreshed cone).
    tracker.record_new_node(op);
    tracker.record_edge(target, op);
    for (NodeId v : changed_rows) tracker.record_feature(v);
    result.inserted.push_back(target);
  };

  // Replay journaled batches from an interrupted sweep. Prediction and
  // ranking are skipped — the journal already holds their outcome — and
  // the first live iteration afterwards does a full refresh (have_cache
  // is still false), which is bit-identical to the incremental updates
  // the interrupted run performed.
  std::size_t start_iteration = 0;
  for (const FlowJournalRecord& record : journal.records()) {
    TraceSpan replay_span("opi.replay");
    for (const auto& [target, flag] : record.entries) {
      (void)flag;
      apply_insertion(target);
    }
    inserted_counter.add(record.entries.size());
    replayed_counter.add();
    result.iterations = record.iteration + 1;
    start_iteration = record.iteration + 1;
  }
  if (start_iteration != 0) {
    tensors.rebuild_csr();
    log_info("gcn-opi resume: replayed ", journal.records().size(),
             " journaled iterations (", result.inserted.size(), " OPs)");
  }

  for (std::size_t iteration = start_iteration;
       iteration < options.max_iterations; ++iteration) {
    TraceSpan iteration_span("opi.iteration");
    iterations_counter.add();

    // Predict: full forward on the first pass (seeds the caches), then
    // dirty-cone re-propagation of the insertion batch's D-hop closure —
    // bit-identical to a full re-inference, but proportional to the cone.
    {
      TraceSpan predict_span("opi.predict");
      if (!have_cache || !options.incremental) {
        for (PredictionEngine& engine : engines) engine.refresh(tensors);
        have_cache = true;
      } else {
        const std::vector<NodeId> dirty = tracker.affected(tensors, max_depth);
        dirty_nodes_counter.add(dirty.size());
        predict_span.arg("dirty", static_cast<double>(dirty.size()));
        for (PredictionEngine& engine : engines) {
          engine.update(tensors, dirty);
          if (engine.last_was_full()) full_fallbacks_counter.add();
        }
      }
      tracker.clear();
    }
    const auto predictions = cascade_predictions(engines, tensors.node_count());

    std::vector<NodeId> candidates;
    for (NodeId v = 0; v < predictions.size(); ++v) {
      if (predictions[v] == 1 && valid_target(netlist, v)) {
        candidates.push_back(v);
      }
    }
    result.final_positive_predictions = candidates.size();
    if (candidates.empty()) break;
    result.iterations = iteration + 1;

    // Rank every positive prediction by impact (Fig. 6).
    ImpactEvaluator evaluator(stages, netlist, tensors, scoap, levels);
    std::vector<std::pair<int, NodeId>> ranked;
    ranked.reserve(candidates.size());
    for (NodeId v : candidates) {
      ranked.emplace_back(
          evaluator.impact_of(v, predictions, options.impact_cone_limit), v);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first > b.first;
    });

    std::size_t budget = std::max<std::size_t>(
        options.min_inserts_per_iteration,
        static_cast<std::size_t>(options.insert_fraction *
                                 static_cast<double>(ranked.size())));
    budget = std::min(budget, ranked.size());

    // The accepted batch is a pure function of the ranked list, so it can
    // be planned — and journaled, durably — before the netlist mutates:
    // a crash mid-application replays the complete batch on resume.
    std::vector<NodeId> planned;
    for (const auto& [impact, target] : ranked) {
      if (planned.size() >= budget) break;
      // Low-impact candidates are deferred, but always make progress: a
      // positive with no upstream coverage still needs its own OP.
      if (impact < options.min_impact && !planned.empty()) break;
      planned.push_back(target);
    }
    if (journal.is_open()) {
      FlowJournalRecord record;
      record.iteration = iteration;
      record.entries.reserve(planned.size());
      for (NodeId target : planned) record.entries.emplace_back(target, 0);
      journal.append(record);
    }
    for (NodeId target : planned) apply_insertion(target);
    const std::size_t inserted = planned.size();
    tensors.rebuild_csr();
    iteration_span.arg("positives", static_cast<double>(candidates.size()));
    iteration_span.arg("inserted", static_cast<double>(inserted));
    inserted_counter.add(inserted);
    log_info("gcn-opi iteration ", iteration + 1, ": ", candidates.size(),
             " positives, inserted ", inserted, " OPs");
  }
  // The sweep ran to completion; a stale journal must not replay into a
  // future run over the modified netlist.
  journal.remove();
  return result;
}

}  // namespace gcnt
