#pragma once
// Append-only insertion journal for the iterative OPI/CPI flows.
//
// The sweeps are long-running (predict → rank → insert, for many rounds
// over million-node graphs); the journal makes them restartable: each
// iteration's accepted insertion batch is appended — and fsync'd — as one
// self-checksummed record *before* it is applied, so after a crash the
// flow re-reads the original netlist, replays every complete record
// (applying insertions deterministically, without re-running prediction
// or ranking), and continues the sweep at the next iteration. The
// resumed run selects the identical insertion sequence an uninterrupted
// sweep would (pinned by tests/robustness_test.cpp).
//
// On-disk format (text, one record per line, each line ending in the
// CRC32C of everything before it):
//
//   gcnt-flow-journal v1 <flow> <design> <node-count> <crc>
//   I <iteration> <count> <target>:<flag> ... <crc>
//
// <flag> is 0 for observe points; for control points it is 1 when the
// inserted CP drives toward one. A torn final line (the crash happened
// mid-append) is detected by checksum and truncated on resume; a bad
// checksum anywhere earlier means real corruption and raises
// Error{kCorrupt}.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "netlist/netlist.h"

namespace gcnt {

struct FlowJournalRecord {
  std::size_t iteration = 0;
  /// (target node, flag) in insertion order; flag is flow-specific.
  std::vector<std::pair<NodeId, int>> entries;
};

class FlowJournal {
 public:
  FlowJournal() = default;
  ~FlowJournal();
  FlowJournal(const FlowJournal&) = delete;
  FlowJournal& operator=(const FlowJournal&) = delete;

  /// Opens `path` for flow `flow` ("opi" / "cpi") over `design` with
  /// `node_count` nodes *before any insertion*. With resume=true an
  /// existing journal is validated against those identifiers and parsed
  /// into records() (a torn tail is truncated); otherwise any existing
  /// file is discarded and a fresh header written. Throws gcnt::Error —
  /// kIo on filesystem trouble, kVersion/kCorrupt on a bad journal,
  /// kUsage when the journal belongs to a different design.
  void open(const std::string& path, const std::string& flow,
            const std::string& design, std::size_t node_count, bool resume);

  bool is_open() const noexcept { return fd_ >= 0; }

  /// Complete records recovered by open(..., resume=true).
  const std::vector<FlowJournalRecord>& records() const noexcept {
    return records_;
  }

  /// Appends one record and fsyncs it to disk before returning — after
  /// append() returns, the batch survives any crash. Throws Error{kIo}.
  void append(const FlowJournalRecord& record);

  void close() noexcept;

  /// Closes and deletes the journal file (called after the sweep's final
  /// artifact is safely written; a stale journal must not replay into a
  /// future run).
  void remove() noexcept;

 private:
  int fd_ = -1;
  std::string path_;
  std::vector<FlowJournalRecord> records_;
};

}  // namespace gcnt
