#include "dft/gcn_cpi.h"

#include <algorithm>
#include <unordered_set>

#include "common/log.h"
#include "cop/cop.h"
#include "gcn/graph_tensors.h"
#include "scoap/scoap.h"

namespace gcnt {

namespace {

std::vector<std::int32_t> predict_cascade(
    const std::vector<const GcnModel*>& stages, const GraphTensors& tensors) {
  std::vector<std::int32_t> predictions(tensors.node_count(), 1);
  for (const GcnModel* stage : stages) {
    const auto positive = stage->predict_positive_probability(tensors);
    for (std::size_t v = 0; v < predictions.size(); ++v) {
      if (positive[v] < 0.5f) predictions[v] = 0;
    }
  }
  return predictions;
}

bool valid_target(const Netlist& netlist, NodeId v,
                  const std::unordered_set<NodeId>& controlled) {
  const CellType t = netlist.type(v);
  return !is_sink(t) && t != CellType::kInput && !controlled.count(v);
}

}  // namespace

GcnCpiResult run_gcn_cpi(Netlist& netlist,
                         const std::vector<const GcnModel*>& stages,
                         const GcnCpiOptions& options) {
  GcnCpiResult result;
  std::unordered_set<NodeId> controlled;

  for (std::size_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    // CP insertion rewires fanouts, so tensors are rebuilt per iteration
    // (the graph deltas are not append-only as in the OPI flow).
    GraphTensors tensors = build_graph_tensors(netlist);
    if (options.standardize_features) tensors.standardize_features();
    const auto predictions = predict_cascade(stages, tensors);

    std::vector<NodeId> candidates;
    for (NodeId v = 0; v < predictions.size(); ++v) {
      if (predictions[v] == 1 && valid_target(netlist, v, controlled)) {
        candidates.push_back(v);
      }
    }
    result.final_positive_predictions = candidates.size();
    if (candidates.empty()) break;
    result.iterations = iteration + 1;

    // Rank by downstream coverage: positives in the fan-out cone benefit
    // from this node becoming controllable.
    std::vector<std::pair<int, NodeId>> ranked;
    ranked.reserve(candidates.size());
    for (NodeId v : candidates) {
      int coverage = 1;
      for (NodeId w : netlist.fanout_cone(v, options.rank_cone_limit)) {
        coverage += predictions[w] == 1 ? 1 : 0;
      }
      ranked.emplace_back(coverage, v);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first > b.first;
    });

    std::size_t budget = std::max<std::size_t>(
        options.min_inserts_per_iteration,
        static_cast<std::size_t>(options.insert_fraction *
                                 static_cast<double>(ranked.size())));
    budget = std::min(budget, ranked.size());

    // Drive each target toward its rare value (from COP probabilities).
    const CopMeasures cop = compute_cop(netlist);
    for (std::size_t k = 0; k < budget; ++k) {
      const NodeId target = ranked[k].second;
      const bool rare_is_one = cop.prob_one[target] < 0.5;
      result.inserted.push_back(
          netlist.insert_control_point(target, rare_is_one));
      controlled.insert(target);
    }
    log_info("gcn-cpi iteration ", iteration + 1, ": ", candidates.size(),
             " positives, inserted ", budget, " CPs");
  }
  return result;
}

}  // namespace gcnt
