#include "dft/gcn_cpi.h"

#include <algorithm>
#include <unordered_set>

#include "common/log.h"
#include "common/trace.h"
#include "cop/cop.h"
#include "dft/flow_journal.h"
#include "gcn/graph_tensors.h"
#include "gcn/incremental.h"
#include "scoap/scoap.h"

namespace gcnt {

namespace {

std::vector<std::int32_t> cascade_predictions(
    const std::vector<IncrementalGcnEngine>& engines, std::size_t n) {
  std::vector<std::int32_t> predictions(n, 1);
  for (const IncrementalGcnEngine& engine : engines) {
    const auto positive = engine.positive_probability();
    for (std::size_t v = 0; v < predictions.size(); ++v) {
      if (positive[v] < 0.5f) predictions[v] = 0;
    }
  }
  return predictions;
}

bool valid_target(const Netlist& netlist, NodeId v,
                  const std::unordered_set<NodeId>& controlled) {
  const CellType t = netlist.type(v);
  return !is_sink(t) && t != CellType::kInput && !controlled.count(v);
}

}  // namespace

GcnCpiResult run_gcn_cpi(Netlist& netlist,
                         const std::vector<const GcnModel*>& stages,
                         const GcnCpiOptions& options) {
  GCNT_KERNEL_SCOPE("cpi.run");
  static Counter& dirty_nodes_counter =
      StatsRegistry::instance().counter("cpi.dirty_nodes");
  static Counter& full_fallbacks_counter =
      StatsRegistry::instance().counter("cpi.full_fallbacks");
  static Counter& replayed_counter =
      StatsRegistry::instance().counter("cpi.replayed_records");
  GcnCpiResult result;
  std::unordered_set<NodeId> controlled;

  FlowJournal journal;
  if (!options.journal_path.empty()) {
    journal.open(options.journal_path, "cpi", options.journal_design,
                 netlist.size(), options.resume);
  }

  std::vector<IncrementalGcnEngine> engines;
  engines.reserve(stages.size());
  int max_depth = 0;
  for (const GcnModel* stage : stages) {
    engines.emplace_back(*stage,
                         IncrementalGcnOptions{options.full_fallback_fraction});
    max_depth = std::max(max_depth, stage->config().depth);
  }
  DirtyConeTracker tracker;
  GraphTensors tensors;
  bool have_cache = false;

  // Single mutation path shared by the live sweep and journal replay.
  const auto apply_insertion = [&](NodeId target, bool rare_is_one) {
    const Netlist::ControlPoint cp =
        netlist.insert_control_point(target, rare_is_one);
    controlled.insert(target);
    // Structural seeds for the next iteration's dirty cone: the new
    // cells, the retargeted driver, and every rewired consumer.
    tracker.record_new_node(cp.control);
    tracker.record_new_node(cp.gate);
    if (cp.inverter != kInvalidNode) tracker.record_new_node(cp.inverter);
    tracker.record_feature(target);
    for (NodeId w : netlist.fanouts(cp.gate)) tracker.record_feature(w);
    result.inserted.push_back(cp);
  };

  // Replay journaled batches from an interrupted sweep; the drive
  // polarity is taken from the journal, not recomputed, so the resumed
  // netlist matches the interrupted one exactly. Tensors are rebuilt at
  // the top of the first live iteration as usual.
  std::size_t start_iteration = 0;
  for (const FlowJournalRecord& record : journal.records()) {
    TraceSpan replay_span("cpi.replay");
    for (const auto& [target, flag] : record.entries) {
      apply_insertion(target, flag != 0);
    }
    replayed_counter.add();
    result.iterations = record.iteration + 1;
    start_iteration = record.iteration + 1;
  }
  if (start_iteration != 0) {
    log_info("gcn-cpi resume: replayed ", journal.records().size(),
             " journaled iterations (", result.inserted.size(), " CPs)");
  }

  for (std::size_t iteration = start_iteration;
       iteration < options.max_iterations; ++iteration) {
    TraceSpan iteration_span("cpi.iteration");
    // CP insertion rewires fanouts, so tensors are rebuilt per iteration
    // (the graph deltas are not append-only as in the OPI flow). The
    // engines then re-propagate only the rows the rebuild actually
    // changed: the structural seeds recorded at insertion time plus every
    // feature row that differs from the previous iteration.
    GraphTensors fresh = build_graph_tensors(netlist);
    if (options.standardize_features) fresh.standardize_features();
    if (!have_cache || !options.incremental) {
      tensors = std::move(fresh);
      for (IncrementalGcnEngine& engine : engines) engine.refresh(tensors);
      have_cache = true;
      tracker.clear();
    } else {
      const std::size_t old_nodes = tensors.node_count();
      for (NodeId v = 0; v < old_nodes; ++v) {
        const float* previous = tensors.features.row(v);
        const float* current = fresh.features.row(v);
        if (!std::equal(previous, previous + kNodeFeatureDim, current)) {
          tracker.record_feature(v);
        }
      }
      for (NodeId v = static_cast<NodeId>(old_nodes); v < fresh.node_count();
           ++v) {
        tracker.record_new_node(v);
      }
      tensors = std::move(fresh);
      const std::vector<NodeId> dirty = tracker.affected(tensors, max_depth);
      dirty_nodes_counter.add(dirty.size());
      iteration_span.arg("dirty", static_cast<double>(dirty.size()));
      for (IncrementalGcnEngine& engine : engines) {
        engine.update(tensors, dirty);
        if (engine.last_was_full()) full_fallbacks_counter.add();
      }
      tracker.clear();
    }
    const auto predictions = cascade_predictions(engines, tensors.node_count());

    std::vector<NodeId> candidates;
    for (NodeId v = 0; v < predictions.size(); ++v) {
      if (predictions[v] == 1 && valid_target(netlist, v, controlled)) {
        candidates.push_back(v);
      }
    }
    result.final_positive_predictions = candidates.size();
    if (candidates.empty()) break;
    result.iterations = iteration + 1;

    // Rank by downstream coverage: positives in the fan-out cone benefit
    // from this node becoming controllable.
    std::vector<std::pair<int, NodeId>> ranked;
    ranked.reserve(candidates.size());
    for (NodeId v : candidates) {
      int coverage = 1;
      for (NodeId w : netlist.fanout_cone(v, options.rank_cone_limit)) {
        coverage += predictions[w] == 1 ? 1 : 0;
      }
      ranked.emplace_back(coverage, v);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first > b.first;
    });

    std::size_t budget = std::max<std::size_t>(
        options.min_inserts_per_iteration,
        static_cast<std::size_t>(options.insert_fraction *
                                 static_cast<double>(ranked.size())));
    budget = std::min(budget, ranked.size());

    // Drive each target toward its rare value (from COP probabilities).
    // Both target and polarity are fixed before any mutation, so the whole
    // accepted batch can be journaled durably before it is applied.
    const CopMeasures cop = compute_cop(netlist);
    FlowJournalRecord record;
    record.iteration = iteration;
    record.entries.reserve(budget);
    for (std::size_t k = 0; k < budget; ++k) {
      const NodeId target = ranked[k].second;
      record.entries.emplace_back(target, cop.prob_one[target] < 0.5 ? 1 : 0);
    }
    if (journal.is_open()) journal.append(record);
    for (const auto& [target, flag] : record.entries) {
      apply_insertion(target, flag != 0);
    }
    log_info("gcn-cpi iteration ", iteration + 1, ": ", candidates.size(),
             " positives, inserted ", budget, " CPs");
  }
  journal.remove();
  return result;
}

}  // namespace gcnt
