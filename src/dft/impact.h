#pragma once
// Impact evaluation for observation-point candidates (Section 4, Fig. 6).
//
// The impact of inserting an OP at node `a` is the reduction in positive
// (difficult-to-observe) predictions within a's fan-in cone: one OP can fix
// the observability of its whole upstream region. Evaluating a candidate
// tentatively must not touch the real netlist/tensors, so this evaluator:
//
//  * recomputes SCOAP CO for the (capped) fan-in cone under "a has an OP"
//    into an overlay map,
//  * re-predicts the cone nodes with a D-hop recursive cascade evaluation
//    that reads overlay features where present (and models the virtual OP
//    node as an extra successor of `a`), memoizing (node, depth)
//    embeddings within the candidate,
//  * counts positives before (from the whole-graph predictions) and after.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gcn/model.h"
#include "scoap/scoap.h"

namespace gcnt {

class ImpactEvaluator {
 public:
  /// `stages` is a prediction cascade (size 1 = single GCN). All models
  /// must share depth/feature conventions with `tensors`.
  ImpactEvaluator(std::vector<const GcnModel*> stages, const Netlist& netlist,
                  const GraphTensors& tensors, const ScoapMeasures& scoap,
                  const std::vector<std::uint32_t>& levels);

  /// Impact = positives in cone(target) now - positives after a tentative
  /// OP insertion at `target`. `predictions` is the current whole-graph
  /// cascade output. The cone is capped at `cone_limit` nodes.
  int impact_of(NodeId target, const std::vector<std::int32_t>& predictions,
                std::size_t cone_limit = 128) const;

 private:
  /// Sentinel id for the tentative OP node.
  static constexpr NodeId kVirtualOp = kInvalidNode;

  struct Overlay {
    NodeId target = kInvalidNode;
    std::unordered_map<NodeId, float> observability_feature;
    /// Memoized embeddings keyed by (node, depth).
    mutable std::unordered_map<std::uint64_t, std::vector<float>> memo;
  };

  std::vector<float> embed(const GcnModel& model, NodeId v, int depth,
                           const Overlay& overlay) const;
  bool cascade_positive(NodeId v, const Overlay& overlay) const;

  std::vector<const GcnModel*> stages_;
  const Netlist* netlist_;
  const GraphTensors* tensors_;
  const ScoapMeasures* scoap_;
  const std::vector<std::uint32_t>* levels_;
};

}  // namespace gcnt
