#include "dft/impact.h"

#include <algorithm>

#include "gcn/vec_ops.h"

namespace gcnt {

ImpactEvaluator::ImpactEvaluator(std::vector<const GcnModel*> stages,
                                 const Netlist& netlist,
                                 const GraphTensors& tensors,
                                 const ScoapMeasures& scoap,
                                 const std::vector<std::uint32_t>& levels)
    : stages_(std::move(stages)),
      netlist_(&netlist),
      tensors_(&tensors),
      scoap_(&scoap),
      levels_(&levels) {}

std::vector<float> ImpactEvaluator::embed(const GcnModel& model, NodeId v,
                                          int depth,
                                          const Overlay& overlay) const {
  // Stage index participates in the memo key: embeddings are per-model.
  std::size_t stage_index = 0;
  for (; stage_index < stages_.size(); ++stage_index) {
    if (stages_[stage_index] == &model) break;
  }
  const std::uint64_t key = static_cast<std::uint64_t>(v) |
                            (static_cast<std::uint64_t>(depth) << 32) |
                            (static_cast<std::uint64_t>(stage_index) << 40);
  if (const auto it = overlay.memo.find(key); it != overlay.memo.end()) {
    return it->second;
  }

  std::vector<float> result;
  if (depth == 0) {
    if (v == kVirtualOp) {
      // The paper assigns the tentative OP node attributes [0, 1, 1, 0].
      result = {tensors_->encode(0, 0.0), tensors_->encode(1, 1.0),
                tensors_->encode(2, 1.0), tensors_->encode(3, 0.0)};
    } else {
      const float* row = tensors_->features.row(v);
      result.assign(row, row + kNodeFeatureDim);
      const auto it = overlay.observability_feature.find(v);
      if (it != overlay.observability_feature.end()) {
        result[3] = it->second;
      }
    }
  } else {
    const float wp = model.w_pr();
    const float ws = model.w_su();
    std::vector<float> aggregated = embed(model, v, depth - 1, overlay);
    if (v == kVirtualOp) {
      // The virtual OP's only neighbor is its target (a predecessor).
      axpy_row(aggregated, wp, embed(model, overlay.target, depth - 1, overlay));
    } else {
      for (NodeId u : netlist_->fanins(v)) {
        axpy_row(aggregated, wp, embed(model, u, depth - 1, overlay));
      }
      for (NodeId w : netlist_->fanouts(v)) {
        axpy_row(aggregated, ws, embed(model, w, depth - 1, overlay));
      }
      if (v == overlay.target) {
        // Tentative structural edit: target gains the OP as a successor.
        axpy_row(aggregated, ws, embed(model, kVirtualOp, depth - 1, overlay));
      }
    }
    result = apply_linear_row(
        model.encoders()[static_cast<std::size_t>(depth - 1)], aggregated);
    relu_row(result);
  }
  overlay.memo.emplace(key, result);
  return result;
}

bool ImpactEvaluator::cascade_positive(NodeId v,
                                       const Overlay& overlay) const {
  for (const GcnModel* stage : stages_) {
    const std::vector<float> h = fc_head_row(
        stage->fc_layers(), embed(*stage, v, stage->config().depth, overlay));
    if (h[1] <= h[0]) return false;  // this stage filters v out
  }
  return true;
}

int ImpactEvaluator::impact_of(NodeId target,
                               const std::vector<std::int32_t>& predictions,
                               std::size_t cone_limit) const {
  std::vector<NodeId> cone = netlist_->fanin_cone(target, cone_limit);
  cone.push_back(target);

  int before = 0;
  for (NodeId v : cone) before += predictions[v] == 1 ? 1 : 0;
  if (before == 0) return 0;

  // Tentative SCOAP CO update, restricted to the capped cone (descending
  // level = valid reverse-topological order within the cone).
  Overlay overlay;
  overlay.target = target;
  std::sort(cone.begin(), cone.end(), [&](NodeId a, NodeId b) {
    return (*levels_)[a] > (*levels_)[b];
  });
  std::unordered_map<NodeId, std::uint32_t> new_co;
  new_co.reserve(cone.size());
  const auto co_of = [&](NodeId g) {
    const auto it = new_co.find(g);
    return it != new_co.end() ? it->second : scoap_->co[g];
  };
  for (NodeId v : cone) {
    if (v == target) {
      new_co[v] = 0;  // the OP observes it directly
      continue;
    }
    if (is_sink(netlist_->type(v))) continue;
    std::uint32_t best = kScoapInfinity;
    for (NodeId g : netlist_->fanouts(v)) {
      const auto& gf = netlist_->fanins(g);
      for (std::size_t slot = 0; slot < gf.size(); ++slot) {
        if (gf[slot] != v) continue;
        best = std::min(
            best, scoap_observe_through(*netlist_, g, slot, *scoap_, co_of(g)));
      }
    }
    new_co[v] = best;
  }
  for (const auto& [v, co] : new_co) {
    if (co != scoap_->co[v]) {
      overlay.observability_feature[v] = tensors_->encode(3, co);
    }
  }

  int after = 0;
  for (NodeId v : cone) after += cascade_positive(v, overlay) ? 1 : 0;
  return before - after;
}

}  // namespace gcnt
