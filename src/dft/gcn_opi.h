#pragma once
// Iterative GCN-guided observation point insertion (Section 4, Fig. 7).
//
// Loop: predict difficult-to-observe nodes with the trained cascade →
// evaluate each positive's impact (positive-prediction reduction in its
// fan-in cone) → insert OPs at the top-ranked locations → incrementally
// update the graph (COO tuples, SCOAP CO in the affected cones, feature
// rows) → re-predict. Exit when no positive predictions remain (or the
// iteration/OP budget is exhausted).

#include <cstdint>
#include <vector>

#include "gcn/model.h"
#include "netlist/netlist.h"

namespace gcnt {

struct GcnOpiOptions {
  std::size_t max_iterations = 12;
  /// Fraction of ranked candidates inserted per iteration.
  double insert_fraction = 0.3;
  /// At least this many insertions per iteration (when candidates exist).
  std::size_t min_inserts_per_iteration = 8;
  /// Fan-in cone cap for impact evaluation.
  std::size_t impact_cone_limit = 96;
  /// Candidates with impact below this are deferred (paper inserts the
  /// "largest impact" locations first).
  int min_impact = 1;
  /// Standardize node features before prediction. MUST match how the
  /// supplied models were trained (true when they saw
  /// GraphTensors::standardize_features() data, false for raw features).
  bool standardize_features = false;
  /// Re-predict via the dirty-cone incremental engine (bit-identical to a
  /// full re-inference; see gcn/incremental.h) instead of re-running the
  /// whole-graph forward every iteration.
  bool incremental = true;
  /// Dirty fraction above which the incremental engine falls back to a
  /// full forward (tracked by the `opi.full_fallbacks` stats counter).
  double full_fallback_fraction = 0.25;
  /// > 0: predict with the sharded out-of-core engine (gcn/shard.h) at
  /// this shard count instead of the monolithic incremental engine —
  /// bit-identical logits, one-shard peak residency. 0 = monolithic.
  std::size_t shards = 0;
  /// Halo depth for the sharded engine (>= 1; also its layers-per-round).
  int shard_halo = 1;
  /// With shards > 0: non-empty spills off-shard embedding blocks under
  /// this directory (one subdirectory per cascade stage) instead of
  /// keeping them in memory.
  std::string shard_spill_dir;
  /// When non-empty, each iteration's accepted insertion batch is appended
  /// to this journal — fsync'd *before* it is applied (dft/flow_journal.h)
  /// — so an interrupted sweep can be resumed mid-flow.
  std::string journal_path;
  /// With a journal_path: replay a matching journal left by an interrupted
  /// sweep (re-applying its insertions on the original netlist without
  /// re-running prediction), then continue at the next iteration. Safe to
  /// pass always — with no journal on disk the sweep simply starts fresh.
  bool resume = false;
  /// Identity recorded in the journal header (e.g. the netlist file name);
  /// a resumed journal must have been written for the same design.
  std::string journal_design = "netlist";
};

struct OpiResult {
  std::vector<NodeId> inserted;   ///< targets that received an OP
  std::size_t iterations = 0;
  std::size_t final_positive_predictions = 0;
};

/// Runs the flow on `netlist` in place (OP nodes are appended). `stages`
/// is the trained prediction cascade (single model = one entry).
OpiResult run_gcn_opi(Netlist& netlist,
                      const std::vector<const GcnModel*>& stages,
                      const GcnOpiOptions& options = {});

}  // namespace gcnt
