#pragma once
// Baseline observation point insertion — stand-in for the commercial
// testability tool of Table 3.
//
// Classic analytic flow: compute COP observability, collect every node
// below the threshold, insert OPs at the worst nodes first (deepest
// observability deficit), recompute, repeat. This is the standard
// threshold-driven recipe industrial tools implement; it fixes each hard
// node where it is found rather than ranking candidates by how much of the
// upstream cone one OP would cure — which is exactly the inefficiency the
// paper's impact-ranked GCN flow exploits (≈11% fewer OPs at the same
// coverage).

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace gcnt {

struct BaselineOpiOptions {
  /// Nodes with COP observability below this need an OP.
  double observability_threshold = 0.01;
  std::size_t max_rounds = 24;
  /// Fraction of the candidate list fixed per round (worst first); the
  /// recompute between rounds lets earlier OPs cover later candidates.
  double insert_fraction = 0.3;
  std::size_t min_inserts_per_round = 8;
};

struct BaselineOpiResult {
  std::vector<NodeId> inserted;
  std::size_t rounds = 0;
  std::size_t remaining_below_threshold = 0;
};

BaselineOpiResult run_baseline_opi(Netlist& netlist,
                                   const BaselineOpiOptions& options = {});

}  // namespace gcnt
