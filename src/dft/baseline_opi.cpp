#include "dft/baseline_opi.h"

#include <algorithm>

#include "common/log.h"
#include "cop/cop.h"

namespace gcnt {

namespace {

bool valid_target(const Netlist& netlist, NodeId v) {
  const CellType t = netlist.type(v);
  if (is_sink(t) || t == CellType::kInput) return false;
  for (NodeId g : netlist.fanouts(v)) {
    if (netlist.type(g) == CellType::kObserve) return false;
  }
  return true;
}

}  // namespace

BaselineOpiResult run_baseline_opi(Netlist& netlist,
                                   const BaselineOpiOptions& options) {
  BaselineOpiResult result;
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    const CopMeasures cop = compute_cop(netlist);
    std::vector<std::pair<double, NodeId>> candidates;
    for (NodeId v = 0; v < netlist.size(); ++v) {
      if (!valid_target(netlist, v)) continue;
      if (cop.observability[v] < options.observability_threshold) {
        candidates.emplace_back(cop.observability[v], v);
      }
    }
    result.remaining_below_threshold = candidates.size();
    if (candidates.empty()) break;
    result.rounds = round + 1;

    // Worst observability first.
    std::sort(candidates.begin(), candidates.end());
    std::size_t budget = std::max<std::size_t>(
        options.min_inserts_per_round,
        static_cast<std::size_t>(options.insert_fraction *
                                 static_cast<double>(candidates.size())));
    budget = std::min(budget, candidates.size());

    for (std::size_t k = 0; k < budget; ++k) {
      const NodeId target = candidates[k].second;
      netlist.insert_observe_point(target);
      result.inserted.push_back(target);
    }
    log_info("baseline-opi round ", round + 1, ": ", candidates.size(),
             " below threshold, inserted ", budget, " OPs");
  }
  return result;
}

}  // namespace gcnt
