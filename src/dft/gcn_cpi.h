#pragma once
// GCN-guided control point insertion — the control-side twin of
// run_gcn_opi(), realizing Section 2.2's claim that the methodology
// "can be applied to both CPs insertion and OPs insertion".
//
// A classifier trained on difficult-to-control labels
// (label_difficult_to_control) predicts nodes random patterns cannot
// drive to one of their values; candidates are ranked by how many other
// positive predictions sit in their fan-OUT cone (a controlled node feeds
// easier values downstream, so one CP can cure a whole region), the
// top-ranked get CP1/CP0 gates, and the loop re-predicts on the updated
// graph until no positives remain.

#include <cstdint>
#include <vector>

#include "gcn/model.h"
#include "netlist/netlist.h"

namespace gcnt {

struct GcnCpiOptions {
  std::size_t max_iterations = 10;
  double insert_fraction = 0.3;
  std::size_t min_inserts_per_iteration = 4;
  /// Fan-out cone cap for the coverage ranking.
  std::size_t rank_cone_limit = 96;
  /// Must match the training-time feature convention of `stages`.
  bool standardize_features = false;
  /// Re-predict via the dirty-cone incremental engine: tensors are still
  /// rebuilt per iteration (CP insertion rewires fanouts and shifts SCOAP
  /// globally), but only rows whose features or structure actually changed
  /// are re-propagated. Bit-identical to a full re-inference. Note that
  /// standardize_features recenters every row each iteration, so the
  /// engine then always takes its full-graph fallback.
  bool incremental = true;
  /// Dirty fraction above which the engine falls back to a full forward.
  double full_fallback_fraction = 0.25;
  /// When non-empty, each iteration's accepted insertion batch — target
  /// plus drive-toward-one flag — is journaled (fsync'd) before it is
  /// applied, making an interrupted sweep resumable (dft/flow_journal.h).
  std::string journal_path;
  /// With a journal_path: replay a matching journal left by an interrupted
  /// sweep, then continue at the next iteration. Safe to pass always.
  bool resume = false;
  /// Identity recorded in the journal header (e.g. the netlist file name).
  std::string journal_design = "netlist";
};

struct GcnCpiResult {
  std::vector<Netlist::ControlPoint> inserted;
  std::size_t iterations = 0;
  std::size_t final_positive_predictions = 0;
};

/// Runs the flow on `netlist` in place. `stages` is a cascade trained on
/// difficult-to-control labels (single model = one entry).
GcnCpiResult run_gcn_cpi(Netlist& netlist,
                         const std::vector<const GcnModel*>& stages,
                         const GcnCpiOptions& options = {});

}  // namespace gcnt
