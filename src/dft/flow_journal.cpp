#include "dft/flow_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/artifact.h"
#include "common/error.h"
#include "common/fault_inject.h"
#include "common/stats.h"

namespace gcnt {

namespace {

constexpr const char* kMagic = "gcnt-flow-journal";
constexpr int kVersion = 1;
/// Entry counts above this are rejected as corrupt before allocating.
constexpr std::size_t kMaxEntriesPerRecord = std::size_t{1} << 24;

[[noreturn]] void fail_io(const std::string& what, const std::string& path) {
  const int saved_errno = errno;
  std::string message = what + ": " + path;
  if (saved_errno != 0) {
    message += " (";
    message += std::strerror(saved_errno);
    message += ")";
  }
  throw Error(ErrorKind::kIo, message);
}

/// Appends " <crc32c-hex>\n" to `body` and returns the full line.
std::string seal_line(const std::string& body) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), " %08x\n",
                crc32c(body.data(), body.size()));
  return body + suffix;
}

/// Splits a sealed line into body + declared crc; false when malformed.
bool unseal_line(const std::string& line, std::string& body,
                 std::uint32_t& declared_crc) {
  const std::size_t space = line.find_last_of(' ');
  if (space == std::string::npos || line.size() - space - 1 != 8) {
    return false;
  }
  body = line.substr(0, space);
  std::istringstream hex(line.substr(space + 1));
  hex >> std::hex >> declared_crc;
  return !hex.fail();
}

bool line_valid(const std::string& line) {
  std::string body;
  std::uint32_t declared = 0;
  return unseal_line(line, body, declared) &&
         crc32c(body.data(), body.size()) == declared;
}

}  // namespace

FlowJournal::~FlowJournal() { close(); }

void FlowJournal::open(const std::string& path, const std::string& flow,
                       const std::string& design, std::size_t node_count,
                       bool resume) {
  close();
  records_.clear();
  path_ = path;

  std::ostringstream header_body;
  header_body << kMagic << " v" << kVersion << " " << flow << " " << design
              << " " << node_count;
  const std::string header_line = seal_line(header_body.str());

  std::size_t valid_bytes = 0;
  bool have_valid_header = false;
  if (resume) {
    std::ifstream in(path, std::ios::binary);
    std::string line;
    std::size_t line_index = 0;
    bool torn = false;
    while (in && std::getline(in, line)) {
      // getline strips '\n'; a line at EOF without one is a torn tail.
      const bool has_newline = !in.eof();
      if (!has_newline || !line_valid(line)) {
        // A crash mid-append leaves exactly one newline-less fragment as
        // the file's final bytes. An invalid line that is complete, or
        // that has anything after it, is real corruption.
        std::string rest;
        std::getline(in, rest, '\0');
        if (has_newline || !rest.empty()) {
          throw Error(ErrorKind::kCorrupt,
                      "journal " + path + ": corrupt record on line " +
                          std::to_string(line_index + 1));
        }
        torn = true;
        break;
      }
      if (line_index == 0) {
        if (line + "\n" != header_line) {
          // Valid checksum but different identity: refuse to replay a
          // journal from another design / flow / starting netlist.
          throw Error(ErrorKind::kUsage,
                      "journal " + path + " does not match this sweep (" +
                          flow + " over " + design + " with " +
                          std::to_string(node_count) + " nodes)");
        }
        have_valid_header = true;
      } else {
        std::string body;
        std::uint32_t crc = 0;
        unseal_line(line, body, crc);
        std::istringstream fields(body);
        std::string tag;
        FlowJournalRecord record;
        std::size_t count = 0;
        if (!(fields >> tag >> record.iteration >> count) || tag != "I" ||
            count > kMaxEntriesPerRecord) {
          throw Error(ErrorKind::kCorrupt,
                      "journal " + path + ": malformed record on line " +
                          std::to_string(line_index + 1));
        }
        record.entries.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          std::string entry;
          if (!(fields >> entry)) {
            throw Error(ErrorKind::kCorrupt,
                        "journal " + path + ": short record on line " +
                            std::to_string(line_index + 1));
          }
          const std::size_t colon = entry.find(':');
          if (colon == std::string::npos) {
            throw Error(ErrorKind::kCorrupt,
                        "journal " + path + ": bad entry '" + entry + "'");
          }
          record.entries.emplace_back(
              static_cast<NodeId>(std::stoul(entry.substr(0, colon))),
              std::stoi(entry.substr(colon + 1)));
        }
        records_.push_back(std::move(record));
      }
      valid_bytes += line.size() + 1;
      ++line_index;
    }
    if (torn) {
      static Counter& torn_counter =
          StatsRegistry::instance().counter("journal.torn_tails");
      torn_counter.add();
    }
  }

  if (have_valid_header) {
    // Re-open for append, discarding any torn tail.
    if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
      fail_io("cannot truncate journal", path);
    }
    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (fd_ < 0) fail_io("cannot open journal", path);
    return;
  }

  // Fresh journal (no file, an empty file, or resume not requested).
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) fail_io("cannot create journal", path);
  records_.clear();
  const std::size_t keep = fault_write_probe(header_line.size());
  const ssize_t written = ::write(fd_, header_line.data(), keep);
  if (written < 0 || static_cast<std::size_t>(written) != keep ||
      ::fsync(fd_) != 0) {
    fail_io("cannot write journal header", path);
  }
}

void FlowJournal::append(const FlowJournalRecord& record) {
  if (fd_ < 0) {
    throw Error(ErrorKind::kInternal, "FlowJournal::append: not open");
  }
  std::ostringstream body;
  body << "I " << record.iteration << " " << record.entries.size();
  for (const auto& [target, flag] : record.entries) {
    body << " " << target << ":" << flag;
  }
  const std::string line = seal_line(body.str());
  // The write probe models a crash mid-append: a truncated record is
  // exactly what open(resume=true) must detect and discard.
  const std::size_t keep = fault_write_probe(line.size());
  const ssize_t written = ::write(fd_, line.data(), keep);
  if (written < 0 || static_cast<std::size_t>(written) != keep) {
    fail_io("journal append failed", path_);
  }
  if (::fsync(fd_) != 0) fail_io("journal fsync failed", path_);
  static Counter& records_counter =
      StatsRegistry::instance().counter("journal.records");
  records_counter.add();
}

void FlowJournal::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FlowJournal::remove() noexcept {
  close();
  if (!path_.empty()) std::remove(path_.c_str());
}

}  // namespace gcnt
