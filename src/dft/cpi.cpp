#include "dft/cpi.h"

#include <algorithm>
#include <unordered_set>

#include "common/log.h"
#include "cop/cop.h"

namespace gcnt {

namespace {

bool valid_target(const Netlist& netlist, NodeId v) {
  const CellType t = netlist.type(v);
  return !is_sink(t) && t != CellType::kInput;
}

}  // namespace

CpiResult run_baseline_cpi(Netlist& netlist, const CpiOptions& options) {
  CpiResult result;
  std::unordered_set<NodeId> already_controlled;

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    const CopMeasures cop = compute_cop(netlist);

    // (rarity, node, rare value is one?)
    std::vector<std::tuple<double, NodeId, bool>> candidates;
    for (NodeId v = 0; v < netlist.size(); ++v) {
      if (!valid_target(netlist, v) || already_controlled.count(v)) continue;
      const double p1 = cop.prob_one[v];
      const double rarity = std::min(p1, 1.0 - p1);
      if (rarity < options.probability_threshold) {
        candidates.emplace_back(rarity, v, p1 < 0.5);
      }
    }
    result.remaining_below_threshold = candidates.size();
    if (candidates.empty()) break;
    result.rounds = round + 1;

    std::sort(candidates.begin(), candidates.end());
    std::size_t budget = std::max<std::size_t>(
        options.min_inserts_per_round,
        static_cast<std::size_t>(options.insert_fraction *
                                 static_cast<double>(candidates.size())));
    budget = std::min(budget, candidates.size());

    for (std::size_t k = 0; k < budget; ++k) {
      const auto& [rarity, target, rare_is_one] = candidates[k];
      result.inserted.push_back(
          netlist.insert_control_point(target, rare_is_one));
      already_controlled.insert(target);
    }
    log_info("baseline-cpi round ", round + 1, ": ", candidates.size(),
             " below threshold, inserted ", budget, " CPs");
  }
  return result;
}

}  // namespace gcnt
