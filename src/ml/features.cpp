#include "ml/features.h"

namespace gcnt {

std::size_t cone_feature_dim(const ConeFeatureOptions& options) noexcept {
  return (options.fanin_nodes + options.fanout_nodes + 1) * 4;
}

Matrix extract_cone_features(const Netlist& netlist,
                             const Matrix& node_features,
                             const std::vector<std::uint32_t>& rows,
                             const ConeFeatureOptions& options) {
  const std::size_t dim = cone_feature_dim(options);
  Matrix out(rows.size(), dim, 0.0f);

  const auto copy_node = [&](float* dst, NodeId v) {
    const float* src = node_features.row(v);
    for (std::size_t c = 0; c < 4; ++c) dst[c] = src[c];
  };

  for (std::size_t k = 0; k < rows.size(); ++k) {
    const NodeId v = rows[k];
    float* row = out.row(k);
    copy_node(row, v);
    std::size_t offset = 4;
    for (NodeId u : netlist.fanin_cone(v, options.fanin_nodes)) {
      copy_node(row + offset, u);
      offset += 4;
    }
    offset = 4 + options.fanin_nodes * 4;  // fan-out block starts here
    for (NodeId u : netlist.fanout_cone(v, options.fanout_nodes)) {
      copy_node(row + offset, u);
      offset += 4;
    }
  }
  return out;
}

}  // namespace gcnt
