#pragma once
// Multi-layer perceptron baseline ("MLP" in Table 2).
//
// Per the paper, its architecture matches the GCN's classifier head
// (64, 64, 128, 2 with ReLU) but it consumes the handcrafted cone features
// instead of learned embeddings — isolating the value of the graph
// aggregation itself.

#include "ml/classifier.h"

#include <cstdint>
#include <vector>

#include "nn/layers.h"

namespace gcnt {

struct MlpOptions {
  std::vector<std::size_t> hidden_dims = {64, 64, 128};
  std::size_t epochs = 80;
  std::size_t batch_size = 64;
  float learning_rate = 1e-3f;
  std::uint64_t seed = 31;
};

class MlpClassifier final : public BinaryClassifier {
 public:
  explicit MlpClassifier(MlpOptions options = {}) : options_(options) {}

  void fit(const Matrix& x, const std::vector<std::int32_t>& y) override;
  std::vector<std::int32_t> predict(const Matrix& x) const override;

 private:
  Matrix forward(const Matrix& x, std::vector<Matrix>* inputs,
                 std::vector<Matrix>* activations) const;
  /// Standardizes a raw batch into model space.
  Matrix standardize(const Matrix& x) const;

  MlpOptions options_;
  std::vector<Linear> layers_;
  std::vector<float> mean_;
  std::vector<float> inv_std_;
};

}  // namespace gcnt
