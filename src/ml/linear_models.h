#pragma once
// Linear baselines: logistic regression and linear SVM.
//
// Both are trained by mini-batch SGD with L2 regularization; features are
// standardized internally (mean/variance from the training set), which the
// wide-dynamic-range SCOAP attributes require.

#include "ml/classifier.h"

#include "common/rng.h"

namespace gcnt {

struct LinearModelOptions {
  std::size_t epochs = 60;
  std::size_t batch_size = 64;
  float learning_rate = 0.05f;
  float l2 = 1e-4f;
  std::uint64_t seed = 11;
};

/// Shared standardize + linear-score machinery.
class LinearModelBase : public BinaryClassifier {
 public:
  explicit LinearModelBase(LinearModelOptions options)
      : options_(options) {}

  void fit(const Matrix& x, const std::vector<std::int32_t>& y) final;
  std::vector<std::int32_t> predict(const Matrix& x) const final;

  /// Raw decision score per row (positive = class 1).
  std::vector<float> decision_function(const Matrix& x) const;

 protected:
  /// Per-example gradient scale on w.x+b, given score s and label in
  /// {-1,+1}: logistic uses sigmoid, SVM uses hinge subgradient.
  virtual float loss_gradient(float score, float signed_label) const = 0;

  LinearModelOptions options_;

 private:
  float standardized(const Matrix& x, std::size_t row, std::size_t col) const {
    return (x.at(row, col) - mean_[col]) * inv_std_[col];
  }

  std::vector<float> weights_;
  float bias_ = 0.0f;
  std::vector<float> mean_;
  std::vector<float> inv_std_;
};

class LogisticRegression final : public LinearModelBase {
 public:
  explicit LogisticRegression(LinearModelOptions options = {})
      : LinearModelBase(options) {}

 protected:
  float loss_gradient(float score, float signed_label) const override;
};

class LinearSvm final : public LinearModelBase {
 public:
  explicit LinearSvm(LinearModelOptions options = {})
      : LinearModelBase(options) {}

 protected:
  float loss_gradient(float score, float signed_label) const override;
};

}  // namespace gcnt
