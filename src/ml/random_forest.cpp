#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace gcnt {

namespace {

double gini(std::size_t positives, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(positives) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

struct SplitChoice {
  std::int32_t feature = -1;
  float threshold = 0.0f;
  double impurity = 1e30;
};

}  // namespace

float RandomForest::Tree::predict_row(const Matrix& x,
                                      std::size_t row) const {
  std::int32_t index = 0;
  for (;;) {
    const Node& node = nodes[static_cast<std::size_t>(index)];
    if (node.left < 0) return node.positive_fraction;
    index = x.at(row, static_cast<std::size_t>(node.feature)) <= node.threshold
                ? node.left
                : node.right;
  }
}

void RandomForest::fit(const Matrix& x, const std::vector<std::int32_t>& y) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("RandomForest::fit: label count mismatch");
  }
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const std::size_t features_per_split =
      options_.features_per_split > 0
          ? options_.features_per_split
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(std::sqrt(static_cast<double>(d))));

  trees_.clear();
  trees_.resize(options_.trees);
  Rng forest_rng(options_.seed);

  for (Tree& tree : trees_) {
    Rng rng = forest_rng.split();
    // Bootstrap sample.
    std::vector<std::uint32_t> sample(n);
    for (auto& s : sample) s = static_cast<std::uint32_t>(rng.below(n));

    // Iterative tree construction (explicit stack of work items).
    struct Work {
      std::vector<std::uint32_t> rows;
      std::int32_t node_index;
      std::size_t depth;
    };
    std::vector<Work> stack;
    tree.nodes.emplace_back();
    stack.push_back(Work{std::move(sample), 0, 0});

    while (!stack.empty()) {
      Work work = std::move(stack.back());
      stack.pop_back();
      Node& node = tree.nodes[static_cast<std::size_t>(work.node_index)];

      std::size_t positives = 0;
      for (std::uint32_t r : work.rows) positives += y[r] == 1 ? 1u : 0u;
      node.positive_fraction =
          work.rows.empty()
              ? 0.0f
              : static_cast<float>(positives) /
                    static_cast<float>(work.rows.size());

      const bool pure = positives == 0 || positives == work.rows.size();
      if (pure || work.depth >= options_.max_depth ||
          work.rows.size() < options_.min_samples_split) {
        continue;  // leaf
      }

      // Pick the best of a random feature/threshold search.
      SplitChoice best;
      for (std::size_t f = 0; f < features_per_split; ++f) {
        const auto feature = static_cast<std::size_t>(rng.below(d));
        for (std::size_t t = 0; t < options_.threshold_candidates; ++t) {
          const std::uint32_t pivot_row =
              work.rows[rng.below(work.rows.size())];
          const float threshold = x.at(pivot_row, feature);
          std::size_t left_total = 0, left_pos = 0;
          for (std::uint32_t r : work.rows) {
            if (x.at(r, feature) <= threshold) {
              ++left_total;
              left_pos += y[r] == 1 ? 1u : 0u;
            }
          }
          const std::size_t right_total = work.rows.size() - left_total;
          const std::size_t right_pos = positives - left_pos;
          if (left_total == 0 || right_total == 0) continue;
          const double impurity =
              (static_cast<double>(left_total) * gini(left_pos, left_total) +
               static_cast<double>(right_total) *
                   gini(right_pos, right_total)) /
              static_cast<double>(work.rows.size());
          if (impurity < best.impurity) {
            best = SplitChoice{static_cast<std::int32_t>(feature), threshold,
                               impurity};
          }
        }
      }
      if (best.feature < 0) continue;  // no usable split found

      std::vector<std::uint32_t> left_rows, right_rows;
      for (std::uint32_t r : work.rows) {
        if (x.at(r, static_cast<std::size_t>(best.feature)) <=
            best.threshold) {
          left_rows.push_back(r);
        } else {
          right_rows.push_back(r);
        }
      }

      const auto left_index = static_cast<std::int32_t>(tree.nodes.size());
      tree.nodes.emplace_back();
      const auto right_index = static_cast<std::int32_t>(tree.nodes.size());
      tree.nodes.emplace_back();
      // Note: emplace_back may reallocate; re-fetch the node reference.
      Node& parent = tree.nodes[static_cast<std::size_t>(work.node_index)];
      parent.feature = best.feature;
      parent.threshold = best.threshold;
      parent.left = left_index;
      parent.right = right_index;
      stack.push_back(Work{std::move(left_rows), left_index, work.depth + 1});
      stack.push_back(
          Work{std::move(right_rows), right_index, work.depth + 1});
    }
  }
}

std::vector<float> RandomForest::predict_probability(const Matrix& x) const {
  std::vector<float> probabilities(x.rows(), 0.0f);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float acc = 0.0f;
    for (const Tree& tree : trees_) acc += tree.predict_row(x, r);
    probabilities[r] = trees_.empty()
                           ? 0.0f
                           : acc / static_cast<float>(trees_.size());
  }
  return probabilities;
}

std::vector<std::int32_t> RandomForest::predict(const Matrix& x) const {
  const auto probabilities = predict_probability(x);
  std::vector<std::int32_t> labels(probabilities.size());
  for (std::size_t i = 0; i < probabilities.size(); ++i) {
    labels[i] = probabilities[i] >= 0.5f ? 1 : 0;
  }
  return labels;
}

}  // namespace gcnt
