#pragma once
// Random forest of CART trees (gini impurity), bagging + random feature
// subsets per split. Baseline "RF" of Table 2.

#include "ml/classifier.h"

#include <cstdint>

namespace gcnt {

struct RandomForestOptions {
  std::size_t trees = 40;
  std::size_t max_depth = 12;
  std::size_t min_samples_split = 4;
  /// Features examined per split; 0 = floor(sqrt(dim)).
  std::size_t features_per_split = 0;
  /// Candidate thresholds sampled per feature per split.
  std::size_t threshold_candidates = 12;
  std::uint64_t seed = 23;
};

class RandomForest final : public BinaryClassifier {
 public:
  explicit RandomForest(RandomForestOptions options = {})
      : options_(options) {}

  void fit(const Matrix& x, const std::vector<std::int32_t>& y) override;
  std::vector<std::int32_t> predict(const Matrix& x) const override;

  /// Mean positive-class vote fraction per row.
  std::vector<float> predict_probability(const Matrix& x) const;

 private:
  struct Node {
    // Internal: feature/threshold + children. Leaf: children == -1.
    std::int32_t feature = -1;
    float threshold = 0.0f;
    std::int32_t left = -1;
    std::int32_t right = -1;
    float positive_fraction = 0.0f;
  };
  struct Tree {
    std::vector<Node> nodes;
    float predict_row(const Matrix& x, std::size_t row) const;
  };

  RandomForestOptions options_;
  std::vector<Tree> trees_;
};

}  // namespace gcnt
