#include "ml/linear_models.h"

#include <cmath>
#include <stdexcept>

namespace gcnt {

void LinearModelBase::fit(const Matrix& x, const std::vector<std::int32_t>& y) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("LinearModel::fit: label count mismatch");
  }
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();

  // Standardize from training statistics.
  mean_.assign(d, 0.0f);
  inv_std_.assign(d, 1.0f);
  for (std::size_t r = 0; r < n; ++r) {
    const float* row = x.row(r);
    for (std::size_t c = 0; c < d; ++c) mean_[c] += row[c];
  }
  for (float& m : mean_) m /= static_cast<float>(n);
  std::vector<double> var(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const float* row = x.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      const double delta = row[c] - mean_[c];
      var[c] += delta * delta;
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    const double stddev = std::sqrt(var[c] / static_cast<double>(n));
    inv_std_[c] = stddev > 1e-8 ? static_cast<float>(1.0 / stddev) : 0.0f;
  }

  weights_.assign(d, 0.0f);
  bias_ = 0.0f;
  Rng rng(options_.seed);
  std::vector<std::size_t> index(n);
  for (std::size_t i = 0; i < n; ++i) index[i] = i;

  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.shuffle(index);
    for (std::size_t start = 0; start < n; start += options_.batch_size) {
      const std::size_t end = std::min(n, start + options_.batch_size);
      std::vector<float> grad_w(d, 0.0f);
      float grad_b = 0.0f;
      for (std::size_t k = start; k < end; ++k) {
        const std::size_t r = index[k];
        float score = bias_;
        for (std::size_t c = 0; c < d; ++c) {
          score += weights_[c] * standardized(x, r, c);
        }
        const float signed_label = y[r] == 1 ? 1.0f : -1.0f;
        const float g = loss_gradient(score, signed_label);
        if (g == 0.0f) continue;
        for (std::size_t c = 0; c < d; ++c) {
          grad_w[c] += g * standardized(x, r, c);
        }
        grad_b += g;
      }
      const float scale =
          options_.learning_rate / static_cast<float>(end - start);
      for (std::size_t c = 0; c < d; ++c) {
        weights_[c] -= scale * grad_w[c] +
                       options_.learning_rate * options_.l2 * weights_[c];
      }
      bias_ -= scale * grad_b;
    }
  }
}

std::vector<float> LinearModelBase::decision_function(const Matrix& x) const {
  std::vector<float> scores(x.rows(), bias_);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float acc = bias_;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      acc += weights_[c] * standardized(x, r, c);
    }
    scores[r] = acc;
  }
  return scores;
}

std::vector<std::int32_t> LinearModelBase::predict(const Matrix& x) const {
  const auto scores = decision_function(x);
  std::vector<std::int32_t> labels(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    labels[i] = scores[i] >= 0.0f ? 1 : 0;
  }
  return labels;
}

float LogisticRegression::loss_gradient(float score, float signed_label) const {
  // d/ds of log(1 + exp(-ys)) = -y * sigmoid(-ys).
  const float margin = signed_label * score;
  const float sigmoid = 1.0f / (1.0f + std::exp(margin));
  return -signed_label * sigmoid;
}

float LinearSvm::loss_gradient(float score, float signed_label) const {
  // Hinge: max(0, 1 - ys); subgradient -y when the margin is violated.
  return signed_label * score < 1.0f ? -signed_label : 0.0f;
}

}  // namespace gcnt
