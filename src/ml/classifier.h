#pragma once
// Common interface for the classical baseline models of Table 2.

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace gcnt {

class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Trains on feature rows `x` with labels `y` in {0, 1}.
  virtual void fit(const Matrix& x, const std::vector<std::int32_t>& y) = 0;

  /// Predicted class per row.
  virtual std::vector<std::int32_t> predict(const Matrix& x) const = 0;
};

}  // namespace gcnt
