#include "ml/mlp.h"

#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace gcnt {

Matrix MlpClassifier::standardize(const Matrix& x) const {
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const float* in = x.row(r);
    float* o = out.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      o[c] = (in[c] - mean_[c]) * inv_std_[c];
    }
  }
  return out;
}

Matrix MlpClassifier::forward(const Matrix& x, std::vector<Matrix>* inputs,
                              std::vector<Matrix>* activations) const {
  Matrix hidden = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (inputs) inputs->push_back(hidden);
    Matrix out;
    layers_[i].forward(hidden, out);
    if (i + 1 < layers_.size()) {
      Matrix activated;
      Relu::forward(out, activated);
      if (activations) activations->push_back(activated);
      hidden = std::move(activated);
    } else {
      hidden = std::move(out);
    }
  }
  return hidden;
}

void MlpClassifier::fit(const Matrix& x, const std::vector<std::int32_t>& y) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("MlpClassifier::fit: label count mismatch");
  }
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();

  mean_.assign(d, 0.0f);
  inv_std_.assign(d, 1.0f);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) mean_[c] += x.at(r, c);
  }
  for (float& m : mean_) m /= static_cast<float>(n);
  std::vector<double> var(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      const double delta = x.at(r, c) - mean_[c];
      var[c] += delta * delta;
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    const double stddev = std::sqrt(var[c] / static_cast<double>(n));
    inv_std_[c] = stddev > 1e-8 ? static_cast<float>(1.0 / stddev) : 0.0f;
  }

  Rng rng(options_.seed);
  layers_.clear();
  std::size_t in_dim = d;
  for (std::size_t dim : options_.hidden_dims) {
    layers_.emplace_back(in_dim, dim, rng);
    in_dim = dim;
  }
  layers_.emplace_back(in_dim, 2, rng);

  std::vector<Param*> params;
  for (Linear& layer : layers_) {
    for (Param* p : layer.params()) params.push_back(p);
  }
  AdamOptimizer optimizer(options_.learning_rate);
  const std::vector<float> class_weights{1.0f, 1.0f};
  const Matrix standardized_x = standardize(x);

  std::vector<std::uint32_t> index(n);
  for (std::uint32_t i = 0; i < n; ++i) index[i] = i;

  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.shuffle(index);
    for (std::size_t start = 0; start < n; start += options_.batch_size) {
      const std::size_t end = std::min(n, start + options_.batch_size);
      // Gather the mini-batch.
      Matrix batch(end - start, d);
      std::vector<std::int32_t> batch_labels(end - start);
      for (std::size_t k = start; k < end; ++k) {
        const std::uint32_t r = index[k];
        for (std::size_t c = 0; c < d; ++c) {
          batch.at(k - start, c) = standardized_x.at(r, c);
        }
        batch_labels[k - start] = y[r];
      }

      std::vector<Matrix> inputs;
      std::vector<Matrix> activations;
      const Matrix logits = forward(batch, &inputs, &activations);
      Matrix dlogits;
      softmax_cross_entropy(logits, batch_labels, class_weights, nullptr,
                            dlogits);
      Matrix grad = std::move(dlogits);
      for (std::size_t i = layers_.size(); i-- > 0;) {
        Matrix dinput;
        layers_[i].backward(inputs[i], grad, dinput);
        if (i > 0) {
          Matrix masked;
          Relu::backward(activations[i - 1], dinput, masked);
          grad = std::move(masked);
        }
      }
      optimizer.step(params);
    }
  }
}

std::vector<std::int32_t> MlpClassifier::predict(const Matrix& x) const {
  const Matrix logits = forward(standardize(x), nullptr, nullptr);
  std::vector<std::int32_t> labels(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    labels[r] = logits.at(r, 1) > logits.at(r, 0) ? 1 : 0;
  }
  return labels;
}

}  // namespace gcnt
