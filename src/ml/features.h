#pragma once
// Handcrafted neighborhood features for the classical baselines (Table 2).
//
// Classical models need fixed-length vectors, so — as in Section 5 — we
// breadth-first collect up to N_fi nodes from the fan-in cone and N_fo
// from the fan-out cone of the target node and concatenate their 4-dim
// attributes after the target's own, zero-padding short cones. The paper
// uses 500+500 on million-gate designs; the default here scales to our
// design sizes and is configurable.

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "tensor/matrix.h"

namespace gcnt {

struct ConeFeatureOptions {
  std::size_t fanin_nodes = 50;
  std::size_t fanout_nodes = 50;
};

/// Feature vector length under `options`.
std::size_t cone_feature_dim(const ConeFeatureOptions& options) noexcept;

/// Extracts features for the nodes listed in `rows`. `node_features` is
/// the N x 4 transformed attribute matrix (GraphTensors::features).
/// Returns |rows| x cone_feature_dim(options).
Matrix extract_cone_features(const Netlist& netlist,
                             const Matrix& node_features,
                             const std::vector<std::uint32_t>& rows,
                             const ConeFeatureOptions& options = {});

}  // namespace gcnt
