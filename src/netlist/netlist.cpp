#include "netlist/netlist.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>

namespace gcnt {

NodeId Netlist::add_node(CellType type, std::string name) {
  const NodeId id = static_cast<NodeId>(types_.size());
  if (name.empty()) {
    name = "n" + std::to_string(id);
  }
  types_.push_back(type);
  names_.push_back(std::move(name));
  fanins_.emplace_back();
  fanouts_.emplace_back();
  switch (type) {
    case CellType::kInput:
      pis_.push_back(id);
      break;
    case CellType::kOutput:
      pos_.push_back(id);
      break;
    case CellType::kDff:
      dffs_.push_back(id);
      break;
    case CellType::kObserve:
      ops_.push_back(id);
      break;
    default:
      break;
  }
  return id;
}

void Netlist::connect(NodeId from, NodeId to) {
  fanouts_[from].push_back(to);
  fanins_[to].push_back(from);
  ++edge_count_;
}

bool Netlist::edge_is_combinational(NodeId /*from*/, NodeId to) const noexcept {
  // An edge into a DFF is the D-pin capture: a sequential boundary. Every
  // other edge propagates combinationally in the same cycle.
  return types_[to] != CellType::kDff;
}

std::vector<NodeId> Netlist::topological_order() const {
  const std::size_t n = size();
  std::vector<std::uint32_t> pending(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : fanins_[v]) {
      if (edge_is_combinational(u, v)) ++pending[v];
    }
  }
  std::vector<NodeId> order;
  order.reserve(n);
  std::deque<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (pending[v] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    const NodeId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (NodeId w : fanouts_[v]) {
      if (!edge_is_combinational(v, w)) continue;
      if (--pending[w] == 0) ready.push_back(w);
    }
  }
  if (order.size() != n) {
    throw std::runtime_error("Netlist '" + name_ +
                             "' contains a combinational cycle");
  }
  return order;
}

std::vector<std::uint32_t> Netlist::logic_levels() const {
  const auto order = topological_order();
  std::vector<std::uint32_t> level(size(), 0);
  for (NodeId v : order) {
    std::uint32_t max_in = 0;
    bool any = false;
    for (NodeId u : fanins_[v]) {
      if (!edge_is_combinational(u, v)) continue;
      max_in = std::max(max_in, level[u]);
      any = true;
    }
    // DFF fanin edges are sequential, so a DFF stays at level 0 (it acts as
    // a scan-chain source); everything else is one past its deepest fanin.
    if (types_[v] == CellType::kDff) {
      level[v] = 0;
    } else {
      level[v] = any ? max_in + 1 : 0;
    }
  }
  return level;
}

std::vector<NodeId> Netlist::fanin_cone(NodeId root, std::size_t limit) const {
  std::vector<NodeId> cone;
  if (limit == 0) return cone;
  std::vector<bool> seen(size(), false);
  seen[root] = true;
  std::deque<NodeId> frontier{root};
  while (!frontier.empty() && cone.size() < limit) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    // Sources terminate the traversal: a DFF output or PI has no
    // combinational history.
    if (v != root && is_source(types_[v])) continue;
    for (NodeId u : fanins_[v]) {
      if (seen[u]) continue;
      seen[u] = true;
      cone.push_back(u);
      if (cone.size() >= limit) break;
      frontier.push_back(u);
    }
  }
  return cone;
}

std::vector<NodeId> Netlist::fanout_cone(NodeId root, std::size_t limit) const {
  std::vector<NodeId> cone;
  if (limit == 0) return cone;
  std::vector<bool> seen(size(), false);
  seen[root] = true;
  std::deque<NodeId> frontier{root};
  while (!frontier.empty() && cone.size() < limit) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    // Sinks terminate the traversal: past a DFF/PO/OP the signal is
    // captured, not propagated in this cycle.
    if (v != root && is_sink(types_[v])) continue;
    for (NodeId w : fanouts_[v]) {
      if (seen[w]) continue;
      seen[w] = true;
      cone.push_back(w);
      if (cone.size() >= limit) break;
      frontier.push_back(w);
    }
  }
  return cone;
}

void Netlist::retarget_fanouts(NodeId from, NodeId to, NodeId except) {
  std::vector<NodeId> kept;
  for (NodeId consumer : fanouts_[from]) {
    if (consumer == except) {
      kept.push_back(consumer);
      continue;
    }
    for (NodeId& driver : fanins_[consumer]) {
      if (driver == from) driver = to;
    }
    fanouts_[to].push_back(consumer);
  }
  fanouts_[from] = std::move(kept);
}

Netlist::ControlPoint Netlist::insert_control_point(NodeId target,
                                                    bool drive_to_one) {
  ControlPoint cp;
  cp.control = add_node(CellType::kInput, "cp_" + names_[target]);
  if (drive_to_one) {
    cp.gate = add_node(CellType::kOr, "cp1_" + names_[target]);
    retarget_fanouts(target, cp.gate);
    connect(target, cp.gate);
    connect(cp.control, cp.gate);
  } else {
    cp.inverter = add_node(CellType::kNot, "cpn_" + names_[target]);
    connect(cp.control, cp.inverter);
    cp.gate = add_node(CellType::kAnd, "cp0_" + names_[target]);
    retarget_fanouts(target, cp.gate);
    connect(target, cp.gate);
    connect(cp.inverter, cp.gate);
  }
  return cp;
}

NodeId Netlist::insert_observe_point(NodeId target) {
  const NodeId op =
      add_node(CellType::kObserve, "op_" + names_[target]);
  connect(target, op);
  return op;
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> problems;
  for (NodeId v = 0; v < size(); ++v) {
    const CellType t = types_[v];
    const int arity = static_cast<int>(fanins_[v].size());
    if (arity < min_fanin(t) || arity > max_fanin(t)) {
      problems.push_back("node " + names_[v] + " (" +
                         std::string(cell_type_name(t)) + ") has illegal fanin count " +
                         std::to_string(arity));
    }
    if (is_sink(t) && t != CellType::kDff && !fanouts_[v].empty()) {
      problems.push_back("sink node " + names_[v] + " has fanout");
    }
    for (NodeId u : fanins_[v]) {
      if (u >= size()) {
        problems.push_back("node " + names_[v] + " has out-of-range fanin");
      }
    }
  }
  try {
    (void)topological_order();
  } catch (const std::runtime_error& e) {
    problems.emplace_back(e.what());
  }
  return problems;
}

}  // namespace gcnt
