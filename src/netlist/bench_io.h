#pragma once
// Reader/writer for the ISCAS-89 style ".bench" netlist format.
//
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = NAND(G0, G1)
//   G11 = DFF(G10)
//
// OUTPUT(x) declares that signal x is observed; the reader materializes it
// as a dedicated OUTPUT node with one fanin (our graph convention), and the
// writer folds it back. OBSERVE nodes round-trip the same way via
// OBSERVE(x) lines, a small extension for DFT-modified netlists.

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace gcnt {

/// Parses a .bench document. Throws gcnt::Error{kCorrupt} (a
/// std::runtime_error) with a line number on malformed input (unknown
/// gate, undefined signal, redefinition).
Netlist read_bench(std::istream& in, std::string design_name = "bench");

/// Convenience overload over a string payload.
Netlist read_bench_string(const std::string& text,
                          std::string design_name = "bench");

/// Serializes in .bench syntax; reading the result back yields an
/// isomorphic netlist (same structure; OUTPUT/OBSERVE node names are not
/// preserved, signal names are).
void write_bench(const Netlist& netlist, std::ostream& out);

std::string write_bench_string(const Netlist& netlist);

}  // namespace gcnt
