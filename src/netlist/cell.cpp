#include "netlist/cell.h"

#include <array>
#include <cctype>
#include <string>

namespace gcnt {

namespace {
constexpr std::array<std::string_view, kCellTypeCount> kNames = {
    "INPUT", "OUTPUT", "BUF", "NOT",  "AND", "NAND",
    "OR",    "NOR",    "XOR", "XNOR", "DFF", "OBSERVE",
};
}  // namespace

std::string_view cell_type_name(CellType type) noexcept {
  return kNames[static_cast<std::size_t>(type)];
}

bool parse_cell_type(std::string_view text, CellType& out) noexcept {
  std::string upper(text);
  for (char& c : upper) c = static_cast<char>(std::toupper(c));
  // BUFF is a common alias in ISCAS .bench files.
  if (upper == "BUFF") upper = "BUF";
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (upper == kNames[i]) {
      out = static_cast<CellType>(i);
      return true;
    }
  }
  return false;
}

}  // namespace gcnt
