#pragma once
// Reader/writer for flat structural Verilog — the interchange format most
// gate-level EDA flows emit. Supported subset:
//
//   module top (a, b, y);
//     input a, b;        // also: input a; input b;
//     output y;
//     wire w1, w2;
//     nand g1 (w1, a, b);   // primitive gates, output port first
//     not  g2 (w2, w1);
//     dff  g3 (q, w2);      // scan flip-flop (q <= D each cycle)
//     assign y = w2;        // alias, materialized as a BUF
//   endmodule
//
// Primitives: and/or/nand/nor/xor/xnor/not/buf (any arity where legal)
// plus dff. One module per file; comments (// and /* */) are ignored.

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace gcnt {

/// Parses the subset above. Throws gcnt::Error{kCorrupt} (a
/// std::runtime_error) with a line number on anything else (undeclared
/// nets, redefinitions, unknown primitives).
Netlist read_verilog(std::istream& in, std::string fallback_name = "top");

Netlist read_verilog_string(const std::string& text,
                            std::string fallback_name = "top");

/// Serializes a netlist as flat structural Verilog; OBSERVE points become
/// module outputs (they are scan-captured in hardware).
void write_verilog(const Netlist& netlist, std::ostream& out);

std::string write_verilog_string(const Netlist& netlist);

}  // namespace gcnt
