#include "netlist/bench_io.h"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace gcnt {

namespace {

struct PendingGate {
  std::string lhs;
  CellType type = CellType::kBuf;
  std::vector<std::string> operands;
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& message) {
  throw Error(ErrorKind::kCorrupt, "bench parse error at line " +
                                       std::to_string(line) + ": " + message);
}

std::string strip(const std::string& text) {
  std::size_t begin = 0, end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

/// Splits "FUNC(a, b, c)" into FUNC and {a,b,c}; returns false on mismatch.
bool split_call(const std::string& text, std::string& func,
                std::vector<std::string>& args) {
  const std::size_t open = text.find('(');
  const std::size_t close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close < open)
    return false;
  func = strip(text.substr(0, open));
  args.clear();
  std::string inner = text.substr(open + 1, close - open - 1);
  std::size_t start = 0;
  while (start <= inner.size()) {
    const std::size_t comma = inner.find(',', start);
    const std::string piece =
        strip(comma == std::string::npos ? inner.substr(start)
                                         : inner.substr(start, comma - start));
    if (!piece.empty()) args.push_back(piece);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !func.empty();
}

}  // namespace

Netlist read_bench(std::istream& in, std::string design_name) {
  Netlist netlist(std::move(design_name));
  std::unordered_map<std::string, NodeId> signals;
  std::vector<PendingGate> gates;
  std::vector<std::pair<std::string, int>> outputs;   // signal, line
  std::vector<std::pair<std::string, int>> observes;  // signal, line

  std::string raw;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = strip(raw);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      std::string func;
      std::vector<std::string> args;
      if (!split_call(line, func, args) || args.size() != 1) {
        fail(line_number, "expected INPUT(x) / OUTPUT(x) / OBSERVE(x)");
      }
      for (char& c : func) c = static_cast<char>(std::toupper(c));
      if (func == "INPUT") {
        if (signals.count(args[0])) fail(line_number, "redefinition of " + args[0]);
        signals.emplace(args[0],
                        netlist.add_node(CellType::kInput, args[0]));
      } else if (func == "OUTPUT") {
        outputs.emplace_back(args[0], line_number);
      } else if (func == "OBSERVE") {
        observes.emplace_back(args[0], line_number);
      } else {
        fail(line_number, "unknown directive " + func);
      }
      continue;
    }

    PendingGate gate;
    gate.lhs = strip(line.substr(0, eq));
    gate.line = line_number;
    std::string func;
    if (!split_call(strip(line.substr(eq + 1)), func, gate.operands)) {
      fail(line_number, "expected <name> = GATE(args)");
    }
    if (!parse_cell_type(func, gate.type)) {
      fail(line_number, "unknown gate type " + func);
    }
    if (!is_logic(gate.type) && gate.type != CellType::kDff) {
      fail(line_number, "gate type " + func + " not allowed on assignment");
    }
    if (gate.lhs.empty()) fail(line_number, "missing signal name");
    if (signals.count(gate.lhs)) fail(line_number, "redefinition of " + gate.lhs);
    signals.emplace(gate.lhs, netlist.add_node(gate.type, gate.lhs));
    gates.push_back(std::move(gate));
  }

  const auto resolve = [&](const std::string& name, int line) -> NodeId {
    const auto it = signals.find(name);
    if (it == signals.end()) fail(line, "undefined signal " + name);
    return it->second;
  };

  for (const auto& gate : gates) {
    const NodeId lhs = signals.at(gate.lhs);
    const int arity = static_cast<int>(gate.operands.size());
    if (arity < min_fanin(gate.type) || arity > max_fanin(gate.type)) {
      fail(gate.line, "illegal operand count for " +
                          std::string(cell_type_name(gate.type)));
    }
    for (const auto& operand : gate.operands) {
      netlist.connect(resolve(operand, gate.line), lhs);
    }
  }
  for (const auto& [signal, line] : outputs) {
    const NodeId po = netlist.add_node(CellType::kOutput, "out_" + signal);
    netlist.connect(resolve(signal, line), po);
  }
  for (const auto& [signal, line] : observes) {
    const NodeId op = netlist.add_node(CellType::kObserve, "op_" + signal);
    netlist.connect(resolve(signal, line), op);
  }
  return netlist;
}

Netlist read_bench_string(const std::string& text, std::string design_name) {
  std::istringstream in(text);
  return read_bench(in, std::move(design_name));
}

void write_bench(const Netlist& netlist, std::ostream& out) {
  out << "# design " << netlist.name() << "\n";
  const std::size_t n = netlist.size();
  for (NodeId v = 0; v < n; ++v) {
    const CellType t = netlist.type(v);
    if (t == CellType::kInput) {
      out << "INPUT(" << netlist.node_name(v) << ")\n";
    } else if (t == CellType::kOutput || t == CellType::kObserve) {
      out << (t == CellType::kOutput ? "OUTPUT(" : "OBSERVE(")
          << netlist.node_name(netlist.fanins(v).front()) << ")\n";
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    const CellType t = netlist.type(v);
    if (!is_logic(t) && t != CellType::kDff) continue;
    out << netlist.node_name(v) << " = " << cell_type_name(t) << "(";
    const auto& fanins = netlist.fanins(v);
    for (std::size_t i = 0; i < fanins.size(); ++i) {
      if (i) out << ", ";
      out << netlist.node_name(fanins[i]);
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& netlist) {
  std::ostringstream out;
  write_bench(netlist, out);
  return out.str();
}

}  // namespace gcnt
