#pragma once
// Cell library for gate-level netlists.
//
// The set matches what the paper's netlists need: standard combinational
// gates, sequential elements (DFF, treated as scan cells), and the two DFT
// artifacts inserted by the flows (observation points are modeled as a
// dedicated sink cell type; control points as an extra gate + input).

#include <cstdint>
#include <string_view>

namespace gcnt {

enum class CellType : std::uint8_t {
  kInput,    // primary input; no fanins
  kOutput,   // primary output; exactly one fanin
  kBuf,      // buffer; one fanin
  kNot,      // inverter; one fanin
  kAnd,      // >= 2 fanins
  kNand,     // >= 2 fanins
  kOr,       // >= 2 fanins
  kNor,      // >= 2 fanins
  kXor,      // >= 2 fanins
  kXnor,     // >= 2 fanins
  kDff,      // scan flip-flop; one fanin (D); output fully controllable
  kObserve,  // DFT observation point; one fanin, behaves as a scan sink
};

constexpr int kCellTypeCount = 12;

/// Upper-case mnemonic used by the .bench reader/writer.
std::string_view cell_type_name(CellType type) noexcept;

/// Parses a mnemonic (case-insensitive); returns false if unknown.
bool parse_cell_type(std::string_view text, CellType& out) noexcept;

/// True for cells that source a value without combinational fanin
/// (primary inputs and scan flip-flop outputs).
constexpr bool is_source(CellType type) noexcept {
  return type == CellType::kInput || type == CellType::kDff;
}

/// True for cells whose input is directly observed by the tester
/// (primary outputs, scan flip-flop D pins, observation points).
constexpr bool is_sink(CellType type) noexcept {
  return type == CellType::kOutput || type == CellType::kDff ||
         type == CellType::kObserve;
}

/// True for purely combinational logic gates (excludes IO/DFF/OP).
constexpr bool is_logic(CellType type) noexcept {
  switch (type) {
    case CellType::kBuf:
    case CellType::kNot:
    case CellType::kAnd:
    case CellType::kNand:
    case CellType::kOr:
    case CellType::kNor:
    case CellType::kXor:
    case CellType::kXnor:
      return true;
    default:
      return false;
  }
}

/// Minimum legal fanin count for a cell type.
constexpr int min_fanin(CellType type) noexcept {
  switch (type) {
    case CellType::kInput:
      return 0;
    case CellType::kOutput:
    case CellType::kBuf:
    case CellType::kNot:
    case CellType::kDff:
    case CellType::kObserve:
      return 1;
    default:
      return 2;
  }
}

/// Maximum legal fanin count (kNoFaninLimit when unbounded).
constexpr int kNoFaninLimit = 1 << 20;
constexpr int max_fanin(CellType type) noexcept {
  switch (type) {
    case CellType::kInput:
      return 0;
    case CellType::kOutput:
    case CellType::kBuf:
    case CellType::kNot:
    case CellType::kDff:
    case CellType::kObserve:
      return 1;
    default:
      return kNoFaninLimit;
  }
}

}  // namespace gcnt
