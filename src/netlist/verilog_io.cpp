#include "netlist/verilog_io.h"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.h"

namespace gcnt {

namespace {

struct Token {
  std::string text;
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& message) {
  throw Error(ErrorKind::kCorrupt,
              "verilog parse error at line " + std::to_string(line) + ": " +
                  message);
}

/// Lexer: identifiers/keywords and single-char punctuation; comments and
/// whitespace removed.
std::vector<Token> tokenize(std::istream& in) {
  std::vector<Token> tokens;
  std::string text;
  int line = 1;
  bool in_line_comment = false;
  bool in_block_comment = false;
  char c = 0, prev = 0;

  const auto flush = [&] {
    if (!text.empty()) {
      tokens.push_back(Token{text, line});
      text.clear();
    }
  };

  while (in.get(c)) {
    if (c == '\n') {
      in_line_comment = false;
      flush();
      ++line;
      prev = c;
      continue;
    }
    if (in_line_comment) {
      prev = c;
      continue;
    }
    if (in_block_comment) {
      if (prev == '*' && c == '/') in_block_comment = false;
      prev = c;
      continue;
    }
    if (c == '/' && in.peek() == '/') {
      flush();
      in_line_comment = true;
      prev = c;
      continue;
    }
    if (c == '/' && in.peek() == '*') {
      flush();
      in_block_comment = true;
      in.get(prev);  // consume '*' so "/*/" doesn't close immediately
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (c == '(' || c == ')' || c == ',' || c == ';' || c == '=') {
      flush();
      tokens.push_back(Token{std::string(1, c), line});
    } else {
      text += c;
    }
    prev = c;
  }
  flush();
  return tokens;
}

bool primitive_type(const std::string& word, CellType& out) {
  if (word == "and") out = CellType::kAnd;
  else if (word == "or") out = CellType::kOr;
  else if (word == "nand") out = CellType::kNand;
  else if (word == "nor") out = CellType::kNor;
  else if (word == "xor") out = CellType::kXor;
  else if (word == "xnor") out = CellType::kXnor;
  else if (word == "not") out = CellType::kNot;
  else if (word == "buf") out = CellType::kBuf;
  else if (word == "dff") out = CellType::kDff;
  else return false;
  return true;
}

struct Instance {
  CellType type;
  std::vector<std::string> ports;  // output first
  int line;
};

}  // namespace

Netlist read_verilog(std::istream& in, std::string fallback_name) {
  const auto tokens = tokenize(in);
  std::size_t at = 0;

  const auto peek = [&]() -> const Token& {
    static const Token eof{"<eof>", 0};
    return at < tokens.size() ? tokens[at] : eof;
  };
  const auto next = [&]() -> const Token& {
    if (at >= tokens.size()) fail(tokens.empty() ? 0 : tokens.back().line,
                                  "unexpected end of file");
    return tokens[at++];
  };
  const auto expect = [&](const std::string& want) {
    const Token& token = next();
    if (token.text != want) {
      fail(token.line, "expected '" + want + "', got '" + token.text + "'");
    }
  };
  const auto identifier_list = [&](std::vector<Token>& out) {
    for (;;) {
      out.push_back(next());
      if (peek().text == ",") {
        ++at;
        continue;
      }
      break;
    }
  };

  // --- module header.
  expect("module");
  std::string module_name = next().text;
  if (module_name.empty()) module_name = std::move(fallback_name);
  if (peek().text == "(") {
    ++at;
    if (peek().text != ")") {
      std::vector<Token> ignored;
      identifier_list(ignored);  // port order is re-derived from directions
    }
    expect(")");
  }
  expect(";");

  // --- body.
  std::vector<Token> inputs, outputs, wires;
  std::vector<Instance> instances;
  std::vector<std::pair<Token, Token>> assigns;  // lhs = rhs

  for (;;) {
    const Token token = next();
    if (token.text == "endmodule") break;
    if (token.text == "input") {
      identifier_list(inputs);
      expect(";");
    } else if (token.text == "output") {
      identifier_list(outputs);
      expect(";");
    } else if (token.text == "wire") {
      identifier_list(wires);
      expect(";");
    } else if (token.text == "assign") {
      const Token lhs = next();
      expect("=");
      const Token rhs = next();
      expect(";");
      assigns.emplace_back(lhs, rhs);
    } else {
      CellType type;
      if (!primitive_type(token.text, type)) {
        fail(token.line, "unknown statement or primitive '" + token.text + "'");
      }
      Instance instance;
      instance.type = type;
      instance.line = token.line;
      Token maybe_name = next();
      if (maybe_name.text != "(") {
        expect("(");  // consumed the instance name
      }
      std::vector<Token> ports;
      identifier_list(ports);
      expect(")");
      expect(";");
      for (const Token& port : ports) instance.ports.push_back(port.text);
      if (instance.ports.size() < 2) {
        fail(instance.line, "primitive needs an output and at least one input");
      }
      instances.push_back(std::move(instance));
    }
  }

  // --- build the graph. Inputs become kInput nodes; every instance output
  // becomes a node of the primitive's type; outputs get PO sink nodes.
  Netlist netlist(module_name);
  std::unordered_map<std::string, NodeId> signal;
  std::unordered_set<std::string> declared;
  for (const Token& t : wires) declared.insert(t.text);
  for (const Token& t : outputs) declared.insert(t.text);

  for (const Token& t : inputs) {
    if (signal.count(t.text)) fail(t.line, "redefinition of " + t.text);
    signal.emplace(t.text, netlist.add_node(CellType::kInput, t.text));
  }
  for (const Instance& instance : instances) {
    const std::string& out_signal = instance.ports.front();
    if (!declared.count(out_signal) && !signal.count(out_signal)) {
      fail(instance.line, "undeclared net " + out_signal);
    }
    if (signal.count(out_signal)) {
      fail(instance.line, "multiple drivers for " + out_signal);
    }
    signal.emplace(out_signal, netlist.add_node(instance.type, out_signal));
  }
  for (const auto& [lhs, rhs] : assigns) {
    if (!declared.count(lhs.text) && !signal.count(lhs.text)) {
      fail(lhs.line, "undeclared net " + lhs.text);
    }
    if (signal.count(lhs.text)) fail(lhs.line, "multiple drivers for " + lhs.text);
    signal.emplace(lhs.text, netlist.add_node(CellType::kBuf, lhs.text));
  }

  const auto resolve = [&](const std::string& name, int line) -> NodeId {
    const auto it = signal.find(name);
    if (it == signal.end()) fail(line, "undriven net " + name);
    return it->second;
  };

  for (const Instance& instance : instances) {
    const NodeId gate = signal.at(instance.ports.front());
    const int arity = static_cast<int>(instance.ports.size()) - 1;
    if (arity < min_fanin(instance.type) || arity > max_fanin(instance.type)) {
      fail(instance.line, "illegal port count for primitive");
    }
    for (std::size_t p = 1; p < instance.ports.size(); ++p) {
      netlist.connect(resolve(instance.ports[p], instance.line), gate);
    }
  }
  for (const auto& [lhs, rhs] : assigns) {
    netlist.connect(resolve(rhs.text, rhs.line), signal.at(lhs.text));
  }
  for (const Token& t : outputs) {
    const NodeId po = netlist.add_node(CellType::kOutput, "out_" + t.text);
    netlist.connect(resolve(t.text, t.line), po);
  }
  return netlist;
}

Netlist read_verilog_string(const std::string& text,
                            std::string fallback_name) {
  std::istringstream in(text);
  return read_verilog(in, std::move(fallback_name));
}

void write_verilog(const Netlist& netlist, std::ostream& out) {
  const std::string module_name =
      netlist.name().empty() ? "top" : netlist.name();
  out << "module " << module_name << " (";
  bool first = true;
  const auto emit_port = [&](const std::string& name) {
    if (!first) out << ", ";
    out << name;
    first = false;
  };
  for (NodeId v : netlist.primary_inputs()) emit_port(netlist.node_name(v));
  for (NodeId v : netlist.primary_outputs()) emit_port(netlist.node_name(v));
  for (NodeId v : netlist.observe_points()) emit_port(netlist.node_name(v));
  out << ");\n";

  for (NodeId v : netlist.primary_inputs()) {
    out << "  input " << netlist.node_name(v) << ";\n";
  }
  for (NodeId v : netlist.primary_outputs()) {
    out << "  output " << netlist.node_name(v) << ";\n";
  }
  for (NodeId v : netlist.observe_points()) {
    out << "  output " << netlist.node_name(v) << ";  // observation point\n";
  }
  for (NodeId v = 0; v < netlist.size(); ++v) {
    if (is_logic(netlist.type(v)) || netlist.type(v) == CellType::kDff) {
      out << "  wire " << netlist.node_name(v) << ";\n";
    }
  }

  std::size_t instance_index = 0;
  for (NodeId v = 0; v < netlist.size(); ++v) {
    const CellType type = netlist.type(v);
    if (is_logic(type) || type == CellType::kDff) {
      std::string mnemonic(cell_type_name(type));
      for (char& c : mnemonic) c = static_cast<char>(std::tolower(c));
      out << "  " << mnemonic << " g" << instance_index++ << " ("
          << netlist.node_name(v);
      for (NodeId u : netlist.fanins(v)) out << ", " << netlist.node_name(u);
      out << ");\n";
    } else if (type == CellType::kOutput || type == CellType::kObserve) {
      out << "  assign " << netlist.node_name(v) << " = "
          << netlist.node_name(netlist.fanins(v).front()) << ";\n";
    }
  }
  out << "endmodule\n";
}

std::string write_verilog_string(const Netlist& netlist) {
  std::ostringstream out;
  write_verilog(netlist, out);
  return out.str();
}

}  // namespace gcnt
