#pragma once
// Gate-level netlist represented as a directed graph.
//
// Nodes are cells; a directed edge u -> v means the output of u drives an
// input of v. This is exactly the graph the paper feeds to the GCN: source
// nodes are primary inputs (and scan-cell outputs), sink nodes are primary
// outputs (and scan-cell / observation-point inputs).
//
// NodeId values are dense indices, stable across appends; nodes are never
// removed (the DFT flows only ever add observation points).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/cell.h"

namespace gcnt {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Number of nodes (cells) in the graph.
  std::size_t size() const noexcept { return types_.size(); }
  /// Number of directed edges (wires).
  std::size_t edge_count() const noexcept { return edge_count_; }

  /// Adds a cell and returns its id. Names must be unique only if the
  /// netlist will be written out; an empty name is auto-generated.
  NodeId add_node(CellType type, std::string name = {});

  /// Adds the directed edge `from -> to` (output of `from` drives an input
  /// of `to`). Duplicate edges are allowed (multi-input from same driver).
  void connect(NodeId from, NodeId to);

  CellType type(NodeId v) const noexcept { return types_[v]; }
  const std::string& node_name(NodeId v) const noexcept { return names_[v]; }
  const std::vector<NodeId>& fanins(NodeId v) const noexcept {
    return fanins_[v];
  }
  const std::vector<NodeId>& fanouts(NodeId v) const noexcept {
    return fanouts_[v];
  }

  /// All primary inputs, in insertion order.
  const std::vector<NodeId>& primary_inputs() const noexcept { return pis_; }
  /// All primary outputs, in insertion order.
  const std::vector<NodeId>& primary_outputs() const noexcept { return pos_; }
  /// All scan flip-flops, in insertion order.
  const std::vector<NodeId>& flip_flops() const noexcept { return dffs_; }
  /// All observation points, in insertion order.
  const std::vector<NodeId>& observe_points() const noexcept { return ops_; }

  /// Nodes in a topological order of the combinational graph (sources
  /// first). DFF outputs count as sources; DFF inputs as sinks, so the
  /// graph is acyclic under the full-scan assumption. Throws
  /// std::runtime_error on a combinational cycle.
  std::vector<NodeId> topological_order() const;

  /// Logic level per node: sources are level 0; every other node is
  /// 1 + max(level of combinational fanins). This is the LL attribute.
  std::vector<std::uint32_t> logic_levels() const;

  /// Transitive fanin cone of `root` (excluding `root`), breadth-first,
  /// stopping at sources; at most `limit` nodes are returned.
  std::vector<NodeId> fanin_cone(NodeId root,
                                 std::size_t limit = static_cast<std::size_t>(-1)) const;

  /// Transitive fanout cone of `root` (excluding `root`), breadth-first,
  /// stopping at sinks; at most `limit` nodes are returned.
  std::vector<NodeId> fanout_cone(NodeId root,
                                  std::size_t limit = static_cast<std::size_t>(-1)) const;

  /// Inserts an observation point on the output of `target`: adds an
  /// OBSERVE node and the edge target -> op. Returns the new node's id.
  NodeId insert_observe_point(NodeId target);

  /// Result of insert_control_point().
  struct ControlPoint {
    NodeId control;  ///< the new tester-driven INPUT
    NodeId gate;     ///< OR (control-1) or AND-with-inverter (control-0)
    NodeId inverter = kInvalidNode;  ///< only for control-0 points
  };

  /// Inserts a control point on the output of `target` (Fig. 2 of the
  /// paper): a new primary input `cp` and a gate g = OR(target, cp) for a
  /// control-1 point, or g = AND(target, NOT(cp)) for a control-0 point;
  /// every existing consumer of `target` is re-driven by g. With cp at its
  /// inactive value (0) the circuit behaves exactly as before.
  ControlPoint insert_control_point(NodeId target, bool drive_to_one);

  /// Re-routes every fanout edge of `from` (except edges into `except`)
  /// to leave `to` instead: consumers' fanin slots are rewritten and both
  /// fanout lists updated. Edge count is preserved.
  void retarget_fanouts(NodeId from, NodeId to, NodeId except = kInvalidNode);

  /// Structural validation: fanin arities, source/sink conventions,
  /// acyclicity. Returns a list of human-readable problems (empty = valid).
  std::vector<std::string> validate() const;

 private:
  /// True if edges from `v` carry combinational data (DFF outputs do, but
  /// the DFF's *input* edge is a sequential boundary).
  bool edge_is_combinational(NodeId from, NodeId to) const noexcept;

  std::string name_;
  std::vector<CellType> types_;
  std::vector<std::string> names_;
  std::vector<std::vector<NodeId>> fanins_;
  std::vector<std::vector<NodeId>> fanouts_;
  std::vector<NodeId> pis_, pos_, dffs_, ops_;
  std::size_t edge_count_ = 0;
};

}  // namespace gcnt
