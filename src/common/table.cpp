#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gcnt {

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << " |\n";
  };

  os << "== " << title_ << " ==\n";
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string Table::percent(double fraction, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << (fraction * 100.0)
      << "%";
  return oss.str();
}

}  // namespace gcnt
