#pragma once
// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit Rng (or seed)
// so that experiments are reproducible run-to-run and machine-to-machine.
// The generator is xoshiro256**, seeded via splitmix64.

#include <array>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace gcnt {

/// Stateless mixing step used for seeding; also useful for hashing ids.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Cheap to copy; copies evolve independently.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation.
    const std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[below(i)]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    if (k >= n) return all;
    // Partial Fisher-Yates: the first k slots become the sample.
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + below(n - i);
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }

  /// Derive an independent child generator (for per-thread streams).
  Rng split() noexcept { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

  /// Raw generator state, for checkpointing. set_state() discards any
  /// cached normal() spare, so restore right after construction (or
  /// accept that one buffered normal draw is not replayed).
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
    has_spare_ = false;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace gcnt
