#pragma once
// GCNT_DEBUG_ASSERT(cond, msg): bounds/invariant checks on the hot
// accessors (Matrix::at/row, CSR index walks) that compile to nothing in
// Release builds. Enabled when GCNT_DEBUG_ASSERTS is defined — the top
// CMakeLists defines it for Debug configurations — so the Release hot
// paths stay branch-free while Debug (and the sanitizer CI legs, which
// build Debug) catches out-of-range indices at the accessor instead of
// as a downstream heap corruption.
//
// Failure aborts (it does not throw): these guard noexcept accessors and
// an out-of-range index is a bug, not a recoverable condition. The
// message goes to stderr so death tests can match on it.

#include <cstdio>
#include <cstdlib>

namespace gcnt::detail {

[[noreturn]] inline void debug_assert_fail(const char* condition,
                                           const char* message,
                                           const char* file, int line) {
  std::fprintf(stderr, "GCNT_DEBUG_ASSERT failed: %s (%s) at %s:%d\n",
               message, condition, file, line);
  std::abort();
}

}  // namespace gcnt::detail

#if defined(GCNT_DEBUG_ASSERTS)
#define GCNT_DEBUG_ASSERT(cond, msg)                                        \
  ((cond) ? (void)0                                                         \
          : ::gcnt::detail::debug_assert_fail(#cond, msg, __FILE__, __LINE__))
#else
#define GCNT_DEBUG_ASSERT(cond, msg) ((void)0)
#endif
