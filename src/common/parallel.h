#pragma once
// Process-wide parallel-execution layer for the compute kernels.
//
// One lazily-created ThreadPool is shared by every hot kernel (CSR SpMM,
// dense GEMM, fault-simulation partitions, per-node inference). Work is
// split with a deterministic static partition — contiguous index blocks,
// one per worker — so for a fixed thread count the schedule (and therefore
// every result) is reproducible. The kernels routed through this layer
// additionally write disjoint outputs with a fixed per-index reduction
// order, making their results bitwise identical across *different* thread
// counts as well (see docs/API.md "Threading model").
//
// Thread-count resolution, highest priority first:
//   1. set_kernel_threads(n)    — programmatic override (tests, sweeps)
//   2. GCNT_THREADS=n           — environment, read once per process
//   3. std::thread::hardware_concurrency()
//
// Nested use is safe: a kernel invoked from inside a kernel-pool task runs
// serially inline instead of re-entering the pool.

#include <cstddef>
#include <functional>

#include "common/thread_pool.h"

namespace gcnt {

/// Resolved worker count the kernel pool uses (always >= 1).
std::size_t kernel_threads();

/// Overrides the kernel thread count (0 reverts to GCNT_THREADS/hardware).
/// Recreates the pool on next use; must not race with running kernels.
void set_kernel_threads(std::size_t n);

/// The shared pool, created on first use with kernel_threads() workers.
ThreadPool& kernel_pool();

/// A deterministic static partition of [0, n) into `count` contiguous
/// blocks of ceil(n / count) indices (the last block may be short).
struct BlockPlan {
  std::size_t n = 0;
  std::size_t count = 1;
  std::size_t per_block = 0;

  std::size_t begin(std::size_t block) const noexcept {
    return block * per_block;
  }
  std::size_t end(std::size_t block) const noexcept {
    const std::size_t e = begin(block) + per_block;
    return e < n ? e : n;
  }
};

/// Plans one block per kernel thread; collapses to a single serial block
/// when n < min_parallel, a single thread is configured, or the caller is
/// already inside a kernel-pool task.
BlockPlan plan_blocks(std::size_t n, std::size_t min_parallel);

/// Executes fn(block, begin, end) for every block of `plan` across the
/// kernel pool (inline when plan.count == 1). Rethrows the first exception.
void run_blocks(
    const BlockPlan& plan,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// Convenience: plan_blocks + run_blocks, ignoring the block index.
void parallel_blocks(std::size_t n, std::size_t min_parallel,
                     const std::function<void(std::size_t, std::size_t)>& fn);

/// Copies kernel-pool utilization into the stats registry: a
/// "pool.workers" gauge plus one "pool.worker<i>.busy_ns" gauge per
/// worker. No-op when stats are disabled or the pool was never created.
void publish_kernel_pool_stats();

}  // namespace gcnt
