#pragma once
// Deterministic fault injection for exercising recovery paths.
//
// Probes sit at I/O and allocation boundaries (artifact writes/reads,
// checkpoint loads, the trainer's epoch boundary) and are disarmed by
// default: each probe is one relaxed atomic load + branch, the same
// discipline as the stats layer. Arm them with the GCNT_FAULT_INJECT
// environment variable or set_fault_spec(); every probe is counted and
// seeded, so a failing run replays exactly.
//
// Spec syntax (semicolon-separated clauses, comma-separated params):
//
//   GCNT_FAULT_INJECT="fail-write:nth=3;short-write:nth=1,bytes=40;
//                      bitflip-read:nth=2,seed=7;alloc-fail:nth=1"
//
//   fail-write:nth=N            Nth write probe throws Error{kIo} before
//                               the artifact is renamed into place (the
//                               target keeps its previous contents).
//   short-write:nth=N[,bytes=B] Nth write probe truncates the payload to
//                               B bytes (default half) and lets the
//                               rename proceed — a torn artifact the
//                               loader must reject by checksum.
//   bitflip-read:nth=N[,seed=S] Nth read probe flips one seeded-
//                               deterministic bit in the payload before
//                               checksum verification.
//   alloc-fail:nth=N            Nth allocation probe throws
//                               Error{kResource}.
//
// Serve-path chaos clauses (probes wired into the `gcnt serve` I/O and
// dispatch paths; `every=K` repeats the fault at nth, nth+K, nth+2K, ...):
//
//   serve-torn-read:nth=N[,every=K]   Nth decoded request frame is
//                                     treated as torn: typed corrupt
//                                     reply, connection dropped.
//   serve-short-write:nth=N[,every=K] Nth reply write truncates the
//                                     frame mid-payload and drops the
//                                     connection.
//   serve-delay:nth=N[,every=K,ms=M]  Nth dispatched request stalls its
//                                     worker M ms (default 25) before
//                                     handling — feeds the watchdog,
//                                     deadline, and brownout paths.
//   serve-alloc:nth=N[,every=K]       Nth serve decode probe throws
//                                     Error{kResource} (alloc-fail at
//                                     the request-decode boundary).
//
// `nth` is 1-based and counts probes of that site process-wide; 0 (or an
// absent clause) leaves the site disarmed. Fired and probed events are
// visible as `faultinject.*` stats counters when stats are enabled.

#include <cstddef>
#include <cstdint>
#include <string>

namespace gcnt {

struct FaultSpec {
  std::uint64_t fail_write_nth = 0;
  std::uint64_t short_write_nth = 0;
  std::uint64_t short_write_bytes = 0;  ///< 0 = half of the payload
  std::uint64_t bitflip_read_nth = 0;
  std::uint64_t bitflip_seed = 1;
  std::uint64_t alloc_fail_nth = 0;

  // Serve-path chaos clauses; `*_every` repeats the fault past `nth`.
  std::uint64_t serve_torn_read_nth = 0;
  std::uint64_t serve_torn_read_every = 0;
  std::uint64_t serve_short_write_nth = 0;
  std::uint64_t serve_short_write_every = 0;
  std::uint64_t serve_delay_nth = 0;
  std::uint64_t serve_delay_every = 0;
  std::uint64_t serve_delay_ms = 25;
  std::uint64_t serve_alloc_nth = 0;
  std::uint64_t serve_alloc_every = 0;

  bool armed() const noexcept {
    return fail_write_nth || short_write_nth || bitflip_read_nth ||
           alloc_fail_nth || serve_torn_read_nth || serve_short_write_nth ||
           serve_delay_nth || serve_alloc_nth;
  }
};

/// Parses the GCNT_FAULT_INJECT syntax above. Throws Error{kUsage} on an
/// unknown clause or parameter.
FaultSpec parse_fault_spec(const std::string& text);

/// Arms `spec` process-wide and resets all probe counters. Overrides the
/// environment (which is read once, at the first probe).
void set_fault_spec(const FaultSpec& spec);

/// Disarms every probe and resets counters.
void clear_fault_injection();

/// True when any probe is armed.
bool fault_injection_enabled() noexcept;

// ---- Probes (called by the instrumented boundaries) -----------------------

/// Write-boundary probe. Throws Error{kIo} when the fail-write clause
/// fires on this call; otherwise returns the number of payload bytes that
/// should actually be written: `intended`, or a truncation when the
/// short-write clause fires.
std::size_t fault_write_probe(std::size_t intended_bytes);

/// Read-boundary probe: may flip one deterministic bit of [data, data+len).
void fault_read_probe(void* data, std::size_t len);

/// Allocation/capacity probe. Throws Error{kResource} when the alloc-fail
/// clause fires; `what` names the requesting site in the error message.
void fault_alloc_probe(const char* what);

// ---- Serve-path probes (chaos harness) ------------------------------------

/// Request-read probe: true when the serve-torn-read clause fires — the
/// server must treat the just-decoded frame as torn (typed corrupt
/// reply, drop the connection).
bool fault_serve_read_probe();

/// Reply-write probe: true when the serve-short-write clause fires — the
/// server must truncate this reply mid-frame and drop the connection.
bool fault_serve_write_probe();

/// Worker-dispatch probe: milliseconds this request's worker must stall
/// before handling (0 = no fault).
std::uint64_t fault_serve_delay_probe();

/// Request-decode allocation probe. Throws Error{kResource} when the
/// serve-alloc clause fires; `what` names the opcode being decoded.
void fault_serve_alloc_probe(const char* what);

}  // namespace gcnt
