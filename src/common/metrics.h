#pragma once
// Binary-classification metrics (accuracy, precision, recall, F1).
//
// F1 is the headline metric of the paper's imbalanced experiments (Fig. 9);
// accuracy is used on the balanced sets (Table 2, Fig. 8).

#include <cstdint>
#include <vector>

namespace gcnt {

struct ConfusionMatrix {
  std::size_t true_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;

  std::size_t total() const noexcept {
    return true_positive + true_negative + false_positive + false_negative;
  }
  /// Degenerate-matrix convention: every metric below returns 0.0 (never
  /// NaN) when its denominator is zero — empty matrix, no predicted
  /// positives (precision), no actual positives (recall), or both (f1).
  double accuracy() const noexcept;
  double precision() const noexcept;
  double recall() const noexcept;
  double f1() const noexcept;
};

/// Tallies predictions (class index) against labels over `rows`
/// (nullptr = all rows). Positive class is 1.
ConfusionMatrix evaluate_binary(const std::vector<std::int32_t>& predictions,
                                const std::vector<std::int32_t>& labels,
                                const std::vector<std::uint32_t>* rows = nullptr);

}  // namespace gcnt
