#include "common/stats.h"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

namespace gcnt {

namespace stats_detail {

std::atomic<bool> enabled{false};

namespace {
/// Applies GCNT_STATS before main() so library users need no code change.
struct EnvInit {
  EnvInit() {
    const char* raw = std::getenv("GCNT_STATS");
    if (raw != nullptr && *raw != '\0' && *raw != '0') {
      enabled.store(true, std::memory_order_relaxed);
    }
  }
} env_init;
}  // namespace

}  // namespace stats_detail

void set_stats_enabled(bool on) noexcept {
  stats_detail::enabled.store(on, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t value) noexcept {
  if (!stats_enabled()) return;
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t raw = min_.load(std::memory_order_relaxed);
  return raw == ~std::uint64_t{0} ? 0 : raw;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// std::map keeps names sorted, so snapshots/export are deterministic, and
// node-based storage keeps returned references stable across inserts.
struct StatsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

StatsRegistry& StatsRegistry::instance() {
  // Leaked: stats may be touched from atexit handlers and worker threads
  // that outlive static destruction.
  static StatsRegistry* registry = new StatsRegistry();
  return *registry;
}

StatsRegistry::Impl& StatsRegistry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter& StatsRegistry::counter(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto& slot = state.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& StatsRegistry::gauge(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto& slot = state.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& StatsRegistry::histogram(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto& slot = state.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

StatsSnapshot StatsRegistry::snapshot() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  StatsSnapshot snap;
  snap.counters.reserve(state.counters.size());
  for (const auto& [name, counter] : state.counters) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(state.gauges.size());
  for (const auto& [name, gauge] : state.gauges) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(state.histograms.size());
  for (const auto& [name, histogram] : state.histograms) {
    StatsSnapshot::HistogramValue value;
    value.name = name;
    value.count = histogram->count();
    value.sum = histogram->sum();
    value.min = histogram->min();
    value.max = histogram->max();
    for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
      const std::uint64_t n = histogram->bucket_count(b);
      if (n != 0) {
        value.buckets.emplace_back(Histogram::bucket_lower_bound(b), n);
      }
    }
    snap.histograms.push_back(std::move(value));
  }
  return snap;
}

void StatsRegistry::reset() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& [name, counter] : state.counters) counter->reset();
  for (auto& [name, gauge] : state.gauges) gauge->reset();
  for (auto& [name, histogram] : state.histograms) histogram->reset();
}

void StatsRegistry::write_text(std::ostream& out) const {
  const StatsSnapshot snap = snapshot();
  out << "== gcnt stats ==\n";
  for (const auto& [name, value] : snap.counters) {
    out << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out << "gauge   " << name << " " << value << "\n";
  }
  for (const auto& h : snap.histograms) {
    out << "hist    " << h.name << " count=" << h.count << " sum=" << h.sum
        << " min=" << h.min << " max=" << h.max;
    for (const auto& [lower, n] : h.buckets) {
      out << " " << lower << ":" << n;
    }
    out << "\n";
  }
}

void StatsRegistry::write_json(std::ostream& out) const {
  const StatsSnapshot snap = snapshot();
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << snap.counters[i].first
        << "\": " << snap.counters[i].second;
  }
  out << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << snap.gauges[i].first
        << "\": " << snap.gauges[i].second;
  }
  out << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << h.name
        << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"min\": " << h.min << ", \"max\": " << h.max
        << ", \"buckets\": {";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      out << (b == 0 ? "" : ", ") << "\"" << h.buckets[b].first
          << "\": " << h.buckets[b].second;
    }
    out << "}}";
  }
  out << (snap.histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

KernelStats& kernel_stats(const char* name) {
  static std::mutex mutex;
  static std::map<std::string, std::unique_ptr<KernelStats>>* cache =
      new std::map<std::string, std::unique_ptr<KernelStats>>();
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = (*cache)[name];
  if (!slot) {
    StatsRegistry& registry = StatsRegistry::instance();
    const std::string base = std::string("kernel.") + name;
    slot = std::make_unique<KernelStats>(
        KernelStats{registry.counter(base + ".calls"),
                    registry.histogram(base + ".ns")});
  }
  return *slot;
}

}  // namespace gcnt
