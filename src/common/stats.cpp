#include "common/stats.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "common/json.h"

namespace gcnt {

namespace stats_detail {

std::atomic<bool> enabled{false};

namespace {
/// Applies GCNT_STATS before main() so library users need no code change.
struct EnvInit {
  EnvInit() {
    const char* raw = std::getenv("GCNT_STATS");
    if (raw != nullptr && *raw != '\0' && *raw != '0') {
      enabled.store(true, std::memory_order_relaxed);
    }
  }
} env_init;
}  // namespace

}  // namespace stats_detail

void set_stats_enabled(bool on) noexcept {
  stats_detail::enabled.store(on, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t value) noexcept {
  if (!stats_enabled()) return;
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t raw = min_.load(std::memory_order_relaxed);
  return raw == ~std::uint64_t{0} ? 0 : raw;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// std::map keeps names sorted, so snapshots/export are deterministic, and
// node-based storage keeps returned references stable across inserts.
struct StatsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

StatsRegistry& StatsRegistry::instance() {
  // Leaked: stats may be touched from atexit handlers and worker threads
  // that outlive static destruction.
  static StatsRegistry* registry = new StatsRegistry();
  return *registry;
}

StatsRegistry::Impl& StatsRegistry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter& StatsRegistry::counter(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto& slot = state.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& StatsRegistry::gauge(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto& slot = state.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& StatsRegistry::histogram(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto& slot = state.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

StatsSnapshot StatsRegistry::snapshot() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  StatsSnapshot snap;
  snap.counters.reserve(state.counters.size());
  for (const auto& [name, counter] : state.counters) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(state.gauges.size());
  for (const auto& [name, gauge] : state.gauges) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(state.histograms.size());
  for (const auto& [name, histogram] : state.histograms) {
    StatsSnapshot::HistogramValue value;
    value.name = name;
    value.count = histogram->count();
    value.sum = histogram->sum();
    value.min = histogram->min();
    value.max = histogram->max();
    for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
      const std::uint64_t n = histogram->bucket_count(b);
      if (n != 0) {
        value.buckets.emplace_back(Histogram::bucket_lower_bound(b), n);
      }
    }
    snap.histograms.push_back(std::move(value));
  }
  return snap;
}

void StatsRegistry::reset() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& [name, counter] : state.counters) counter->reset();
  for (auto& [name, gauge] : state.gauges) gauge->reset();
  for (auto& [name, histogram] : state.histograms) histogram->reset();
}

void StatsRegistry::write_text(std::ostream& out) const {
  const StatsSnapshot snap = snapshot();
  out << "== gcnt stats ==\n";
  for (const auto& [name, value] : snap.counters) {
    out << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out << "gauge   " << name << " " << value << "\n";
  }
  for (const auto& h : snap.histograms) {
    out << "hist    " << h.name << " count=" << h.count << " sum=" << h.sum
        << " min=" << h.min << " max=" << h.max;
    for (const auto& [lower, n] : h.buckets) {
      out << " " << lower << ":" << n;
    }
    out << "\n";
  }
}

void StatsRegistry::write_json(std::ostream& out) const {
  // Stat names are caller-controlled strings; escape them so a hostile
  // name (quotes, backslashes, control bytes) still yields valid JSON.
  const StatsSnapshot snap = snapshot();
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"";
    json::write_escaped(out, snap.counters[i].first);
    out << "\": " << snap.counters[i].second;
  }
  out << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"";
    json::write_escaped(out, snap.gauges[i].first);
    out << "\": " << snap.gauges[i].second;
  }
  out << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"";
    json::write_escaped(out, h.name);
    out << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"min\": " << h.min << ", \"max\": " << h.max
        << ", \"buckets\": {";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      out << (b == 0 ? "" : ", ") << "\"" << h.buckets[b].first
          << "\": " << h.buckets[b].second;
    }
    out << "}}";
  }
  out << (snap.histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

double histogram_quantile(const StatsSnapshot::HistogramValue& hist,
                          double q) {
  if (hist.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(hist.count);
  std::uint64_t cumulative = 0;
  double value = static_cast<double>(hist.max);
  for (const auto& [lower, n] : hist.buckets) {
    if (n == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += n;
    if (static_cast<double>(cumulative) < target) continue;
    if (lower == 0) {
      value = 0.0;  // bucket 0 holds exact zeros; nothing to interpolate
    } else {
      // Uniform-within-bucket interpolation over [lower, 2*lower).
      const double fraction =
          std::clamp((target - before) / static_cast<double>(n), 0.0, 1.0);
      value = static_cast<double>(lower) * (1.0 + fraction);
    }
    break;
  }
  return std::clamp(value, static_cast<double>(hist.min),
                    static_cast<double>(hist.max));
}

StatsSnapshot snapshot_delta(const StatsSnapshot& prev,
                             const StatsSnapshot& cur) {
  StatsSnapshot delta;
  std::map<std::string, std::uint64_t> prev_counters(prev.counters.begin(),
                                                     prev.counters.end());
  delta.counters.reserve(cur.counters.size());
  for (const auto& [name, value] : cur.counters) {
    const auto it = prev_counters.find(name);
    delta.counters.emplace_back(
        name, value - (it == prev_counters.end() ? 0 : it->second));
  }
  delta.gauges = cur.gauges;  // instantaneous values have no window
  std::map<std::string, const StatsSnapshot::HistogramValue*> prev_hists;
  for (const auto& h : prev.histograms) prev_hists[h.name] = &h;
  delta.histograms.reserve(cur.histograms.size());
  for (const auto& h : cur.histograms) {
    StatsSnapshot::HistogramValue windowed;
    windowed.name = h.name;
    windowed.min = h.min;  // superset of the window's range (see header)
    windowed.max = h.max;
    const auto it = prev_hists.find(h.name);
    const StatsSnapshot::HistogramValue* old =
        it == prev_hists.end() ? nullptr : it->second;
    windowed.count = h.count - (old ? old->count : 0);
    windowed.sum = h.sum - (old ? old->sum : 0);
    for (const auto& [lower, n] : h.buckets) {
      std::uint64_t previous = 0;
      if (old != nullptr) {
        for (const auto& [old_lower, old_n] : old->buckets) {
          if (old_lower == lower) {
            previous = old_n;
            break;
          }
        }
      }
      if (n - previous != 0) windowed.buckets.emplace_back(lower, n - previous);
    }
    delta.histograms.push_back(std::move(windowed));
  }
  return delta;
}

namespace {

/// "serve.queue_depth" -> "gcnt_serve_queue_depth"; anything outside
/// [A-Za-z0-9_] becomes '_' so every stat name is a legal metric name.
std::string prometheus_name(const std::string& name) {
  std::string out = "gcnt_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void write_summary_quantiles(std::ostream& out, const std::string& metric,
                             const StatsSnapshot::HistogramValue& hist) {
  for (const double q : {0.5, 0.9, 0.99}) {
    out << metric << "{quantile=\"" << q << "\"} "
        << histogram_quantile(hist, q) << "\n";
  }
}

}  // namespace

void write_prometheus(std::ostream& out, const StatsSnapshot& cur,
                      const StatsSnapshot* prev) {
  const StatsSnapshot delta =
      prev != nullptr ? snapshot_delta(*prev, cur) : StatsSnapshot{};
  std::map<std::string, std::uint64_t> counter_deltas(delta.counters.begin(),
                                                      delta.counters.end());
  for (const auto& [name, value] : cur.counters) {
    const std::string metric = prometheus_name(name);
    out << "# TYPE " << metric << "_total counter\n"
        << metric << "_total " << value << "\n";
    if (prev != nullptr) {
      out << "# TYPE " << metric << "_delta gauge\n"
          << metric << "_delta " << counter_deltas[name] << "\n";
    }
  }
  for (const auto& [name, value] : cur.gauges) {
    const std::string metric = prometheus_name(name);
    out << "# TYPE " << metric << " gauge\n" << metric << " " << value
        << "\n";
  }
  std::map<std::string, const StatsSnapshot::HistogramValue*> windowed;
  for (const auto& h : delta.histograms) windowed[h.name] = &h;
  for (const auto& h : cur.histograms) {
    const std::string metric = prometheus_name(h.name);
    out << "# TYPE " << metric << " summary\n";
    write_summary_quantiles(out, metric, h);
    out << metric << "_sum " << h.sum << "\n"
        << metric << "_count " << h.count << "\n";
    if (prev != nullptr) {
      const auto it = windowed.find(h.name);
      if (it != windowed.end()) {
        out << "# TYPE " << metric << "_window summary\n";
        write_summary_quantiles(out, metric + "_window", *it->second);
        out << metric << "_window_count " << it->second->count << "\n";
      }
    }
  }
}

bool parse_prometheus_text(const std::string& text,
                           std::map<std::string, double>& out,
                           std::string& error) {
  std::size_t begin = 0;
  std::size_t line_no = 0;
  while (begin <= text.size()) {
    const std::size_t newline = text.find('\n', begin);
    const std::size_t end = newline == std::string::npos ? text.size()
                                                         : newline;
    const std::string line = text.substr(begin, end - begin);
    ++line_no;
    begin = end + 1;
    if (newline == std::string::npos && line.empty()) break;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) {
      error = "line " + std::to_string(line_no) + ": no value separator";
      return false;
    }
    const std::string series = line.substr(0, space);
    const char first = series[0];
    if (!(std::isalpha(static_cast<unsigned char>(first)) || first == '_')) {
      error = "line " + std::to_string(line_no) + ": bad metric name";
      return false;
    }
    const char* value_start = line.c_str() + space + 1;
    char* value_end = nullptr;
    const double value = std::strtod(value_start, &value_end);
    if (value_end == value_start || *value_end != '\0') {
      error = "line " + std::to_string(line_no) + ": bad sample value";
      return false;
    }
    out[series] = value;
  }
  return true;
}

KernelStats& kernel_stats(const char* name) {
  static std::mutex mutex;
  static std::map<std::string, std::unique_ptr<KernelStats>>* cache =
      new std::map<std::string, std::unique_ptr<KernelStats>>();
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = (*cache)[name];
  if (!slot) {
    StatsRegistry& registry = StatsRegistry::instance();
    const std::string base = std::string("kernel.") + name;
    slot = std::make_unique<KernelStats>(
        KernelStats{registry.counter(base + ".calls"),
                    registry.histogram(base + ".ns")});
  }
  return *slot;
}

}  // namespace gcnt
