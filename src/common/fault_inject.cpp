#include "common/fault_inject.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <mutex>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"

namespace gcnt {

namespace {

struct FaultState {
  std::atomic<bool> armed{false};
  FaultSpec spec;
  std::atomic<std::uint64_t> write_probes{0};
  std::atomic<std::uint64_t> read_probes{0};
  std::atomic<std::uint64_t> alloc_probes{0};
  std::atomic<std::uint64_t> serve_read_probes{0};
  std::atomic<std::uint64_t> serve_write_probes{0};
  std::atomic<std::uint64_t> serve_delay_probes{0};
  std::atomic<std::uint64_t> serve_alloc_probes{0};
  std::once_flag env_once;
};

/// Shared firing rule for clauses with the optional `every=K` repeat:
/// fire at probe `nth`, then at nth+K, nth+2K, ...
bool clause_fires(std::uint64_t n, std::uint64_t nth,
                  std::uint64_t every) noexcept {
  if (nth == 0 || n < nth) return false;
  return n == nth || (every != 0 && (n - nth) % every == 0);
}

FaultState& state() {
  static FaultState instance;
  return instance;
}

/// Reads GCNT_FAULT_INJECT exactly once, before the first probe decision.
void ensure_env_loaded() {
  FaultState& s = state();
  std::call_once(s.env_once, [&s] {
    const char* raw = std::getenv("GCNT_FAULT_INJECT");
    if (raw == nullptr || *raw == '\0') return;
    s.spec = parse_fault_spec(raw);
    s.armed.store(s.spec.armed(), std::memory_order_release);
  });
}

std::uint64_t parse_u64(const std::string& clause, const std::string& text) {
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    throw Error(ErrorKind::kUsage, "fault spec: bad number '" + text +
                                       "' in clause '" + clause + "'");
  }
}

struct FiredCounters {
  Counter& write_fail;
  Counter& short_write;
  Counter& bitflip;
  Counter& alloc_fail;
  Counter& serve_torn_read;
  Counter& serve_short_write;
  Counter& serve_delay;
  Counter& serve_alloc;
};

FiredCounters& fired_counters() {
  static FiredCounters counters{
      StatsRegistry::instance().counter("faultinject.fail_write_fired"),
      StatsRegistry::instance().counter("faultinject.short_write_fired"),
      StatsRegistry::instance().counter("faultinject.bitflip_read_fired"),
      StatsRegistry::instance().counter("faultinject.alloc_fail_fired"),
      StatsRegistry::instance().counter("faultinject.serve_torn_read_fired"),
      StatsRegistry::instance().counter(
          "faultinject.serve_short_write_fired"),
      StatsRegistry::instance().counter("faultinject.serve_delay_fired"),
      StatsRegistry::instance().counter("faultinject.serve_alloc_fired")};
  return counters;
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find(';', start);
    if (end == std::string::npos) end = text.size();
    std::string clause = text.substr(start, end - start);
    start = end + 1;
    // Trim surrounding whitespace so multi-line env values work.
    while (!clause.empty() && std::isspace(static_cast<unsigned char>(
                                  clause.front()))) {
      clause.erase(clause.begin());
    }
    while (!clause.empty() &&
           std::isspace(static_cast<unsigned char>(clause.back()))) {
      clause.pop_back();
    }
    if (clause.empty()) continue;

    const std::size_t colon = clause.find(':');
    const std::string name = clause.substr(0, colon);
    std::uint64_t nth = 0, bytes = 0, seed = 1, every = 0, ms = 0;
    bool saw_nth = false, saw_every = false, saw_ms = false;
    if (colon != std::string::npos) {
      std::size_t p = colon + 1;
      while (p < clause.size()) {
        std::size_t comma = clause.find(',', p);
        if (comma == std::string::npos) comma = clause.size();
        const std::string param = clause.substr(p, comma - p);
        p = comma + 1;
        const std::size_t eq = param.find('=');
        if (eq == std::string::npos) {
          throw Error(ErrorKind::kUsage,
                      "fault spec: expected key=value, got '" + param + "'");
        }
        const std::string key = param.substr(0, eq);
        const std::string value = param.substr(eq + 1);
        if (key == "nth") {
          nth = parse_u64(clause, value);
          saw_nth = true;
        } else if (key == "bytes") {
          bytes = parse_u64(clause, value);
        } else if (key == "seed") {
          seed = parse_u64(clause, value);
        } else if (key == "every") {
          every = parse_u64(clause, value);
          saw_every = true;
        } else if (key == "ms") {
          ms = parse_u64(clause, value);
          saw_ms = true;
        } else {
          throw Error(ErrorKind::kUsage,
                      "fault spec: unknown parameter '" + key + "'");
        }
      }
    }
    if (!saw_nth) {
      throw Error(ErrorKind::kUsage,
                  "fault spec: clause '" + name + "' needs nth=N");
    }
    const bool serve_clause = name.rfind("serve-", 0) == 0;
    if ((saw_every || saw_ms) && !serve_clause) {
      throw Error(ErrorKind::kUsage,
                  "fault spec: 'every'/'ms' only apply to serve-* clauses "
                  "(clause '" +
                      name + "')");
    }
    if (name == "fail-write") {
      spec.fail_write_nth = nth;
    } else if (name == "short-write") {
      spec.short_write_nth = nth;
      spec.short_write_bytes = bytes;
    } else if (name == "bitflip-read") {
      spec.bitflip_read_nth = nth;
      spec.bitflip_seed = seed;
    } else if (name == "alloc-fail") {
      spec.alloc_fail_nth = nth;
    } else if (name == "serve-torn-read") {
      spec.serve_torn_read_nth = nth;
      spec.serve_torn_read_every = every;
    } else if (name == "serve-short-write") {
      spec.serve_short_write_nth = nth;
      spec.serve_short_write_every = every;
    } else if (name == "serve-delay") {
      spec.serve_delay_nth = nth;
      spec.serve_delay_every = every;
      if (saw_ms) spec.serve_delay_ms = ms;
    } else if (name == "serve-alloc") {
      spec.serve_alloc_nth = nth;
      spec.serve_alloc_every = every;
    } else {
      throw Error(ErrorKind::kUsage,
                  "fault spec: unknown clause '" + name + "'");
    }
  }
  return spec;
}

void set_fault_spec(const FaultSpec& spec) {
  FaultState& s = state();
  ensure_env_loaded();  // consume the env slot so it cannot overwrite later
  s.spec = spec;
  s.write_probes.store(0, std::memory_order_relaxed);
  s.read_probes.store(0, std::memory_order_relaxed);
  s.alloc_probes.store(0, std::memory_order_relaxed);
  s.serve_read_probes.store(0, std::memory_order_relaxed);
  s.serve_write_probes.store(0, std::memory_order_relaxed);
  s.serve_delay_probes.store(0, std::memory_order_relaxed);
  s.serve_alloc_probes.store(0, std::memory_order_relaxed);
  s.armed.store(spec.armed(), std::memory_order_release);
}

void clear_fault_injection() { set_fault_spec(FaultSpec{}); }

bool fault_injection_enabled() noexcept {
  return state().armed.load(std::memory_order_acquire);
}

std::size_t fault_write_probe(std::size_t intended_bytes) {
  ensure_env_loaded();
  FaultState& s = state();
  if (!s.armed.load(std::memory_order_acquire)) return intended_bytes;
  static Counter& probes =
      StatsRegistry::instance().counter("faultinject.write_probes");
  probes.add();
  const std::uint64_t n =
      s.write_probes.fetch_add(1, std::memory_order_relaxed) + 1;
  if (s.spec.fail_write_nth != 0 && n == s.spec.fail_write_nth) {
    fired_counters().write_fail.add();
    throw Error(ErrorKind::kIo, "injected write failure (probe " +
                                    std::to_string(n) + ")");
  }
  if (s.spec.short_write_nth != 0 && n == s.spec.short_write_nth) {
    fired_counters().short_write.add();
    const std::size_t keep = s.spec.short_write_bytes != 0
                                 ? static_cast<std::size_t>(
                                       s.spec.short_write_bytes)
                                 : intended_bytes / 2;
    return keep < intended_bytes ? keep : intended_bytes;
  }
  return intended_bytes;
}

void fault_read_probe(void* data, std::size_t len) {
  ensure_env_loaded();
  FaultState& s = state();
  if (!s.armed.load(std::memory_order_acquire)) return;
  static Counter& probes =
      StatsRegistry::instance().counter("faultinject.read_probes");
  probes.add();
  const std::uint64_t n =
      s.read_probes.fetch_add(1, std::memory_order_relaxed) + 1;
  if (s.spec.bitflip_read_nth == 0 || n != s.spec.bitflip_read_nth ||
      len == 0) {
    return;
  }
  fired_counters().bitflip.add();
  std::uint64_t mix = s.spec.bitflip_seed + n;
  const std::uint64_t draw = splitmix64(mix);
  auto* bytes = static_cast<unsigned char*>(data);
  bytes[(draw >> 3) % len] ^=
      static_cast<unsigned char>(1u << (draw & 7u));
}

void fault_alloc_probe(const char* what) {
  ensure_env_loaded();
  FaultState& s = state();
  if (!s.armed.load(std::memory_order_acquire)) return;
  static Counter& probes =
      StatsRegistry::instance().counter("faultinject.alloc_probes");
  probes.add();
  const std::uint64_t n =
      s.alloc_probes.fetch_add(1, std::memory_order_relaxed) + 1;
  if (s.spec.alloc_fail_nth != 0 && n == s.spec.alloc_fail_nth) {
    fired_counters().alloc_fail.add();
    throw Error(ErrorKind::kResource,
                std::string("injected allocation failure at ") + what +
                    " (probe " + std::to_string(n) + ")");
  }
}

bool fault_serve_read_probe() {
  ensure_env_loaded();
  FaultState& s = state();
  if (!s.armed.load(std::memory_order_acquire)) return false;
  static Counter& probes =
      StatsRegistry::instance().counter("faultinject.serve_read_probes");
  probes.add();
  const std::uint64_t n =
      s.serve_read_probes.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!clause_fires(n, s.spec.serve_torn_read_nth,
                    s.spec.serve_torn_read_every)) {
    return false;
  }
  fired_counters().serve_torn_read.add();
  return true;
}

bool fault_serve_write_probe() {
  ensure_env_loaded();
  FaultState& s = state();
  if (!s.armed.load(std::memory_order_acquire)) return false;
  static Counter& probes =
      StatsRegistry::instance().counter("faultinject.serve_write_probes");
  probes.add();
  const std::uint64_t n =
      s.serve_write_probes.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!clause_fires(n, s.spec.serve_short_write_nth,
                    s.spec.serve_short_write_every)) {
    return false;
  }
  fired_counters().serve_short_write.add();
  return true;
}

std::uint64_t fault_serve_delay_probe() {
  ensure_env_loaded();
  FaultState& s = state();
  if (!s.armed.load(std::memory_order_acquire)) return 0;
  static Counter& probes =
      StatsRegistry::instance().counter("faultinject.serve_delay_probes");
  probes.add();
  const std::uint64_t n =
      s.serve_delay_probes.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!clause_fires(n, s.spec.serve_delay_nth, s.spec.serve_delay_every)) {
    return 0;
  }
  fired_counters().serve_delay.add();
  return s.spec.serve_delay_ms;
}

void fault_serve_alloc_probe(const char* what) {
  ensure_env_loaded();
  FaultState& s = state();
  if (!s.armed.load(std::memory_order_acquire)) return;
  static Counter& probes =
      StatsRegistry::instance().counter("faultinject.serve_alloc_probes");
  probes.add();
  const std::uint64_t n =
      s.serve_alloc_probes.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!clause_fires(n, s.spec.serve_alloc_nth, s.spec.serve_alloc_every)) {
    return;
  }
  fired_counters().serve_alloc.add();
  throw Error(ErrorKind::kResource,
              std::string("injected serve allocation failure decoding ") +
                  what + " (probe " + std::to_string(n) + ")");
}

}  // namespace gcnt
