#pragma once
// Durable, verifiable artifact I/O — the persistence floor every saved
// file in the system stands on.
//
// Two layers:
//
//  * atomic_write_file(path, writer): the writer callback produces the
//    full contents into a stream; the bytes land in `<path>.tmp.<pid>`,
//    are flushed and fsync'd, and the temp file is renamed over `path`
//    (with a directory fsync). A crash at any instant leaves either the
//    previous contents or the new contents — never a truncated mix.
//
//  * the versioned envelope: a one-line header
//
//        gcnt-artifact v1 <kind> <payload-bytes> <crc32c-hex>\n
//
//    followed by the raw payload. read_artifact_file() verifies the
//    version, the expected kind, the declared length against the actual
//    file size, and the CRC32C of the payload, throwing a structured
//    gcnt::Error (kIo / kVersion / kCorrupt) on any mismatch — a torn or
//    bit-flipped artifact is always rejected, never silently accepted.
//
// Fault-injection probes (common/fault_inject.h) are wired into both
// layers: write probes can fail or truncate the payload, read probes can
// flip a payload bit before verification, and the payload allocation is
// guarded by an alloc probe.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace gcnt {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected) of `len` bytes.
/// `crc` chains partial computations (pass the previous return value).
std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t crc = 0) noexcept;

/// Atomically replaces `path` with the bytes `writer` produces: temp file
/// in the same directory, flush, fsync, rename, directory fsync. Throws
/// Error{kIo} on any failure (the previous contents of `path` survive).
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

/// Wraps `payload` in the versioned envelope and writes it atomically.
void write_artifact_file(const std::string& path, const std::string& kind,
                         const std::string& payload);

/// Reads and verifies an enveloped artifact; returns the payload.
/// Throws Error{kIo} when the file cannot be opened, Error{kVersion} on a
/// format-version mismatch, Error{kCorrupt} on a wrong kind, a length
/// mismatch, or a CRC failure.
std::string read_artifact_file(const std::string& path,
                               const std::string& kind);

/// True when `path` starts with the envelope magic (used to keep loading
/// legacy bare-format files). Returns false when the file cannot be read.
bool is_artifact_file(const std::string& path);

}  // namespace gcnt
