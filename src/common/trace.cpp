#include "common/trace.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "common/artifact.h"
#include "common/error.h"
#include "common/json.h"

namespace gcnt {

namespace trace_detail {

std::atomic<bool> enabled{false};

namespace {
std::atomic<std::uint64_t> sample_period{1};
thread_local std::uint32_t tl_suppress_depth = 0;
}  // namespace

bool thread_suppressed() noexcept { return tl_suppress_depth != 0; }

namespace {

constexpr std::size_t kDefaultRingCapacity = 1 << 16;

struct Event {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
  const char* key0;
  const char* key1;
  double value0;
  double value1;
};

/// Fixed-capacity flight recorder owned by one thread; the mutex is only
/// contended when the writer drains it (record() holds it for an append).
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> ring;
  std::size_t capacity = kDefaultRingCapacity;
  std::uint64_t total = 0;    // appends ever; ring slot = total % capacity
  std::uint64_t dropped = 0;  // overwritten (oldest-first) spans
  std::uint32_t tid = 0;
  std::string name;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
  std::string exit_path;  // GCNT_TRACE target for the atexit writer
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

Registry& registry() {
  // Leaked: worker threads and atexit handlers may record/flush after
  // static destruction has begun.
  static Registry* instance = new Registry();
  return *instance;
}

std::size_t ring_capacity_from_env() {
  static const std::size_t value = [] {
    const char* raw = std::getenv("GCNT_TRACE_BUFFER");
    if (raw == nullptr || *raw == '\0') return kDefaultRingCapacity;
    const unsigned long long parsed = std::strtoull(raw, nullptr, 10);
    return parsed == 0 ? kDefaultRingCapacity
                       : static_cast<std::size_t>(parsed);
  }();
  return value;
}

thread_local std::shared_ptr<ThreadBuffer> tl_buffer;
thread_local std::string tl_pending_name;

ThreadBuffer& this_thread_buffer() {
  if (!tl_buffer) {
    auto buffer = std::make_shared<ThreadBuffer>();
    buffer->capacity = ring_capacity_from_env();
    buffer->ring.reserve(std::min<std::size_t>(buffer->capacity, 1024));
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffer->tid = reg.next_tid++;
    buffer->name = tl_pending_name.empty()
                       ? "thread-" + std::to_string(buffer->tid)
                       : tl_pending_name;
    reg.buffers.push_back(buffer);
    tl_buffer = std::move(buffer);
  }
  return *tl_buffer;
}

void write_event(std::ostream& out, const Event& event, std::uint32_t tid,
                 bool& first) {
  char ts[48];
  char dur[48];
  std::snprintf(ts, sizeof(ts), "%.3f",
                static_cast<double>(event.begin_ns) / 1000.0);
  std::snprintf(dur, sizeof(dur), "%.3f",
                static_cast<double>(event.end_ns - event.begin_ns) / 1000.0);
  out << (first ? "\n" : ",\n") << "{\"name\":\"";
  first = false;
  json::write_escaped(out, event.name);
  out << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << ts
      << ",\"dur\":" << dur;
  if (event.key0 != nullptr) {
    out << ",\"args\":{\"";
    json::write_escaped(out, event.key0);
    char value[48];
    std::snprintf(value, sizeof(value), "%.17g", event.value0);
    out << "\":" << value;
    if (event.key1 != nullptr) {
      out << ",\"";
      json::write_escaped(out, event.key1);
      std::snprintf(value, sizeof(value), "%.17g", event.value1);
      out << "\":" << value;
    }
    out << "}";
  }
  out << "}";
}

/// Drains every buffer (oldest span first per thread) into `out`.
/// Callers must have recording disabled; buffers are cleared on success.
void write_events(std::ostream& out) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> registry_lock(reg.mutex);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  out << (first ? "\n" : ",\n")
      << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"ts\":0,\"args\":{\"name\":\"gcnt\"}}";
  first = false;
  for (const auto& buffer : reg.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << buffer->tid << ",\"ts\":0,\"args\":{\"name\":\"";
    json::write_escaped(out, buffer->name);
    out << "\"}}";
    const std::size_t stored = buffer->ring.size();
    const std::size_t start =
        stored < buffer->capacity
            ? 0
            : static_cast<std::size_t>(buffer->total % buffer->capacity);
    for (std::size_t k = 0; k < stored; ++k) {
      write_event(out, buffer->ring[(start + k) % stored], buffer->tid, first);
    }
    buffer->ring.clear();
    buffer->total = 0;
  }
  out << "\n]}\n";
}

/// Atomic (temp + fsync + rename) trace export: a crash or full disk
/// mid-export never leaves a truncated JSON behind. Buffers are cleared
/// only when the writer callback ran (atomic_write_file buffers first).
bool write_and_clear(const std::string& path) {
  try {
    atomic_write_file(path, [](std::ostream& out) { write_events(out); });
  } catch (const Error&) {
    return false;
  }
  return true;
}

/// Applies GCNT_TRACE=<path> before main(): starts recording and writes
/// the trace at process exit (unless trace_stop ran first).
/// GCNT_TRACE_SAMPLE accepts "1/N" or plain "N", both meaning "trace
/// every Nth request"; 0, 1, and garbage all mean "every request".
std::uint64_t sample_period_from_env() {
  const char* raw = std::getenv("GCNT_TRACE_SAMPLE");
  if (raw == nullptr || *raw == '\0') return 1;
  const char* cursor = raw;
  char* end = nullptr;
  unsigned long long value = std::strtoull(cursor, &end, 10);
  if (end != cursor && *end == '/') {
    cursor = end + 1;
    value = std::strtoull(cursor, &end, 10);
  }
  if (end == cursor || *end != '\0' || value == 0) return 1;
  return static_cast<std::uint64_t>(value);
}

struct EnvInit {
  EnvInit() {
    sample_period.store(sample_period_from_env(), std::memory_order_relaxed);
    const char* raw = std::getenv("GCNT_TRACE");
    if (raw == nullptr || *raw == '\0') return;
    registry().exit_path = raw;
    enabled.store(true, std::memory_order_relaxed);
    std::atexit([] {
      if (!trace_enabled()) return;  // trace_stop already wrote it
      std::string path;
      {
        Registry& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        path = reg.exit_path;
      }
      if (trace_stop(path)) {
        std::fprintf(stderr, "gcnt: wrote trace to %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "gcnt: failed to write trace to %s\n",
                     path.c_str());
      }
    });
  }
} env_init;

}  // namespace

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - registry().epoch)
          .count());
}

void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
            const char* key0, double value0, const char* key1, double value1) {
  ThreadBuffer& buffer = this_thread_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  const Event event{name, begin_ns, end_ns, key0, key1, value0, value1};
  if (buffer.ring.size() < buffer.capacity) {
    buffer.ring.push_back(event);
  } else {
    buffer.ring[static_cast<std::size_t>(buffer.total % buffer.capacity)] =
        event;
    ++buffer.dropped;
  }
  ++buffer.total;
}

}  // namespace trace_detail

void trace_start() {
  trace_detail::registry();  // pin the epoch before the first span
  trace_detail::enabled.store(true, std::memory_order_relaxed);
}

bool trace_stop(const std::string& path) {
  trace_detail::enabled.store(false, std::memory_order_relaxed);
  return trace_detail::write_and_clear(path);
}

void trace_reset() {
  trace_detail::Registry& reg = trace_detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buffer : reg.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->ring.clear();
    buffer->total = 0;
    buffer->dropped = 0;
  }
}

void trace_set_thread_name(const std::string& name) {
  trace_detail::tl_pending_name = name;
  if (trace_detail::tl_buffer) {
    std::lock_guard<std::mutex> lock(trace_detail::tl_buffer->mutex);
    trace_detail::tl_buffer->name = name;
  }
}

std::uint64_t trace_dropped_spans() {
  trace_detail::Registry& reg = trace_detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : reg.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

std::uint64_t trace_sample_period() noexcept {
  return trace_detail::sample_period.load(std::memory_order_relaxed);
}

void set_trace_sample_period(std::uint64_t period) noexcept {
  trace_detail::sample_period.store(period == 0 ? 1 : period,
                                    std::memory_order_relaxed);
}

TraceSuppressScope::TraceSuppressScope(bool suppress) : active_(suppress) {
  if (active_) ++trace_detail::tl_suppress_depth;
}

TraceSuppressScope::~TraceSuppressScope() {
  if (active_) --trace_detail::tl_suppress_depth;
}


// ---------------------------------------------------------------------------
// Trace-file validation (shared by tools/trace_check and the unit tests),
// built on the shared common/json parser.

namespace {

const json::Value* require_field(const json::Value& event, const char* key,
                                 json::Value::Type type, std::size_t index,
                                 std::string& error) {
  const json::Value* field = event.find(key);
  if (field == nullptr || field->type != type) {
    error = "event " + std::to_string(index) + ": missing or mistyped \"" +
            key + "\"";
    return nullptr;
  }
  return field;
}

/// One rid-carrying span, collected for request-tree validation.
struct RidSpan {
  std::string name;
  double begin = 0.0;
  double end = 0.0;
};

}  // namespace

TraceValidation validate_trace_file(const std::string& path) {
  TraceValidation result;
  std::ifstream in(path);
  if (!in) {
    result.error = "cannot open " + path;
    return result;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  json::Value root;
  if (!json::parse(text, root, result.error)) return result;

  const json::Value* events = nullptr;
  if (root.type == json::Value::Type::kArray) {
    events = &root;  // Chrome also accepts a bare event array
  } else if (root.type == json::Value::Type::kObject) {
    events = root.find("traceEvents");
    if (events == nullptr || events->type != json::Value::Type::kArray) {
      result.error = "top-level object has no traceEvents array";
      return result;
    }
  } else {
    result.error = "top level is neither an object nor an array";
    return result;
  }

  // Per-thread completion times: spans are appended when they end, so the
  // file order within one tid must be non-decreasing in (ts + dur).
  std::vector<std::pair<double, double>> last_end;  // (tid, end) pairs
  std::set<double> span_tids;
  std::set<std::string> span_names;
  std::map<double, std::vector<RidSpan>> rid_spans;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const json::Value& event = events->array[i];
    if (event.type != json::Value::Type::kObject) {
      result.error = "event " + std::to_string(i) + " is not an object";
      return result;
    }
    const json::Value* ph = require_field(event, "ph",
                                          json::Value::Type::kString, i,
                                          result.error);
    if (ph == nullptr) return result;
    if (require_field(event, "name", json::Value::Type::kString, i,
                      result.error) == nullptr ||
        require_field(event, "pid", json::Value::Type::kNumber, i,
                      result.error) == nullptr) {
      return result;
    }
    const json::Value* tid = require_field(event, "tid",
                                           json::Value::Type::kNumber, i,
                                           result.error);
    if (tid == nullptr) return result;
    if (ph->text != "X") continue;  // metadata and other phases: no timing

    const json::Value* ts = require_field(event, "ts",
                                          json::Value::Type::kNumber, i,
                                          result.error);
    const json::Value* dur = require_field(event, "dur",
                                           json::Value::Type::kNumber, i,
                                           result.error);
    if (ts == nullptr || dur == nullptr) return result;
    if (ts->number < 0.0 || dur->number < 0.0) {
      result.error = "event " + std::to_string(i) + ": negative ts or dur";
      return result;
    }
    const double end = ts->number + dur->number;
    bool found = false;
    for (auto& [known_tid, known_end] : last_end) {
      if (known_tid == tid->number) {
        found = true;
        if (end + 1e-3 < known_end) {
          result.error = "event " + std::to_string(i) +
                         ": completion time regressed within tid " +
                         std::to_string(static_cast<long long>(tid->number));
          return result;
        }
        known_end = std::max(known_end, end);
        break;
      }
    }
    if (!found) last_end.emplace_back(tid->number, end);
    span_tids.insert(tid->number);
    span_names.insert(event.find("name")->text);
    ++result.span_count;

    const json::Value* args = event.find("args");
    if (args != nullptr && args->type == json::Value::Type::kObject) {
      const json::Value* rid = args->find("rid");
      if (rid != nullptr && rid->type == json::Value::Type::kNumber) {
        rid_spans[rid->number].push_back(
            RidSpan{event.find("name")->text, ts->number, end});
      }
    }
  }

  // Request trees: exactly one serve.request root per rid; queue-wait
  // spans hand off to it (end <= root begin), everything else nests
  // inside it. The writer prints microseconds to 3 decimals, so 2e-3 of
  // slack absorbs the rounding without hiding real ordering bugs.
  constexpr double kEps = 2e-3;
  for (const auto& [rid, spans] : rid_spans) {
    const std::string rid_text =
        std::to_string(static_cast<long long>(rid));
    const RidSpan* span_root = nullptr;
    for (const RidSpan& span : spans) {
      if (span.name != "serve.request") continue;
      if (span_root != nullptr) {
        result.error = "rid " + rid_text + " has multiple serve.request roots";
        return result;
      }
      span_root = &span;
    }
    if (span_root == nullptr) {
      result.error = "rid " + rid_text +
                     " has orphaned spans (no serve.request root)";
      return result;
    }
    for (const RidSpan& span : spans) {
      if (&span == span_root) continue;
      if (span.name == "serve.queue_wait") {
        if (span.end > span_root->begin + kEps) {
          result.error = "rid " + rid_text +
                         ": serve.queue_wait ends after its root begins";
          return result;
        }
      } else if (span.begin + kEps < span_root->begin ||
                 span.end > span_root->end + kEps) {
        result.error = "rid " + rid_text + ": span \"" + span.name +
                       "\" falls outside its serve.request root";
        return result;
      }
    }
    ++result.request_tree_count;
  }

  result.thread_count = span_tids.size();
  result.names.assign(span_names.begin(), span_names.end());
  result.ok = true;
  return result;
}

}  // namespace gcnt
