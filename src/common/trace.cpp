#include "common/trace.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "common/artifact.h"
#include "common/error.h"

namespace gcnt {

namespace trace_detail {

std::atomic<bool> enabled{false};

namespace {

constexpr std::size_t kDefaultRingCapacity = 1 << 16;

struct Event {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
  const char* key0;
  const char* key1;
  double value0;
  double value1;
};

/// Fixed-capacity flight recorder owned by one thread; the mutex is only
/// contended when the writer drains it (record() holds it for an append).
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> ring;
  std::size_t capacity = kDefaultRingCapacity;
  std::uint64_t total = 0;    // appends ever; ring slot = total % capacity
  std::uint64_t dropped = 0;  // overwritten (oldest-first) spans
  std::uint32_t tid = 0;
  std::string name;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
  std::string exit_path;  // GCNT_TRACE target for the atexit writer
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

Registry& registry() {
  // Leaked: worker threads and atexit handlers may record/flush after
  // static destruction has begun.
  static Registry* instance = new Registry();
  return *instance;
}

std::size_t ring_capacity_from_env() {
  static const std::size_t value = [] {
    const char* raw = std::getenv("GCNT_TRACE_BUFFER");
    if (raw == nullptr || *raw == '\0') return kDefaultRingCapacity;
    const unsigned long long parsed = std::strtoull(raw, nullptr, 10);
    return parsed == 0 ? kDefaultRingCapacity
                       : static_cast<std::size_t>(parsed);
  }();
  return value;
}

thread_local std::shared_ptr<ThreadBuffer> tl_buffer;
thread_local std::string tl_pending_name;

ThreadBuffer& this_thread_buffer() {
  if (!tl_buffer) {
    auto buffer = std::make_shared<ThreadBuffer>();
    buffer->capacity = ring_capacity_from_env();
    buffer->ring.reserve(std::min<std::size_t>(buffer->capacity, 1024));
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffer->tid = reg.next_tid++;
    buffer->name = tl_pending_name.empty()
                       ? "thread-" + std::to_string(buffer->tid)
                       : tl_pending_name;
    reg.buffers.push_back(buffer);
    tl_buffer = std::move(buffer);
  }
  return *tl_buffer;
}

void write_json_escaped(std::ostream& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out << buf;
    } else {
      out << c;
    }
  }
}

void write_event(std::ostream& out, const Event& event, std::uint32_t tid,
                 bool& first) {
  char ts[48];
  char dur[48];
  std::snprintf(ts, sizeof(ts), "%.3f",
                static_cast<double>(event.begin_ns) / 1000.0);
  std::snprintf(dur, sizeof(dur), "%.3f",
                static_cast<double>(event.end_ns - event.begin_ns) / 1000.0);
  out << (first ? "\n" : ",\n") << "{\"name\":\"";
  first = false;
  write_json_escaped(out, event.name);
  out << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << ts
      << ",\"dur\":" << dur;
  if (event.key0 != nullptr) {
    out << ",\"args\":{\"";
    write_json_escaped(out, event.key0);
    char value[48];
    std::snprintf(value, sizeof(value), "%.17g", event.value0);
    out << "\":" << value;
    if (event.key1 != nullptr) {
      out << ",\"";
      write_json_escaped(out, event.key1);
      std::snprintf(value, sizeof(value), "%.17g", event.value1);
      out << "\":" << value;
    }
    out << "}";
  }
  out << "}";
}

/// Drains every buffer (oldest span first per thread) into `out`.
/// Callers must have recording disabled; buffers are cleared on success.
void write_events(std::ostream& out) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> registry_lock(reg.mutex);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  out << (first ? "\n" : ",\n")
      << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"ts\":0,\"args\":{\"name\":\"gcnt\"}}";
  first = false;
  for (const auto& buffer : reg.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << buffer->tid << ",\"ts\":0,\"args\":{\"name\":\"";
    write_json_escaped(out, buffer->name);
    out << "\"}}";
    const std::size_t stored = buffer->ring.size();
    const std::size_t start =
        stored < buffer->capacity
            ? 0
            : static_cast<std::size_t>(buffer->total % buffer->capacity);
    for (std::size_t k = 0; k < stored; ++k) {
      write_event(out, buffer->ring[(start + k) % stored], buffer->tid, first);
    }
    buffer->ring.clear();
    buffer->total = 0;
  }
  out << "\n]}\n";
}

/// Atomic (temp + fsync + rename) trace export: a crash or full disk
/// mid-export never leaves a truncated JSON behind. Buffers are cleared
/// only when the writer callback ran (atomic_write_file buffers first).
bool write_and_clear(const std::string& path) {
  try {
    atomic_write_file(path, [](std::ostream& out) { write_events(out); });
  } catch (const Error&) {
    return false;
  }
  return true;
}

/// Applies GCNT_TRACE=<path> before main(): starts recording and writes
/// the trace at process exit (unless trace_stop ran first).
struct EnvInit {
  EnvInit() {
    const char* raw = std::getenv("GCNT_TRACE");
    if (raw == nullptr || *raw == '\0') return;
    registry().exit_path = raw;
    enabled.store(true, std::memory_order_relaxed);
    std::atexit([] {
      if (!trace_enabled()) return;  // trace_stop already wrote it
      std::string path;
      {
        Registry& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        path = reg.exit_path;
      }
      if (trace_stop(path)) {
        std::fprintf(stderr, "gcnt: wrote trace to %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "gcnt: failed to write trace to %s\n",
                     path.c_str());
      }
    });
  }
} env_init;

}  // namespace

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - registry().epoch)
          .count());
}

void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
            const char* key0, double value0, const char* key1, double value1) {
  ThreadBuffer& buffer = this_thread_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  const Event event{name, begin_ns, end_ns, key0, key1, value0, value1};
  if (buffer.ring.size() < buffer.capacity) {
    buffer.ring.push_back(event);
  } else {
    buffer.ring[static_cast<std::size_t>(buffer.total % buffer.capacity)] =
        event;
    ++buffer.dropped;
  }
  ++buffer.total;
}

}  // namespace trace_detail

void trace_start() {
  trace_detail::registry();  // pin the epoch before the first span
  trace_detail::enabled.store(true, std::memory_order_relaxed);
}

bool trace_stop(const std::string& path) {
  trace_detail::enabled.store(false, std::memory_order_relaxed);
  return trace_detail::write_and_clear(path);
}

void trace_reset() {
  trace_detail::Registry& reg = trace_detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buffer : reg.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->ring.clear();
    buffer->total = 0;
    buffer->dropped = 0;
  }
}

void trace_set_thread_name(const std::string& name) {
  trace_detail::tl_pending_name = name;
  if (trace_detail::tl_buffer) {
    std::lock_guard<std::mutex> lock(trace_detail::tl_buffer->mutex);
    trace_detail::tl_buffer->name = name;
  }
}

std::uint64_t trace_dropped_spans() {
  trace_detail::Registry& reg = trace_detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : reg.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Trace-file validation (shared by tools/trace_check and the unit tests).
// A minimal recursive-descent JSON parser: full syntax, no streaming.

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    if (!parse_value(out, error)) return false;
    skip_whitespace();
    if (pos_ != text_.size()) {
      error = "trailing characters at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool fail(std::string& error, const std::string& what) {
    error = what + " at offset " + std::to_string(pos_);
    return false;
  }

  bool expect(char c, std::string& error) {
    skip_whitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(error, std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out, std::string& error) {
    skip_whitespace();
    if (pos_ >= text_.size()) return fail(error, "unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, error);
    if (c == '[') return parse_array(out, error);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parse_string(out.text, error);
    }
    if (c == 't' || c == 'f') return parse_keyword(out, error);
    if (c == 'n') return parse_keyword(out, error);
    return parse_number(out, error);
  }

  bool parse_keyword(JsonValue& out, std::string& error) {
    const auto match = [&](const char* word) {
      const std::size_t len = std::char_traits<char>::length(word);
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.type = JsonValue::Type::kNull;
      return true;
    }
    return fail(error, "invalid literal");
  }

  bool parse_number(JsonValue& out, std::string& error) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return fail(error, "invalid number");
    pos_ += static_cast<std::size_t>(end - start);
    out.type = JsonValue::Type::kNumber;
    return true;
  }

  bool parse_string(std::string& out, std::string& error) {
    if (!expect('"', error)) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail(error, "bad \\u escape");
            // Decoded code point is irrelevant for validation; keep ASCII.
            out += '?';
            pos_ += 4;
            break;
          }
          default:
            return fail(error, "bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail(error, "unterminated string");
  }

  bool parse_array(JsonValue& out, std::string& error) {
    out.type = JsonValue::Type::kArray;
    if (!expect('[', error)) return false;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!parse_value(element, error)) return false;
      out.array.push_back(std::move(element));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail(error, "unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail(error, "expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out, std::string& error) {
    out.type = JsonValue::Type::kObject;
    if (!expect('{', error)) return false;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      std::string key;
      if (!parse_string(key, error)) return false;
      if (!expect(':', error)) return false;
      JsonValue value;
      if (!parse_value(value, error)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail(error, "unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        skip_whitespace();
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail(error, "expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue* require_field(const JsonValue& event, const char* key,
                               JsonValue::Type type, std::size_t index,
                               std::string& error) {
  const JsonValue* field = event.find(key);
  if (field == nullptr || field->type != type) {
    error = "event " + std::to_string(index) + ": missing or mistyped \"" +
            key + "\"";
    return nullptr;
  }
  return field;
}

}  // namespace

TraceValidation validate_trace_file(const std::string& path) {
  TraceValidation result;
  std::ifstream in(path);
  if (!in) {
    result.error = "cannot open " + path;
    return result;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  JsonValue root;
  JsonParser parser(text);
  if (!parser.parse(root, result.error)) return result;

  const JsonValue* events = nullptr;
  if (root.type == JsonValue::Type::kArray) {
    events = &root;  // Chrome also accepts a bare event array
  } else if (root.type == JsonValue::Type::kObject) {
    events = root.find("traceEvents");
    if (events == nullptr || events->type != JsonValue::Type::kArray) {
      result.error = "top-level object has no traceEvents array";
      return result;
    }
  } else {
    result.error = "top level is neither an object nor an array";
    return result;
  }

  // Per-thread completion times: spans are appended when they end, so the
  // file order within one tid must be non-decreasing in (ts + dur).
  std::vector<std::pair<double, double>> last_end;  // (tid, end) pairs
  std::set<double> span_tids;
  std::set<std::string> span_names;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& event = events->array[i];
    if (event.type != JsonValue::Type::kObject) {
      result.error = "event " + std::to_string(i) + " is not an object";
      return result;
    }
    const JsonValue* ph =
        require_field(event, "ph", JsonValue::Type::kString, i, result.error);
    if (ph == nullptr) return result;
    if (require_field(event, "name", JsonValue::Type::kString, i,
                      result.error) == nullptr ||
        require_field(event, "pid", JsonValue::Type::kNumber, i,
                      result.error) == nullptr) {
      return result;
    }
    const JsonValue* tid =
        require_field(event, "tid", JsonValue::Type::kNumber, i, result.error);
    if (tid == nullptr) return result;
    if (ph->text != "X") continue;  // metadata and other phases: no timing

    const JsonValue* ts =
        require_field(event, "ts", JsonValue::Type::kNumber, i, result.error);
    const JsonValue* dur =
        require_field(event, "dur", JsonValue::Type::kNumber, i, result.error);
    if (ts == nullptr || dur == nullptr) return result;
    if (ts->number < 0.0 || dur->number < 0.0) {
      result.error = "event " + std::to_string(i) + ": negative ts or dur";
      return result;
    }
    const double end = ts->number + dur->number;
    bool found = false;
    for (auto& [known_tid, known_end] : last_end) {
      if (known_tid == tid->number) {
        found = true;
        if (end + 1e-3 < known_end) {
          result.error = "event " + std::to_string(i) +
                         ": completion time regressed within tid " +
                         std::to_string(static_cast<long long>(tid->number));
          return result;
        }
        known_end = std::max(known_end, end);
        break;
      }
    }
    if (!found) last_end.emplace_back(tid->number, end);
    span_tids.insert(tid->number);
    span_names.insert(event.find("name")->text);
    ++result.span_count;
  }

  result.thread_count = span_tids.size();
  result.names.assign(span_names.begin(), span_names.end());
  result.ok = true;
  return result;
}

}  // namespace gcnt
