#include "common/error.h"

namespace gcnt {

const char* error_kind_name(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kIo:
      return "io";
    case ErrorKind::kCorrupt:
      return "corrupt";
    case ErrorKind::kVersion:
      return "version";
    case ErrorKind::kResource:
      return "resource";
    case ErrorKind::kUsage:
      return "usage";
    case ErrorKind::kInternal:
      return "internal";
    case ErrorKind::kDeadline:
      return "deadline";
  }
  return "internal";
}

int exit_code_for(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kUsage:
      return 64;  // EX_USAGE
    case ErrorKind::kCorrupt:
    case ErrorKind::kVersion:
      return 65;  // EX_DATAERR
    case ErrorKind::kInternal:
      return 70;  // EX_SOFTWARE
    case ErrorKind::kResource:
      return 71;  // EX_OSERR
    case ErrorKind::kIo:
      return 74;  // EX_IOERR
    case ErrorKind::kDeadline:
      return 75;  // EX_TEMPFAIL
  }
  return 70;
}

}  // namespace gcnt
