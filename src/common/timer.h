#pragma once
// Wall-clock timing utilities used by the benchmark harnesses.

#include <chrono>

namespace gcnt {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gcnt
