#include "common/thread_pool.h"

#include <algorithm>

namespace gcnt {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, worker_count());
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gcnt
