#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace gcnt {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_blocks(n, worker_count(),
                  [&fn](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) fn(i);
                  });
}

void ThreadPool::parallel_blocks(
    std::size_t n, std::size_t blocks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  blocks = std::clamp<std::size_t>(blocks, 1, n);
  const std::size_t per_block = (n + blocks - 1) / blocks;
  const std::size_t used = (n + per_block - 1) / per_block;
  if (used == 1) {
    fn(0, 0, n);
    return;
  }

  // Per-call completion state: concurrent parallel_blocks calls must not
  // wait on each other's tasks, and the first exception must reach the
  // caller. Blocks [1, used) go to the pool; the caller runs block 0.
  struct Sync {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  } sync;
  sync.remaining = used - 1;

  for (std::size_t b = 1; b < used; ++b) {
    const std::size_t begin = b * per_block;
    const std::size_t end = std::min(n, begin + per_block);
    submit([&sync, &fn, b, begin, end] {
      try {
        fn(b, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(sync.mutex);
        if (!sync.error) sync.error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(sync.mutex);
      --sync.remaining;
      if (sync.remaining == 0) sync.done.notify_one();
    });
  }
  try {
    fn(0, 0, std::min(n, per_block));
  } catch (...) {
    std::lock_guard<std::mutex> lock(sync.mutex);
    if (!sync.error) sync.error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(sync.mutex);
  sync.done.wait(lock, [&sync] { return sync.remaining == 0; });
  if (sync.error) std::rethrow_exception(sync.error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gcnt
