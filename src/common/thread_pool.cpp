#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <string>

#include "common/stats.h"
#include "common/trace.h"

namespace gcnt {

namespace {

// Pool-wide utilization stats, shared by every ThreadPool in the process.
Counter& pool_tasks_counter() {
  static Counter& counter = StatsRegistry::instance().counter("pool.tasks");
  return counter;
}

Histogram& pool_queue_wait_histogram() {
  static Histogram& histogram =
      StatsRegistry::instance().histogram("pool.queue_wait_ns");
  return histogram;
}

Histogram& pool_task_histogram() {
  static Histogram& histogram =
      StatsRegistry::instance().histogram("pool.task_ns");
  return histogram;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  busy_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    busy_ns_[i].store(0, std::memory_order_relaxed);
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::submit(std::function<void()> task) {
  QueuedTask entry{std::move(task), 0};
  if (trace_enabled() || stats_enabled()) {
    entry.enqueue_ns = trace_detail::now_ns();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(entry));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_blocks(n, worker_count(),
                  [&fn](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) fn(i);
                  });
}

void ThreadPool::parallel_blocks(
    std::size_t n, std::size_t blocks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  blocks = std::clamp<std::size_t>(blocks, 1, n);
  const std::size_t per_block = (n + blocks - 1) / blocks;
  const std::size_t used = (n + per_block - 1) / per_block;
  if (used == 1) {
    fn(0, 0, n);
    return;
  }

  // Per-call completion state: concurrent parallel_blocks calls must not
  // wait on each other's tasks, and the first exception must reach the
  // caller. Blocks [1, used) go to the pool; the caller runs block 0.
  struct Sync {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  } sync;
  sync.remaining = used - 1;

  for (std::size_t b = 1; b < used; ++b) {
    const std::size_t begin = b * per_block;
    const std::size_t end = std::min(n, begin + per_block);
    submit([&sync, &fn, b, begin, end] {
      try {
        fn(b, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(sync.mutex);
        if (!sync.error) sync.error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(sync.mutex);
      --sync.remaining;
      if (sync.remaining == 0) sync.done.notify_one();
    });
  }
  try {
    fn(0, 0, std::min(n, per_block));
  } catch (...) {
    std::lock_guard<std::mutex> lock(sync.mutex);
    if (!sync.error) sync.error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(sync.mutex);
  sync.done.wait(lock, [&sync] { return sync.remaining == 0; });
  if (sync.error) std::rethrow_exception(sync.error);
}

void ThreadPool::worker_loop(std::size_t index) {
  // Globally unique worker names: the trainer and the shared kernel pool
  // may both own pools within one process.
  static std::atomic<std::uint64_t> next_worker{1};
  trace_set_thread_name(
      "worker-" +
      std::to_string(next_worker.fetch_add(1, std::memory_order_relaxed)));
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (trace_enabled() || stats_enabled()) {
      const std::uint64_t start = trace_detail::now_ns();
      if (task.enqueue_ns != 0 && start > task.enqueue_ns) {
        pool_queue_wait_histogram().record(start - task.enqueue_ns);
      }
      task.fn();
      const std::uint64_t end = trace_detail::now_ns();
      busy_ns_[index].fetch_add(end - start, std::memory_order_relaxed);
      pool_tasks_counter().add();
      pool_task_histogram().record(end - start);
      if (trace_enabled()) {
        trace_detail::record("pool.task", start, end, nullptr, 0.0, nullptr,
                             0.0);
      }
    } else {
      task.fn();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gcnt
