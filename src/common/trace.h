#pragma once
// Scoped trace spans recorded into per-thread ring buffers and exported
// as Chrome trace-event JSON (loadable in chrome://tracing or Perfetto).
//
// Recording is off by default. GCNT_TRACE=<path> (read once at startup)
// starts it and registers an atexit writer to <path>; trace_start() /
// trace_stop(path) do the same programmatically. A disabled TraceSpan is
// one relaxed atomic load and a branch — the instrumented kernels pay
// effectively nothing when tracing is off.
//
// Each recording thread owns a fixed-capacity ring buffer (default 65536
// spans, GCNT_TRACE_BUFFER overrides); when it fills, the oldest spans are
// overwritten and counted as dropped. Span names must be string literals
// (the buffer stores the pointer, not a copy).

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace gcnt {

namespace trace_detail {
extern std::atomic<bool> enabled;

/// Nanoseconds on the steady clock since the process trace epoch.
std::uint64_t now_ns() noexcept;

/// Appends one completed span to the calling thread's ring buffer.
/// `name` and the arg keys must be string literals; unused arg slots pass
/// nullptr keys.
void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
            const char* key0, double value0, const char* key1, double value1);

/// True while a TraceSuppressScope is active on the calling thread.
bool thread_suppressed() noexcept;
}  // namespace trace_detail

/// True while spans are being recorded.
inline bool trace_enabled() noexcept {
  return trace_detail::enabled.load(std::memory_order_relaxed);
}

/// Trace-epoch timestamp for callers recording spans with explicit
/// begin/end pairs (e.g. the serve queue-wait span, whose begin happens
/// on the reader thread and whose end happens on a worker).
inline std::uint64_t trace_now_ns() noexcept {
  return trace_detail::now_ns();
}

/// Starts recording spans (idempotent).
void trace_start();

/// Stops recording, writes everything recorded so far to `path` as Chrome
/// trace-event JSON, and clears the buffers. Returns false on I/O failure.
bool trace_stop(const std::string& path);

/// Discards every recorded span without writing (buffers stay allocated).
void trace_reset();

/// Names the calling thread in trace output ("main", "worker-3", ...).
/// Cheap; safe to call whether or not tracing is enabled.
void trace_set_thread_name(const std::string& name);

/// Spans dropped so far because a ring buffer wrapped.
std::uint64_t trace_dropped_spans();

/// Deterministic sampling period: 1 = trace every request, N = trace
/// every Nth. Seeded from GCNT_TRACE_SAMPLE ("1/N" or "N", read once at
/// startup); set_trace_sample_period overrides programmatically.
std::uint64_t trace_sample_period() noexcept;
void set_trace_sample_period(std::uint64_t period) noexcept;

/// Sampling decision for sequence number `seq`: true when tracing is
/// enabled and `seq` lands on the sampling grid (seq % period == 0).
/// Deterministic, so a replayed workload samples the same requests.
inline bool trace_should_sample(std::uint64_t seq) noexcept {
  if (!trace_enabled()) return false;
  const std::uint64_t period = trace_sample_period();
  return period <= 1 || seq % period == 0;
}

/// Suppresses span recording on the calling thread while alive. The
/// serve worker wraps unsampled requests in one of these so their nested
/// GCNT_KERNEL_SCOPE spans stay out of the trace while sampled requests
/// record their full span tree. Nests; stats are unaffected.
class TraceSuppressScope {
 public:
  explicit TraceSuppressScope(bool suppress = true);
  ~TraceSuppressScope();
  TraceSuppressScope(const TraceSuppressScope&) = delete;
  TraceSuppressScope& operator=(const TraceSuppressScope&) = delete;

 private:
  bool active_;
};

/// RAII span: records [construction, destruction) on the calling thread.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept {
    if (trace_enabled() && !trace_detail::thread_suppressed()) {
      name_ = name;
      begin_ = trace_detail::now_ns();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr && trace_enabled()) {
      trace_detail::record(name_, begin_, trace_detail::now_ns(), keys_[0],
                           values_[0], keys_[1], values_[1]);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric argument (at most two; `key` must be a literal).
  void arg(const char* key, double value) noexcept {
    if (name_ == nullptr) return;
    if (keys_[0] == nullptr) {
      keys_[0] = key;
      values_[0] = value;
    } else if (keys_[1] == nullptr) {
      keys_[1] = key;
      values_[1] = value;
    }
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t begin_ = 0;
  const char* keys_[2] = {nullptr, nullptr};
  double values_[2] = {0.0, 0.0};
};

/// One clock pair feeding both the trace (a span) and the stats registry
/// (kernel.<name>.calls / kernel.<name>.ns); active only when either
/// subsystem is enabled.
class InstrumentScope {
 public:
  InstrumentScope(const char* name, KernelStats& stats) noexcept
      : name_(name), stats_(&stats) {
    active_ = trace_enabled() || stats_enabled();
    if (active_) begin_ = trace_detail::now_ns();
  }
  ~InstrumentScope() {
    if (!active_) return;
    const std::uint64_t end = trace_detail::now_ns();
    if (stats_enabled()) {
      stats_->calls.add();
      stats_->latency_ns.record(end - begin_);
    }
    if (trace_enabled() && !trace_detail::thread_suppressed()) {
      trace_detail::record(name_, begin_, end, nullptr, 0.0, nullptr, 0.0);
    }
  }
  InstrumentScope(const InstrumentScope&) = delete;
  InstrumentScope& operator=(const InstrumentScope&) = delete;

 private:
  const char* name_;
  KernelStats* stats_;
  std::uint64_t begin_ = 0;
  bool active_ = false;
};

/// Standard per-kernel instrumentation: one span + calls/latency stats.
///   void CsrMatrix::spmm(...) { GCNT_KERNEL_SCOPE("spmm"); ... }
#define GCNT_KERNEL_SCOPE(name)                                      \
  static ::gcnt::KernelStats& gcnt_kernel_stats_here_ =              \
      ::gcnt::kernel_stats(name);                                    \
  ::gcnt::InstrumentScope gcnt_kernel_scope_here_(name,              \
                                                  gcnt_kernel_stats_here_)

/// Structural validation of a Chrome trace-event JSON file, shared by
/// tools/trace_check and the unit tests.
struct TraceValidation {
  bool ok = false;
  std::string error;                 ///< first failure when !ok
  std::size_t span_count = 0;        ///< "ph":"X" events
  std::size_t thread_count = 0;      ///< distinct tids with at least 1 span
  std::size_t request_tree_count = 0;  ///< well-formed "rid" span trees
  std::vector<std::string> names;    ///< distinct span names, sorted
};

/// Checks that `path` parses as JSON, has a traceEvents array, every span
/// carries name/ph/pid/tid/ts/dur with dur >= 0, and per-thread span
/// completion times (ts + dur) are monotonically non-decreasing.
///
/// Spans carrying a numeric "rid" arg form request trees: each rid must
/// have exactly one "serve.request" root; "serve.queue_wait" spans must
/// end at or before their root begins (the hand-off from the reader
/// thread to the worker); every other rid span must nest inside its
/// root's interval. Orphaned rid spans (no root, or outside it) fail
/// validation; well-formed trees are counted in request_tree_count.
TraceValidation validate_trace_file(const std::string& path);

}  // namespace gcnt
