#pragma once
// Structured error taxonomy for everything that can fail at a system
// boundary: artifact and netlist I/O, corrupted or version-skewed
// persisted state, and resource exhaustion.
//
// Error derives from std::runtime_error, so existing catch sites keep
// working; new code catches gcnt::Error and dispatches on kind(). The CLI
// maps each kind to a distinct sysexits-style process exit code so shell
// scripts and CI can tell "retry after freeing disk" from "the artifact
// is garbage" (see exit_code_for).

#include <stdexcept>
#include <string>

namespace gcnt {

enum class ErrorKind {
  kIo,        ///< open/read/write/rename failed (errno-level trouble)
  kCorrupt,   ///< artifact parsed but failed validation (checksum, bounds)
  kVersion,   ///< artifact produced by an incompatible format version
  kResource,  ///< allocation or capacity limit hit
  kUsage,     ///< caller error: bad flag, bad spec string, bad argument
  kInternal,  ///< invariant violation — a bug, not an input problem
  kDeadline,  ///< request shed: its deadline expired before or while serving
};

/// Stable lower-case identifier ("io", "corrupt", ...) for logs and CLI
/// diagnostics.
const char* error_kind_name(ErrorKind kind) noexcept;

/// sysexits(3)-compatible process exit code for an error kind:
/// usage=64 (EX_USAGE), corrupt/version=65 (EX_DATAERR), internal=70
/// (EX_SOFTWARE), resource=71 (EX_OSERR), io=74 (EX_IOERR),
/// deadline=75 (EX_TEMPFAIL: the same request may succeed if retried
/// with a looser deadline or under less load).
int exit_code_for(ErrorKind kind) noexcept;

class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

}  // namespace gcnt
