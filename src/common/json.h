#pragma once
// Minimal JSON utilities shared by the observability exporters and the
// validation tools: RFC 8259 string escaping (used by the trace writer,
// the stats JSON export, and the serve access log) and a small
// recursive-descent parser (full syntax, no streaming) used to validate
// what those writers produced.

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gcnt::json {

/// Writes `text` with '"', '\\', and control characters escaped so the
/// result is a valid JSON string body (quotes not included).
void write_escaped(std::ostream& out, std::string_view text);

/// Returns the escaped form of `text` (quotes not included).
std::string escaped(std::string_view text);

/// One parsed JSON value. Object member order is preserved.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// First member named `key`, or nullptr (objects only).
  const Value* find(const std::string& key) const;
};

/// Parses `text` as exactly one JSON value (trailing non-whitespace is an
/// error). Returns false with a position-annotated `error` on failure.
bool parse(const std::string& text, Value& out, std::string& error);

}  // namespace gcnt::json
