#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace gcnt::json {

void write_escaped(std::ostream& out, std::string_view text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out << buf;
    } else {
      out << c;
    }
  }
}

std::string escaped(std::string_view text) {
  std::ostringstream out;
  write_escaped(out, text);
  return out.str();
}

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse(Value& out, std::string& error) {
    if (!parse_value(out, error)) return false;
    skip_whitespace();
    if (pos_ != text_.size()) {
      error = "trailing characters at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool fail(std::string& error, const std::string& what) {
    error = what + " at offset " + std::to_string(pos_);
    return false;
  }

  bool expect(char c, std::string& error) {
    skip_whitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(error, std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_value(Value& out, std::string& error) {
    skip_whitespace();
    if (pos_ >= text_.size()) return fail(error, "unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, error);
    if (c == '[') return parse_array(out, error);
    if (c == '"') {
      out.type = Value::Type::kString;
      return parse_string(out.text, error);
    }
    if (c == 't' || c == 'f') return parse_keyword(out, error);
    if (c == 'n') return parse_keyword(out, error);
    return parse_number(out, error);
  }

  bool parse_keyword(Value& out, std::string& error) {
    const auto match = [&](const char* word) {
      const std::size_t len = std::char_traits<char>::length(word);
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out.type = Value::Type::kBool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.type = Value::Type::kBool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.type = Value::Type::kNull;
      return true;
    }
    return fail(error, "invalid literal");
  }

  bool parse_number(Value& out, std::string& error) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return fail(error, "invalid number");
    pos_ += static_cast<std::size_t>(end - start);
    out.type = Value::Type::kNumber;
    return true;
  }

  bool parse_string(std::string& out, std::string& error) {
    if (!expect('"', error)) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail(error, "bad \\u escape");
            // Decode BMP escapes so control characters round-trip through
            // the \u00xx form the writers emit; anything wider than one
            // byte is validation-irrelevant and kept as '?'.
            unsigned code = 0;
            for (std::size_t k = 0; k < 4; ++k) {
              const char h = text_[pos_ + k];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail(error, "bad \\u escape");
              }
            }
            out += code < 0x80 ? static_cast<char>(code) : '?';
            pos_ += 4;
            break;
          }
          default:
            return fail(error, "bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail(error, "unterminated string");
  }

  bool parse_array(Value& out, std::string& error) {
    out.type = Value::Type::kArray;
    if (!expect('[', error)) return false;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Value element;
      if (!parse_value(element, error)) return false;
      out.array.push_back(std::move(element));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail(error, "unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail(error, "expected ',' or ']'");
    }
  }

  bool parse_object(Value& out, std::string& error) {
    out.type = Value::Type::kObject;
    if (!expect('{', error)) return false;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      std::string key;
      if (!parse_string(key, error)) return false;
      if (!expect(':', error)) return false;
      Value value;
      if (!parse_value(value, error)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail(error, "unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        skip_whitespace();
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail(error, "expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse(const std::string& text, Value& out, std::string& error) {
  return Parser(text).parse(out, error);
}

}  // namespace gcnt::json
