#pragma once
// Fixed-size worker pool with parallel_for / parallel_blocks helpers.
//
// Two roles: the trainer assigns one graph per worker and averages
// gradients (the stand-in for the paper's multi-GPU data parallelism), and
// the shared kernel pool (common/parallel.h) schedules row blocks of the
// SpMM/GEMM/fault-sim hot paths across it. On a single-core host the pool
// degrades gracefully to serial execution.
//
// parallel_for/parallel_blocks use per-call completion tracking, so
// concurrent calls from different threads are safe, and the first
// exception thrown by the body is rethrown on the calling thread.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gcnt {

class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Enqueues a task. Tasks must not throw (use parallel_for/parallel_blocks
  /// for bodies that may).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and blocks until all chunks complete. The first exception
  /// thrown by fn is rethrown here once every chunk has finished.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(block, begin, end) over `blocks` contiguous equal slices of
  /// [0, n) (static deterministic partition: per_block = ceil(n / blocks)).
  /// The calling thread executes block 0 itself; the first exception thrown
  /// by fn is rethrown here once every block has finished.
  void parallel_blocks(
      std::size_t n, std::size_t blocks,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Nanoseconds worker `index` has spent running tasks. Only accumulated
  /// while tracing or stats collection is enabled (zero otherwise).
  std::uint64_t worker_busy_ns(std::size_t index) const noexcept {
    return busy_ns_[index].load(std::memory_order_relaxed);
  }

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;  // 0 when instrumentation was off at submit
  };

  void worker_loop(std::size_t index);

  std::vector<std::thread> threads_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> busy_ns_;
  std::deque<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace gcnt
