#pragma once
// Fixed-size worker pool with a parallel_for helper.
//
// This is the stand-in for the paper's multi-GPU data parallelism: the
// trainer assigns one graph per worker and averages gradients, exactly as
// the paper assigns one graph per GPU. On a single-core host the pool
// degrades gracefully to serial execution.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gcnt {

class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Enqueues a task. Tasks must not throw.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and blocks until all chunks complete.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace gcnt
