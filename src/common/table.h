#pragma once
// Plain-text report tables.
//
// The benchmark harnesses print tables in the same shape as the paper's
// tables; this helper keeps the formatting (alignment, ratio rows) in one
// place and can also emit CSV for downstream plotting.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace gcnt {

/// A simple column-aligned table of strings with a title and header row.
class Table {
 public:
  Table(std::string title, std::vector<std::string> header);

  /// Appends a row; pads or truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a rule under the header.
  void print(std::ostream& os) const;

  /// Renders as comma-separated values (header first).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return header_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  /// Formats a double with fixed precision (helper for cell construction).
  static std::string num(double value, int precision = 3);
  /// Formats a percentage, e.g. 99.31%.
  static std::string percent(double fraction, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gcnt
