#include "common/artifact.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/fault_inject.h"
#include "common/stats.h"

namespace gcnt {

namespace {

constexpr const char* kEnvelopeMagic = "gcnt-artifact";
constexpr int kEnvelopeVersion = 1;
/// Declared payload sizes above this are rejected outright so a hostile
/// header cannot drive a multi-GB allocation (1 GiB).
constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 30;

/// CRC-32C lookup table (reflected 0x1EDC6F41), built once.
const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

[[noreturn]] void fail_io(const std::string& what, const std::string& path) {
  const int saved_errno = errno;
  std::string message = what + ": " + path;
  if (saved_errno != 0) {
    message += " (";
    message += std::strerror(saved_errno);
    message += ")";
  }
  throw Error(ErrorKind::kIo, message);
}

/// fsync via a fresh descriptor (the C++ stream API exposes no fd).
void fsync_path(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY
                                                : O_WRONLY);
  if (fd < 0) fail_io("cannot open for fsync", path);
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail_io("fsync failed", path);
  }
  ::close(fd);
}

std::string parent_directory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Counter& atomic_writes_counter() {
  static Counter& c =
      StatsRegistry::instance().counter("artifact.atomic_writes");
  return c;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t crc) noexcept {
  const auto& table = crc32c_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  std::ostringstream buffer;
  writer(buffer);
  const std::string contents = buffer.str();

  // The write probe may throw (fail-write) — before any byte hits disk,
  // so the previous artifact survives — or truncate (short-write), which
  // models a torn write that still got renamed into place: the loader
  // must catch it by checksum, and the fault tests assert exactly that.
  const std::size_t keep = fault_write_probe(contents.size());

  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) fail_io("cannot open for write", temp);
    out.write(contents.data(), static_cast<std::streamsize>(keep));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(temp.c_str());
      fail_io("write failed", temp);
    }
  }
  try {
    fsync_path(temp, /*directory=*/false);
  } catch (...) {
    std::remove(temp.c_str());
    throw;
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    fail_io("rename failed", path);
  }
  // Make the rename itself durable. Failure here is not fatal to
  // correctness (the file is complete either way) but is still surfaced.
  fsync_path(parent_directory(path), /*directory=*/true);
  atomic_writes_counter().add();
}

void write_artifact_file(const std::string& path, const std::string& kind,
                         const std::string& payload) {
  const std::uint32_t crc = crc32c(payload.data(), payload.size());
  atomic_write_file(path, [&](std::ostream& out) {
    char header[160];
    std::snprintf(header, sizeof(header), "%s v%d %s %zu %08x\n",
                  kEnvelopeMagic, kEnvelopeVersion, kind.c_str(),
                  payload.size(), crc);
    out << header;
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  });
}

std::string read_artifact_file(const std::string& path,
                               const std::string& kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail_io("cannot open for read", path);

  std::string header;
  if (!std::getline(in, header)) {
    throw Error(ErrorKind::kCorrupt, "artifact has no header: " + path);
  }
  std::istringstream fields(header);
  std::string magic, version, file_kind, crc_hex;
  std::uint64_t declared_bytes = 0;
  if (!(fields >> magic >> version >> file_kind >> declared_bytes >>
        crc_hex) ||
      magic != kEnvelopeMagic) {
    throw Error(ErrorKind::kCorrupt, "not a gcnt artifact: " + path);
  }
  if (version != "v" + std::to_string(kEnvelopeVersion)) {
    throw Error(ErrorKind::kVersion, "artifact " + path + " is " + version +
                                         ", this build reads v" +
                                         std::to_string(kEnvelopeVersion));
  }
  if (file_kind != kind) {
    throw Error(ErrorKind::kCorrupt, "artifact " + path + " holds a '" +
                                         file_kind + "', expected '" + kind +
                                         "'");
  }
  if (declared_bytes > kMaxPayloadBytes) {
    throw Error(ErrorKind::kCorrupt,
                "artifact " + path + " declares an implausible payload of " +
                    std::to_string(declared_bytes) + " bytes");
  }
  std::uint32_t declared_crc = 0;
  {
    std::istringstream hex(crc_hex);
    hex >> std::hex >> declared_crc;
    if (hex.fail() || crc_hex.empty()) {
      throw Error(ErrorKind::kCorrupt, "artifact has a malformed checksum: " +
                                           path);
    }
  }

  fault_alloc_probe("artifact payload");
  std::string payload(static_cast<std::size_t>(declared_bytes), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (static_cast<std::uint64_t>(in.gcount()) != declared_bytes) {
    throw Error(ErrorKind::kCorrupt,
                "artifact " + path + " is truncated: expected " +
                    std::to_string(declared_bytes) + " payload bytes, got " +
                    std::to_string(in.gcount()));
  }

  // The read probe flips a payload bit *before* verification, so an
  // injected flip must surface as the checksum mismatch below.
  fault_read_probe(payload.data(), payload.size());

  const std::uint32_t actual_crc = crc32c(payload.data(), payload.size());
  if (actual_crc != declared_crc) {
    char expected[16], got[16];
    std::snprintf(expected, sizeof(expected), "%08x", declared_crc);
    std::snprintf(got, sizeof(got), "%08x", actual_crc);
    throw Error(ErrorKind::kCorrupt, "artifact " + path +
                                         " failed checksum: header says " +
                                         expected + ", payload is " + got);
  }
  return payload;
}

bool is_artifact_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string word;
  return static_cast<bool>(in >> word) && word == kEnvelopeMagic;
}

}  // namespace gcnt
