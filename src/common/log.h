#pragma once
// Minimal leveled logging to stderr.
//
// The library itself is quiet by default; benches and examples raise the
// level to Info to narrate progress. Not thread-safe beyond the atomicity
// of single stream insertions, which is sufficient for progress messages.

#include <iostream>
#include <sstream>
#include <string>

namespace gcnt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel& log_level() noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& message);
}  // namespace detail

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  detail::log_line(level, oss.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  log(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace gcnt
