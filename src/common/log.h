#pragma once
// Minimal leveled logging to stderr.
//
// The library itself is quiet by default; benches and examples raise the
// level to Info to narrate progress, and GCNT_LOG_LEVEL (debug / info /
// warn / error / off, or 0-4) overrides the default without code changes.
// Thread-safe: each message is formatted into one string first and then
// emitted as a single write under a mutex, so lines from kernel-pool
// workers never shear.

#include <iostream>
#include <sstream>
#include <string>

namespace gcnt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded. Initialized from
/// GCNT_LOG_LEVEL when set, else kWarn.
LogLevel& log_level() noexcept;

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive)
/// or a numeric level 0-4; anything else returns `fallback`.
LogLevel parse_log_level(const char* text, LogLevel fallback) noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& message);
}  // namespace detail

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  detail::log_line(level, oss.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  log(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace gcnt
