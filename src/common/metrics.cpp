#include "common/metrics.h"

#include <stdexcept>

namespace gcnt {

double ConfusionMatrix::accuracy() const noexcept {
  const std::size_t n = total();
  return n == 0 ? 0.0
                : static_cast<double>(true_positive + true_negative) /
                      static_cast<double>(n);
}

double ConfusionMatrix::precision() const noexcept {
  const std::size_t denom = true_positive + false_positive;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positive) /
                          static_cast<double>(denom);
}

double ConfusionMatrix::recall() const noexcept {
  const std::size_t denom = true_positive + false_negative;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positive) /
                          static_cast<double>(denom);
}

double ConfusionMatrix::f1() const noexcept {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

ConfusionMatrix evaluate_binary(const std::vector<std::int32_t>& predictions,
                                const std::vector<std::int32_t>& labels,
                                const std::vector<std::uint32_t>* rows) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("evaluate_binary: size mismatch");
  }
  ConfusionMatrix cm;
  const std::size_t count = rows ? rows->size() : labels.size();
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t i = rows ? (*rows)[k] : k;
    const bool predicted = predictions[i] == 1;
    const bool actual = labels[i] == 1;
    if (predicted && actual) {
      ++cm.true_positive;
    } else if (!predicted && !actual) {
      ++cm.true_negative;
    } else if (predicted) {
      ++cm.false_positive;
    } else {
      ++cm.false_negative;
    }
  }
  return cm;
}

}  // namespace gcnt
