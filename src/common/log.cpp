#include "common/log.h"

#include <cctype>
#include <cstdlib>
#include <mutex>

namespace gcnt {

LogLevel parse_log_level(const char* text, LogLevel fallback) noexcept {
  if (text == nullptr || *text == '\0') return fallback;
  std::string lowered;
  for (const char* p = text; *p != '\0'; ++p) {
    lowered += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lowered == "debug" || lowered == "0") return LogLevel::kDebug;
  if (lowered == "info" || lowered == "1") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning" || lowered == "2") {
    return LogLevel::kWarn;
  }
  if (lowered == "error" || lowered == "3") return LogLevel::kError;
  if (lowered == "off" || lowered == "none" || lowered == "4") {
    return LogLevel::kOff;
  }
  return fallback;
}

LogLevel& log_level() noexcept {
  static LogLevel level =
      parse_log_level(std::getenv("GCNT_LOG_LEVEL"), LogLevel::kWarn);
  return level;
}

namespace detail {

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

std::mutex& log_mutex() {
  // Leaked: kernel-pool workers may log during static destruction.
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}
}  // namespace

void log_line(LogLevel level, const std::string& message) {
  // One pre-built string, one insertion under the lock: concurrent callers
  // (e.g. pool workers) cannot interleave within a line.
  std::string line;
  line.reserve(message.size() + 10);
  line += "[";
  line += level_tag(level);
  line += "] ";
  line += message;
  line += "\n";
  std::lock_guard<std::mutex> lock(log_mutex());
  std::cerr << line;
}

}  // namespace detail
}  // namespace gcnt
