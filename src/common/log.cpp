#include "common/log.h"

namespace gcnt {

LogLevel& log_level() noexcept {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

namespace detail {

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void log_line(LogLevel level, const std::string& message) {
  std::cerr << "[" << level_tag(level) << "] " << message << "\n";
}

}  // namespace detail
}  // namespace gcnt
