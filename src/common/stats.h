#pragma once
// Process-wide stats registry: named counters, gauges, and log-scale
// latency histograms with snapshot/reset and plain-text + JSON export.
//
// Collection is off by default and enabled by GCNT_STATS=1 (read once at
// startup) or set_stats_enabled(true). Every mutation is guarded by one
// relaxed atomic flag load, so the instrumented hot paths are effectively
// free when stats are disabled; when enabled, mutations are relaxed
// atomic adds (safe from any thread, including kernel-pool workers).
//
// Named objects are registered once and live for the whole process, so
// call sites can cache references in function-local statics:
//
//   static Counter& calls = StatsRegistry::instance().counter("spmm.calls");
//   calls.add();

#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace gcnt {

namespace stats_detail {
extern std::atomic<bool> enabled;
}  // namespace stats_detail

/// True when the registry is collecting (GCNT_STATS=1 or programmatic).
inline bool stats_enabled() noexcept {
  return stats_detail::enabled.load(std::memory_order_relaxed);
}

/// Turns collection on/off process-wide (overrides the GCNT_STATS env).
void set_stats_enabled(bool on) noexcept;

/// Monotonically increasing event count. Wraps modulo 2^64 on overflow.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (stats_enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-set instantaneous value (e.g. per-worker busy nanoseconds).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (stats_enabled()) value_.store(v, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-scale (power-of-two bucket) histogram for latency-like values.
/// Bucket 0 holds exact zeros; bucket i >= 1 holds [2^(i-1), 2^i).
class Histogram {
 public:
  /// 40 buckets cover 0 and [1, 2^39) — ~9 minutes at nanosecond
  /// resolution; larger values clamp into the last bucket.
  static constexpr std::size_t kBucketCount = 40;

  static std::size_t bucket_index(std::uint64_t value) noexcept {
    if (value == 0) return 0;
    const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
    return width < kBucketCount ? width : kBucketCount - 1;
  }
  /// Smallest value that lands in bucket `index` (0, 1, 2, 4, 8, ...).
  static std::uint64_t bucket_lower_bound(std::size_t index) noexcept {
    return index == 0 ? 0 : std::uint64_t{1} << (index - 1);
  }

  void record(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0 when the histogram is empty.
  std::uint64_t min() const noexcept;
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket_count(std::size_t index) const noexcept {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Point-in-time copy of every registered stat, sorted by name — two
/// snapshots of identical workloads compare equal field-by-field (modulo
/// wall-clock-derived sums).
struct StatsSnapshot {
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    /// (bucket lower bound, count) for non-empty buckets only.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramValue> histograms;
};

/// Quantile estimate (q in [0, 1]) from a log2-bucket histogram value,
/// assuming a uniform distribution within each bucket and clamping to the
/// recorded [min, max] — so an empty histogram returns 0, a single-sample
/// histogram returns that sample exactly, and the open-ended overflow
/// bucket never extrapolates past the recorded maximum.
double histogram_quantile(const StatsSnapshot::HistogramValue& hist, double q);

/// Windowed view between two snapshots of the same registry: counter and
/// histogram count/sum/bucket values become `cur - prev` (names missing
/// from `prev` count from zero); gauges keep their current value. A
/// windowed histogram's min/max are copied from `cur` — a superset of the
/// window's true range, which keeps histogram_quantile's clamp sound.
StatsSnapshot snapshot_delta(const StatsSnapshot& prev,
                             const StatsSnapshot& cur);

/// Prometheus-style text exposition of `cur`. Stat names are mangled to
/// metric names ("serve.queue_depth" -> "gcnt_serve_queue_depth");
/// counters gain "_total", histograms export summary quantiles
/// (p50/p90/p99 via histogram_quantile) plus "_sum"/"_count". When `prev`
/// is non-null, "_delta" counter series and "_window" histogram series
/// (quantiles over the scrape interval) are emitted as well.
void write_prometheus(std::ostream& out, const StatsSnapshot& cur,
                      const StatsSnapshot* prev = nullptr);

/// Parses "name value" / "name{labels} value" sample lines produced by
/// write_prometheus into a flat map keyed by the full series string
/// (labels included). Comment and blank lines are skipped. Returns false
/// on the first malformed line, described in `error`.
bool parse_prometheus_text(const std::string& text,
                           std::map<std::string, double>& out,
                           std::string& error);

class StatsRegistry {
 public:
  static StatsRegistry& instance();

  /// Returns the named stat, creating it on first use. References stay
  /// valid for the process lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  StatsSnapshot snapshot() const;
  /// Zeroes every registered stat (registrations are kept).
  void reset();

  /// "name value" lines grouped by kind, sorted by name.
  void write_text(std::ostream& out) const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  void write_json(std::ostream& out) const;

 private:
  StatsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Cached per-kernel instrumentation pair: "kernel.<name>.calls" counter
/// and "kernel.<name>.ns" latency histogram (see GCNT_KERNEL_SCOPE in
/// common/trace.h).
struct KernelStats {
  Counter& calls;
  Histogram& latency_ns;
};

/// Registers (once) and returns the stats pair for kernel `name`.
KernelStats& kernel_stats(const char* name);

}  // namespace gcnt
