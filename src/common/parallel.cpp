#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>

#include "common/stats.h"

namespace gcnt {

namespace {

std::mutex pool_mutex;
std::unique_ptr<ThreadPool> pool;           // guarded by pool_mutex
std::size_t pool_workers = 0;               // workers `pool` was built with
std::size_t override_threads = 0;           // set_kernel_threads value

// True while the current thread is executing a kernel-pool block; nested
// kernels then run inline instead of deadlocking on their own pool.
thread_local bool in_kernel_block = false;

/// Upper bound on pool size; keeps a malformed or hostile GCNT_THREADS
/// (e.g. "-3" wrapping through strtoull) from attempting a giant reserve.
constexpr std::size_t kMaxKernelThreads = 1024;

/// GCNT_THREADS, parsed once per process (0 / unset / garbage = auto).
std::size_t env_threads() {
  static const std::size_t value = [] {
    const char* raw = std::getenv("GCNT_THREADS");
    if (raw == nullptr || *raw == '\0') return std::size_t{0};
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(raw, &end, 10);
    if (end == raw || raw[0] == '-') return std::size_t{0};  // garbage = auto
    return static_cast<std::size_t>(parsed);
  }();
  return value;
}

std::size_t resolve_threads() {
  std::size_t want = override_threads != 0 ? override_threads : env_threads();
  if (want == 0) want = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::min(want, kMaxKernelThreads);
}

}  // namespace

std::size_t kernel_threads() {
  std::lock_guard<std::mutex> lock(pool_mutex);
  return resolve_threads();
}

void set_kernel_threads(std::size_t n) {
  std::lock_guard<std::mutex> lock(pool_mutex);
  override_threads = n;
}

ThreadPool& kernel_pool() {
  std::lock_guard<std::mutex> lock(pool_mutex);
  const std::size_t want = resolve_threads();
  if (!pool || pool_workers != want) {
    pool.reset();  // join old workers before spawning replacements
    pool = std::make_unique<ThreadPool>(want);
    pool_workers = want;
  }
  return *pool;
}

BlockPlan plan_blocks(std::size_t n, std::size_t min_parallel) {
  BlockPlan plan;
  plan.n = n;
  std::size_t count = 1;
  if (n >= min_parallel && !in_kernel_block) count = kernel_threads();
  count = std::clamp<std::size_t>(count, 1, std::max<std::size_t>(1, n));
  plan.per_block = count == 0 ? 0 : (n + count - 1) / count;
  // ceil(n / per_block) blocks actually carry work; drop empty tails so
  // per-block scratch (histograms, lanes) is sized to real blocks only.
  plan.count =
      plan.per_block == 0 ? 1 : (n + plan.per_block - 1) / plan.per_block;
  if (plan.count == 0) plan.count = 1;
  return plan;
}

void run_blocks(
    const BlockPlan& plan,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (plan.n == 0) return;
  if (plan.count <= 1) {
    fn(0, 0, plan.n);
    return;
  }
  kernel_pool().parallel_blocks(
      plan.n, plan.count,
      [&fn](std::size_t block, std::size_t begin, std::size_t end) {
        const bool was_nested = in_kernel_block;
        in_kernel_block = true;
        try {
          fn(block, begin, end);
        } catch (...) {
          in_kernel_block = was_nested;
          throw;
        }
        in_kernel_block = was_nested;
      });
}

void parallel_blocks(std::size_t n, std::size_t min_parallel,
                     const std::function<void(std::size_t, std::size_t)>& fn) {
  run_blocks(plan_blocks(n, min_parallel),
             [&fn](std::size_t, std::size_t begin, std::size_t end) {
               fn(begin, end);
             });
}

void publish_kernel_pool_stats() {
  if (!stats_enabled()) return;
  std::lock_guard<std::mutex> lock(pool_mutex);
  if (!pool) return;
  StatsRegistry& registry = StatsRegistry::instance();
  registry.gauge("pool.workers")
      .set(static_cast<std::int64_t>(pool->worker_count()));
  for (std::size_t i = 0; i < pool->worker_count(); ++i) {
    registry.gauge("pool.worker" + std::to_string(i) + ".busy_ns")
        .set(static_cast<std::int64_t>(pool->worker_busy_ns(i)));
  }
}

}  // namespace gcnt
