#pragma once
// Multi-stage GCN cascade for imbalanced node classification
// (Section 3.3, Fig. 4).
//
// Each stage trains with a positive-class loss weight proportional to the
// remaining imbalance, so it only discards negatives it is confident
// about; nodes predicted positive flow to the next stage, which sees a
// progressively more balanced population. A node's final prediction is
// positive iff every stage keeps it.

#include <cstdint>
#include <vector>

#include "gcn/model.h"
#include "gcn/trainer.h"

namespace gcnt {

struct MultiStageOptions {
  std::size_t stages = 3;
  GcnConfig model;           ///< per-stage architecture (seed is offset per stage)
  TrainerOptions trainer;    ///< per-stage training budget
  /// Cap on the positive class weight (the raw imbalance ratio can exceed
  /// 100 and destabilize early training).
  float max_positive_weight = 64.0f;
  /// Positive weight used for the final stage (balanced decision).
  float final_positive_weight = 1.0f;
};

class MultiStageClassifier {
 public:
  explicit MultiStageClassifier(const MultiStageOptions& options);

  /// Trains the cascade on labeled graphs (full, imbalanced node sets).
  void fit(const std::vector<const GraphTensors*>& graphs);

  /// Cascade prediction: 1 = difficult-to-observe.
  std::vector<std::int32_t> predict(const GraphTensors& graph) const;

  const std::vector<GcnModel>& stage_models() const noexcept {
    return stages_;
  }

  /// Per-stage survivor counts recorded during fit() on the first training
  /// graph (for the stage-filtering ablation).
  const std::vector<std::size_t>& survivors_per_stage() const noexcept {
    return survivors_;
  }

 private:
  MultiStageOptions options_;
  std::vector<GcnModel> stages_;
  std::vector<std::size_t> survivors_;
};

}  // namespace gcnt
