#pragma once
// Incremental whole-graph inference for the OPI/CPI flows (Section 4).
//
// Inserting an observation point perturbs a bounded region of the graph:
// three appended COO tuples plus refreshed observability features in the
// target's fan-in cone. With D aggregation rounds, a node's logits can
// only change if it lies within D hops (along fanins *or* fanouts — Eq. 1
// aggregates both directions) of a perturbed node. DirtyConeTracker
// accumulates the perturbations of an insertion batch and computes that
// D-hop "dirty cone"; IncrementalGcnEngine keeps the per-layer embeddings
// E_0..E_D of the last full forward cached and re-propagates only the
// dirty rows, falling back to a full pass when the dirty fraction makes
// re-propagation pointless.
//
// The incremental path is bit-identical to GcnModel::infer on the updated
// tensors: spmm_rows / gemm / ReLU all preserve the per-row accumulation
// order of their whole-graph counterparts, so recomputing a subset of rows
// yields exactly the bits a full pass would (pinned by
// tests/incremental_test.cpp).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gcn/graph_tensors.h"
#include "gcn/model.h"
#include "gcn/workspace.h"

namespace gcnt {

/// Accumulates graph perturbations (appended edges, rewritten feature
/// rows, appended nodes) and expands them into the D-hop affected set.
class DirtyConeTracker {
 public:
  /// An appended edge from -> to perturbs the aggregation of both
  /// endpoints.
  void record_edge(NodeId from, NodeId to);

  /// Feature row `v` was rewritten (e.g. refreshed SCOAP CO).
  void record_feature(NodeId v);

  /// Node `v` was appended since the last sync (new OP / CP cells).
  void record_new_node(NodeId v);

  bool empty() const noexcept { return seeds_.empty(); }
  std::size_t seed_count() const noexcept { return seeds_.size(); }

  /// Forgets every recorded perturbation (after the engines consumed it).
  void clear() { seeds_.clear(); }

  /// The D-hop closure of the recorded seeds over the predecessor and
  /// successor adjacency of `tensors` (CSR forms must be rebuilt already,
  /// i.e. include the recorded edges). Sorted ascending, deduplicated.
  std::vector<NodeId> affected(const GraphTensors& tensors, int depth) const;

 private:
  std::vector<NodeId> seeds_;
};

struct IncrementalGcnOptions {
  /// When the dirty set exceeds this fraction of all nodes, update() runs
  /// a full forward instead — beyond it the subset bookkeeping costs more
  /// than it saves.
  double full_fallback_fraction = 0.25;
};

/// Per-model incremental inference state: cached E_0..E_D and logits of
/// the last (full or incremental) forward. The model's parameters must not
/// change between calls (the OPI/CPI flows use trained, frozen models).
class IncrementalGcnEngine {
 public:
  explicit IncrementalGcnEngine(const GcnModel& model,
                                IncrementalGcnOptions options = {});

  /// Full whole-graph forward (same kernels and order as
  /// GcnModel::infer), caching every intermediate embedding.
  const Matrix& refresh(const GraphTensors& tensors);

  /// Re-propagates only `dirty` rows (a DirtyConeTracker::affected set for
  /// this model's depth, against the *rebuilt* tensors). Falls back to
  /// refresh() when there is no cache yet or the dirty fraction exceeds
  /// the configured threshold. Returns the updated whole-graph logits.
  const Matrix& update(const GraphTensors& tensors,
                       const std::vector<NodeId>& dirty);

  /// Logits of the last refresh()/update() (N x num_classes).
  const Matrix& logits() const noexcept { return logits_; }

  /// Positive-class probability per node from the cached logits —
  /// identical to GcnModel::predict_positive_probability.
  std::vector<float> positive_probability() const;

  /// True when the last update() degenerated to a full forward.
  bool last_was_full() const noexcept { return last_was_full_; }
  /// Rows re-propagated by the last update() (node count on fallback).
  std::size_t last_dirty_rows() const noexcept { return last_dirty_rows_; }

  const GcnModel& model() const noexcept { return *model_; }

 private:
  const GcnModel* model_;
  IncrementalGcnOptions options_;
  std::vector<Matrix> embeddings_;  ///< E_0 .. E_D, whole-graph rows
  Matrix logits_;
  /// Scratch reused by refresh()/update(); with a stable graph size the
  /// steady-state re-propagation allocates nothing.
  ForwardWorkspace ws_;
  /// Dirty node ids mapped into compute row order (reused scratch).
  std::vector<NodeId> dirty_rows_;
  std::size_t cached_nodes_ = 0;  ///< 0 = no valid cache
  bool last_was_full_ = false;
  std::size_t last_dirty_rows_ = 0;
};

}  // namespace gcnt
