#pragma once
// Recursion-based per-node inference — the baseline of Fig. 10.
//
// Computes each node's embedding by expanding its D-hop neighborhood
// independently, exactly as the released GraphSAGE implementation [12]
// does per minibatch: overlapping neighborhoods are recomputed from
// scratch for every node, which is the duplicated work the paper's sparse
// whole-graph formulation eliminates. Produces bit-identical gate math to
// GcnModel::infer (the tests check numeric agreement), only the schedule
// differs.

#include <vector>

#include "gcn/model.h"
#include "netlist/netlist.h"

namespace gcnt {

class RecursiveInference {
 public:
  /// `features` must be the same transformed attribute matrix GcnModel
  /// consumes (GraphTensors::features).
  RecursiveInference(const GcnModel& model, const Netlist& netlist,
                     const Matrix& features);

  /// Logits for one node (length = num_classes).
  std::vector<float> infer_node(NodeId v) const;

  /// Logits for every node, one independent recursion per node.
  Matrix infer_all() const;

 private:
  std::vector<float> embed(NodeId v, int depth) const;

  const GcnModel* model_;
  const Netlist* netlist_;
  const Matrix* features_;
};

}  // namespace gcnt
