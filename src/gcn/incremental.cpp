#include "gcn/incremental.h"

#include <algorithm>
#include <stdexcept>

#include "common/stats.h"
#include "common/trace.h"
#include "nn/loss.h"

namespace gcnt {

namespace {

/// Copies the listed rows of `src` into `out`, reshaped (capacity-
/// reusing) to a compact rows.size() x cols matrix.
void gather_rows(const Matrix& src, const std::vector<NodeId>& rows,
                 Matrix& out) {
  out.resize(rows.size(), src.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const float* in = src.row(rows[i]);
    std::copy(in, in + src.cols(), out.row(i));
  }
}

/// Writes compact row i back to dst.row(rows[i]).
void scatter_rows(const Matrix& compact, const std::vector<NodeId>& rows,
                  Matrix& dst) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const float* in = compact.row(i);
    std::copy(in, in + compact.cols(), dst.row(rows[i]));
  }
}

/// Grows `m` to new_rows x cols, preserving existing rows (new rows zero).
void grow_rows(Matrix& m, std::size_t new_rows, std::size_t cols) {
  if (m.rows() == new_rows && m.cols() == cols) return;
  Matrix grown(new_rows, cols);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* in = m.row(r);
    std::copy(in, in + m.cols(), grown.row(r));
  }
  m = std::move(grown);
}

}  // namespace

void DirtyConeTracker::record_edge(NodeId from, NodeId to) {
  seeds_.push_back(from);
  seeds_.push_back(to);
}

void DirtyConeTracker::record_feature(NodeId v) { seeds_.push_back(v); }

void DirtyConeTracker::record_new_node(NodeId v) { seeds_.push_back(v); }

std::vector<NodeId> DirtyConeTracker::affected(const GraphTensors& tensors,
                                               int depth) const {
  GCNT_KERNEL_SCOPE("dirty_cone.affected");
  const std::size_t n = tensors.node_count();
  if (tensors.pred.rows() != n || tensors.succ.rows() != n) {
    throw std::invalid_argument(
        "DirtyConeTracker::affected: tensors need rebuild_csr()");
  }
  // The BFS runs in CSR (compute) row space; seeds map in through the
  // locality permutation and results map back out to node ids below.
  std::vector<std::uint8_t> visited(n, 0);
  std::vector<NodeId> frontier;
  frontier.reserve(seeds_.size());
  for (const NodeId v : seeds_) {
    if (v >= n) {
      throw std::out_of_range("DirtyConeTracker::affected: seed out of range");
    }
    const NodeId row = tensors.row_of(v);
    if (!visited[row]) {
      visited[row] = 1;
      frontier.push_back(row);
    }
  }

  // D rounds of frontier expansion along both adjacency directions: pred
  // row v lists fanins(v), succ row v lists fanouts(v), and together they
  // are exactly the nodes whose aggregation reads v (and vice versa).
  std::vector<NodeId> next;
  for (int hop = 0; hop < depth && !frontier.empty(); ++hop) {
    next.clear();
    for (const NodeId v : frontier) {
      const auto expand = [&](const CsrMatrix& adjacency) {
        const auto& row_ptr = adjacency.row_ptr();
        const auto& cols = adjacency.col_index();
        for (std::uint32_t k = row_ptr[v]; k < row_ptr[v + 1]; ++k) {
          const NodeId u = cols[k];
          if (!visited[u]) {
            visited[u] = 1;
            next.push_back(u);
          }
        }
      };
      expand(tensors.pred);
      expand(tensors.succ);
    }
    frontier.swap(next);
  }

  std::vector<NodeId> result;
  for (NodeId row = 0; row < n; ++row) {
    if (visited[row]) result.push_back(tensors.node_of(row));
  }
  if (tensors.reordered()) std::sort(result.begin(), result.end());
  return result;
}

IncrementalGcnEngine::IncrementalGcnEngine(const GcnModel& model,
                                           IncrementalGcnOptions options)
    : model_(&model), options_(options) {}

const Matrix& IncrementalGcnEngine::refresh(const GraphTensors& tensors) {
  GCNT_KERNEL_SCOPE("gcn.incremental.refresh");
  TraceSpan span("gcn.incremental.refresh");
  span.arg("nodes", static_cast<double>(tensors.node_count()));
  if (model_->precision() == Precision::kInt8) {
    // The incremental contract is bit-identity with the *cached fp32*
    // embeddings; re-propagating a dirty subset through dynamic
    // activation quantization would not reproduce whole-graph int8 bits
    // (the quantization range is global). The engine therefore always
    // runs fp32 and counts the downgrade instead of silently mixing
    // tiers (see docs/API.md "Quantized inference").
    static Counter& fallbacks =
        StatsRegistry::instance().counter("quant.fallback");
    fallbacks.add();
  }
  const float wp = model_->w_pr();
  const float ws = model_->w_su();

  // Mirrors GcnModel::run_forward kernel-for-kernel so the cached
  // embeddings (and logits) are bit-identical to a plain infer().
  const auto& encoders = model_->encoders();
  embeddings_.resize(encoders.size() + 1);
  Matrix* emb = &ws_.ping;
  Matrix* alt = &ws_.pong;
  gather_compute_rows(tensors, tensors.features, *emb);
  embeddings_[0].copy_from(*emb);
  for (std::size_t d = 0; d < encoders.size(); ++d) {
    tensors.pred.spmm(*emb, ws_.pred_sum);
    tensors.succ.spmm(*emb, ws_.succ_sum);
    ws_.aggregated.copy_from(*emb);
    ws_.aggregated.axpy(wp, ws_.pred_sum);
    ws_.aggregated.axpy(ws, ws_.succ_sum);

    encoders[d].forward_relu(ws_.aggregated, *alt);
    embeddings_[d + 1].copy_from(*alt);
    std::swap(emb, alt);
  }

  const auto& fc = model_->fc_layers();
  for (std::size_t i = 0; i < fc.size(); ++i) {
    if (i + 1 < fc.size()) {
      fc[i].forward_relu(*emb, *alt);
      std::swap(emb, alt);
    } else if (tensors.reordered()) {
      // Cached embeddings stay in compute order; logits scatter back to
      // node order (the boundary every caller sees).
      fc[i].forward(*emb, *alt);
      scatter_compute_rows(tensors, *alt, logits_);
    } else {
      fc[i].forward(*emb, logits_);
    }
  }
  cached_nodes_ = tensors.node_count();
  last_was_full_ = true;
  last_dirty_rows_ = cached_nodes_;
  return logits_;
}

const Matrix& IncrementalGcnEngine::update(const GraphTensors& tensors,
                                           const std::vector<NodeId>& dirty) {
  const std::size_t n = tensors.node_count();
  if (cached_nodes_ == 0 || n < cached_nodes_ ||
      static_cast<double>(dirty.size()) >
          options_.full_fallback_fraction * static_cast<double>(n)) {
    return refresh(tensors);
  }
  if (tensors.pred.rows() != n || tensors.succ.rows() != n) {
    throw std::invalid_argument(
        "IncrementalGcnEngine::update: tensors need rebuild_csr()");
  }
  for (const NodeId v : dirty) {
    if (v >= n) {
      throw std::out_of_range(
          "IncrementalGcnEngine::update: dirty node out of range");
    }
  }
  GCNT_KERNEL_SCOPE("gcn.incremental.update");
  TraceSpan span("gcn.incremental.update");
  span.arg("nodes", static_cast<double>(n));
  span.arg("dirty", static_cast<double>(dirty.size()));
  if (model_->precision() == Precision::kInt8) {
    // Same fp32 downgrade as refresh() (the fallback-to-refresh branch
    // above already counted its own pass).
    static Counter& fallbacks =
        StatsRegistry::instance().counter("quant.fallback");
    fallbacks.add();
  }
  last_was_full_ = false;
  last_dirty_rows_ = dirty.size();

  const float wp = model_->w_pr();
  const float ws = model_->w_su();
  const auto& encoders = model_->encoders();

  // Appended nodes grow every cached layer (new rows are always dirty, so
  // their zero placeholders are overwritten below).
  for (std::size_t d = 0; d < embeddings_.size(); ++d) {
    grow_rows(embeddings_[d], n, embeddings_[d].cols());
  }
  grow_rows(logits_, n, logits_.cols());
  cached_nodes_ = n;

  // E_0 rows come straight from the (already updated) feature matrix;
  // the cached layers live in compute row order.
  for (const NodeId v : dirty) {
    const float* in = tensors.features.row(v);
    std::copy(in, in + tensors.features.cols(),
              embeddings_[0].row(tensors.row_of(v)));
  }
  if (dirty.empty()) return logits_;
  dirty_rows_.resize(dirty.size());
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    dirty_rows_[i] = tensors.row_of(dirty[i]);
  }

  // Re-propagate the dirty rows layer by layer. A clean row's inputs are
  // all clean (the dirty set is the D-hop closure), so reading the cached
  // E_{d-1} for neighbors is exact; and every kernel here preserves the
  // whole-graph per-row accumulation order, so each recomputed row is
  // bit-identical to a full forward.
  Matrix* emb = &ws_.ping;
  Matrix* alt = &ws_.pong;
  gather_rows(embeddings_[0], dirty_rows_, *emb);
  for (std::size_t d = 0; d < encoders.size(); ++d) {
    tensors.pred.spmm_rows(dirty_rows_, embeddings_[d], ws_.pred_sum);
    tensors.succ.spmm_rows(dirty_rows_, embeddings_[d], ws_.succ_sum);
    ws_.aggregated.copy_from(*emb);
    ws_.aggregated.axpy(wp, ws_.pred_sum);
    ws_.aggregated.axpy(ws, ws_.succ_sum);

    encoders[d].forward_relu(ws_.aggregated, *alt);
    scatter_rows(*alt, dirty_rows_, embeddings_[d + 1]);
    std::swap(emb, alt);
  }

  const auto& fc = model_->fc_layers();
  for (std::size_t i = 0; i < fc.size(); ++i) {
    if (i + 1 < fc.size()) {
      fc[i].forward_relu(*emb, *alt);
      std::swap(emb, alt);
    } else {
      fc[i].forward(*emb, *alt);
      scatter_rows(*alt, dirty, logits_);
    }
  }
  return logits_;
}

std::vector<float> IncrementalGcnEngine::positive_probability() const {
  const Matrix probabilities = softmax(logits_);
  std::vector<float> positive(probabilities.rows());
  for (std::size_t r = 0; r < probabilities.rows(); ++r) {
    positive[r] = probabilities.at(r, 1);
  }
  return positive;
}

}  // namespace gcnt
