#include "gcn/model.h"

#include <stdexcept>
#include <string>

#include "common/error.h"
#include "common/stats.h"
#include "common/trace.h"

namespace gcnt {

GcnModel::GcnModel(const GcnConfig& config)
    : config_(config), w_pr_(1, 1), w_su_(1, 1) {
  if (config_.depth < 1 ||
      static_cast<std::size_t>(config_.depth) > config_.embed_dims.size()) {
    throw std::invalid_argument("GcnModel: depth out of range");
  }
  Rng rng(config_.seed);
  w_pr_.value.at(0, 0) = config_.initial_w_pr;
  w_su_.value.at(0, 0) =
      config_.tied_aggregation ? config_.initial_w_pr : config_.initial_w_su;

  std::size_t in_dim = kNodeFeatureDim;
  for (int d = 0; d < config_.depth; ++d) {
    const std::size_t out_dim = config_.embed_dims[static_cast<std::size_t>(d)];
    encoders_.emplace_back(in_dim, out_dim, rng);
    in_dim = out_dim;
  }
  for (std::size_t dim : config_.fc_dims) {
    fc_.emplace_back(in_dim, dim, rng);
    in_dim = dim;
  }
  fc_.emplace_back(in_dim, config_.num_classes, rng);
}

void GcnModel::set_precision(Precision precision) {
  if (precision == Precision::kInt8) {
    // (Re-)calibrate from the current fp32 weights. Training does not
    // refresh the snapshots automatically — call again after a training
    // run to re-calibrate.
    qencoders_.clear();
    qfc_.clear();
    qencoders_.reserve(encoders_.size());
    qfc_.reserve(fc_.size());
    for (const Linear& layer : encoders_) {
      qencoders_.push_back(quantize_linear(layer));
    }
    for (const Linear& layer : fc_) qfc_.push_back(quantize_linear(layer));
  }
  precision_ = precision;
  static Gauge& gauge = StatsRegistry::instance().gauge("model.precision");
  gauge.set(static_cast<std::int64_t>(precision_));
}

void GcnModel::install_quantized(std::vector<QuantizedLinear> encoders,
                                 std::vector<QuantizedLinear> fc) {
  if (encoders.size() != encoders_.size() || fc.size() != fc_.size()) {
    throw Error(ErrorKind::kCorrupt,
                "install_quantized: layer count mismatch");
  }
  for (std::size_t d = 0; d < encoders.size(); ++d) {
    if (encoders[d].in != encoders_[d].in_features() ||
        encoders[d].out != encoders_[d].out_features()) {
      throw Error(ErrorKind::kCorrupt,
                  "install_quantized: encoder " + std::to_string(d) +
                      " shape mismatch");
    }
  }
  for (std::size_t i = 0; i < fc.size(); ++i) {
    if (fc[i].in != fc_[i].in_features() || fc[i].out != fc_[i].out_features()) {
      throw Error(ErrorKind::kCorrupt, "install_quantized: fc layer " +
                                           std::to_string(i) +
                                           " shape mismatch");
    }
  }
  qencoders_ = std::move(encoders);
  qfc_ = std::move(fc);
  precision_ = Precision::kInt8;
  static Gauge& gauge = StatsRegistry::instance().gauge("model.precision");
  gauge.set(static_cast<std::int64_t>(precision_));
}

void GcnModel::run_forward(const GraphTensors& graph, Cache* cache,
                           ForwardWorkspace& ws, Matrix& out) const {
  if (cache == nullptr && precision_ == Precision::kInt8) {
    // The int8 tier serves inference only; the training forward (which
    // must cache fp32 activations for backward) always runs fp32.
    run_forward_int8(graph, ws, out);
    return;
  }
  TraceSpan span(cache ? "gcn.forward" : "gcn.infer");
  span.arg("nodes", static_cast<double>(graph.node_count()));
  const float wp = w_pr();
  const float wsu = w_su();

  // Ping-pong the activations through the workspace: after one warm-up
  // pass per graph, the whole forward allocates nothing. All internal
  // activations live in compute (possibly reordered) row order; only the
  // gather here and the scatter of the logits touch the permutation.
  Matrix* emb = &ws.ping;
  Matrix* alt = &ws.pong;
  gather_compute_rows(graph, graph.features, *emb);
  if (cache) {
    cache->embeddings.resize(encoders_.size() + 1);
    cache->aggregated.resize(encoders_.size());
    cache->pred_sums.resize(encoders_.size());
    cache->succ_sums.resize(encoders_.size());
    cache->fc_inputs.resize(fc_.size());
    cache->fc_outputs.resize(fc_.size() - 1);
    cache->embeddings[0].copy_from(*emb);
  }

  for (std::size_t d = 0; d < encoders_.size(); ++d) {
    // Aggregation (Eq. 1): G = E + w_pr * P*E + w_su * S*E.
    graph.pred.spmm(*emb, ws.pred_sum);
    graph.succ.spmm(*emb, ws.succ_sum);
    ws.aggregated.copy_from(*emb);
    ws.aggregated.axpy(wp, ws.pred_sum);
    ws.aggregated.axpy(wsu, ws.succ_sum);

    // Encoding: E = ReLU(G * W + b), fused into one output pass.
    encoders_[d].forward_relu(ws.aggregated, *alt);

    if (cache) {
      cache->pred_sums[d].copy_from(ws.pred_sum);
      cache->succ_sums[d].copy_from(ws.succ_sum);
      cache->aggregated[d].copy_from(ws.aggregated);
      cache->embeddings[d + 1].copy_from(*alt);
    }
    std::swap(emb, alt);
  }

  // FC head: fused ReLU between hidden layers; the final layer writes
  // the raw logits straight into `out`.
  for (std::size_t i = 0; i < fc_.size(); ++i) {
    if (cache) cache->fc_inputs[i].copy_from(*emb);
    if (i + 1 < fc_.size()) {
      fc_[i].forward_relu(*emb, *alt);
      if (cache) cache->fc_outputs[i].copy_from(*alt);
      std::swap(emb, alt);
    } else if (graph.reordered()) {
      fc_[i].forward(*emb, *alt);
      scatter_compute_rows(graph, *alt, out);
    } else {
      fc_[i].forward(*emb, out);
    }
  }
}

void GcnModel::run_forward_int8(const GraphTensors& graph,
                                ForwardWorkspace& ws, Matrix& out) const {
  TraceSpan span("gcn.infer_int8");
  span.arg("nodes", static_cast<double>(graph.node_count()));
  if (qencoders_.size() != encoders_.size() || qfc_.size() != fc_.size()) {
    throw Error(ErrorKind::kInternal,
                "run_forward_int8: quantized snapshots not calibrated");
  }
  const float wp = w_pr();
  const float wsu = w_su();

  // Mirrors run_forward's ping-pong structure. Activations stay fp32 in
  // ping/pong; the quantized code buffers are derived views feeding the
  // int8 kernels: qact encodes the current activation for the two SpMMs,
  // qagg encodes the aggregated matrix for the dense layer. The Eq. 1
  // identity term reuses the exact fp32 activation (only the neighbor
  // sums flow through codes), which keeps the quantization error per
  // layer to one activation round-trip.
  Matrix* emb = &ws.ping;
  Matrix* alt = &ws.pong;
  gather_compute_rows(graph, graph.features, *emb);

  for (std::size_t d = 0; d < encoders_.size(); ++d) {
    quantize_tensor(*emb, ws.qact);
    spmm_q8(graph.pred, ws.qact, ws.pred_sum);
    spmm_q8(graph.succ, ws.qact, ws.succ_sum);
    ws.aggregated.copy_from(*emb);
    // axpy_exact, not Matrix::axpy: the SimdOps axpy contracts to FMA
    // only on the vector targets, which would break the int8 tier's
    // cross-target bit-identity (quant.h file comment).
    axpy_exact(ws.aggregated, wp, ws.pred_sum);
    axpy_exact(ws.aggregated, wsu, ws.succ_sum);

    quantize_tensor(ws.aggregated, ws.qagg);
    quantized_linear_forward(ws.qagg, qencoders_[d], encoders_[d].bias.value,
                             *alt, /*relu=*/true);
    std::swap(emb, alt);
  }

  for (std::size_t i = 0; i < fc_.size(); ++i) {
    quantize_tensor(*emb, ws.qact);
    if (i + 1 < fc_.size()) {
      quantized_linear_forward(ws.qact, qfc_[i], fc_[i].bias.value, *alt,
                               /*relu=*/true);
      std::swap(emb, alt);
    } else if (graph.reordered()) {
      quantized_linear_forward(ws.qact, qfc_[i], fc_[i].bias.value, *alt,
                               /*relu=*/false);
      scatter_compute_rows(graph, *alt, out);
    } else {
      quantized_linear_forward(ws.qact, qfc_[i], fc_[i].bias.value, out,
                               /*relu=*/false);
    }
  }
}

Matrix GcnModel::forward(const GraphTensors& graph) {
  Matrix out;
  run_forward(graph, &cache_, ws_, out);
  return out;
}

Matrix GcnModel::infer(const GraphTensors& graph) const {
  Matrix out;
  run_forward(graph, nullptr, ws_, out);
  return out;
}

void GcnModel::infer(const GraphTensors& graph, ForwardWorkspace& ws,
                     Matrix& out) const {
  run_forward(graph, nullptr, ws, out);
}

void GcnModel::backward(const GraphTensors& graph, const Matrix& dlogits) {
  TraceSpan span("gcn.backward");
  if (cache_.fc_inputs.size() != fc_.size()) {
    throw std::logic_error("GcnModel::backward without matching forward");
  }
  // FC head, in reverse. Cached activations are in compute row order, so
  // the incoming node-order logit gradients gather through the
  // permutation first (identity copy when not reordered).
  Matrix grad;
  gather_compute_rows(graph, dlogits, grad);
  for (std::size_t i = fc_.size(); i-- > 0;) {
    Matrix dinput;
    fc_[i].backward(cache_.fc_inputs[i], grad, dinput);
    if (i > 0) {
      // Undo the ReLU that produced fc_inputs[i].
      Matrix masked;
      Relu::backward(cache_.fc_outputs[i - 1], dinput, masked);
      grad = std::move(masked);
    } else {
      grad = std::move(dinput);
    }
  }

  // Aggregation/encoder stack, in reverse. `grad` is now dE_D.
  const float wp = w_pr();
  const float ws = w_su();
  for (std::size_t d = encoders_.size(); d-- > 0;) {
    // E_d = ReLU(Z), Z = G_d * W_d + b.
    Matrix dz;
    Relu::backward(cache_.embeddings[d + 1], grad, dz);
    Matrix dg;
    encoders_[d].backward(cache_.aggregated[d], dz, dg);

    // dw_pr += sum((P*E_{d-1}) .* dG); same for w_su. With tied weights
    // both contributions flow into the single shared scalar.
    w_pr_.grad.at(0, 0) += cache_.pred_sums[d].dot(dg);
    if (config_.tied_aggregation) {
      w_pr_.grad.at(0, 0) += cache_.succ_sums[d].dot(dg);
    } else {
      w_su_.grad.at(0, 0) += cache_.succ_sums[d].dot(dg);
    }

    // dE_{d-1} = dG + w_pr * P^T * dG + w_su * S^T * dG.
    Matrix dprev = dg;
    graph.pred_t.spmm(dg, dprev, wp, 1.0f);
    graph.succ_t.spmm(dg, dprev, ws, 1.0f);
    grad = std::move(dprev);
  }
}

std::vector<float> GcnModel::predict_positive_probability(
    const GraphTensors& graph) const {
  const Matrix probabilities = softmax(infer(graph));
  std::vector<float> positive(probabilities.rows());
  for (std::size_t r = 0; r < probabilities.rows(); ++r) {
    positive[r] = probabilities.at(r, 1);
  }
  return positive;
}

std::vector<Param*> GcnModel::params() {
  std::vector<Param*> all;
  if (!config_.frozen_aggregation) {
    all.push_back(&w_pr_);
    if (!config_.tied_aggregation) all.push_back(&w_su_);
  }
  for (Linear& layer : encoders_) {
    for (Param* p : layer.params()) all.push_back(p);
  }
  for (Linear& layer : fc_) {
    for (Param* p : layer.params()) all.push_back(p);
  }
  return all;
}

void GcnModel::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::vector<const Param*> GcnModel::params() const {
  std::vector<const Param*> all;
  if (!config_.frozen_aggregation) {
    all.push_back(&w_pr_);
    if (!config_.tied_aggregation) all.push_back(&w_su_);
  }
  for (const Linear& layer : encoders_) {
    all.push_back(&layer.weight);
    all.push_back(&layer.bias);
  }
  for (const Linear& layer : fc_) {
    all.push_back(&layer.weight);
    all.push_back(&layer.bias);
  }
  return all;
}

void GcnModel::copy_params_from(const GcnModel& other) {
  auto mine = params();
  auto theirs = other.params();
  if (mine.size() != theirs.size()) {
    throw std::invalid_argument("copy_params_from: config mismatch");
  }
  for (std::size_t i = 0; i < mine.size(); ++i) {
    mine[i]->value = theirs[i]->value;
  }
}

}  // namespace gcnt
