#include "gcn/graphsage_inference.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/trace.h"
#include "gcn/vec_ops.h"

namespace gcnt {

namespace {
// Each node is thousands of matvecs; parallelize all but trivial graphs.
constexpr std::size_t kMinParallelNodes = 16;
}  // namespace

GraphSageInference::GraphSageInference(const GcnModel& model,
                                       const Netlist& netlist,
                                       const Matrix& features,
                                       SampleFanouts fanouts,
                                       std::uint64_t seed)
    : model_(&model),
      netlist_(&netlist),
      features_(&features),
      fanouts_(std::move(fanouts)),
      seed_(seed),
      rng_(seed) {}

std::vector<float> GraphSageInference::embed(NodeId v, int depth, Rng& rng) {
  if (depth == 0) {
    const float* row = features_->row(v);
    return std::vector<float>(row, row + features_->cols());
  }
  const auto hop = static_cast<std::size_t>(model_->config().depth - depth);
  const std::size_t fanout =
      fanouts_.per_hop[std::min(hop, fanouts_.per_hop.size() - 1)];

  std::vector<float> aggregated = embed(v, depth - 1, rng);

  // Fixed-size sampling with replacement per GraphSAGE: the estimator of
  // Eq. 1's weighted sum is degree/|samples| * sum(sampled embeddings).
  const auto& preds = netlist_->fanins(v);
  const auto& succs = netlist_->fanouts(v);
  const std::size_t pred_samples = fanout / 2;
  const std::size_t succ_samples = fanout - pred_samples;
  if (!preds.empty() && pred_samples > 0) {
    const float scale = model_->w_pr() * static_cast<float>(preds.size()) /
                        static_cast<float>(pred_samples);
    for (std::size_t s = 0; s < pred_samples; ++s) {
      axpy_row(aggregated, scale,
               embed(preds[rng.below(preds.size())], depth - 1, rng));
    }
  }
  if (!succs.empty() && succ_samples > 0) {
    const float scale = model_->w_su() * static_cast<float>(succs.size()) /
                        static_cast<float>(succ_samples);
    for (std::size_t s = 0; s < succ_samples; ++s) {
      axpy_row(aggregated, scale,
               embed(succs[rng.below(succs.size())], depth - 1, rng));
    }
  }
  auto out = apply_linear_row(
      model_->encoders()[static_cast<std::size_t>(depth - 1)], aggregated);
  relu_row(out);
  return out;
}

std::vector<float> GraphSageInference::infer_node(NodeId v) {
  return fc_head_row(model_->fc_layers(),
                     embed(v, model_->config().depth, rng_));
}

Matrix GraphSageInference::infer_all() {
  GCNT_KERNEL_SCOPE("graphsage.infer_all");
  Matrix logits(netlist_->size(), model_->config().num_classes);
  parallel_blocks(
      netlist_->size(), kMinParallelNodes,
      [&](std::size_t begin, std::size_t end) {
        for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
          // Per-node stream: independent of scheduling, so infer_all is
          // reproducible regardless of thread count.
          Rng node_rng(seed_ ^ ((static_cast<std::uint64_t>(v) + 1) *
                                0x9e3779b97f4a7c15ULL));
          const auto row = fc_head_row(
              model_->fc_layers(), embed(v, model_->config().depth, node_rng));
          for (std::size_t c = 0; c < row.size(); ++c) logits.at(v, c) = row[c];
        }
      });
  return logits;
}

}  // namespace gcnt
