#pragma once
// Tensor view of a netlist for the GCN: node attribute matrix plus sparse
// predecessor/successor adjacency.
//
// Following Section 3.1, every node carries [LL, C0, C1, O] (logic level
// and SCOAP measures); features are log-compressed so saturated SCOAP
// values stay in a trainable range. The aggregation of Eq. (1) uses two
// 0/1 matrices P and S with (P*E)[v] = sum of fanin embeddings and
// (S*E)[v] = sum of fanout embeddings; the trainable scalars w_pr / w_su
// stay outside the matrices so training never rebuilds them, and the
// paper's merged matrix A = I + w_pr*P + w_su*S can still be materialized
// for the pure-inference engine (Eq. 2).
//
// COO forms are retained because the OPI flow appends tuples incrementally
// when the netlist gains observation points (Section 4).

#include <array>
#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "scoap/scoap.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace gcnt {

/// Node attribute dimension: [LL, C0, C1, O].
constexpr std::size_t kNodeFeatureDim = 4;

/// log1p compression applied to each raw attribute.
float transform_feature(double raw) noexcept;

/// Locality reordering policy for the CSR compute forms. With kRcm, the
/// first rebuild_csr() computes a reverse-Cuthill-McKee permutation of
/// the node ids and builds the CSR matrices in that order, shrinking the
/// column-index bandwidth so SpMM's gathered dense rows stay cache-hot.
/// Reordering is invisible at every API boundary: features, labels and
/// logits remain in node order, the GCN gathers/scatters through the
/// permutation internally, and (because the permuted CSR preserves the
/// per-row accumulation order) each node's logits are bitwise identical
/// to the unreordered run.
enum class GraphReorder : int {
  kOff = 0,
  kRcm = 1,
};

/// Resolved policy: set_graph_reorder override > GCNT_REORDER environment
/// ("off" | "rcm", read once per process) > off. Affects tensors built /
/// rebuilt after the change, never existing ones. The active policy is
/// published as the "graph.reorder" stats gauge and recorded in bench
/// JSON as "schema.reorder".
GraphReorder graph_reorder();
/// Forces the policy (tests, benches).
void set_graph_reorder(GraphReorder reorder);
/// Drops the override; resolution falls back to GCNT_REORDER.
void reset_graph_reorder();

struct GraphTensors {
  Matrix features;  ///< N x 4, transformed (optionally standardized) attributes
  CooMatrix pred_coo;
  CooMatrix succ_coo;
  CsrMatrix pred;    ///< row v sums fanins of v
  CsrMatrix succ;    ///< row v sums fanouts of v
  CsrMatrix pred_t;  ///< transpose of pred (for backprop)
  CsrMatrix succ_t;  ///< transpose of succ
  std::vector<std::int32_t> labels;  ///< optional; empty if unlabeled

  /// Affine feature post-transform: stored feature = (log1p(raw) - mean) *
  /// scale. Identity until standardize_features() is called; kept so that
  /// incremental updates (new OP rows, refreshed observability) encode new
  /// raw values consistently with the existing rows.
  std::array<float, kNodeFeatureDim> feature_mean{0.f, 0.f, 0.f, 0.f};
  std::array<float, kNodeFeatureDim> feature_scale{1.f, 1.f, 1.f, 1.f};

  /// Encodes a raw attribute value for column `col` under the current
  /// affine post-transform.
  float encode(std::size_t col, double raw) const noexcept {
    return (transform_feature(raw) - feature_mean[col]) * feature_scale[col];
  }

  /// Standardizes each feature column to zero mean / unit variance over
  /// the current rows (per-graph statistics, so the transform remains
  /// usable inductively) and records the affine so later incremental rows
  /// stay on the same scale. Improves conditioning of GCN training.
  void standardize_features();

  std::size_t node_count() const noexcept { return features.rows(); }

  /// Locality permutation over the CSR forms (empty = identity, i.e.
  /// reordering off for this graph). Computed by the first rebuild_csr()
  /// under GraphReorder::kRcm and extended with an identity tail when
  /// nodes are appended, so cached incremental state stays valid.
  /// compute_row maps a node id to its CSR row; compute_node inverts it.
  /// Everything COO stays in node order — only the CSR forms (and the
  /// GCN's internal activations) live in compute order.
  std::vector<std::uint32_t> compute_row;
  std::vector<std::uint32_t> compute_node;

  bool reordered() const noexcept { return !compute_row.empty(); }
  /// CSR row holding node v.
  std::uint32_t row_of(NodeId v) const noexcept {
    return compute_row.empty() ? v : compute_row[v];
  }
  /// Node held by CSR row `row`.
  NodeId node_of(std::uint32_t row) const noexcept {
    return compute_node.empty() ? row : compute_node[row];
  }

  /// Rebuilds the CSR forms from the COO forms (after incremental edits).
  void rebuild_csr();
};

/// out.row(p) = node_major.row(tensors.node_of(p)): reorders a node-major
/// matrix into compute order (plain capacity-reusing copy when the graph
/// is not reordered).
void gather_compute_rows(const GraphTensors& tensors, const Matrix& node_major,
                         Matrix& out);

/// out.row(tensors.node_of(p)) = compute_major.row(p): the inverse
/// permutation, back to node order.
void scatter_compute_rows(const GraphTensors& tensors,
                          const Matrix& compute_major, Matrix& out);

/// Builds tensors from a netlist with precomputed SCOAP measures and
/// logic levels.
GraphTensors build_graph_tensors(const Netlist& netlist,
                                 const ScoapMeasures& scoap,
                                 const std::vector<std::uint32_t>& levels);

/// Convenience: computes SCOAP and levels internally.
GraphTensors build_graph_tensors(const Netlist& netlist);

/// Incremental update after netlist.insert_observe_point(target) created
/// node `op`: appends the COO tuples and the new feature row ([0,1,1,0]
/// per the paper), and refreshes the observability feature of the nodes in
/// `refreshed` (the fan-in cone whose SCOAP CO changed). Does NOT rebuild
/// the CSR forms; call rebuild_csr() once per insertion round.
///
/// When `changed_rows` is non-null, every refreshed node whose stored
/// feature value actually changed bits (the SCOAP walk refreshes the whole
/// cone, but the improvement usually dies out after a few levels) is
/// appended to it — the exact dirty-cone seeds for
/// DirtyConeTracker::record_feature, far tighter than seeding the full
/// cone.
void append_observe_point(GraphTensors& tensors, const Netlist& netlist,
                          NodeId target, NodeId op,
                          const ScoapMeasures& scoap,
                          const std::vector<NodeId>& refreshed,
                          std::vector<NodeId>* changed_rows = nullptr);

/// Materializes the paper's merged adjacency A = I + w_pr*P + w_su*S in
/// COO form (Eq. 2) for the standalone sparse inference engine.
CooMatrix build_merged_adjacency(const GraphTensors& tensors, float w_pr,
                                 float w_su);

}  // namespace gcnt
