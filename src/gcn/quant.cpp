#include "gcn/quant.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/debug_assert.h"
#include "common/error.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "tensor/simd/simd.h"

namespace gcnt {

namespace {

// Same inline-below-this thresholds as the fp32 kernels in sparse.cpp.
constexpr std::size_t kMinParallelRows = 128;
constexpr std::size_t kMinParallelElems = 1 << 15;

Precision parse_precision(const char* text, const char* source) {
  const std::string value(text);
  if (value == "fp32" || value == "float32" || value == "f32") {
    return Precision::kFp32;
  }
  if (value == "int8" || value == "i8") return Precision::kInt8;
  log_warn("unknown precision '", value, "' from ", source,
           "; using fp32 (valid: fp32, int8)");
  return Precision::kFp32;
}

}  // namespace

const char* precision_name(Precision precision) {
  return precision == Precision::kInt8 ? "int8" : "fp32";
}

Precision resolve_precision(const char* flag) {
  if (flag != nullptr && *flag != '\0') {
    return parse_precision(flag, "--precision");
  }
  const char* env = std::getenv("GCNT_PRECISION");
  if (env != nullptr && *env != '\0') {
    return parse_precision(env, "GCNT_PRECISION");
  }
  return Precision::kFp32;
}

QuantizedLinear quantize_linear(const Linear& layer) {
  GCNT_KERNEL_SCOPE("quantize_linear");
  const Matrix& w = layer.weight.value;  // in x out
  QuantizedLinear q;
  q.in = w.rows();
  q.out = w.cols();
  // Per-output-column amax: one scale per column keeps small-magnitude
  // columns from being crushed by the largest weight in the layer.
  std::vector<float> amax(q.out, 0.0f);
  for (std::size_t k = 0; k < q.in; ++k) {
    const float* wrow = w.row(k);
    for (std::size_t j = 0; j < q.out; ++j) {
      const float a = std::fabs(wrow[j]);
      if (a > amax[j]) amax[j] = a;
    }
  }
  q.scales.resize(q.out);
  std::vector<float> inv_scales(q.out);
  for (std::size_t j = 0; j < q.out; ++j) {
    if (!std::isfinite(amax[j])) {
      throw Error(ErrorKind::kInternal,
                  "quantize_linear: non-finite weight encountered");
    }
    q.scales[j] = amax[j] > 0.0f ? amax[j] / 127.0f : 1.0f;
    inv_scales[j] = 1.0f / q.scales[j];
  }
  q.weight_t.assign(q.in * q.out, 0);
  q.col_sums.assign(q.out, 0);
  // Transpose during encode: weight_t row j = output column j of W.
  for (std::size_t k = 0; k < q.in; ++k) {
    const float* wrow = w.row(k);
    for (std::size_t j = 0; j < q.out; ++j) {
      const float v = wrow[j] * inv_scales[j];
      std::int32_t code = static_cast<std::int32_t>(std::nearbyintf(v));
      code = std::clamp(code, -127, 127);
      q.weight_t[j * q.in + k] = static_cast<std::int8_t>(code);
    }
  }
  for (std::size_t j = 0; j < q.out; ++j) {
    std::int32_t sum = 0;
    const std::int8_t* row = q.row(j);
    for (std::size_t k = 0; k < q.in; ++k) sum += row[k];
    q.col_sums[j] = sum;
  }
  return q;
}

QuantizedLinear make_quantized_linear(std::size_t in, std::size_t out,
                                      std::vector<float> scales,
                                      std::vector<std::int8_t> codes) {
  if (codes.size() != in * out) {
    throw Error(ErrorKind::kCorrupt,
                "quantized linear: code count " +
                    std::to_string(codes.size()) + " != " +
                    std::to_string(in) + " x " + std::to_string(out));
  }
  if (scales.size() != out) {
    throw Error(ErrorKind::kCorrupt,
                "quantized linear: scale count " +
                    std::to_string(scales.size()) + " != " +
                    std::to_string(out));
  }
  for (const float scale : scales) {
    if (!std::isfinite(scale) || scale <= 0.0f) {
      throw Error(ErrorKind::kCorrupt,
                  "quantized linear: scale must be finite and positive");
    }
  }
  for (const std::int8_t c : codes) {
    if (c == std::numeric_limits<std::int8_t>::min()) {
      // Symmetric scheme never emits -128; reject so |code| <= 127 holds.
      throw Error(ErrorKind::kCorrupt,
                  "quantized linear: weight code out of [-127, 127]");
    }
  }
  QuantizedLinear q;
  q.in = in;
  q.out = out;
  q.scales = std::move(scales);
  q.weight_t = std::move(codes);
  q.col_sums.assign(out, 0);
  for (std::size_t j = 0; j < out; ++j) {
    std::int32_t sum = 0;
    const std::int8_t* row = q.row(j);
    for (std::size_t k = 0; k < in; ++k) sum += row[k];
    q.col_sums[j] = sum;
  }
  return q;
}

void quantize_tensor(const Matrix& x, QuantizedTensor& out) {
  GCNT_KERNEL_SCOPE("quantize_tensor");
  const std::size_t rows = x.rows();
  const std::size_t cols = x.cols();
  out.rows = rows;
  out.cols = cols;
  out.codes.resize(x.size());
  out.scales.resize(rows);
  out.zero_points.resize(rows);
  const SimdOps& ops = simd_ops();
  // Rows are quantized independently (per-row scale / zero point), so
  // parallelism over row blocks cannot change any result.
  parallel_blocks(rows, kMinParallelRows,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      const float* data = x.row(r);
      // Min/max scan starting at 0 so lo <= 0 <= hi: zero always
      // quantizes exactly (zp = round(-lo / scale) maps 0.0 -> code zp).
      float lo = 0.0f;
      float hi = 0.0f;
      for (std::size_t c = 0; c < cols; ++c) {
        const float v = data[c];
        if (v < lo) lo = v;
        if (v > hi) hi = v;
      }
      const float range = hi - lo;
      if (!std::isfinite(range) || range <= 0.0f) {
        // All-zero (or degenerate) row: every code is the zero point.
        out.scales[r] = 1.0f;
        out.zero_points[r] = 0;
        std::memset(out.row(r), 0, cols);
        continue;
      }
      out.scales[r] = range / 127.0f;
      const float inv_scale = 127.0f / range;
      const std::int32_t zp = std::clamp(
          static_cast<std::int32_t>(std::nearbyintf(-lo * inv_scale)), 0,
          127);
      out.zero_points[r] = zp;
      ops.quantize_u8(out.row(r), data, inv_scale, zp, cols);
    }
  });
}

void dequantize_tensor(const QuantizedTensor& q, Matrix& out) {
  out.resize(q.rows, q.cols);
  const SimdOps& ops = simd_ops();
  parallel_blocks(q.rows, kMinParallelRows,
                  [&](std::size_t begin, std::size_t end) {
                    for (std::size_t r = begin; r < end; ++r) {
                      ops.dequantize_u8(out.row(r), q.row(r), q.scales[r],
                                        q.zero_points[r], q.cols);
                    }
                  });
}

void quantized_linear_forward(const QuantizedTensor& x,
                              const QuantizedLinear& layer, const Matrix& bias,
                              Matrix& out, bool relu) {
  GCNT_KERNEL_SCOPE("qgemm");
  if (x.cols != layer.in) {
    throw std::invalid_argument("quantized_linear_forward: dimension mismatch");
  }
  if (bias.rows() != 1 || bias.cols() != layer.out) {
    throw std::invalid_argument("quantized_linear_forward: bias shape");
  }
  out.resize(x.rows, layer.out);
  const SimdOps& ops = simd_ops();
  const float* bias_row = bias.row(0);
  const std::size_t in = layer.in;
  const std::size_t cols = layer.out;
  parallel_blocks(
      x.rows, kMinParallelRows, [&](std::size_t begin, std::size_t end) {
        const float* wscales = layer.scales.data();
        for (std::size_t r = begin; r < end; ++r) {
          const std::uint8_t* xrow = x.row(r);
          float* orow = out.row(r);
          const float xscale = x.scales[r];
          const std::int64_t zp = x.zero_points[r];
          for (std::size_t j = 0; j < cols; ++j) {
            // Exact int32 product sum, then the asymmetric zero-point
            // correction in int64 (|zp * col_sum| can exceed int32 for
            // the largest permitted layer widths).
            const std::int64_t acc = ops.dot_u8s8(xrow, layer.row(j), in);
            const std::int64_t corrected =
                acc - zp * static_cast<std::int64_t>(layer.col_sums[j]);
            const float v = std::fmaf(static_cast<float>(corrected),
                                      xscale * wscales[j], bias_row[j]);
            orow[j] = relu ? (v > 0.0f ? v : 0.0f) : v;
          }
        }
      });
}

void spmm_q8(const CsrMatrix& a, const QuantizedTensor& q, Matrix& out,
             float alpha) {
  GCNT_KERNEL_SCOPE("spmm_q8");
  if (q.rows != a.cols()) {
    throw std::invalid_argument("spmm_q8: dimension mismatch");
  }
  const std::size_t n = q.cols;
  // Unlike CsrMatrix::spmm there is no whole-matrix prefill: every
  // (row, tile) slice is zeroed immediately before its k-loop below, so
  // the output is initialized while cache-hot instead of in a separate
  // streaming pass (which the first accumulation would then re-read
  // from last-level cache). Same values in the same order — zeros then
  // ascending-k adds — so results are bit-identical to a prefilled walk.
  out.resize_for_overwrite(a.rows(), n);
  // Mirrors CsrMatrix::spmm's row-block x column-tile walk with the
  // dense operand streamed as u8 codes through the dequantizing axpy —
  // same ascending-k per-element order, so the bitwise guarantees across
  // thread counts and tile widths carry over. The per-nonzero zero-point
  // shift folds into the axpy (each lane computes (code - zp) before the
  // fma), so no row-sum correction pass is needed.
  const std::size_t tile = std::min(spmm_tile_cols(), n);
  const SimdOps& ops = simd_ops();
  const std::uint32_t* row_ptr = a.row_ptr().data();
  const std::uint32_t* col_index = a.col_index().data();
  const float* values = a.values().data();
  const float* scales = q.scales.data();
  const std::int32_t* zps = q.zero_points.data();
  parallel_blocks(
      a.rows(), kMinParallelRows,
      [&](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t j0 = 0; j0 < n; j0 += tile) {
          const std::size_t j1 = std::min(n, j0 + tile);
          const std::uint32_t k_end = row_ptr[row_end];
          for (std::size_t r = row_begin; r < row_end; ++r) {
            float* orow = out.row(r);
            std::memset(orow + j0, 0, (j1 - j0) * sizeof(float));
            for (std::uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
              const std::uint32_t col = col_index[k];
              GCNT_DEBUG_ASSERT(col < a.cols(),
                                "spmm_q8: column index out of range");
              // Gathered code rows are a cache line or two and land on
              // cold lines (neighbor ids are scattered), so start the
              // next gather before draining this one.
              if (k + 1 < k_end) {
                __builtin_prefetch(q.row(col_index[k + 1]) + j0);
              }
              // The gathered row's scale folds into the axpy coefficient
              // and its zero point shifts per lane, so per-row
              // quantization costs two scalar loads per nonzero.
              const float av = alpha * values[k] * scales[col];
              ops.axpy_dq8(orow + j0, q.row(col) + j0, av, zps[col],
                           j1 - j0);
            }
          }
        }
      });
}

void axpy_exact(Matrix& y, float a, const Matrix& x) {
  if (y.rows() != x.rows() || y.cols() != x.cols()) {
    throw std::invalid_argument("axpy_exact: shape mismatch");
  }
  float* yd = y.data();
  const float* xd = x.data();
  parallel_blocks(y.size(), kMinParallelElems,
                  [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      yd[i] = std::fmaf(a, xd[i], yd[i]);
                    }
                  });
}

}  // namespace gcnt
