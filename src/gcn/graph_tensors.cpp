#include "gcn/graph_tensors.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "common/stats.h"
#include "common/trace.h"

namespace gcnt {

namespace {

// -1 = no programmatic override (fall back to GCNT_REORDER / off).
std::atomic<int> reorder_override{-1};

GraphReorder env_reorder() {
  static const GraphReorder cached = [] {
    const char* env = std::getenv("GCNT_REORDER");
    if (env == nullptr || *env == '\0' || std::strcmp(env, "off") == 0) {
      return GraphReorder::kOff;
    }
    if (std::strcmp(env, "rcm") == 0) return GraphReorder::kRcm;
    log_warn("unknown GCNT_REORDER value '", env,
             "' (want off|rcm); reordering stays off");
    return GraphReorder::kOff;
  }();
  return cached;
}

/// Reverse Cuthill-McKee over the symmetrized pred+succ adjacency.
/// Fully deterministic: BFS components start at the unvisited node of
/// minimum (degree, id) and neighbors are visited in ascending
/// (degree, id) order. Returns the compute order (position -> node).
std::vector<std::uint32_t> rcm_order(std::size_t n, const CooMatrix& pred_coo,
                                     const CooMatrix& succ_coo) {
  std::vector<std::vector<std::uint32_t>> adjacency(n);
  const auto add_edges = [&](const CooMatrix& coo) {
    for (std::size_t k = 0; k < coo.nnz(); ++k) {
      const std::uint32_t r = coo.row_index[k];
      const std::uint32_t c = coo.col_index[k];
      if (r == c) continue;
      adjacency[r].push_back(c);
      adjacency[c].push_back(r);
    }
  };
  add_edges(pred_coo);
  add_edges(succ_coo);
  for (auto& neighbors : adjacency) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }

  const auto degree_less = [&](std::uint32_t a, std::uint32_t b) {
    const std::size_t da = adjacency[a].size();
    const std::size_t db = adjacency[b].size();
    return da != db ? da < db : a < b;
  };
  std::vector<std::uint32_t> starts(n);
  for (std::uint32_t v = 0; v < n; ++v) starts[v] = v;
  std::sort(starts.begin(), starts.end(), degree_less);

  std::vector<std::uint32_t> order;
  order.reserve(n);
  std::vector<std::uint8_t> visited(n, 0);
  std::vector<std::uint32_t> neighbors;
  for (const std::uint32_t start : starts) {
    if (visited[start]) continue;
    visited[start] = 1;
    std::size_t head = order.size();
    order.push_back(start);
    while (head < order.size()) {
      const std::uint32_t v = order[head++];
      neighbors.clear();
      for (const std::uint32_t u : adjacency[v]) {
        if (!visited[u]) neighbors.push_back(u);
      }
      std::sort(neighbors.begin(), neighbors.end(), degree_less);
      for (const std::uint32_t u : neighbors) {
        visited[u] = 1;
        order.push_back(u);
      }
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

/// Maps COO coordinates through row_of, preserving tuple order — so the
/// CSR built from the result accumulates each row's entries in exactly
/// the order the unpermuted CSR would (bitwise-identical SpMM rows).
CooMatrix permute_coo(const CooMatrix& coo,
                      const std::vector<std::uint32_t>& row_of) {
  CooMatrix out(coo.rows, coo.cols);
  out.row_index.reserve(coo.nnz());
  out.col_index.reserve(coo.nnz());
  out.values = coo.values;
  for (std::size_t k = 0; k < coo.nnz(); ++k) {
    out.row_index.push_back(row_of[coo.row_index[k]]);
    out.col_index.push_back(row_of[coo.col_index[k]]);
  }
  return out;
}

}  // namespace

GraphReorder graph_reorder() {
  const int forced = reorder_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<GraphReorder>(forced);
  return env_reorder();
}

void set_graph_reorder(GraphReorder reorder) {
  reorder_override.store(static_cast<int>(reorder), std::memory_order_relaxed);
}

void reset_graph_reorder() {
  reorder_override.store(-1, std::memory_order_relaxed);
}

void gather_compute_rows(const GraphTensors& tensors, const Matrix& node_major,
                         Matrix& out) {
  if (!tensors.reordered()) {
    out.copy_from(node_major);
    return;
  }
  out.resize(node_major.rows(), node_major.cols());
  for (std::size_t p = 0; p < node_major.rows(); ++p) {
    const float* in = node_major.row(tensors.node_of(p));
    std::copy(in, in + node_major.cols(), out.row(p));
  }
}

void scatter_compute_rows(const GraphTensors& tensors,
                          const Matrix& compute_major, Matrix& out) {
  if (!tensors.reordered()) {
    out.copy_from(compute_major);
    return;
  }
  out.resize(compute_major.rows(), compute_major.cols());
  for (std::size_t p = 0; p < compute_major.rows(); ++p) {
    const float* in = compute_major.row(p);
    std::copy(in, in + compute_major.cols(), out.row(tensors.node_of(p)));
  }
}

float transform_feature(double raw) noexcept {
  return static_cast<float>(std::log1p(raw));
}

void GraphTensors::standardize_features() {
  const std::size_t n = features.rows();
  if (n == 0) return;
  for (std::size_t c = 0; c < kNodeFeatureDim; ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < n; ++r) mean += features.at(r, c);
    mean /= static_cast<double>(n);
    double variance = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double delta = features.at(r, c) - mean;
      variance += delta * delta;
    }
    const double stddev = std::sqrt(variance / static_cast<double>(n));
    const float scale = stddev > 1e-6 ? static_cast<float>(1.0 / stddev) : 1.0f;
    for (std::size_t r = 0; r < n; ++r) {
      features.at(r, c) =
          (features.at(r, c) - static_cast<float>(mean)) * scale;
    }
    // Compose with the existing affine so encode() matches the new rows.
    feature_mean[c] = feature_mean[c] + static_cast<float>(mean) / feature_scale[c];
    feature_scale[c] *= scale;
  }
}

void GraphTensors::rebuild_csr() {
  GCNT_KERNEL_SCOPE("graph.rebuild_csr");
  // Keep shapes square and in sync with the feature rows even when a node
  // has no fanin/fanout entries yet.
  const auto n = static_cast<std::uint32_t>(features.rows());
  if (pred_coo.rows < n) pred_coo.rows = n;
  if (pred_coo.cols < n) pred_coo.cols = n;
  if (succ_coo.rows < n) succ_coo.rows = n;
  if (succ_coo.cols < n) succ_coo.cols = n;

  // Locality permutation: computed once per graph on the first rebuild
  // (when enabled), then only extended with an identity tail as nodes are
  // appended — never recomputed, so cached incremental state stays valid.
  if (!compute_row.empty()) {
    for (auto v = static_cast<std::uint32_t>(compute_row.size()); v < n; ++v) {
      compute_row.push_back(v);
      compute_node.push_back(v);
    }
  } else if (graph_reorder() == GraphReorder::kRcm && n > 0) {
    compute_node = rcm_order(n, pred_coo, succ_coo);
    compute_row.assign(n, 0);
    for (std::uint32_t p = 0; p < n; ++p) compute_row[compute_node[p]] = p;
  }
  StatsRegistry::instance().gauge("graph.reorder").set(reordered() ? 1 : 0);

  if (reordered()) {
    pred = CsrMatrix::from_coo(permute_coo(pred_coo, compute_row));
    succ = CsrMatrix::from_coo(permute_coo(succ_coo, compute_row));
  } else {
    pred = CsrMatrix::from_coo(pred_coo);
    succ = CsrMatrix::from_coo(succ_coo);
  }
  pred_t = pred.transpose();
  succ_t = succ.transpose();
}

GraphTensors build_graph_tensors(const Netlist& netlist,
                                 const ScoapMeasures& scoap,
                                 const std::vector<std::uint32_t>& levels) {
  TraceSpan span("graph.build_tensors");
  span.arg("nodes", static_cast<double>(netlist.size()));
  GraphTensors tensors;
  const std::size_t n = netlist.size();
  tensors.features.resize(n, kNodeFeatureDim);
  for (NodeId v = 0; v < n; ++v) {
    float* row = tensors.features.row(v);
    if (netlist.type(v) == CellType::kObserve) {
      // Paper convention: observation points carry [0, 1, 1, 0] regardless
      // of where they sit (Section 4) — keeps incremental updates and
      // from-scratch rebuilds identical.
      row[0] = transform_feature(0.0);
      row[1] = transform_feature(1.0);
      row[2] = transform_feature(1.0);
      row[3] = transform_feature(0.0);
      continue;
    }
    row[0] = transform_feature(levels[v]);
    row[1] = transform_feature(scoap.cc0[v]);
    row[2] = transform_feature(scoap.cc1[v]);
    row[3] = transform_feature(scoap.co[v]);
  }
  tensors.pred_coo = CooMatrix(n, n);
  tensors.succ_coo = CooMatrix(n, n);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : netlist.fanins(v)) {
      tensors.pred_coo.add(v, u, 1.0f);
    }
    for (NodeId w : netlist.fanouts(v)) {
      tensors.succ_coo.add(v, w, 1.0f);
    }
  }
  tensors.rebuild_csr();
  return tensors;
}

GraphTensors build_graph_tensors(const Netlist& netlist) {
  const ScoapMeasures scoap = compute_scoap(netlist);
  return build_graph_tensors(netlist, scoap, netlist.logic_levels());
}

void append_observe_point(GraphTensors& tensors, const Netlist& netlist,
                          NodeId target, NodeId op,
                          const ScoapMeasures& scoap,
                          const std::vector<NodeId>& refreshed,
                          std::vector<NodeId>* changed_rows) {
  // Appended tuples, mirroring the paper's incremental COO update. The
  // shapes are grown explicitly to the post-insertion node count first so
  // a miscomputed coordinate throws instead of silently stretching the
  // adjacency (the incremental engine depends on exact shapes).
  const std::size_t n_after = netlist.size();
  tensors.pred_coo.reshape(n_after, n_after);
  tensors.succ_coo.reshape(n_after, n_after);
  tensors.pred_coo.add_checked(op, target, 1.0f);
  tensors.succ_coo.add_checked(target, op, 1.0f);

  // New feature row: the paper assigns the new node [0, 1, 1, 0].
  Matrix grown(netlist.size(), kNodeFeatureDim);
  for (std::size_t r = 0; r < tensors.features.rows(); ++r) {
    for (std::size_t c = 0; c < kNodeFeatureDim; ++c) {
      grown.at(r, c) = tensors.features.at(r, c);
    }
  }
  float* row = grown.row(op);
  row[0] = tensors.encode(0, 0.0);
  row[1] = tensors.encode(1, 1.0);
  row[2] = tensors.encode(2, 1.0);
  row[3] = tensors.encode(3, 0.0);
  tensors.features = std::move(grown);
  if (!tensors.labels.empty()) tensors.labels.resize(netlist.size(), 0);

  // Observability changed only in the fan-in cone of the target — and the
  // SCOAP improvement usually dies out well before the cone does, so track
  // which rows actually changed bits.
  const auto refresh_row = [&](NodeId v) {
    const float encoded = tensors.encode(3, scoap.co[v]);
    if (tensors.features.at(v, 3) != encoded) {
      tensors.features.at(v, 3) = encoded;
      if (changed_rows != nullptr) changed_rows->push_back(v);
    }
  };
  for (NodeId v : refreshed) refresh_row(v);
  refresh_row(target);
}

CooMatrix build_merged_adjacency(const GraphTensors& tensors, float w_pr,
                                 float w_su) {
  const std::size_t n = tensors.node_count();
  CooMatrix merged(n, n);
  for (std::uint32_t v = 0; v < n; ++v) merged.add(v, v, 1.0f);
  for (std::size_t k = 0; k < tensors.pred_coo.nnz(); ++k) {
    merged.add(tensors.pred_coo.row_index[k], tensors.pred_coo.col_index[k],
               w_pr * tensors.pred_coo.values[k]);
  }
  for (std::size_t k = 0; k < tensors.succ_coo.nnz(); ++k) {
    merged.add(tensors.succ_coo.row_index[k], tensors.succ_coo.col_index[k],
               w_su * tensors.succ_coo.values[k]);
  }
  return merged;
}

}  // namespace gcnt
