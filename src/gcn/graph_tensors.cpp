#include "gcn/graph_tensors.h"

#include <cmath>

#include "common/trace.h"

namespace gcnt {

float transform_feature(double raw) noexcept {
  return static_cast<float>(std::log1p(raw));
}

void GraphTensors::standardize_features() {
  const std::size_t n = features.rows();
  if (n == 0) return;
  for (std::size_t c = 0; c < kNodeFeatureDim; ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < n; ++r) mean += features.at(r, c);
    mean /= static_cast<double>(n);
    double variance = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double delta = features.at(r, c) - mean;
      variance += delta * delta;
    }
    const double stddev = std::sqrt(variance / static_cast<double>(n));
    const float scale = stddev > 1e-6 ? static_cast<float>(1.0 / stddev) : 1.0f;
    for (std::size_t r = 0; r < n; ++r) {
      features.at(r, c) =
          (features.at(r, c) - static_cast<float>(mean)) * scale;
    }
    // Compose with the existing affine so encode() matches the new rows.
    feature_mean[c] = feature_mean[c] + static_cast<float>(mean) / feature_scale[c];
    feature_scale[c] *= scale;
  }
}

void GraphTensors::rebuild_csr() {
  GCNT_KERNEL_SCOPE("graph.rebuild_csr");
  // Keep shapes square and in sync with the feature rows even when a node
  // has no fanin/fanout entries yet.
  const auto n = static_cast<std::uint32_t>(features.rows());
  if (pred_coo.rows < n) pred_coo.rows = n;
  if (pred_coo.cols < n) pred_coo.cols = n;
  if (succ_coo.rows < n) succ_coo.rows = n;
  if (succ_coo.cols < n) succ_coo.cols = n;
  pred = CsrMatrix::from_coo(pred_coo);
  succ = CsrMatrix::from_coo(succ_coo);
  pred_t = pred.transpose();
  succ_t = succ.transpose();
}

GraphTensors build_graph_tensors(const Netlist& netlist,
                                 const ScoapMeasures& scoap,
                                 const std::vector<std::uint32_t>& levels) {
  TraceSpan span("graph.build_tensors");
  span.arg("nodes", static_cast<double>(netlist.size()));
  GraphTensors tensors;
  const std::size_t n = netlist.size();
  tensors.features.resize(n, kNodeFeatureDim);
  for (NodeId v = 0; v < n; ++v) {
    float* row = tensors.features.row(v);
    if (netlist.type(v) == CellType::kObserve) {
      // Paper convention: observation points carry [0, 1, 1, 0] regardless
      // of where they sit (Section 4) — keeps incremental updates and
      // from-scratch rebuilds identical.
      row[0] = transform_feature(0.0);
      row[1] = transform_feature(1.0);
      row[2] = transform_feature(1.0);
      row[3] = transform_feature(0.0);
      continue;
    }
    row[0] = transform_feature(levels[v]);
    row[1] = transform_feature(scoap.cc0[v]);
    row[2] = transform_feature(scoap.cc1[v]);
    row[3] = transform_feature(scoap.co[v]);
  }
  tensors.pred_coo = CooMatrix(n, n);
  tensors.succ_coo = CooMatrix(n, n);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : netlist.fanins(v)) {
      tensors.pred_coo.add(v, u, 1.0f);
    }
    for (NodeId w : netlist.fanouts(v)) {
      tensors.succ_coo.add(v, w, 1.0f);
    }
  }
  tensors.rebuild_csr();
  return tensors;
}

GraphTensors build_graph_tensors(const Netlist& netlist) {
  const ScoapMeasures scoap = compute_scoap(netlist);
  return build_graph_tensors(netlist, scoap, netlist.logic_levels());
}

void append_observe_point(GraphTensors& tensors, const Netlist& netlist,
                          NodeId target, NodeId op,
                          const ScoapMeasures& scoap,
                          const std::vector<NodeId>& refreshed,
                          std::vector<NodeId>* changed_rows) {
  // Appended tuples, mirroring the paper's incremental COO update. The
  // shapes are grown explicitly to the post-insertion node count first so
  // a miscomputed coordinate throws instead of silently stretching the
  // adjacency (the incremental engine depends on exact shapes).
  const std::size_t n_after = netlist.size();
  tensors.pred_coo.reshape(n_after, n_after);
  tensors.succ_coo.reshape(n_after, n_after);
  tensors.pred_coo.add_checked(op, target, 1.0f);
  tensors.succ_coo.add_checked(target, op, 1.0f);

  // New feature row: the paper assigns the new node [0, 1, 1, 0].
  Matrix grown(netlist.size(), kNodeFeatureDim);
  for (std::size_t r = 0; r < tensors.features.rows(); ++r) {
    for (std::size_t c = 0; c < kNodeFeatureDim; ++c) {
      grown.at(r, c) = tensors.features.at(r, c);
    }
  }
  float* row = grown.row(op);
  row[0] = tensors.encode(0, 0.0);
  row[1] = tensors.encode(1, 1.0);
  row[2] = tensors.encode(2, 1.0);
  row[3] = tensors.encode(3, 0.0);
  tensors.features = std::move(grown);
  if (!tensors.labels.empty()) tensors.labels.resize(netlist.size(), 0);

  // Observability changed only in the fan-in cone of the target — and the
  // SCOAP improvement usually dies out well before the cone does, so track
  // which rows actually changed bits.
  const auto refresh_row = [&](NodeId v) {
    const float encoded = tensors.encode(3, scoap.co[v]);
    if (tensors.features.at(v, 3) != encoded) {
      tensors.features.at(v, 3) = encoded;
      if (changed_rows != nullptr) changed_rows->push_back(v);
    }
  };
  for (NodeId v : refreshed) refresh_row(v);
  refresh_row(target);
}

CooMatrix build_merged_adjacency(const GraphTensors& tensors, float w_pr,
                                 float w_su) {
  const std::size_t n = tensors.node_count();
  CooMatrix merged(n, n);
  for (std::uint32_t v = 0; v < n; ++v) merged.add(v, v, 1.0f);
  for (std::size_t k = 0; k < tensors.pred_coo.nnz(); ++k) {
    merged.add(tensors.pred_coo.row_index[k], tensors.pred_coo.col_index[k],
               w_pr * tensors.pred_coo.values[k]);
  }
  for (std::size_t k = 0; k < tensors.succ_coo.nnz(); ++k) {
    merged.add(tensors.succ_coo.row_index[k], tensors.succ_coo.col_index[k],
               w_su * tensors.succ_coo.values[k]);
  }
  return merged;
}

}  // namespace gcnt
