#pragma once
// Model persistence: save/load trained GCN weights.
//
// Text-based, endianness-independent format:
//
//   gcnt-model v1
//   depth D
//   embed_dims k1 k2 ...
//   fc_dims f1 f2 ...
//   num_classes C
//   aggregation <tied> <frozen> <w_pr> <w_su>
//   param <rows> <cols>
//   <row-major float values ...>
//   ...
//
// Floats are written with max_digits10 so a round-trip is bit-exact.

#include <iosfwd>
#include <string>

#include "gcn/model.h"

namespace gcnt {

/// Writes configuration + every parameter of `model`.
void save_model(const GcnModel& model, std::ostream& out);

/// Reconstructs a model (architecture + weights). Throws
/// std::runtime_error on malformed input or a version mismatch.
GcnModel load_model(std::istream& in);

/// File-path conveniences; throw std::runtime_error on I/O failure.
void save_model_file(const GcnModel& model, const std::string& path);
GcnModel load_model_file(const std::string& path);

}  // namespace gcnt
