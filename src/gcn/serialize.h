#pragma once
// Model persistence: save/load trained GCN weights.
//
// Text-based, endianness-independent format:
//
//   gcnt-model v1
//   depth D
//   embed_dims k1 k2 ...
//   fc_dims f1 f2 ...
//   num_classes C
//   aggregation <tied> <frozen> <w_pr> <w_su>
//   param <rows> <cols>
//   <row-major float values ...>
//   ...
//
// Floats are written with max_digits10 so a round-trip is bit-exact.
//
// A model whose precision is int8 saves as v2: the v1 layout above
// followed by a quantized-weights section —
//
//   quant int8 <layer-count>
//   qlayer <in> <out> <scale>
//   <int8 codes, row-major transposed weight ...>
//   ...
//
// (encoders first, then FC layers), so loading reproduces int8
// inference bit-for-bit without re-calibration. Models left at the
// default fp32 precision keep writing byte-identical v1 files.
//
// On disk the v1 text above is the payload of a checksummed
// `gcnt-artifact` envelope (common/artifact.h), written atomically —
// a crash mid-save never leaves a truncated model, and a bit-flipped
// file is rejected at load. Pre-envelope bare files remain loadable.

#include <iosfwd>
#include <string>

#include "gcn/model.h"

namespace gcnt {

/// Writes configuration + every parameter of `model`.
void save_model(const GcnModel& model, std::ostream& out);

/// Reconstructs a model (architecture + weights). Throws gcnt::Error —
/// kCorrupt on malformed input, out-of-bounds architecture fields, or
/// non-finite weights; kVersion on a format-version mismatch.
GcnModel load_model(std::istream& in);

/// File-path conveniences. save writes an enveloped artifact atomically;
/// load verifies it (or reads a legacy bare file). Throw gcnt::Error
/// with kind kIo / kCorrupt / kVersion.
void save_model_file(const GcnModel& model, const std::string& path);
GcnModel load_model_file(const std::string& path);

}  // namespace gcnt
