#pragma once
// Checkpoint v2: everything needed to continue an interrupted training
// run bit-exactly — model weights, optimizer state (momentum / Adam
// moments + step count), the trainer's RNG state, the epoch counter, and
// the learning-curve history so far.
//
// Payload layout (text; floats/doubles at max_digits10 so the round trip
// is bit-exact, wrapped in the checksummed `gcnt-artifact` envelope and
// written atomically — see common/artifact.h):
//
//   gcnt-checkpoint v2
//   next_epoch <N>
//   rng <s0> <s1> <s2> <s3>
//   optimizer <kind> <step_count> <state-matrix-count>
//   state <rows> <cols>
//   <row-major values ...>            (one block per state matrix)
//   history <count>
//   <epoch> <loss> <train_acc> <test_acc>
//   model
//   <gcnt-model v1 text ...>
//
// Trainer::resume() consumes this via TrainerOptions::checkpoint_path;
// tests/robustness_test.cpp pins that a run killed at any epoch boundary
// and resumed produces bitwise-identical final weights.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "gcn/trainer.h"
#include "tensor/matrix.h"

namespace gcnt {

struct TrainCheckpoint {
  std::size_t next_epoch = 0;  ///< first epoch the resumed run executes
  std::array<std::uint64_t, 4> rng_state{};
  std::string optimizer_kind;  ///< "sgd" or "adam"
  std::int64_t optimizer_step_count = 0;
  std::vector<Matrix> optimizer_state;
  std::vector<EpochRecord> history;
  std::string model_text;  ///< save_model() payload (config + weights)
};

/// Atomic, checksummed write. Throws Error{kIo}.
void save_checkpoint_file(const std::string& path,
                          const TrainCheckpoint& checkpoint);

/// Verifying load. Throws Error{kIo} when unreadable, Error{kVersion} on
/// a version mismatch, Error{kCorrupt} on checksum or structural damage.
TrainCheckpoint load_checkpoint_file(const std::string& path);

/// True when `path` exists and is readable (not validated).
bool checkpoint_exists(const std::string& path);

}  // namespace gcnt
