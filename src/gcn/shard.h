#pragma once
// Sharded out-of-core GCN execution (forward + incremental OPI updates).
//
// The monolithic engines hold every per-layer embedding E_0..E_D for the
// whole graph in memory at once. ShardedGcnEngine instead partitions the
// compute rows into K shards (graph/partition.h) and walks them one at a
// time: for each shard it gathers the owner + halo embeddings, runs up to
// D aggregation layers on the shard-local sub-matrices, and scatters the
// owner results back out — so only one shard's tensors are ever resident.
// Off-shard state lives in a ShardStore, either as in-memory blocks or
// spilled to disk in the checksummed artifact envelope (common/artifact.h).
//
// Bitwise identity with the monolithic path is a hard invariant, pinned
// by tests/shard_test.cpp: the shard-local CSR forms are carved out of
// the global CSR with each row's nonzero order preserved
// (CsrMatrix::from_parts), and every kernel here (spmm_rows, axpy,
// gemm_bias_act) accumulates per output element in the same order as its
// whole-graph counterpart — so sharded logits equal GcnModel::infer
// bit-for-bit for any K, halo depth, thread count, or reorder policy.
//
// Round structure: with halo depth D and L encoder layers, a full forward
// runs ceil(L / D) rounds. Within a round of m <= D layers a shard
// computes the shrinking row sets {dist <= m-1} ... {dist == 0}; each
// computed row reads only rows computed (or gathered) one layer earlier,
// so the halo exchange happens once per round, not once per layer.
// Incremental updates are layer-synchronous instead (all dirty shards
// advance one layer before any advances to the next) because the dirty
// cone already bounds the work.

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gcn/graph_tensors.h"
#include "gcn/model.h"
#include "gcn/quant.h"
#include "gcn/workspace.h"
#include "graph/partition.h"

namespace gcnt {

/// Keyed storage for off-shard embedding blocks: per-(layer, shard) owner
/// blocks and per-(layer, producer, consumer) halo export blocks. In
/// memory mode blocks live in a map; in disk mode each block is one
/// "shard-block" artifact file (u64 rows, u64 cols, then row-major floats,
/// native-endian — spill files are host-local scratch, not interchange).
/// Disk writes are atomic (temp + fsync + rename), so a crash mid-spill
/// leaves the previous block or none — never a torn file; reads verify
/// the envelope CRC and throw Error{kCorrupt} on any damage, Error{kIo}
/// when a block file is missing or unreadable.
class ShardStore {
 public:
  ShardStore() = default;

  /// Switches to disk mode rooted at `dir` (created if missing); an empty
  /// dir reverts to memory mode. Call before any put().
  void configure(std::string dir);

  /// Block storage precision. kFp32 (default) stores blocks verbatim.
  /// kInt8 stores each block as 7-bit activation codes + scale/zero-point
  /// ("shard-block-q8" artifacts on disk) — 4x less spill traffic and
  /// resident halo state, at the cost of one quantization round-trip per
  /// block, so sharded results are no longer bit-identical to the
  /// monolithic engines. Clears existing blocks; call before any put().
  void set_block_precision(Precision precision);
  Precision block_precision() const noexcept { return block_precision_; }

  bool on_disk() const noexcept { return !dir_.empty(); }
  const std::string& dir() const noexcept { return dir_; }

  /// Owner block: embeddings E_layer of one shard's owner rows.
  void put(int layer, std::size_t shard, const Matrix& block);
  void get(int layer, std::size_t shard, Matrix& out) const;

  /// Export block: the rows of `producer`'s E_layer owner block that
  /// `consumer`'s halo needs, in the consumer's recv-group row order.
  void put_export(int layer, std::size_t producer, std::size_t consumer,
                  const Matrix& block);
  void get_export(int layer, std::size_t producer, std::size_t consumer,
                  Matrix& out) const;

  /// Spill file paths (disk mode; tests use these to corrupt/delete).
  std::string block_path(int layer, std::size_t shard) const;
  std::string export_path(int layer, std::size_t producer,
                          std::size_t consumer) const;

  /// Drops every stored block; disk mode removes the files it wrote.
  void clear();

  /// Blocks currently stored (memory entries or files written).
  std::size_t block_count() const noexcept {
    if (on_disk()) return written_.size();
    return block_precision_ == Precision::kInt8 ? qmemory_.size()
                                                : memory_.size();
  }

 private:
  void put_block(const std::string& key, const Matrix& block);
  void get_block(const std::string& key, Matrix& out) const;
  void put_block_q8(const std::string& key, const Matrix& block);
  void get_block_q8(const std::string& key, Matrix& out) const;
  std::string path_of(const std::string& key) const;

  std::string dir_;
  Precision block_precision_ = Precision::kFp32;
  std::map<std::string, Matrix> memory_;
  std::map<std::string, QuantizedTensor> qmemory_;  ///< int8 mode blocks
  std::set<std::string> written_;  ///< disk keys, for clear()
};

struct ShardedGcnOptions {
  std::size_t shards = 2;
  /// Halo depth D >= 1; also the number of encoder layers per resident
  /// round. Deeper halos trade larger shard working sets for fewer halo
  /// exchanges. Independent of the model depth (rounds repeat).
  int halo = 1;
  PartitionStrategy strategy = PartitionStrategy::kContiguous;
  /// Non-empty: spill off-shard blocks to artifact files under this
  /// directory instead of keeping them in memory (true out-of-core mode).
  std::string spill_dir;
  /// Storage precision for off-shard embedding blocks (see
  /// ShardStore::set_block_precision). kInt8 quarters spill bytes but
  /// gives up bit-identity with the monolithic engines; the default
  /// keeps the exact contract.
  Precision block_precision = Precision::kFp32;
  /// Same semantics as IncrementalGcnOptions: dirty fractions beyond this
  /// make update() run a full sharded refresh instead.
  double full_fallback_fraction = 0.25;
};

/// Shard-at-a-time counterpart of IncrementalGcnEngine: same refresh() /
/// update() contract (update()'s `dirty` must be the D-hop dirty cone,
/// including every appended node), same bit-exact logits, but peak
/// residency of one shard's working set instead of the whole graph. The
/// engine tracks one evolving graph across calls, exactly like the
/// incremental engine's cache.
class ShardedGcnEngine {
 public:
  explicit ShardedGcnEngine(const GcnModel& model,
                            ShardedGcnOptions options = {});

  /// Full sharded forward; (re)partitions when the graph changed shape.
  const Matrix& refresh(const GraphTensors& tensors);

  /// Re-propagates only the dirty rows through the stored blocks,
  /// shard-by-shard and layer-synchronously. Extends the partition over
  /// appended rows. Falls back to refresh() when there is no cache yet or
  /// the dirty fraction exceeds the threshold.
  const Matrix& update(const GraphTensors& tensors,
                       const std::vector<NodeId>& dirty);

  /// Logits of the last refresh()/update() (N x num_classes, node order).
  const Matrix& logits() const noexcept { return logits_; }

  /// Positive-class probability per node from the cached logits.
  std::vector<float> positive_probability() const;

  bool last_was_full() const noexcept { return last_was_full_; }
  std::size_t last_dirty_rows() const noexcept { return last_dirty_rows_; }

  const GcnModel& model() const noexcept { return *model_; }
  const ShardedGcnOptions& options() const noexcept { return options_; }

  /// The active partition. Throws Error{kUsage} before the first
  /// refresh().
  const GraphPartition& partition() const;

  ShardStore& store() noexcept { return store_; }
  const ShardStore& store() const noexcept { return store_; }

 private:
  /// Resident working set of one shard: the active rows (owners + halo,
  /// ascending global ids), their halo distances, the carved local CSR
  /// forms (columns remapped to active-local indices; rows filled only
  /// for dist <= D-1 — deeper rows are never computed locally), and the
  /// precomputed index lists the round loop needs.
  struct LocalShard {
    std::vector<std::uint32_t> active;
    std::vector<std::uint8_t> dist;
    CsrMatrix pred;
    CsrMatrix succ;
    /// rows_within[t]: local ids with dist <= t (the layer-t compute
    /// set), ascending; rows_within[0] is the owners' local positions.
    std::vector<std::vector<std::uint32_t>> rows_within;
    /// owner_pos_in[t][i]: index of owner i inside rows_within[t].
    std::vector<std::vector<std::uint32_t>> owner_pos_in;
    /// recv_local[g][i]: active-local position of partition recv group
    /// g's row i (where gathered halo embeddings land).
    std::vector<std::vector<std::uint32_t>> recv_local;
  };

  /// Rows one producer exports to one consumer, as positions into the
  /// producer's owner block.
  struct ExportPlan {
    std::size_t consumer = 0;
    std::vector<std::uint32_t> positions;
  };

  void rebuild_all(const GraphTensors& tensors);
  void rebuild_local(const GraphTensors& tensors, std::size_t k);
  void rebuild_send_views();
  /// Loads shard k's full active block of E_layer into `out` (layer 0
  /// reads the feature matrix directly; deeper layers read the stored
  /// owner + export blocks).
  void gather_active(const GraphTensors& tensors, std::size_t k, int layer,
                     Matrix& out);
  /// Writes every export block of producer p at `layer` from its owner
  /// block.
  void put_exports(int layer, std::size_t p, const Matrix& owner_block);
  /// FC head over a compact block whose row i belongs to global compute
  /// row rows[i]; scatters the final logits into node order.
  void run_fc(const GraphTensors& tensors, const Matrix& input,
              const std::vector<std::uint32_t>& rows);

  const GcnModel* model_;
  ShardedGcnOptions options_;
  GraphPartition partition_;
  bool has_partition_ = false;
  std::vector<LocalShard> locals_;
  std::vector<std::vector<ExportPlan>> send_;
  ShardStore store_;
  Matrix logits_;
  ForwardWorkspace ws_;
  Matrix active_a_;     ///< shard active-block ping
  Matrix active_b_;     ///< shard active-block pong
  Matrix compact_out_;  ///< per-layer compact activation output
  Matrix owner_block_;  ///< owner-row block staging
  Matrix xbuf_;         ///< export-row staging
  Matrix fc_a_;         ///< FC chain ping
  Matrix fc_b_;         ///< FC chain pong
  std::size_t cached_nodes_ = 0;  ///< 0 = no valid stored blocks
  std::size_t cached_pred_nnz_ = 0;
  std::size_t cached_succ_nnz_ = 0;
  bool last_was_full_ = false;
  std::size_t last_dirty_rows_ = 0;
};

}  // namespace gcnt
