#pragma once
// Small row-vector helpers shared by the per-node inference engines
// (recursive baseline, GraphSAGE-style sampled baseline, OPI impact
// evaluation). Whole-graph paths use the Matrix kernels instead. The
// inner loops run on the same runtime-dispatched SIMD microkernels
// (tensor/simd/simd.h) as the Matrix kernels, so per-node and
// whole-graph engines always execute on the same target.

#include <vector>

#include "nn/layers.h"
#include "tensor/simd/simd.h"

namespace gcnt {

/// row-vector * W + b on plain float vectors.
inline std::vector<float> apply_linear_row(const Linear& layer,
                                           const std::vector<float>& in) {
  const Matrix& w = layer.weight.value;
  const Matrix& b = layer.bias.value;
  const SimdOps& ops = simd_ops();
  std::vector<float> out(b.row(0), b.row(0) + w.cols());
  for (std::size_t i = 0; i < w.rows(); ++i) {
    const float x = in[i];
    if (x == 0.0f) continue;
    ops.axpy(out.data(), w.row(i), x, w.cols());
  }
  return out;
}

inline void relu_row(std::vector<float>& v) {
  simd_ops().relu(v.data(), v.size());
}

inline void axpy_row(std::vector<float>& acc, float alpha,
                     const std::vector<float>& x) {
  simd_ops().axpy(acc.data(), x.data(), alpha, acc.size());
}

/// Applies a model's FC head to a single embedding row.
inline std::vector<float> fc_head_row(const std::vector<Linear>& fc,
                                      std::vector<float> h) {
  for (std::size_t i = 0; i < fc.size(); ++i) {
    h = apply_linear_row(fc[i], h);
    if (i + 1 < fc.size()) relu_row(h);
  }
  return h;
}

}  // namespace gcnt
