#pragma once
// Small row-vector helpers shared by the per-node inference engines
// (recursive baseline, GraphSAGE-style sampled baseline, OPI impact
// evaluation). Whole-graph paths use the Matrix kernels instead.

#include <vector>

#include "nn/layers.h"

namespace gcnt {

/// row-vector * W + b on plain float vectors.
inline std::vector<float> apply_linear_row(const Linear& layer,
                                           const std::vector<float>& in) {
  const Matrix& w = layer.weight.value;
  const Matrix& b = layer.bias.value;
  std::vector<float> out(w.cols());
  for (std::size_t j = 0; j < w.cols(); ++j) out[j] = b.at(0, j);
  for (std::size_t i = 0; i < w.rows(); ++i) {
    const float x = in[i];
    if (x == 0.0f) continue;
    const float* wrow = w.row(i);
    for (std::size_t j = 0; j < w.cols(); ++j) out[j] += x * wrow[j];
  }
  return out;
}

inline void relu_row(std::vector<float>& v) {
  for (float& x : v) {
    if (x < 0.0f) x = 0.0f;
  }
}

inline void axpy_row(std::vector<float>& acc, float alpha,
                     const std::vector<float>& x) {
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += alpha * x[i];
}

/// Applies a model's FC head to a single embedding row.
inline std::vector<float> fc_head_row(const std::vector<Linear>& fc,
                                      std::vector<float> h) {
  for (std::size_t i = 0; i < fc.size(); ++i) {
    h = apply_linear_row(fc[i], h);
    if (i + 1 < fc.size()) relu_row(h);
  }
  return h;
}

}  // namespace gcnt
