#include "gcn/serialize.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <iterator>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/artifact.h"
#include "common/error.h"
#include "common/fault_inject.h"

namespace gcnt {

namespace {

constexpr const char* kMagic = "gcnt-model";
// v1: config + fp32 params. v2 = v1 + a trailing quantized-weights
// section. A model without int8 snapshots still saves as v1 — byte
// identical to what older builds wrote — so default saves never change
// and old readers only reject files that actually need the new section.
constexpr int kVersion = 1;
constexpr int kQuantVersion = 2;

// Architecture bounds: a corrupted or hostile header must not be able to
// drive a huge allocation. The paper's widest layer is 128; these caps
// leave two orders of magnitude of headroom while keeping the largest
// single weight matrix (kMaxDim^2 floats) around 1 GiB.
constexpr std::size_t kMaxDepth = 64;
constexpr std::size_t kMaxLayerCount = 64;
constexpr std::size_t kMaxDim = 16384;
constexpr std::size_t kMaxClasses = 4096;
/// Upper bound on total parameter elements across all layers (64M floats
/// = 256 MiB), checked before the model is constructed.
constexpr std::size_t kMaxTotalParams = std::size_t{1} << 26;

[[noreturn]] void fail(const std::string& message) {
  throw Error(ErrorKind::kCorrupt, "load_model: " + message);
}

std::vector<std::size_t> read_dims(std::istringstream& line) {
  std::vector<std::size_t> dims;
  std::size_t value = 0;
  while (line >> value) dims.push_back(value);
  return dims;
}

void check_dims(const char* what, const std::vector<std::size_t>& dims) {
  if (dims.size() > kMaxLayerCount) {
    fail(std::string(what) + ": implausible layer count " +
         std::to_string(dims.size()));
  }
  for (std::size_t k : dims) {
    if (k == 0 || k > kMaxDim) {
      fail(std::string(what) + ": dimension " + std::to_string(k) +
           " outside [1, " + std::to_string(kMaxDim) + "]");
    }
  }
}

/// Total parameter elements the config will allocate — computed from the
/// header alone so the bound is enforced before any allocation happens.
std::size_t config_param_elements(const GcnConfig& config) {
  std::size_t total = 2;  // w_pr, w_su
  std::size_t in = kNodeFeatureDim;
  for (std::size_t d = 0; d < static_cast<std::size_t>(config.depth); ++d) {
    const std::size_t out = config.embed_dims[d];
    total += in * out + out;
    in = out;
  }
  for (std::size_t f : config.fc_dims) {
    total += in * f + f;
    in = f;
  }
  total += in * config.num_classes + config.num_classes;
  return total;
}

}  // namespace

void save_model(const GcnModel& model, std::ostream& out) {
  const GcnConfig& config = model.config();
  const bool quantized = model.precision() == Precision::kInt8;
  out << kMagic << " v" << (quantized ? kQuantVersion : kVersion) << "\n";
  out << "depth " << config.depth << "\n";
  out << "embed_dims";
  for (std::size_t k : config.embed_dims) out << " " << k;
  out << "\nfc_dims";
  for (std::size_t k : config.fc_dims) out << " " << k;
  out << "\nnum_classes " << config.num_classes << "\n";
  out << "aggregation " << (config.tied_aggregation ? 1 : 0) << " "
      << (config.frozen_aggregation ? 1 : 0) << " "
      << std::setprecision(std::numeric_limits<float>::max_digits10)
      << model.w_pr() << " " << model.w_su() << "\n";

  out << std::setprecision(std::numeric_limits<float>::max_digits10);
  for (const Param* param : model.params()) {
    out << "param " << param->value.rows() << " " << param->value.cols()
        << "\n";
    for (std::size_t i = 0; i < param->value.size(); ++i) {
      out << param->value.data()[i]
          << ((i + 1) % 8 == 0 || i + 1 == param->value.size() ? "\n" : " ");
    }
  }

  if (quantized) {
    // Calibrated per-layer int8 snapshots, encoders first then FC, so a
    // v2 load reproduces int8 inference bit-for-bit without
    // re-calibrating (col_sums are recomputed — they are derived data).
    const std::size_t layer_count =
        model.quantized_encoders().size() + model.quantized_fc().size();
    out << "quant int8 " << layer_count << "\n";
    const auto write_qlayer = [&out](const QuantizedLinear& q) {
      // "qlayer in out" then `out` per-column fp32 scales, then the
      // in*out transposed codes, both 16 values per line.
      out << "qlayer " << q.in << " " << q.out << "\n";
      for (std::size_t j = 0; j < q.out; ++j) {
        out << q.scales[j]
            << ((j + 1) % 16 == 0 || j + 1 == q.out ? "\n" : " ");
      }
      const std::size_t total = q.weight_t.size();
      for (std::size_t i = 0; i < total; ++i) {
        out << static_cast<int>(q.weight_t[i])
            << ((i + 1) % 16 == 0 || i + 1 == total ? "\n" : " ");
      }
    };
    for (const QuantizedLinear& q : model.quantized_encoders()) {
      write_qlayer(q);
    }
    for (const QuantizedLinear& q : model.quantized_fc()) write_qlayer(q);
  }
}

GcnModel load_model(std::istream& in) {
  std::string magic, version;
  if (!(in >> magic >> version) || magic != kMagic) {
    fail("bad header");
  }
  const bool quantized = version == "v" + std::to_string(kQuantVersion);
  if (!quantized && version != "v" + std::to_string(kVersion)) {
    throw Error(ErrorKind::kVersion,
                "load_model: model is " + version + ", this build reads v" +
                    std::to_string(kVersion) + "/v" +
                    std::to_string(kQuantVersion));
  }

  GcnConfig config;
  std::string line;
  std::getline(in, line);  // consume end of header line

  const auto expect_line = [&](const std::string& key) -> std::istringstream {
    if (!std::getline(in, line)) fail("truncated before " + key);
    std::istringstream stream(line);
    std::string token;
    stream >> token;
    if (token != key) fail("expected '" + key + "', got '" + token + "'");
    return stream;
  };

  {
    auto stream = expect_line("depth");
    if (!(stream >> config.depth)) fail("bad depth");
  }
  {
    auto stream = expect_line("embed_dims");
    config.embed_dims = read_dims(stream);
  }
  {
    auto stream = expect_line("fc_dims");
    config.fc_dims = read_dims(stream);
  }
  {
    auto stream = expect_line("num_classes");
    if (!(stream >> config.num_classes)) fail("bad num_classes");
  }
  {
    auto stream = expect_line("aggregation");
    int tied = 0, frozen = 0;
    if (!(stream >> tied >> frozen >> config.initial_w_pr >>
          config.initial_w_su)) {
      fail("bad aggregation line");
    }
    config.tied_aggregation = tied != 0;
    config.frozen_aggregation = frozen != 0;
  }
  if (config.embed_dims.empty() || config.depth < 1 ||
      static_cast<std::size_t>(config.depth) > config.embed_dims.size()) {
    fail("inconsistent architecture");
  }
  // Bound every architecture field before GcnModel(config) allocates: a
  // corrupted or hostile header must fail here, not in the allocator.
  if (static_cast<std::size_t>(config.depth) > kMaxDepth) {
    fail("depth " + std::to_string(config.depth) + " exceeds " +
         std::to_string(kMaxDepth));
  }
  check_dims("embed_dims", config.embed_dims);
  check_dims("fc_dims", config.fc_dims);
  if (config.num_classes == 0 || config.num_classes > kMaxClasses) {
    fail("num_classes " + std::to_string(config.num_classes) +
         " outside [1, " + std::to_string(kMaxClasses) + "]");
  }
  const std::size_t total_elements = config_param_elements(config);
  if (total_elements > kMaxTotalParams) {
    fail("architecture declares " + std::to_string(total_elements) +
         " parameters, cap is " + std::to_string(kMaxTotalParams));
  }

  fault_alloc_probe("load_model parameters");
  GcnModel model(config);
  for (Param* param : model.params()) {
    std::string token;
    std::size_t rows = 0, cols = 0;
    if (!(in >> token >> rows >> cols) || token != "param") {
      fail("missing param block");
    }
    if (rows != param->value.rows() || cols != param->value.cols()) {
      fail("parameter shape mismatch");
    }
    for (std::size_t i = 0; i < param->value.size(); ++i) {
      if (!(in >> param->value.data()[i])) fail("truncated parameter data");
      if (!std::isfinite(param->value.data()[i])) {
        fail("non-finite parameter value");
      }
    }
  }

  if (quantized) {
    std::string token, scheme;
    std::size_t layer_count = 0;
    if (!(in >> token >> scheme >> layer_count) || token != "quant") {
      fail("missing quant section in v2 model");
    }
    if (scheme != "int8") fail("unknown quantization scheme '" + scheme + "'");
    const std::size_t expected =
        model.encoders().size() + model.fc_layers().size();
    if (layer_count != expected) {
      fail("quant section declares " + std::to_string(layer_count) +
           " layers, model has " + std::to_string(expected));
    }
    std::vector<QuantizedLinear> qlayers;
    qlayers.reserve(layer_count);
    for (std::size_t l = 0; l < layer_count; ++l) {
      std::size_t in_dim = 0, out_dim = 0;
      if (!(in >> token >> in_dim >> out_dim) || token != "qlayer") {
        fail("missing qlayer block");
      }
      if (in_dim == 0 || in_dim > kMaxDim || out_dim == 0 ||
          out_dim > kMaxDim) {
        fail("qlayer dimensions outside [1, " + std::to_string(kMaxDim) + "]");
      }
      std::vector<float> scales(out_dim);
      for (std::size_t j = 0; j < out_dim; ++j) {
        if (!(in >> scales[j])) fail("truncated qlayer scales");
      }
      std::vector<std::int8_t> codes(in_dim * out_dim);
      for (std::size_t i = 0; i < codes.size(); ++i) {
        int code = 0;
        if (!(in >> code)) fail("truncated quantized weight data");
        if (code < -127 || code > 127) {
          fail("quantized weight code outside [-127, 127]");
        }
        codes[i] = static_cast<std::int8_t>(code);
      }
      // make_quantized_linear re-validates scales and rebuilds col_sums;
      // install_quantized checks each shape against the architecture.
      qlayers.push_back(make_quantized_linear(in_dim, out_dim,
                                              std::move(scales),
                                              std::move(codes)));
    }
    std::vector<QuantizedLinear> qfc(
        std::make_move_iterator(qlayers.begin() +
                                static_cast<std::ptrdiff_t>(
                                    model.encoders().size())),
        std::make_move_iterator(qlayers.end()));
    qlayers.resize(model.encoders().size());
    model.install_quantized(std::move(qlayers), std::move(qfc));
  }
  return model;
}

void save_model_file(const GcnModel& model, const std::string& path) {
  std::ostringstream payload;
  save_model(model, payload);
  write_artifact_file(path, "model", payload.str());
}

GcnModel load_model_file(const std::string& path) {
  if (is_artifact_file(path)) {
    std::istringstream payload(read_artifact_file(path, "model"));
    return load_model(payload);
  }
  // Legacy bare v1 file (pre-envelope); kept loadable.
  std::ifstream in(path);
  if (!in) throw Error(ErrorKind::kIo, "cannot open for read: " + path);
  return load_model(in);
}

}  // namespace gcnt
