#include "gcn/serialize.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gcnt {

namespace {

constexpr const char* kMagic = "gcnt-model";
constexpr int kVersion = 1;

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("load_model: " + message);
}

std::vector<std::size_t> read_dims(std::istringstream& line) {
  std::vector<std::size_t> dims;
  std::size_t value = 0;
  while (line >> value) dims.push_back(value);
  return dims;
}

}  // namespace

void save_model(const GcnModel& model, std::ostream& out) {
  const GcnConfig& config = model.config();
  out << kMagic << " v" << kVersion << "\n";
  out << "depth " << config.depth << "\n";
  out << "embed_dims";
  for (std::size_t k : config.embed_dims) out << " " << k;
  out << "\nfc_dims";
  for (std::size_t k : config.fc_dims) out << " " << k;
  out << "\nnum_classes " << config.num_classes << "\n";
  out << "aggregation " << (config.tied_aggregation ? 1 : 0) << " "
      << (config.frozen_aggregation ? 1 : 0) << " "
      << std::setprecision(std::numeric_limits<float>::max_digits10)
      << model.w_pr() << " " << model.w_su() << "\n";

  out << std::setprecision(std::numeric_limits<float>::max_digits10);
  for (const Param* param : model.params()) {
    out << "param " << param->value.rows() << " " << param->value.cols()
        << "\n";
    for (std::size_t i = 0; i < param->value.size(); ++i) {
      out << param->value.data()[i]
          << ((i + 1) % 8 == 0 || i + 1 == param->value.size() ? "\n" : " ");
    }
  }
}

GcnModel load_model(std::istream& in) {
  std::string magic, version;
  if (!(in >> magic >> version) || magic != kMagic || version != "v1") {
    fail("bad header");
  }

  GcnConfig config;
  std::string line;
  std::getline(in, line);  // consume end of header line

  const auto expect_line = [&](const std::string& key) -> std::istringstream {
    if (!std::getline(in, line)) fail("truncated before " + key);
    std::istringstream stream(line);
    std::string token;
    stream >> token;
    if (token != key) fail("expected '" + key + "', got '" + token + "'");
    return stream;
  };

  {
    auto stream = expect_line("depth");
    if (!(stream >> config.depth)) fail("bad depth");
  }
  {
    auto stream = expect_line("embed_dims");
    config.embed_dims = read_dims(stream);
  }
  {
    auto stream = expect_line("fc_dims");
    config.fc_dims = read_dims(stream);
  }
  {
    auto stream = expect_line("num_classes");
    if (!(stream >> config.num_classes)) fail("bad num_classes");
  }
  {
    auto stream = expect_line("aggregation");
    int tied = 0, frozen = 0;
    if (!(stream >> tied >> frozen >> config.initial_w_pr >>
          config.initial_w_su)) {
      fail("bad aggregation line");
    }
    config.tied_aggregation = tied != 0;
    config.frozen_aggregation = frozen != 0;
  }
  if (config.embed_dims.empty() || config.depth < 1 ||
      static_cast<std::size_t>(config.depth) > config.embed_dims.size()) {
    fail("inconsistent architecture");
  }

  GcnModel model(config);
  for (Param* param : model.params()) {
    std::string token;
    std::size_t rows = 0, cols = 0;
    if (!(in >> token >> rows >> cols) || token != "param") {
      fail("missing param block");
    }
    if (rows != param->value.rows() || cols != param->value.cols()) {
      fail("parameter shape mismatch");
    }
    for (std::size_t i = 0; i < param->value.size(); ++i) {
      if (!(in >> param->value.data()[i])) fail("truncated parameter data");
    }
  }
  return model;
}

void save_model_file(const GcnModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_model(model, out);
}

GcnModel load_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return load_model(in);
}

}  // namespace gcnt
