#include "gcn/trainer.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "common/error.h"
#include "common/fault_inject.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "gcn/checkpoint.h"
#include "gcn/serialize.h"
#include "nn/optimizer.h"

namespace gcnt {

namespace {

std::vector<std::int32_t> argmax_rows(const Matrix& logits) {
  std::vector<std::int32_t> out(logits.rows(), 0);
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* row = logits.row(r);
    std::int32_t best = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[best]) best = static_cast<std::int32_t>(c);
    }
    out[r] = best;
  }
  return out;
}

void validate_graphs(const std::vector<TrainGraph>& train_graphs) {
  if (train_graphs.empty()) {
    throw std::invalid_argument("Trainer::train: no training graphs");
  }
  for (const TrainGraph& tg : train_graphs) {
    if (tg.graph == nullptr || tg.graph->labels.empty()) {
      throw std::invalid_argument("Trainer::train: unlabeled graph");
    }
  }
}

std::unique_ptr<Optimizer> make_optimizer(const TrainerOptions& options) {
  if (options.use_adam) {
    return std::make_unique<AdamOptimizer>(options.learning_rate);
  }
  return std::make_unique<SgdOptimizer>(options.learning_rate,
                                        options.sgd_momentum);
}

/// Trainer RNG stream, derived from the model seed so distinct
/// configurations draw independently.
Rng make_trainer_rng(const GcnConfig& config) {
  return Rng(config.seed ^ 0x7261696e65724aULL);
}

}  // namespace

Trainer::Trainer(GcnModel& model, TrainerOptions options)
    : model_(&model), options_(std::move(options)) {}

double Trainer::evaluate_accuracy(const GcnModel& model,
                                  const TrainGraph& data) {
  const Matrix logits = model.infer(*data.graph);
  const auto predictions = argmax_rows(logits);
  const auto cm = evaluate_binary(predictions, data.graph->labels,
                                  data.rows.empty() ? nullptr : &data.rows);
  return cm.accuracy();
}

std::vector<EpochRecord> Trainer::train(
    const std::vector<TrainGraph>& train_graphs, const TrainGraph* test) {
  validate_graphs(train_graphs);
  const auto optimizer = make_optimizer(options_);
  Rng rng = make_trainer_rng(model_->config());
  return run_epochs(train_graphs, test, 0, {}, *optimizer, rng);
}

std::vector<EpochRecord> Trainer::resume(
    const std::vector<TrainGraph>& train_graphs, const TrainGraph* test) {
  if (options_.checkpoint_path.empty()) {
    throw Error(ErrorKind::kUsage,
                "Trainer::resume: no checkpoint_path configured");
  }
  if (!checkpoint_exists(options_.checkpoint_path)) {
    // Nothing was persisted before the interruption (or this is the first
    // run): a fresh start is the correct continuation.
    return train(train_graphs, test);
  }
  validate_graphs(train_graphs);
  TrainCheckpoint checkpoint = load_checkpoint_file(options_.checkpoint_path);

  // Restore weights. The checkpointed architecture must match the model
  // this Trainer was constructed with.
  std::istringstream model_payload(checkpoint.model_text);
  const GcnModel restored = load_model(model_payload);
  const auto expected = model_->params();
  const auto stored = restored.params();
  if (expected.size() != stored.size()) {
    throw Error(ErrorKind::kUsage,
                "Trainer::resume: checkpoint architecture does not match "
                "the configured model");
  }
  for (std::size_t p = 0; p < expected.size(); ++p) {
    if (expected[p]->value.rows() != stored[p]->value.rows() ||
        expected[p]->value.cols() != stored[p]->value.cols()) {
      throw Error(ErrorKind::kUsage,
                  "Trainer::resume: checkpoint parameter shapes do not "
                  "match the configured model");
    }
  }
  model_->copy_params_from(restored);
  model_->zero_grad();

  const auto optimizer = make_optimizer(options_);
  if (checkpoint.optimizer_kind != optimizer->kind()) {
    throw Error(ErrorKind::kUsage,
                "Trainer::resume: checkpoint was written with optimizer '" +
                    checkpoint.optimizer_kind + "', options select '" +
                    optimizer->kind() + "'");
  }
  optimizer->ensure_state(model_->params());
  const auto state = optimizer->state_matrices();
  if (state.size() != checkpoint.optimizer_state.size()) {
    throw Error(ErrorKind::kCorrupt,
                "Trainer::resume: optimizer state count mismatch");
  }
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (state[i]->rows() != checkpoint.optimizer_state[i].rows() ||
        state[i]->cols() != checkpoint.optimizer_state[i].cols()) {
      throw Error(ErrorKind::kCorrupt,
                  "Trainer::resume: optimizer state shape mismatch");
    }
    *state[i] = std::move(checkpoint.optimizer_state[i]);
  }
  optimizer->set_step_count(checkpoint.optimizer_step_count);

  Rng rng = make_trainer_rng(model_->config());
  rng.set_state(checkpoint.rng_state);

  static Counter& resumes_counter =
      StatsRegistry::instance().counter("train.resumes");
  resumes_counter.add();
  return run_epochs(train_graphs, test, checkpoint.next_epoch,
                    std::move(checkpoint.history), *optimizer, rng);
}

std::vector<EpochRecord> Trainer::run_epochs(
    const std::vector<TrainGraph>& train_graphs, const TrainGraph* test,
    std::size_t start_epoch, std::vector<EpochRecord> history,
    Optimizer& optimizer, Rng& rng) {
  const std::vector<float> class_weights{1.0f,
                                         options_.positive_class_weight};

  // One replica per worker slot; each step a replica handles one graph,
  // mirroring the one-graph-per-GPU scheme of Fig. 5.
  const std::size_t replica_count =
      options_.workers == 0 ? train_graphs.size()
                            : std::min(options_.workers, train_graphs.size());
  std::vector<GcnModel> replicas(replica_count, *model_);
  ThreadPool pool(replica_count);

  const auto master_params = model_->params();
  history.reserve(options_.epochs);

  static Counter& epochs_counter =
      StatsRegistry::instance().counter("train.epochs");
  static Counter& checkpoints_counter =
      StatsRegistry::instance().counter("train.checkpoints");
  for (std::size_t epoch = start_epoch; epoch < options_.epochs; ++epoch) {
    TraceSpan epoch_span("train.epoch");
    epoch_span.arg("epoch", static_cast<double>(epoch));
    epoch_span.arg("graphs", static_cast<double>(train_graphs.size()));
    epochs_counter.add();
    // Epoch-boundary probes: a fault sweep can exhaust "resources" here
    // and assert that resume() recovers the run.
    fault_alloc_probe("trainer epoch");
    // Advance the trainer stream once per epoch so its checkpointed state
    // genuinely reflects progress (future stochastic schedules draw here).
    (void)rng();
    std::vector<double> losses(train_graphs.size(), 0.0);

    // Process graphs in waves of `replica_count`.
    for (std::size_t wave = 0; wave < train_graphs.size();
         wave += replica_count) {
      const std::size_t in_wave =
          std::min(replica_count, train_graphs.size() - wave);
      for (std::size_t k = 0; k < in_wave; ++k) {
        replicas[k].copy_params_from(*model_);
        replicas[k].zero_grad();
      }
      pool.parallel_for(in_wave, [&](std::size_t k) {
        const TrainGraph& tg = train_graphs[wave + k];
        GcnModel& replica = replicas[k];
        const Matrix logits = replica.forward(*tg.graph);
        Matrix dlogits;
        losses[wave + k] = softmax_cross_entropy(
            logits, tg.graph->labels, class_weights,
            tg.rows.empty() ? nullptr : &tg.rows, dlogits);
        replica.backward(*tg.graph, dlogits);
      });
      // Gather: average replica gradients into the master, then step.
      const float scale = 1.0f / static_cast<float>(in_wave);
      for (std::size_t k = 0; k < in_wave; ++k) {
        const auto replica_params = replicas[k].params();
        for (std::size_t p = 0; p < master_params.size(); ++p) {
          master_params[p]->grad.axpy(scale, replica_params[p]->grad);
        }
      }
      optimizer.step(master_params);
    }

    EpochRecord record;
    record.epoch = epoch;
    for (double l : losses) record.loss += l;
    record.loss /= static_cast<double>(train_graphs.size());
    if (epoch % options_.eval_interval == 0 ||
        epoch + 1 == options_.epochs) {
      double acc = 0.0;
      for (const TrainGraph& tg : train_graphs) {
        acc += evaluate_accuracy(*model_, tg);
      }
      record.train_accuracy = acc / static_cast<double>(train_graphs.size());
      if (test != nullptr) {
        record.test_accuracy = evaluate_accuracy(*model_, *test);
      }
    } else if (!history.empty()) {
      record.train_accuracy = history.back().train_accuracy;
      record.test_accuracy = history.back().test_accuracy;
    }
    history.push_back(record);

    // Epoch-boundary checkpoint: written atomically, so a kill at any
    // instant leaves either this checkpoint or the previous one.
    if (!options_.checkpoint_path.empty() &&
        ((epoch + 1) % std::max<std::size_t>(1, options_.checkpoint_interval)
             == 0 ||
         epoch + 1 == options_.epochs)) {
      TraceSpan checkpoint_span("train.checkpoint");
      TrainCheckpoint checkpoint;
      checkpoint.next_epoch = epoch + 1;
      checkpoint.rng_state = rng.state();
      checkpoint.optimizer_kind = optimizer.kind();
      checkpoint.optimizer_step_count = optimizer.step_count();
      for (Matrix* m : optimizer.state_matrices()) {
        checkpoint.optimizer_state.push_back(*m);
      }
      checkpoint.history = history;
      std::ostringstream model_text;
      save_model(*model_, model_text);
      checkpoint.model_text = model_text.str();
      save_checkpoint_file(options_.checkpoint_path, checkpoint);
      checkpoints_counter.add();
    }
  }
  return history;
}

}  // namespace gcnt
