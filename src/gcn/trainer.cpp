#include "gcn/trainer.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "nn/optimizer.h"

namespace gcnt {

namespace {

std::vector<std::int32_t> argmax_rows(const Matrix& logits) {
  std::vector<std::int32_t> out(logits.rows(), 0);
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* row = logits.row(r);
    std::int32_t best = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[best]) best = static_cast<std::int32_t>(c);
    }
    out[r] = best;
  }
  return out;
}

}  // namespace

Trainer::Trainer(GcnModel& model, TrainerOptions options)
    : model_(&model), options_(options) {}

double Trainer::evaluate_accuracy(const GcnModel& model,
                                  const TrainGraph& data) {
  const Matrix logits = model.infer(*data.graph);
  const auto predictions = argmax_rows(logits);
  const auto cm = evaluate_binary(predictions, data.graph->labels,
                                  data.rows.empty() ? nullptr : &data.rows);
  return cm.accuracy();
}

std::vector<EpochRecord> Trainer::train(
    const std::vector<TrainGraph>& train_graphs, const TrainGraph* test) {
  if (train_graphs.empty()) {
    throw std::invalid_argument("Trainer::train: no training graphs");
  }
  for (const TrainGraph& tg : train_graphs) {
    if (tg.graph == nullptr || tg.graph->labels.empty()) {
      throw std::invalid_argument("Trainer::train: unlabeled graph");
    }
  }

  const std::vector<float> class_weights{1.0f,
                                         options_.positive_class_weight};

  std::unique_ptr<Optimizer> optimizer;
  if (options_.use_adam) {
    optimizer = std::make_unique<AdamOptimizer>(options_.learning_rate);
  } else {
    optimizer = std::make_unique<SgdOptimizer>(options_.learning_rate,
                                               options_.sgd_momentum);
  }

  // One replica per worker slot; each step a replica handles one graph,
  // mirroring the one-graph-per-GPU scheme of Fig. 5.
  const std::size_t replica_count =
      options_.workers == 0 ? train_graphs.size()
                            : std::min(options_.workers, train_graphs.size());
  std::vector<GcnModel> replicas(replica_count, *model_);
  ThreadPool pool(replica_count);

  const auto master_params = model_->params();
  std::vector<EpochRecord> history;
  history.reserve(options_.epochs);

  static Counter& epochs_counter =
      StatsRegistry::instance().counter("train.epochs");
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    TraceSpan epoch_span("train.epoch");
    epoch_span.arg("epoch", static_cast<double>(epoch));
    epoch_span.arg("graphs", static_cast<double>(train_graphs.size()));
    epochs_counter.add();
    std::vector<double> losses(train_graphs.size(), 0.0);

    // Process graphs in waves of `replica_count`.
    for (std::size_t wave = 0; wave < train_graphs.size();
         wave += replica_count) {
      const std::size_t in_wave =
          std::min(replica_count, train_graphs.size() - wave);
      for (std::size_t k = 0; k < in_wave; ++k) {
        replicas[k].copy_params_from(*model_);
        replicas[k].zero_grad();
      }
      pool.parallel_for(in_wave, [&](std::size_t k) {
        const TrainGraph& tg = train_graphs[wave + k];
        GcnModel& replica = replicas[k];
        const Matrix logits = replica.forward(*tg.graph);
        Matrix dlogits;
        losses[wave + k] = softmax_cross_entropy(
            logits, tg.graph->labels, class_weights,
            tg.rows.empty() ? nullptr : &tg.rows, dlogits);
        replica.backward(*tg.graph, dlogits);
      });
      // Gather: average replica gradients into the master, then step.
      const float scale = 1.0f / static_cast<float>(in_wave);
      for (std::size_t k = 0; k < in_wave; ++k) {
        const auto replica_params = replicas[k].params();
        for (std::size_t p = 0; p < master_params.size(); ++p) {
          master_params[p]->grad.axpy(scale, replica_params[p]->grad);
        }
      }
      optimizer->step(master_params);
    }

    EpochRecord record;
    record.epoch = epoch;
    for (double l : losses) record.loss += l;
    record.loss /= static_cast<double>(train_graphs.size());
    if (epoch % options_.eval_interval == 0 ||
        epoch + 1 == options_.epochs) {
      double acc = 0.0;
      for (const TrainGraph& tg : train_graphs) {
        acc += evaluate_accuracy(*model_, tg);
      }
      record.train_accuracy = acc / static_cast<double>(train_graphs.size());
      if (test != nullptr) {
        record.test_accuracy = evaluate_accuracy(*model_, *test);
      }
    } else if (!history.empty()) {
      record.train_accuracy = history.back().train_accuracy;
      record.test_accuracy = history.back().test_accuracy;
    }
    history.push_back(record);
  }
  return history;
}

}  // namespace gcnt
