#pragma once
// GraphSAGE-style minibatch inference — the faithful cost model for the
// "released implementation of [12]" baseline in Fig. 10.
//
// GraphSAGE's released pipeline computes every node's embedding from a
// FIXED-SIZE sampled neighborhood per hop (sampling WITH replacement when
// the true degree is smaller), so per-node work is Θ(S1*S2*...*SD) matrix-
// vector products regardless of the real (small) gate fanin/fanout. That —
// duplicated recomputation plus fixed-fanout padding — is what makes the
// recursion three orders of magnitude slower than the paper's shared
// sparse-matrix formulation on million-gate netlists.
//
// The math per sampled neighborhood matches GcnModel up to the sampling
// (weighted-sum aggregation, shared encoders, FC head).

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "gcn/model.h"
#include "netlist/netlist.h"

namespace gcnt {

struct SampleFanouts {
  /// Neighbors sampled per hop, outermost first. GraphSAGE's defaults are
  /// 25 and 10 for a 2-layer model; a third layer commonly uses 10.
  std::vector<std::size_t> per_hop = {25, 10, 10};
};

class GraphSageInference {
 public:
  GraphSageInference(const GcnModel& model, const Netlist& netlist,
                     const Matrix& features, SampleFanouts fanouts = {},
                     std::uint64_t seed = 1);

  /// Logits for one node from its sampled, recursively expanded
  /// neighborhood. Draws from the engine's sequential stream, so repeated
  /// calls produce different samples.
  std::vector<float> infer_node(NodeId v);

  /// Logits for every node (independent per-node recursions), computed in
  /// parallel on the kernel pool. Each node samples from its own stream
  /// derived from (seed, node id), so the result is deterministic for the
  /// seed and bitwise identical for any thread count.
  Matrix infer_all();

 private:
  std::vector<float> embed(NodeId v, int depth, Rng& rng);

  const GcnModel* model_;
  const Netlist* netlist_;
  const Matrix* features_;
  SampleFanouts fanouts_;
  std::uint64_t seed_;
  Rng rng_;
};

}  // namespace gcnt
