#pragma once
// End-to-end GCN training over multiple netlist graphs.
//
// Implements the paper's parallel training scheme (Section 3.4.2, Fig. 5):
// graphs cannot be split like image batches, so each worker ("device")
// owns a model replica and one whole graph per step; replica gradients are
// gathered and averaged into the master model, which takes the optimizer
// step. On a single-core host the pool serializes but the scheme — and its
// gradient equivalence to serial training, which the tests check — is the
// same.

#include <cstdint>
#include <vector>

#include "gcn/model.h"

namespace gcnt {

/// One training/evaluation unit: a graph and the rows the loss runs on
/// (e.g. a balanced subset). Labels come from GraphTensors::labels.
struct TrainGraph {
  const GraphTensors* graph = nullptr;
  std::vector<std::uint32_t> rows;  ///< empty = all rows
};

struct TrainerOptions {
  std::size_t epochs = 100;
  float learning_rate = 1e-2f;
  /// Loss weight on the positive (difficult-to-observe) class; stages of
  /// the multi-stage cascade raise this (Section 3.3).
  float positive_class_weight = 1.0f;
  bool use_adam = true;       ///< false = SGD with momentum (paper setup)
  float sgd_momentum = 0.9f;
  std::size_t workers = 0;    ///< replicas; 0 = one per training graph
  /// Record train/test accuracy every `eval_interval` epochs (1 = always).
  std::size_t eval_interval = 1;
};

struct EpochRecord {
  std::size_t epoch = 0;
  double loss = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;  ///< 0 when no test graph supplied
};

class Trainer {
 public:
  Trainer(GcnModel& model, TrainerOptions options);

  /// Trains `model` in place; returns the per-epoch learning curve
  /// (Fig. 8 data). `test` may be nullptr.
  std::vector<EpochRecord> train(const std::vector<TrainGraph>& train_graphs,
                                 const TrainGraph* test);

  /// Accuracy of `model` on one graph restricted to `rows`.
  static double evaluate_accuracy(const GcnModel& model,
                                  const TrainGraph& data);

 private:
  GcnModel* model_;
  TrainerOptions options_;
};

}  // namespace gcnt
