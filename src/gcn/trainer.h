#pragma once
// End-to-end GCN training over multiple netlist graphs.
//
// Implements the paper's parallel training scheme (Section 3.4.2, Fig. 5):
// graphs cannot be split like image batches, so each worker ("device")
// owns a model replica and one whole graph per step; replica gradients are
// gathered and averaged into the master model, which takes the optimizer
// step. On a single-core host the pool serializes but the scheme — and its
// gradient equivalence to serial training, which the tests check — is the
// same.

#include <cstdint>
#include <string>
#include <vector>

#include "gcn/model.h"

namespace gcnt {

class Optimizer;
class Rng;

/// One training/evaluation unit: a graph and the rows the loss runs on
/// (e.g. a balanced subset). Labels come from GraphTensors::labels.
struct TrainGraph {
  const GraphTensors* graph = nullptr;
  std::vector<std::uint32_t> rows;  ///< empty = all rows
};

struct TrainerOptions {
  std::size_t epochs = 100;
  float learning_rate = 1e-2f;
  /// Loss weight on the positive (difficult-to-observe) class; stages of
  /// the multi-stage cascade raise this (Section 3.3).
  float positive_class_weight = 1.0f;
  bool use_adam = true;       ///< false = SGD with momentum (paper setup)
  float sgd_momentum = 0.9f;
  std::size_t workers = 0;    ///< replicas; 0 = one per training graph
  /// Record train/test accuracy every `eval_interval` epochs (1 = always).
  std::size_t eval_interval = 1;

  /// When non-empty, an atomic, checksummed checkpoint (model + optimizer
  /// state + RNG + epoch counter + history; see gcn/checkpoint.h) is
  /// written here at every `checkpoint_interval`-th epoch boundary, and
  /// resume() continues from it bit-exactly.
  std::string checkpoint_path;
  std::size_t checkpoint_interval = 1;
};

struct EpochRecord {
  std::size_t epoch = 0;
  double loss = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;  ///< 0 when no test graph supplied
};

class Trainer {
 public:
  Trainer(GcnModel& model, TrainerOptions options);

  /// Trains `model` in place; returns the per-epoch learning curve
  /// (Fig. 8 data). `test` may be nullptr.
  std::vector<EpochRecord> train(const std::vector<TrainGraph>& train_graphs,
                                 const TrainGraph* test);

  /// Continues an interrupted run from `options.checkpoint_path`: restores
  /// weights, optimizer state, RNG, and the epoch counter, then trains the
  /// remaining epochs. The final model is bitwise identical to an
  /// uninterrupted train() at any thread count (pinned by
  /// tests/robustness_test.cpp). Falls back to a fresh train() when no
  /// checkpoint exists yet (so `--resume` is safe to pass always); throws
  /// gcnt::Error — kUsage when checkpoint_path is empty or the checkpoint
  /// does not match the model/optimizer configuration, kCorrupt/kVersion
  /// for a damaged or incompatible file.
  std::vector<EpochRecord> resume(const std::vector<TrainGraph>& train_graphs,
                                  const TrainGraph* test);

  /// Accuracy of `model` on one graph restricted to `rows`.
  static double evaluate_accuracy(const GcnModel& model,
                                  const TrainGraph& data);

 private:
  /// Shared epoch loop: runs epochs [start_epoch, options.epochs) on top
  /// of `history`, checkpointing at each boundary when configured.
  std::vector<EpochRecord> run_epochs(
      const std::vector<TrainGraph>& train_graphs, const TrainGraph* test,
      std::size_t start_epoch, std::vector<EpochRecord> history,
      Optimizer& optimizer, Rng& rng);

  GcnModel* model_;
  TrainerOptions options_;
};

}  // namespace gcnt
