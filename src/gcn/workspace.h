#pragma once
// ForwardWorkspace: the preallocated scratch buffers a whole-graph (or
// compact dirty-row) GCN forward pass needs — the two aggregation sums,
// the aggregated matrix, a ping-pong pair of activation buffers, and
// (int8 tier only) a pair of quantized activation code buffers.
//
// Matrix::resize() and Matrix::copy_from() reuse the underlying
// allocation whenever the new element count fits in capacity(), so after
// one warm-up pass over a graph every subsequent forward through the
// same workspace performs zero heap allocations (until the graph grows).
// QuantizedTensor::resize() follows the same rule for its code vector,
// extending the contract to Precision::kInt8 inference. The trainer,
// GcnModel::forward/infer, and IncrementalGcnEngine all keep a workspace
// alive across calls for exactly this reason.
//
// poll_allocations() lets tests assert the contract: it counts
// capacity-growth events across all buffers since the previous poll.
//
// A workspace is not thread-safe; concurrent forward passes must use
// distinct workspaces (results are identical — buffers never affect
// values, only where they live).

#include <cstddef>

#include "gcn/quant.h"
#include "tensor/matrix.h"

namespace gcnt {

class ForwardWorkspace {
 public:
  Matrix pred_sum;    ///< P * E_{d-1} (or its dirty-row slice)
  Matrix succ_sum;    ///< S * E_{d-1} (or its dirty-row slice)
  Matrix aggregated;  ///< G_d = E + w_pr*pred_sum + w_su*succ_sum
  Matrix ping;        ///< activation ping-pong buffer A
  Matrix pong;        ///< activation ping-pong buffer B
  QuantizedTensor qact;  ///< int8 tier: quantized activation codes
  QuantizedTensor qagg;  ///< int8 tier: quantized aggregated codes

  /// Number of buffer reallocation (capacity-growth) events across all
  /// seven buffers since the previous poll. Call once after warm-up to
  /// drain the initial growth; a zero return after further passes proves
  /// those passes allocated nothing.
  std::size_t poll_allocations() noexcept {
    const std::size_t current[kBuffers] = {
        pred_sum.capacity(), succ_sum.capacity(), aggregated.capacity(),
        ping.capacity(),     pong.capacity(),     qact.capacity(),
        qagg.capacity()};
    std::size_t events = 0;
    for (std::size_t i = 0; i < kBuffers; ++i) {
      if (current[i] > capacities_[i]) {
        capacities_[i] = current[i];
        ++events;
      }
    }
    return events;
  }

 private:
  static constexpr std::size_t kBuffers = 7;
  std::size_t capacities_[kBuffers] = {};
};

}  // namespace gcnt
