#include "gcn/multistage.h"

#include <algorithm>
#include <stdexcept>

namespace gcnt {

namespace {

/// Rows of `graph` (restricted to `rows`) the stage predicts positive.
std::vector<std::uint32_t> surviving_rows(const GcnModel& stage,
                                          const GraphTensors& graph,
                                          const std::vector<std::uint32_t>& rows) {
  const auto positive = stage.predict_positive_probability(graph);
  std::vector<std::uint32_t> kept;
  kept.reserve(rows.size());
  for (std::uint32_t r : rows) {
    if (positive[r] >= 0.5f) kept.push_back(r);
  }
  return kept;
}

float imbalance_weight(const GraphTensors& graph,
                       const std::vector<std::uint32_t>& rows, float cap) {
  std::size_t pos = 0;
  for (std::uint32_t r : rows) {
    if (graph.labels[r] == 1) ++pos;
  }
  if (pos == 0) return 1.0f;
  const float ratio = static_cast<float>(rows.size() - pos) /
                      static_cast<float>(pos);
  return std::clamp(ratio, 1.0f, cap);
}

std::vector<std::uint32_t> all_rows(const GraphTensors& graph) {
  std::vector<std::uint32_t> rows(graph.node_count());
  for (std::uint32_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return rows;
}

}  // namespace

MultiStageClassifier::MultiStageClassifier(const MultiStageOptions& options)
    : options_(options) {
  if (options_.stages == 0) {
    throw std::invalid_argument("MultiStageClassifier: need >= 1 stage");
  }
}

void MultiStageClassifier::fit(
    const std::vector<const GraphTensors*>& graphs) {
  stages_.clear();
  survivors_.clear();

  // Active rows per graph; stage k trains on the survivors of stage k-1.
  std::vector<std::vector<std::uint32_t>> active;
  active.reserve(graphs.size());
  for (const GraphTensors* g : graphs) active.push_back(all_rows(*g));

  for (std::size_t s = 0; s < options_.stages; ++s) {
    // Weight positives by the remaining imbalance (averaged over graphs);
    // the last stage decides on a near-balanced population.
    float weight = 0.0f;
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      weight += imbalance_weight(*graphs[g], active[g],
                                 options_.max_positive_weight);
    }
    weight /= static_cast<float>(graphs.size());
    if (s + 1 == options_.stages) {
      weight = options_.final_positive_weight;
    }

    GcnConfig config = options_.model;
    config.seed = options_.model.seed + 1000 * (s + 1);
    stages_.emplace_back(config);

    TrainerOptions trainer_options = options_.trainer;
    trainer_options.positive_class_weight = weight;
    Trainer trainer(stages_.back(), trainer_options);

    std::vector<TrainGraph> train_set;
    train_set.reserve(graphs.size());
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      train_set.push_back(TrainGraph{graphs[g], active[g]});
    }
    trainer.train(train_set, nullptr);

    // Filter: keep only predicted-positive rows for the next stage.
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      active[g] = surviving_rows(stages_.back(), *graphs[g], active[g]);
    }
    survivors_.push_back(active.empty() ? 0 : active[0].size());
  }
}

std::vector<std::int32_t> MultiStageClassifier::predict(
    const GraphTensors& graph) const {
  std::vector<std::uint32_t> remaining = all_rows(graph);
  for (const GcnModel& stage : stages_) {
    remaining = surviving_rows(stage, graph, remaining);
    if (remaining.empty()) break;
  }
  std::vector<std::int32_t> predictions(graph.node_count(), 0);
  for (std::uint32_t r : remaining) predictions[r] = 1;
  return predictions;
}

}  // namespace gcnt
