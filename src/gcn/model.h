#pragma once
// The paper's GCN (Section 3.2): D rounds of weighted-sum aggregation +
// dense encoding, followed by fully-connected classification layers.
//
//   G_d = E_{d-1} + w_pr * (P * E_{d-1}) + w_su * (S * E_{d-1})   (Eq. 1)
//   E_d = ReLU(G_d * W_d + b_d)
//   logits = FC(E_D)
//
// Forward and backward run whole-graph as sparse-dense matrix products
// (Eq. 3) — the "fast inference scheme" — and the same code path is the
// training forward pass. w_pr and w_su are trainable scalars shared across
// depths, exactly as in the paper.

#include <cstdint>
#include <vector>

#include "gcn/graph_tensors.h"
#include "gcn/quant.h"
#include "gcn/workspace.h"
#include "nn/layers.h"
#include "nn/loss.h"

namespace gcnt {

struct GcnConfig {
  int depth = 3;  ///< search depth D (1..embed_dims.size())
  /// K_d embedding dimensions; the paper uses (32, 64, 128).
  std::vector<std::size_t> embed_dims = {32, 64, 128};
  /// Hidden FC dimensions; the paper uses (64, 64, 128) before the
  /// 2-class output layer.
  std::vector<std::size_t> fc_dims = {64, 64, 128};
  std::size_t num_classes = 2;
  std::uint64_t seed = 1234;

  /// Ablation switches for the Eq. 1 aggregation weights.
  /// tied: one shared scalar drives both predecessor and successor sums.
  bool tied_aggregation = false;
  /// frozen: weights stay at their initial values (not trained). With
  /// initial weights 0 the model degenerates to an MLP on node features.
  bool frozen_aggregation = false;
  float initial_w_pr = 0.5f;
  float initial_w_su = 0.5f;
};

class GcnModel {
 public:
  explicit GcnModel(const GcnConfig& config);

  const GcnConfig& config() const noexcept { return config_; }

  /// Whole-graph forward pass; returns N x num_classes logits and caches
  /// activations for backward().
  Matrix forward(const GraphTensors& graph);

  /// Accumulates parameter gradients from d(loss)/d(logits). Must follow a
  /// forward() on the same graph.
  void backward(const GraphTensors& graph, const Matrix& dlogits);

  /// Inference-only forward (no caching); cheaper on big graphs.
  Matrix infer(const GraphTensors& graph) const;

  /// Zero-allocation inference: writes logits into `out` using the
  /// caller's workspace. After one warm-up call per graph, steady-state
  /// calls perform no heap allocations (see gcn/workspace.h). Use
  /// distinct workspaces for concurrent callers.
  void infer(const GraphTensors& graph, ForwardWorkspace& ws,
             Matrix& out) const;

  /// Positive-class probability per node.
  std::vector<float> predict_positive_probability(const GraphTensors& graph) const;

  /// All trainable parameters in a stable order.
  std::vector<Param*> params();
  std::vector<const Param*> params() const;

  void zero_grad();

  /// Copies parameter values (not gradients) from another model with the
  /// same configuration — used by the data-parallel trainer replicas.
  void copy_params_from(const GcnModel& other);

  float w_pr() const noexcept { return w_pr_.value.at(0, 0); }
  float w_su() const noexcept {
    return config_.tied_aggregation ? w_pr() : w_su_.value.at(0, 0);
  }

  /// Layer access for alternative inference engines (e.g. the per-node
  /// recursive baseline of Fig. 10).
  const std::vector<Linear>& encoders() const noexcept { return encoders_; }
  const std::vector<Linear>& fc_layers() const noexcept { return fc_; }

  /// Selects the inference precision tier (see gcn/quant.h). Selecting
  /// kInt8 calibrates per-column symmetric int8 weight snapshots from the
  /// current fp32 weights; call again after further training to
  /// re-calibrate. Only the no-cache inference path switches — training
  /// forward/backward always run fp32. kFp32 (the default) keeps every
  /// existing output bitwise unchanged.
  void set_precision(Precision precision);
  Precision precision() const noexcept { return precision_; }

  /// Quantized layer snapshots (empty until int8 is selected or a
  /// quantized artifact section is loaded). Order matches encoders() /
  /// fc_layers().
  const std::vector<QuantizedLinear>& quantized_encoders() const noexcept {
    return qencoders_;
  }
  const std::vector<QuantizedLinear>& quantized_fc() const noexcept {
    return qfc_;
  }

  /// Installs pre-quantized layer snapshots (artifact load path) and
  /// switches to kInt8 without re-calibrating. Throws Error{kCorrupt} on
  /// a layer-count or shape mismatch with this model's configuration.
  void install_quantized(std::vector<QuantizedLinear> encoders,
                         std::vector<QuantizedLinear> fc);

 private:
  /// Shared forward; fills `cache` when non-null. Scratch lives in `ws`,
  /// logits land in `out` (the last FC layer writes them directly).
  struct Cache;
  void run_forward(const GraphTensors& graph, Cache* cache,
                   ForwardWorkspace& ws, Matrix& out) const;
  /// Int8 inference forward (run_forward's quantized twin; cache-free).
  void run_forward_int8(const GraphTensors& graph, ForwardWorkspace& ws,
                        Matrix& out) const;

  GcnConfig config_;
  Param w_pr_;
  Param w_su_;
  std::vector<Linear> encoders_;  ///< 4 -> K1 -> ... -> KD
  std::vector<Linear> fc_;        ///< KD -> fc_dims... -> num_classes
  Precision precision_ = Precision::kFp32;
  std::vector<QuantizedLinear> qencoders_;  ///< int8 snapshots of encoders_
  std::vector<QuantizedLinear> qfc_;        ///< int8 snapshots of fc_

  struct Cache {
    std::vector<Matrix> embeddings;  ///< E_0 .. E_D (post-activation)
    std::vector<Matrix> aggregated;  ///< G_1 .. G_D
    std::vector<Matrix> pred_sums;   ///< P * E_{d-1}
    std::vector<Matrix> succ_sums;   ///< S * E_{d-1}
    std::vector<Matrix> fc_inputs;   ///< input to each FC layer
    std::vector<Matrix> fc_outputs;  ///< post-ReLU output of hidden FCs
  };
  Cache cache_;
  /// Scratch for forward()/infer(graph); mutable so const inference can
  /// reuse it. Makes those entry points non-thread-safe per model — use
  /// the explicit-workspace infer overload for concurrent callers.
  mutable ForwardWorkspace ws_;
};

}  // namespace gcnt
