#include "gcn/shard.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "common/artifact.h"
#include "common/error.h"
#include "common/stats.h"
#include "common/trace.h"
#include "nn/loss.h"

namespace gcnt {

namespace {

/// Copies the listed rows of `src` into `out`, reshaped (capacity-
/// reusing) to a compact rows.size() x cols matrix.
void gather_rows(const Matrix& src, const std::vector<std::uint32_t>& rows,
                 Matrix& out) {
  out.resize(rows.size(), src.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const float* in = src.row(rows[i]);
    std::copy(in, in + src.cols(), out.row(i));
  }
}

/// Grows `m` to new_rows x cols, preserving existing rows (new rows zero).
void grow_rows(Matrix& m, std::size_t new_rows, std::size_t cols) {
  if (m.rows() == new_rows && m.cols() == cols) return;
  Matrix grown(new_rows, cols);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* in = m.row(r);
    std::copy(in, in + m.cols(), grown.row(r));
  }
  m = std::move(grown);
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardStore

void ShardStore::configure(std::string dir) {
  clear();
  dir_ = std::move(dir);
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      throw Error(ErrorKind::kIo,
                  "ShardStore: cannot create spill dir '" + dir_ +
                      "': " + ec.message());
    }
  }
}

std::string ShardStore::path_of(const std::string& key) const {
  return dir_ + "/" + key + ".blk";
}

std::string ShardStore::block_path(int layer, std::size_t shard) const {
  return path_of("E" + std::to_string(layer) + "_S" + std::to_string(shard));
}

std::string ShardStore::export_path(int layer, std::size_t producer,
                                    std::size_t consumer) const {
  return path_of("X" + std::to_string(layer) + "_S" +
                 std::to_string(producer) + "_to_S" +
                 std::to_string(consumer));
}

void ShardStore::put(int layer, std::size_t shard, const Matrix& block) {
  put_block("E" + std::to_string(layer) + "_S" + std::to_string(shard),
            block);
}

void ShardStore::get(int layer, std::size_t shard, Matrix& out) const {
  get_block("E" + std::to_string(layer) + "_S" + std::to_string(shard), out);
}

void ShardStore::put_export(int layer, std::size_t producer,
                            std::size_t consumer, const Matrix& block) {
  put_block("X" + std::to_string(layer) + "_S" + std::to_string(producer) +
                "_to_S" + std::to_string(consumer),
            block);
}

void ShardStore::get_export(int layer, std::size_t producer,
                            std::size_t consumer, Matrix& out) const {
  get_block("X" + std::to_string(layer) + "_S" + std::to_string(producer) +
                "_to_S" + std::to_string(consumer),
            out);
}

void ShardStore::set_block_precision(Precision precision) {
  clear();
  block_precision_ = precision;
}

void ShardStore::put_block_q8(const std::string& key, const Matrix& block) {
  if (!on_disk()) {
    quantize_tensor(block, qmemory_[key]);
    return;
  }
  static Counter& writes =
      StatsRegistry::instance().counter("shard.spill_writes");
  static Counter& write_bytes =
      StatsRegistry::instance().counter("shard.spill_write_bytes");
  QuantizedTensor q;
  quantize_tensor(block, q);
  // shard-block-q8: u64 rows, u64 cols, then rows f32 scales, rows i32
  // zero points, then rows*cols code bytes (native-endian; spill files
  // are host-local). Per-row quantization adds 8 bytes/row — noise next
  // to the 4x code-byte saving on any realistic embedding width.
  const std::uint64_t rows = q.rows;
  const std::uint64_t cols = q.cols;
  const std::size_t meta = 16 + rows * 8;
  std::string payload(meta + q.codes.size(), '\0');
  std::memcpy(&payload[0], &rows, 8);
  std::memcpy(&payload[8], &cols, 8);
  if (rows > 0) {
    std::memcpy(&payload[16], q.scales.data(), rows * 4);
    std::memcpy(&payload[16 + rows * 4], q.zero_points.data(), rows * 4);
  }
  if (!q.codes.empty()) {
    std::memcpy(&payload[meta], q.codes.data(), q.codes.size());
  }
  write_artifact_file(path_of(key), "shard-block-q8", payload);
  writes.add();
  write_bytes.add(payload.size());
  written_.insert(key);
}

void ShardStore::get_block_q8(const std::string& key, Matrix& out) const {
  if (!on_disk()) {
    const auto it = qmemory_.find(key);
    if (it == qmemory_.end()) {
      throw Error(ErrorKind::kInternal,
                  "ShardStore: missing in-memory block '" + key + "'");
    }
    dequantize_tensor(it->second, out);
    return;
  }
  static Counter& reads =
      StatsRegistry::instance().counter("shard.spill_reads");
  static Counter& read_bytes =
      StatsRegistry::instance().counter("shard.spill_read_bytes");
  const std::string payload =
      read_artifact_file(path_of(key), "shard-block-q8");
  if (payload.size() < 16) {
    throw Error(ErrorKind::kCorrupt,
                "ShardStore: block '" + key + "' shorter than its header");
  }
  QuantizedTensor q;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::memcpy(&rows, payload.data(), 8);
  std::memcpy(&cols, payload.data() + 8, 8);
  const std::size_t meta = 16 + rows * 8;
  if (payload.size() != meta + rows * cols) {
    throw Error(ErrorKind::kCorrupt,
                "ShardStore: block '" + key + "' header/shape mismatch");
  }
  q.rows = rows;
  q.cols = cols;
  q.scales.resize(rows);
  q.zero_points.resize(rows);
  if (rows > 0) {
    std::memcpy(q.scales.data(), payload.data() + 16, rows * 4);
    std::memcpy(q.zero_points.data(), payload.data() + 16 + rows * 4,
                rows * 4);
  }
  for (std::uint64_t r = 0; r < rows; ++r) {
    if (!std::isfinite(q.scales[r]) || q.scales[r] <= 0.0f ||
        q.zero_points[r] < 0 || q.zero_points[r] > 127) {
      throw Error(ErrorKind::kCorrupt,
                  "ShardStore: block '" + key + "' scale/zero-point invalid");
    }
  }
  q.codes.assign(payload.begin() + static_cast<std::ptrdiff_t>(meta),
                 payload.end());
  for (const std::uint8_t code : q.codes) {
    if (code > 127) {
      throw Error(ErrorKind::kCorrupt,
                  "ShardStore: block '" + key + "' code outside [0, 127]");
    }
  }
  dequantize_tensor(q, out);
  reads.add();
  read_bytes.add(payload.size());
}

void ShardStore::put_block(const std::string& key, const Matrix& block) {
  if (block_precision_ == Precision::kInt8) {
    put_block_q8(key, block);
    return;
  }
  if (!on_disk()) {
    memory_[key].copy_from(block);
    return;
  }
  static Counter& writes =
      StatsRegistry::instance().counter("shard.spill_writes");
  static Counter& write_bytes =
      StatsRegistry::instance().counter("shard.spill_write_bytes");
  const std::uint64_t rows = block.rows();
  const std::uint64_t cols = block.cols();
  std::string payload(16 + block.rows() * block.cols() * sizeof(float), '\0');
  std::memcpy(&payload[0], &rows, 8);
  std::memcpy(&payload[8], &cols, 8);
  for (std::size_t r = 0; r < block.rows(); ++r) {
    std::memcpy(&payload[16 + r * block.cols() * sizeof(float)], block.row(r),
                block.cols() * sizeof(float));
  }
  write_artifact_file(path_of(key), "shard-block", payload);
  writes.add();
  write_bytes.add(payload.size());
  written_.insert(key);
}

void ShardStore::get_block(const std::string& key, Matrix& out) const {
  if (block_precision_ == Precision::kInt8) {
    get_block_q8(key, out);
    return;
  }
  if (!on_disk()) {
    const auto it = memory_.find(key);
    if (it == memory_.end()) {
      throw Error(ErrorKind::kInternal,
                  "ShardStore: missing in-memory block '" + key + "'");
    }
    out.resize(it->second.rows(), it->second.cols());
    out.copy_from(it->second);
    return;
  }
  static Counter& reads =
      StatsRegistry::instance().counter("shard.spill_reads");
  static Counter& read_bytes =
      StatsRegistry::instance().counter("shard.spill_read_bytes");
  const std::string payload = read_artifact_file(path_of(key), "shard-block");
  if (payload.size() < 16) {
    throw Error(ErrorKind::kCorrupt,
                "ShardStore: block '" + key + "' shorter than its header");
  }
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::memcpy(&rows, payload.data(), 8);
  std::memcpy(&cols, payload.data() + 8, 8);
  if (payload.size() != 16 + rows * cols * sizeof(float)) {
    throw Error(ErrorKind::kCorrupt,
                "ShardStore: block '" + key + "' size/shape mismatch");
  }
  out.resize(rows, cols);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    std::memcpy(out.row(r), payload.data() + 16 + r * cols * sizeof(float),
                cols * sizeof(float));
  }
  reads.add();
  read_bytes.add(payload.size());
}

void ShardStore::clear() {
  memory_.clear();
  qmemory_.clear();
  for (const std::string& key : written_) {
    std::remove(path_of(key).c_str());
  }
  written_.clear();
}

// ---------------------------------------------------------------------------
// ShardedGcnEngine

ShardedGcnEngine::ShardedGcnEngine(const GcnModel& model,
                                   ShardedGcnOptions options)
    : model_(&model), options_(std::move(options)) {
  if (options_.shards == 0) {
    throw Error(ErrorKind::kUsage, "ShardedGcnEngine: shards must be > 0");
  }
  if (options_.halo < 1) {
    throw Error(ErrorKind::kUsage, "ShardedGcnEngine: halo must be >= 1");
  }
  store_.configure(options_.spill_dir);
  store_.set_block_precision(options_.block_precision);
}

const GraphPartition& ShardedGcnEngine::partition() const {
  if (!has_partition_) {
    throw Error(ErrorKind::kUsage,
                "ShardedGcnEngine::partition: no forward has run yet");
  }
  return partition_;
}

void ShardedGcnEngine::rebuild_all(const GraphTensors& tensors) {
  static Counter& builds =
      StatsRegistry::instance().counter("shard.partition_builds");
  PartitionOptions popts;
  popts.shards = options_.shards;
  popts.halo = options_.halo;
  popts.strategy = options_.strategy;
  // kByKey orders compute rows by the (transformed) logic-level feature,
  // so each shard holds a band of topological depth.
  std::vector<float> key;
  if (options_.strategy == PartitionStrategy::kByKey) {
    key.resize(tensors.node_count());
    for (std::uint32_t row = 0; row < key.size(); ++row) {
      key[row] = tensors.features.at(tensors.node_of(row), 0);
    }
    popts.order_key = &key;
  }
  partition_ = GraphPartition::build(tensors.pred, tensors.succ, popts);
  has_partition_ = true;
  locals_.resize(partition_.shard_count());
  for (std::size_t k = 0; k < partition_.shard_count(); ++k) {
    rebuild_local(tensors, k);
  }
  rebuild_send_views();
  builds.add();
  StatsRegistry::instance().gauge("shard.count").set(
      static_cast<std::int64_t>(partition_.shard_count()));
  StatsRegistry::instance().gauge("shard.halo_rows").set(
      static_cast<std::int64_t>(partition_.total_halo_rows()));
}

void ShardedGcnEngine::rebuild_local(const GraphTensors& tensors,
                                     std::size_t k) {
  const Shard& s = partition_.shard(k);
  LocalShard& ls = locals_[k];
  const int depth = partition_.halo_depth();

  // Merge owners (dist 0) and halo (1..D) into the ascending active list.
  ls.active.clear();
  ls.dist.clear();
  ls.active.reserve(s.owners.size() + s.halo.size());
  ls.dist.reserve(s.owners.size() + s.halo.size());
  std::size_t oi = 0;
  std::size_t hi = 0;
  while (oi < s.owners.size() || hi < s.halo.size()) {
    if (hi >= s.halo.size() ||
        (oi < s.owners.size() && s.owners[oi] < s.halo[hi])) {
      ls.active.push_back(s.owners[oi]);
      ls.dist.push_back(0);
      ++oi;
    } else {
      ls.active.push_back(s.halo[hi]);
      ls.dist.push_back(s.halo_dist[hi]);
      ++hi;
    }
  }

  const auto local_of = [&](std::uint32_t global) {
    const auto it =
        std::lower_bound(ls.active.begin(), ls.active.end(), global);
    if (it == ls.active.end() || *it != global) {
      throw Error(ErrorKind::kInternal,
                  "ShardedGcnEngine: neighbor outside the halo closure");
    }
    return static_cast<std::uint32_t>(it - ls.active.begin());
  };

  // Carve the shard-local CSR forms out of the global ones, preserving
  // each row's nonzero order exactly (the bitwise-identity contract).
  // Rows at dist == D are gather-only: they are never computed inside
  // this shard, so their local rows stay empty.
  const auto carve = [&](const CsrMatrix& global) {
    std::vector<std::uint32_t> row_ptr(ls.active.size() + 1, 0);
    std::vector<std::uint32_t> cols;
    std::vector<float> values;
    const auto& gptr = global.row_ptr();
    const auto& gcols = global.col_index();
    const auto& gvals = global.values();
    for (std::size_t li = 0; li < ls.active.size(); ++li) {
      if (ls.dist[li] <= depth - 1) {
        const std::uint32_t g = ls.active[li];
        for (std::uint32_t e = gptr[g]; e < gptr[g + 1]; ++e) {
          cols.push_back(local_of(gcols[e]));
          values.push_back(gvals[e]);
        }
      }
      row_ptr[li + 1] = static_cast<std::uint32_t>(cols.size());
    }
    return CsrMatrix::from_parts(ls.active.size(), ls.active.size(),
                                 std::move(row_ptr), std::move(cols),
                                 std::move(values));
  };
  ls.pred = carve(tensors.pred);
  ls.succ = carve(tensors.succ);

  ls.rows_within.assign(static_cast<std::size_t>(depth), {});
  for (std::uint32_t li = 0; li < ls.active.size(); ++li) {
    for (int t = ls.dist[li]; t < depth; ++t) {
      ls.rows_within[static_cast<std::size_t>(t)].push_back(li);
    }
  }
  ls.owner_pos_in.assign(static_cast<std::size_t>(depth), {});
  for (int t = 0; t < depth; ++t) {
    const auto& rows = ls.rows_within[static_cast<std::size_t>(t)];
    auto& pos = ls.owner_pos_in[static_cast<std::size_t>(t)];
    pos.reserve(s.owners.size());
    for (std::uint32_t i = 0; i < rows.size(); ++i) {
      if (ls.dist[rows[i]] == 0) pos.push_back(i);
    }
  }

  ls.recv_local.clear();
  ls.recv_local.reserve(s.recv.size());
  for (const ShardRecv& g : s.recv) {
    std::vector<std::uint32_t> pos(g.rows.size());
    for (std::size_t i = 0; i < g.rows.size(); ++i) {
      pos[i] = local_of(g.rows[i]);
    }
    ls.recv_local.push_back(std::move(pos));
  }
}

void ShardedGcnEngine::rebuild_send_views() {
  send_.assign(partition_.shard_count(), {});
  for (std::size_t c = 0; c < partition_.shard_count(); ++c) {
    for (const ShardRecv& g : partition_.shard(c).recv) {
      const auto& owners = partition_.shard(g.producer).owners;
      ExportPlan plan;
      plan.consumer = c;
      plan.positions.resize(g.rows.size());
      std::size_t oi = 0;
      for (std::size_t i = 0; i < g.rows.size(); ++i) {
        while (oi < owners.size() && owners[oi] < g.rows[i]) ++oi;
        if (oi >= owners.size() || owners[oi] != g.rows[i]) {
          throw Error(ErrorKind::kInternal,
                      "ShardedGcnEngine: recv row is not a producer owner");
        }
        plan.positions[i] = static_cast<std::uint32_t>(oi);
      }
      send_[g.producer].push_back(std::move(plan));
    }
  }
}

void ShardedGcnEngine::gather_active(const GraphTensors& tensors,
                                     std::size_t k, int layer, Matrix& out) {
  const LocalShard& ls = locals_[k];
  if (layer == 0) {
    // E_0 in compute order is features.row(node_of(row)).
    out.resize(ls.active.size(), tensors.features.cols());
    for (std::size_t i = 0; i < ls.active.size(); ++i) {
      const float* in = tensors.features.row(tensors.node_of(ls.active[i]));
      std::copy(in, in + tensors.features.cols(), out.row(i));
    }
    return;
  }
  store_.get(layer, k, owner_block_);
  const std::size_t owner_count = partition_.shard(k).owners.size();
  if (owner_block_.rows() != owner_count) {
    throw Error(ErrorKind::kInternal,
                "ShardedGcnEngine: owner block row count drifted");
  }
  out.resize(ls.active.size(), owner_block_.cols());
  const auto& owner_pos = ls.rows_within[0];
  for (std::size_t i = 0; i < owner_count; ++i) {
    const float* in = owner_block_.row(i);
    std::copy(in, in + owner_block_.cols(), out.row(owner_pos[i]));
  }
  const Shard& s = partition_.shard(k);
  for (std::size_t g = 0; g < s.recv.size(); ++g) {
    store_.get_export(layer, s.recv[g].producer, k, xbuf_);
    if (xbuf_.rows() != s.recv[g].rows.size() ||
        xbuf_.cols() != out.cols()) {
      throw Error(ErrorKind::kInternal,
                  "ShardedGcnEngine: export block shape drifted");
    }
    const auto& pos = ls.recv_local[g];
    for (std::size_t i = 0; i < pos.size(); ++i) {
      const float* in = xbuf_.row(i);
      std::copy(in, in + xbuf_.cols(), out.row(pos[i]));
    }
  }
}

void ShardedGcnEngine::put_exports(int layer, std::size_t p,
                                   const Matrix& owner_block) {
  for (const ExportPlan& plan : send_[p]) {
    gather_rows(owner_block, plan.positions, xbuf_);
    store_.put_export(layer, p, plan.consumer, xbuf_);
  }
}

void ShardedGcnEngine::run_fc(const GraphTensors& tensors, const Matrix& input,
                              const std::vector<std::uint32_t>& rows) {
  const auto& fc = model_->fc_layers();
  const Matrix* in = &input;
  Matrix* a = &fc_a_;
  Matrix* b = &fc_b_;
  const Matrix* final_out = in;
  for (std::size_t i = 0; i < fc.size(); ++i) {
    if (i + 1 < fc.size()) {
      fc[i].forward_relu(*in, *a);
      in = a;
      std::swap(a, b);
    } else {
      fc[i].forward(*in, *a);
      final_out = a;
    }
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const float* src = final_out->row(i);
    std::copy(src, src + final_out->cols(),
              logits_.row(tensors.node_of(rows[i])));
  }
}

const Matrix& ShardedGcnEngine::refresh(const GraphTensors& tensors) {
  const std::size_t n = tensors.node_count();
  if (tensors.pred.rows() != n || tensors.succ.rows() != n) {
    throw std::invalid_argument(
        "ShardedGcnEngine::refresh: tensors need rebuild_csr()");
  }
  GCNT_KERNEL_SCOPE("gcn.shard.forward");
  TraceSpan span("gcn.shard.forward");
  span.arg("nodes", static_cast<double>(n));
  span.arg("shards", static_cast<double>(options_.shards));
  static Counter& forwards =
      StatsRegistry::instance().counter("shard.forwards");
  static Counter& rounds = StatsRegistry::instance().counter("shard.rounds");
  forwards.add();
  if (model_->precision() == Precision::kInt8) {
    // The sharded compute path stays fp32 (its per-kernel accumulation
    // orders are what make it bit-identical to the monolithic engines);
    // a model in int8 mode is downgraded here and counted, like the
    // incremental engine. Block *storage* precision is a separate,
    // explicit opt-in (ShardedGcnOptions::block_precision).
    static Counter& fallbacks =
        StatsRegistry::instance().counter("quant.fallback");
    fallbacks.add();
  }

  if (!has_partition_ || partition_.row_count() != n ||
      cached_pred_nnz_ != tensors.pred.nnz() ||
      cached_succ_nnz_ != tensors.succ.nnz()) {
    rebuild_all(tensors);
  }
  store_.clear();
  logits_.resize(n, model_->config().num_classes);

  const float wp = model_->w_pr();
  const float wsu = model_->w_su();
  const auto& encoders = model_->encoders();
  const std::size_t layer_count = encoders.size();
  const std::size_t halo = static_cast<std::size_t>(partition_.halo_depth());

  std::size_t done = 0;
  while (done < layer_count) {
    const std::size_t m = std::min(halo, layer_count - done);
    TraceSpan round_span("gcn.shard.round");
    round_span.arg("first_layer", static_cast<double>(done + 1));
    round_span.arg("layers", static_cast<double>(m));
    rounds.add();
    for (std::size_t k = 0; k < partition_.shard_count(); ++k) {
      const LocalShard& ls = locals_[k];
      Matrix* x = &active_a_;
      Matrix* xn = &active_b_;
      gather_active(tensors, k, static_cast<int>(done), *x);
      for (std::size_t j = 1; j <= m; ++j) {
        const std::size_t d = done + j - 1;
        const auto& rows = ls.rows_within[m - j];
        ls.pred.spmm_rows(rows, *x, ws_.pred_sum);
        ls.succ.spmm_rows(rows, *x, ws_.succ_sum);
        gather_rows(*x, rows, ws_.aggregated);
        ws_.aggregated.axpy(wp, ws_.pred_sum);
        ws_.aggregated.axpy(wsu, ws_.succ_sum);
        encoders[d].forward_relu(ws_.aggregated, compact_out_);
        // Persist this layer's owner rows (and their halo exports) so the
        // incremental path can later re-propagate any layer.
        gather_rows(compact_out_, ls.owner_pos_in[m - j], owner_block_);
        store_.put(static_cast<int>(d + 1), k, owner_block_);
        if (d + 1 < layer_count) {
          put_exports(static_cast<int>(d + 1), k, owner_block_);
        }
        if (j < m) {
          // Scatter into the next active buffer; rows outside the next
          // compute set's neighborhood are never read.
          xn->resize(ls.active.size(), compact_out_.cols());
          for (std::size_t i = 0; i < rows.size(); ++i) {
            const float* in = compact_out_.row(i);
            std::copy(in, in + compact_out_.cols(), xn->row(rows[i]));
          }
          std::swap(x, xn);
        }
      }
      if (done + m == layer_count) {
        run_fc(tensors, owner_block_, partition_.shard(k).owners);
      }
    }
    done += m;
  }
  if (layer_count == 0) {
    // Degenerate MLP: the FC head reads E_0 (the features) directly.
    for (std::size_t k = 0; k < partition_.shard_count(); ++k) {
      const auto& owners = partition_.shard(k).owners;
      owner_block_.resize(owners.size(), tensors.features.cols());
      for (std::size_t i = 0; i < owners.size(); ++i) {
        const float* in = tensors.features.row(tensors.node_of(owners[i]));
        std::copy(in, in + tensors.features.cols(), owner_block_.row(i));
      }
      run_fc(tensors, owner_block_, owners);
    }
  }

  cached_nodes_ = n;
  cached_pred_nnz_ = tensors.pred.nnz();
  cached_succ_nnz_ = tensors.succ.nnz();
  last_was_full_ = true;
  last_dirty_rows_ = n;
  return logits_;
}

const Matrix& ShardedGcnEngine::update(const GraphTensors& tensors,
                                       const std::vector<NodeId>& dirty) {
  const std::size_t n = tensors.node_count();
  if (cached_nodes_ == 0 || n < cached_nodes_ ||
      static_cast<double>(dirty.size()) >
          options_.full_fallback_fraction * static_cast<double>(n)) {
    return refresh(tensors);
  }
  if (tensors.pred.rows() != n || tensors.succ.rows() != n) {
    throw std::invalid_argument(
        "ShardedGcnEngine::update: tensors need rebuild_csr()");
  }
  for (const NodeId v : dirty) {
    if (v >= n) {
      throw std::out_of_range(
          "ShardedGcnEngine::update: dirty node out of range");
    }
  }
  GCNT_KERNEL_SCOPE("gcn.shard.update");
  TraceSpan span("gcn.shard.update");
  span.arg("nodes", static_cast<double>(n));
  span.arg("dirty", static_cast<double>(dirty.size()));
  static Counter& updates = StatsRegistry::instance().counter("shard.updates");
  static Counter& extends =
      StatsRegistry::instance().counter("shard.partition_extends");
  updates.add();
  if (model_->precision() == Precision::kInt8) {
    static Counter& fallbacks =
        StatsRegistry::instance().counter("quant.fallback");
    fallbacks.add();
  }
  last_was_full_ = false;
  last_dirty_rows_ = dirty.size();

  const std::size_t shard_count = partition_.shard_count();
  std::vector<std::uint8_t> affected_flag(shard_count, 0);
  bool extended = false;
  if (n > cached_nodes_) {
    // Appended rows join the partition; every shard whose halo can have
    // changed gets its local forms rebuilt and (below) its stale export
    // blocks rewritten. New rows are required to be in `dirty`, so their
    // owner blocks are grown and filled by the write-back pass.
    const std::vector<std::size_t> affected =
        partition_.extend(tensors.pred, tensors.succ);
    for (const std::size_t k : affected) {
      rebuild_local(tensors, k);
      affected_flag[k] = 1;
    }
    rebuild_send_views();
    grow_rows(logits_, n, logits_.cols());
    extends.add();
    extended = !affected.empty();
    StatsRegistry::instance().gauge("shard.halo_rows").set(
        static_cast<std::int64_t>(partition_.total_halo_rows()));
  }
  cached_nodes_ = n;
  cached_pred_nnz_ = tensors.pred.nnz();
  cached_succ_nnz_ = tensors.succ.nnz();
  if (dirty.empty()) return logits_;

  // Group the dirty rows by owning shard; per shard, keep the global
  // compute rows ascending plus their positions in the active list and
  // in the owner block.
  std::vector<std::vector<std::uint32_t>> dirty_global(shard_count);
  for (const NodeId v : dirty) {
    const std::uint32_t row = tensors.row_of(v);
    dirty_global[partition_.owner_of(row)].push_back(row);
  }
  std::vector<std::vector<std::uint32_t>> dirty_local(shard_count);
  std::vector<std::vector<std::uint32_t>> dirty_owner_pos(shard_count);
  std::vector<std::size_t> dirty_shards;
  for (std::size_t k = 0; k < shard_count; ++k) {
    if (dirty_global[k].empty()) continue;
    std::sort(dirty_global[k].begin(), dirty_global[k].end());
    const LocalShard& ls = locals_[k];
    const auto& owners = partition_.shard(k).owners;
    dirty_local[k].resize(dirty_global[k].size());
    dirty_owner_pos[k].resize(dirty_global[k].size());
    for (std::size_t i = 0; i < dirty_global[k].size(); ++i) {
      const std::uint32_t row = dirty_global[k][i];
      dirty_local[k][i] = static_cast<std::uint32_t>(
          std::lower_bound(ls.active.begin(), ls.active.end(), row) -
          ls.active.begin());
      dirty_owner_pos[k][i] = static_cast<std::uint32_t>(
          std::lower_bound(owners.begin(), owners.end(), row) -
          owners.begin());
    }
    dirty_shards.push_back(k);
  }

  const float wp = model_->w_pr();
  const float wsu = model_->w_su();
  const auto& encoders = model_->encoders();
  const std::size_t layer_count = encoders.size();

  // Layer-synchronous re-propagation: every dirty shard finishes layer d
  // before any shard starts layer d+1, so the halo gathers always read
  // fully updated blocks one layer back.
  for (std::size_t d = 1; d <= layer_count; ++d) {
    for (const std::size_t k : dirty_shards) {
      gather_active(tensors, k, static_cast<int>(d - 1), active_a_);
      const LocalShard& ls = locals_[k];
      ls.pred.spmm_rows(dirty_local[k], active_a_, ws_.pred_sum);
      ls.succ.spmm_rows(dirty_local[k], active_a_, ws_.succ_sum);
      gather_rows(active_a_, dirty_local[k], ws_.aggregated);
      ws_.aggregated.axpy(wp, ws_.pred_sum);
      ws_.aggregated.axpy(wsu, ws_.succ_sum);
      encoders[d - 1].forward_relu(ws_.aggregated, compact_out_);
      store_.get(static_cast<int>(d), k, owner_block_);
      const auto& owners = partition_.shard(k).owners;
      if (owner_block_.rows() < owners.size()) {
        grow_rows(owner_block_, owners.size(), owner_block_.cols());
      }
      for (std::size_t i = 0; i < dirty_owner_pos[k].size(); ++i) {
        const float* in = compact_out_.row(i);
        std::copy(in, in + compact_out_.cols(),
                  owner_block_.row(dirty_owner_pos[k][i]));
      }
      store_.put(static_cast<int>(d), k, owner_block_);
      if (d < layer_count) {
        put_exports(static_cast<int>(d), k, owner_block_);
      }
    }
    if (extended && d < layer_count) {
      // Consumers whose halo changed also need fresh export blocks from
      // producers with no dirty rows this round (the dirty producers
      // already rewrote theirs above, with the new send lists).
      for (std::size_t p = 0; p < shard_count; ++p) {
        if (!dirty_global[p].empty()) continue;
        bool loaded = false;
        for (const ExportPlan& plan : send_[p]) {
          if (!affected_flag[plan.consumer]) continue;
          if (!loaded) {
            store_.get(static_cast<int>(d), p, owner_block_);
            loaded = true;
          }
          gather_rows(owner_block_, plan.positions, xbuf_);
          store_.put_export(static_cast<int>(d), p, plan.consumer, xbuf_);
        }
      }
    }
  }

  for (const std::size_t k : dirty_shards) {
    if (layer_count == 0) {
      owner_block_.resize(dirty_global[k].size(), tensors.features.cols());
      for (std::size_t i = 0; i < dirty_global[k].size(); ++i) {
        const float* in =
            tensors.features.row(tensors.node_of(dirty_global[k][i]));
        std::copy(in, in + tensors.features.cols(), owner_block_.row(i));
      }
      run_fc(tensors, owner_block_, dirty_global[k]);
      continue;
    }
    store_.get(static_cast<int>(layer_count), k, owner_block_);
    gather_rows(owner_block_, dirty_owner_pos[k], compact_out_);
    run_fc(tensors, compact_out_, dirty_global[k]);
  }
  return logits_;
}

std::vector<float> ShardedGcnEngine::positive_probability() const {
  const Matrix probabilities = softmax(logits_);
  std::vector<float> positive(probabilities.rows());
  for (std::size_t r = 0; r < probabilities.rows(); ++r) {
    positive[r] = probabilities.at(r, 1);
  }
  return positive;
}

}  // namespace gcnt
