#include "gcn/recursive_inference.h"

#include "common/parallel.h"
#include "common/trace.h"
#include "gcn/vec_ops.h"

namespace gcnt {

namespace {
// Each node re-expands its whole D-hop neighborhood; parallelize all but
// trivial graphs.
constexpr std::size_t kMinParallelNodes = 16;
}  // namespace

RecursiveInference::RecursiveInference(const GcnModel& model,
                                       const Netlist& netlist,
                                       const Matrix& features)
    : model_(&model), netlist_(&netlist), features_(&features) {}

std::vector<float> RecursiveInference::embed(NodeId v, int depth) const {
  if (depth == 0) {
    const float* row = features_->row(v);
    return std::vector<float>(row, row + features_->cols());
  }
  // Aggregation (Eq. 1) computed recursively — the neighborhoods of v's
  // neighbors are re-expanded without sharing, as in [12].
  std::vector<float> aggregated = embed(v, depth - 1);
  const float wp = model_->w_pr();
  const float ws = model_->w_su();
  for (NodeId u : netlist_->fanins(v)) {
    axpy_row(aggregated, wp, embed(u, depth - 1));
  }
  for (NodeId w : netlist_->fanouts(v)) {
    axpy_row(aggregated, ws, embed(w, depth - 1));
  }
  auto out = apply_linear_row(
      model_->encoders()[static_cast<std::size_t>(depth - 1)], aggregated);
  relu_row(out);
  return out;
}

std::vector<float> RecursiveInference::infer_node(NodeId v) const {
  return fc_head_row(model_->fc_layers(), embed(v, model_->config().depth));
}

Matrix RecursiveInference::infer_all() const {
  GCNT_KERNEL_SCOPE("recursive.infer_all");
  Matrix logits(netlist_->size(), model_->config().num_classes);
  // Per-node recursions are independent const reads; rows are disjoint, so
  // the result is bitwise identical for any thread count.
  parallel_blocks(netlist_->size(), kMinParallelNodes,
                  [&](std::size_t begin, std::size_t end) {
                    for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
                      const auto row = infer_node(v);
                      for (std::size_t c = 0; c < row.size(); ++c) {
                        logits.at(v, c) = row[c];
                      }
                    }
                  });
  return logits;
}

}  // namespace gcnt
