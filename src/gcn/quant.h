#pragma once
// Int8 quantized inference tier (ROADMAP item 5).
//
// Weights: per-output-column symmetric int8 — scales[j] = max|w[:,j]| /
// 127, calibrated once when the tier is selected
// (GcnModel::set_precision) or when a quantized artifact section is
// loaded. Column granularity is what makes 8 bits enough here: Xavier
// columns differ in magnitude enough that a single per-layer scale
// crushes the small ones (measured: per-layer weight scales topped out
// around 98.6-98.7% fp32 agreement on the Table 2 suite regardless of
// activation granularity; per-column clears the 99% gate). Weights are
// stored transposed (out x in) so each output column's codes are
// contiguous for the dot_u8s8 microkernel, with precomputed per-column
// code sums for the zero-point correction.
//
// Activations: per-row (per-node) asymmetric 7-bit unsigned — each row
// gets its own scale and zero point from its own min/max, with the range
// extended to include 0.0 so exact zeros (ReLU output, padding) quantize
// losslessly. Row granularity keeps the codes meaningful per node:
// activation magnitudes vary by orders of magnitude across nodes, and a
// single per-tensor range would crush small-activation rows into a
// handful of codes. The 7-bit range is what lets dot_u8s8 use the
// maddubs/madd widening path without any possibility of 16-bit
// saturation (see tensor/simd/simd.h).
//
// Numerics: all matrix products accumulate exactly in int32; the only
// float steps are the per-element dequantize epilogues (one fmaf) and
// the dynamic range scan + quantize (nearest-even rounding). Every step
// is per-element or integer-associative — the Eq. 1 aggregation combine
// goes through axpy_exact (one std::fmaf per element on every path)
// rather than the target-dependent fp32 axpy — so int8 results are
// bitwise deterministic across thread counts, SpMM tile widths, AND
// dispatch targets.
//
// Accuracy is gated, not assumed: bench/quant_agreement.cpp pins
// classification agreement vs fp32 at >= 99% on the Table 2 suite, and
// tools/bench_gate enforces the committed "quant.agreement" key exactly
// (zero regression tolerance) in CI.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/layers.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace gcnt {

/// Inference precision tier. Selected per model (GcnModel::set_precision),
/// opt-in via GCNT_PRECISION=int8 or the gcnt --precision flag.
enum class Precision : int {
  kFp32 = 0,
  kInt8 = 1,
};

/// "fp32" / "int8".
const char* precision_name(Precision precision);

/// Resolves the precision tier: `flag` (a --precision value, may be null)
/// takes priority over the GCNT_PRECISION environment variable; both
/// accept "fp32" | "int8". Unset resolves to kFp32; an unknown value
/// logs a warning and resolves to kFp32 (existing outputs stay bitwise
/// unchanged unless int8 is explicitly requested).
Precision resolve_precision(const char* flag = nullptr);

/// Per-row 7-bit unsigned activation codes with per-row asymmetric zero
/// points: dequant of row r = (code - zero_points[r]) * scales[r].
/// Buffers reuse their allocation across resizes exactly like Matrix, so
/// the ForwardWorkspace zero-alloc contract extends to the int8 tier.
struct QuantizedTensor {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint8_t> codes;        ///< row-major, rows * cols
  std::vector<float> scales;              ///< one per row
  std::vector<std::int32_t> zero_points;  ///< one per row, in [0, 127]

  void resize(std::size_t r, std::size_t c) {
    rows = r;
    cols = c;
    codes.assign(r * c, 0);
    scales.assign(r, 1.0f);
    zero_points.assign(r, 0);
  }
  const std::uint8_t* row(std::size_t r) const noexcept {
    return codes.data() + r * cols;
  }
  std::uint8_t* row(std::size_t r) noexcept { return codes.data() + r * cols; }
  std::size_t capacity() const noexcept { return codes.capacity(); }
};

/// Per-output-column symmetric int8 weight snapshot of one Linear layer:
/// dequant of column j = q * scales[j], codes in [-127, 127]. `weight_t`
/// is the transposed (out x in) weight so row j holds output column j's
/// codes; `col_sums[j]` is the int32 sum of that row, used for the
/// activation zero-point correction. The bias stays fp32 (it is added in
/// the dequantized epilogue).
struct QuantizedLinear {
  std::size_t in = 0;
  std::size_t out = 0;
  std::vector<float> scales;           ///< one per output column
  std::vector<std::int8_t> weight_t;   ///< out x in, row-major
  std::vector<std::int32_t> col_sums;  ///< per output column

  const std::int8_t* row(std::size_t j) const noexcept {
    return weight_t.data() + j * in;
  }
};

/// Calibrates a symmetric per-output-column int8 snapshot of `layer`'s
/// weights (scales[j] = max|w[:,j]| / 127, nearest-even rounding).
QuantizedLinear quantize_linear(const Linear& layer);

/// Builds a QuantizedLinear from pre-quantized codes (artifact load
/// path); recomputes col_sums. Throws Error{kCorrupt} when the code
/// count does not match in * out, the scale count does not match out, or
/// any scale is not finite and positive.
QuantizedLinear make_quantized_linear(std::size_t in, std::size_t out,
                                      std::vector<float> scales,
                                      std::vector<std::int8_t> codes);

/// Dynamic per-row activation quantization: scans each row's min/max
/// (extended to include 0), derives that row's scale / zero point
/// targeting codes [0, 127], and encodes it. Rows are independent, so
/// the result is deterministic for any thread count by construction.
void quantize_tensor(const Matrix& x, QuantizedTensor& out);

/// out[r][c] = (codes[r][c] - zero_points[r]) * scales[r], resized to
/// q's shape.
void dequantize_tensor(const QuantizedTensor& q, Matrix& out);

/// Quantized dense layer: out = act(dequant(x * Wq^T) + bias), with the
/// product accumulated exactly in int32 via dot_u8s8 and the epilogue
/// applying the zero-point correction, combined scale, bias, and
/// optional ReLU in one fmaf-based per-element pass. `bias` is
/// 1 x layer.out. Parallel over rows; bitwise deterministic (see file
/// comment).
void quantized_linear_forward(const QuantizedTensor& x,
                              const QuantizedLinear& layer, const Matrix& bias,
                              Matrix& out, bool relu);

/// Int8 SpMM with fp32 accumulation: out = alpha * a * dequant(q). The
/// dense operand streams as u8 codes (4x less gather traffic than fp32 —
/// this is where the int8 SpMM speedup comes from; SpMM is bandwidth
/// bound on the gathered rows). Same row-block / column-tile walk and
/// ascending-k per-element order as CsrMatrix::spmm, so the bitwise
/// guarantees across threads and tile widths carry over.
void spmm_q8(const CsrMatrix& a, const QuantizedTensor& q, Matrix& out,
             float alpha = 1.0f);

/// Target-independent y += a * x over same-shape matrices: one
/// std::fmaf per element, parallel over fixed blocks. The fp32 Eq. 1
/// identity term inside the int8 forward uses this instead of the SimdOps
/// axpy, whose FMA contraction is target-dependent (scalar does mul+add)
/// and would break the int8 tier's cross-target bit-identity.
void axpy_exact(Matrix& y, float a, const Matrix& x);

}  // namespace gcnt
