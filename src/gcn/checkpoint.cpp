#include "gcn/checkpoint.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/artifact.h"
#include "common/error.h"
#include "common/fault_inject.h"

namespace gcnt {

namespace {

constexpr const char* kMagic = "gcnt-checkpoint";
constexpr int kVersion = 2;
constexpr const char* kArtifactKind = "checkpoint";

/// Caps mirroring load_model's hardening: a corrupt header must not be
/// able to request a huge allocation.
constexpr std::size_t kMaxStateMatrices = 1024;
constexpr std::size_t kMaxMatrixElements = std::size_t{1} << 26;
constexpr std::size_t kMaxHistory = std::size_t{1} << 24;

[[noreturn]] void fail(const std::string& message) {
  throw Error(ErrorKind::kCorrupt, "load_checkpoint: " + message);
}

void write_matrix(std::ostream& out, const Matrix& m) {
  out << "state " << m.rows() << " " << m.cols() << "\n";
  out << std::setprecision(std::numeric_limits<float>::max_digits10);
  for (std::size_t i = 0; i < m.size(); ++i) {
    out << m.data()[i]
        << ((i + 1) % 8 == 0 || i + 1 == m.size() ? "\n" : " ");
  }
}

Matrix read_matrix(std::istream& in) {
  std::string token;
  std::size_t rows = 0, cols = 0;
  if (!(in >> token >> rows >> cols) || token != "state") {
    fail("missing state block");
  }
  if (rows > kMaxMatrixElements || cols > kMaxMatrixElements ||
      (cols != 0 && rows > kMaxMatrixElements / cols)) {
    fail("implausible state shape " + std::to_string(rows) + "x" +
         std::to_string(cols));
  }
  fault_alloc_probe("checkpoint state matrix");
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!(in >> m.data()[i])) fail("truncated state matrix");
  }
  return m;
}

}  // namespace

void save_checkpoint_file(const std::string& path,
                          const TrainCheckpoint& checkpoint) {
  std::ostringstream out;
  out << kMagic << " v" << kVersion << "\n";
  out << "next_epoch " << checkpoint.next_epoch << "\n";
  out << "rng " << checkpoint.rng_state[0] << " " << checkpoint.rng_state[1]
      << " " << checkpoint.rng_state[2] << " " << checkpoint.rng_state[3]
      << "\n";
  out << "optimizer " << checkpoint.optimizer_kind << " "
      << checkpoint.optimizer_step_count << " "
      << checkpoint.optimizer_state.size() << "\n";
  for (const Matrix& m : checkpoint.optimizer_state) write_matrix(out, m);
  out << "history " << checkpoint.history.size() << "\n";
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const EpochRecord& record : checkpoint.history) {
    out << record.epoch << " " << record.loss << " " << record.train_accuracy
        << " " << record.test_accuracy << "\n";
  }
  out << "model\n" << checkpoint.model_text;
  write_artifact_file(path, kArtifactKind, out.str());
}

TrainCheckpoint load_checkpoint_file(const std::string& path) {
  std::istringstream in(read_artifact_file(path, kArtifactKind));
  TrainCheckpoint checkpoint;

  std::string magic, version;
  if (!(in >> magic >> version) || magic != kMagic) fail("bad header");
  if (version != "v" + std::to_string(kVersion)) {
    throw Error(ErrorKind::kVersion,
                "load_checkpoint: checkpoint is " + version +
                    ", this build reads v" + std::to_string(kVersion));
  }

  std::string key;
  if (!(in >> key >> checkpoint.next_epoch) || key != "next_epoch") {
    fail("bad next_epoch");
  }
  if (!(in >> key >> checkpoint.rng_state[0] >> checkpoint.rng_state[1] >>
        checkpoint.rng_state[2] >> checkpoint.rng_state[3]) ||
      key != "rng") {
    fail("bad rng state");
  }
  std::size_t state_count = 0;
  if (!(in >> key >> checkpoint.optimizer_kind >>
        checkpoint.optimizer_step_count >> state_count) ||
      key != "optimizer") {
    fail("bad optimizer line");
  }
  if (state_count > kMaxStateMatrices) {
    fail("implausible optimizer state count " + std::to_string(state_count));
  }
  checkpoint.optimizer_state.reserve(state_count);
  for (std::size_t i = 0; i < state_count; ++i) {
    checkpoint.optimizer_state.push_back(read_matrix(in));
  }
  std::size_t history_count = 0;
  if (!(in >> key >> history_count) || key != "history") {
    fail("bad history line");
  }
  if (history_count > kMaxHistory) {
    fail("implausible history length " + std::to_string(history_count));
  }
  checkpoint.history.reserve(history_count);
  for (std::size_t i = 0; i < history_count; ++i) {
    EpochRecord record;
    if (!(in >> record.epoch >> record.loss >> record.train_accuracy >>
          record.test_accuracy)) {
      fail("truncated history");
    }
    checkpoint.history.push_back(record);
  }
  if (!(in >> key) || key != "model") fail("missing model section");
  std::string line;
  std::getline(in, line);  // consume end of "model" line
  std::ostringstream model_text;
  model_text << in.rdbuf();
  checkpoint.model_text = model_text.str();
  if (checkpoint.model_text.empty()) fail("empty model section");
  return checkpoint;
}

bool checkpoint_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace gcnt
