#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

namespace gcnt {

namespace {

/// Numerically stable per-row softmax into `out` (may alias pre-sized).
void softmax_row(const float* logits, std::size_t c, float* out) {
  float max_logit = logits[0];
  for (std::size_t j = 1; j < c; ++j) max_logit = std::max(max_logit, logits[j]);
  double denom = 0.0;
  for (std::size_t j = 0; j < c; ++j) {
    out[j] = std::exp(logits[j] - max_logit);
    denom += out[j];
  }
  const float inv = static_cast<float>(1.0 / denom);
  for (std::size_t j = 0; j < c; ++j) out[j] *= inv;
}

}  // namespace

double softmax_cross_entropy(const Matrix& logits,
                             const std::vector<std::int32_t>& labels,
                             const std::vector<float>& class_weights,
                             const std::vector<std::uint32_t>* rows,
                             Matrix& dlogits) {
  const std::size_t n = logits.rows();
  const std::size_t c = logits.cols();
  if (labels.size() != n) {
    throw std::invalid_argument("cross_entropy: labels size mismatch");
  }
  if (class_weights.size() != c) {
    throw std::invalid_argument("cross_entropy: class weight size mismatch");
  }

  dlogits.resize(n, c, 0.0f);
  std::vector<float> probs(c);

  double loss = 0.0;
  double weight_sum = 0.0;
  const std::size_t count = rows ? rows->size() : n;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t r = rows ? (*rows)[k] : k;
    const std::int32_t label = labels[r];
    const float w = class_weights[static_cast<std::size_t>(label)];
    softmax_row(logits.row(r), c, probs.data());
    const float p = std::max(probs[static_cast<std::size_t>(label)], 1e-12f);
    loss += static_cast<double>(w) * -std::log(static_cast<double>(p));
    weight_sum += w;
    float* drow = dlogits.row(r);
    for (std::size_t j = 0; j < c; ++j) {
      drow[j] = w * probs[j];
    }
    drow[static_cast<std::size_t>(label)] -= w;
  }
  if (weight_sum == 0.0) return 0.0;

  const float inv = static_cast<float>(1.0 / weight_sum);
  dlogits.scale(inv);
  return loss / weight_sum;
}

Matrix softmax(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    softmax_row(logits.row(r), logits.cols(), out.row(r));
  }
  return out;
}

}  // namespace gcnt
