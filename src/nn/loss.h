#pragma once
// Class-weighted softmax cross-entropy.
//
// The class weight on positives is how each stage of the multi-stage GCN
// biases its decision boundary (Section 3.3): a large positive weight makes
// misclassifying a difficult-to-observe node expensive, so early stages
// only discard high-confidence negatives.

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace gcnt {

/// Computes mean weighted cross-entropy over selected rows and writes
/// d(loss)/d(logits) into `dlogits` (zero for unselected rows).
///
///  - `logits`: N x C scores.
///  - `labels`: N entries in [0, C).
///  - `class_weights`: C entries (all 1.0 = unweighted); the mean is
///    normalized by the sum of selected row weights.
///  - `rows`: row subset to train on; nullptr = all rows.
double softmax_cross_entropy(const Matrix& logits,
                             const std::vector<std::int32_t>& labels,
                             const std::vector<float>& class_weights,
                             const std::vector<std::uint32_t>* rows,
                             Matrix& dlogits);

/// Row-wise softmax probabilities (for inference confidence thresholds).
Matrix softmax(const Matrix& logits);

}  // namespace gcnt
