#pragma once
// First-order optimizers over Param lists.
//
// The paper trains with stochastic gradient descent (Section 5); Adam is
// provided as well because it converges in far fewer epochs on a 1-core
// host, and the benches use it where the paper's result is insensitive to
// the optimizer choice.

#include <cstdint>
#include <vector>

#include "nn/layers.h"

namespace gcnt {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using each param's accumulated gradient, then
  /// zeroes the gradients. The param list must be identical across calls.
  virtual void step(const std::vector<Param*>& params) = 0;

  // Checkpointing hooks (gcn/checkpoint.h). The per-parameter state is
  // exposed as mutable matrices so a checkpoint can be restored bit-exactly
  // before the next step().

  /// Stable identifier of the update rule ("sgd", "adam").
  virtual const char* kind() const noexcept = 0;
  /// Allocates zeroed per-parameter state for `params` if not yet sized
  /// (step() does this lazily; restore paths need it eagerly).
  virtual void ensure_state(const std::vector<Param*>& params) = 0;
  /// Views of every state matrix, in a stable order. Empty until the
  /// first step()/ensure_state().
  virtual std::vector<Matrix*> state_matrices() = 0;
  /// Update count consumed by bias correction (0 for stateless rules).
  virtual std::int64_t step_count() const noexcept = 0;
  virtual void set_step_count(std::int64_t count) noexcept = 0;
};

class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(float learning_rate, float momentum = 0.9f,
                        float weight_decay = 0.0f)
      : learning_rate_(learning_rate),
        momentum_(momentum),
        weight_decay_(weight_decay) {}

  void step(const std::vector<Param*>& params) override;

  const char* kind() const noexcept override { return "sgd"; }
  void ensure_state(const std::vector<Param*>& params) override;
  std::vector<Matrix*> state_matrices() override;
  std::int64_t step_count() const noexcept override { return 0; }
  void set_step_count(std::int64_t) noexcept override {}

 private:
  float learning_rate_;
  float momentum_;
  float weight_decay_;
  std::vector<Matrix> velocity_;
};

class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(float learning_rate, float beta1 = 0.9f,
                         float beta2 = 0.999f, float epsilon = 1e-8f)
      : learning_rate_(learning_rate),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon) {}

  void step(const std::vector<Param*>& params) override;

  const char* kind() const noexcept override { return "adam"; }
  void ensure_state(const std::vector<Param*>& params) override;
  /// First moments for every parameter, then second moments.
  std::vector<Matrix*> state_matrices() override;
  std::int64_t step_count() const noexcept override { return step_count_; }
  void set_step_count(std::int64_t count) noexcept override {
    step_count_ = count;
  }

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  std::int64_t step_count_ = 0;
  std::vector<Matrix> first_moment_;
  std::vector<Matrix> second_moment_;
};

}  // namespace gcnt
