#pragma once
// First-order optimizers over Param lists.
//
// The paper trains with stochastic gradient descent (Section 5); Adam is
// provided as well because it converges in far fewer epochs on a 1-core
// host, and the benches use it where the paper's result is insensitive to
// the optimizer choice.

#include <vector>

#include "nn/layers.h"

namespace gcnt {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using each param's accumulated gradient, then
  /// zeroes the gradients. The param list must be identical across calls.
  virtual void step(const std::vector<Param*>& params) = 0;
};

class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(float learning_rate, float momentum = 0.9f,
                        float weight_decay = 0.0f)
      : learning_rate_(learning_rate),
        momentum_(momentum),
        weight_decay_(weight_decay) {}

  void step(const std::vector<Param*>& params) override;

 private:
  float learning_rate_;
  float momentum_;
  float weight_decay_;
  std::vector<Matrix> velocity_;
};

class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(float learning_rate, float beta1 = 0.9f,
                         float beta2 = 0.999f, float epsilon = 1e-8f)
      : learning_rate_(learning_rate),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon) {}

  void step(const std::vector<Param*>& params) override;

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  long step_count_ = 0;
  std::vector<Matrix> first_moment_;
  std::vector<Matrix> second_moment_;
};

}  // namespace gcnt
