#include "nn/layers.h"

#include <stdexcept>

namespace gcnt {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : weight(in_features, out_features), bias(1, out_features) {
  weight.value.xavier_init(rng);
  bias.value.fill(0.0f);
}

void Linear::forward(const Matrix& x, Matrix& y) const {
  gemm_bias_act(x, weight.value, bias.value, y, /*relu=*/false);
}

void Linear::forward_relu(const Matrix& x, Matrix& y) const {
  gemm_bias_act(x, weight.value, bias.value, y, /*relu=*/true);
}

void Linear::backward(const Matrix& x, const Matrix& dy, Matrix& dx) {
  if (x.rows() != dy.rows()) {
    throw std::invalid_argument("Linear::backward: batch mismatch");
  }
  // dW += x^T * dy ; db += column sums of dy ; dx = dy * W^T.
  gemm(x, dy, weight.grad, true, false, 1.0f, 1.0f);
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const float* drow = dy.row(r);
    float* brow = bias.grad.row(0);
    for (std::size_t c = 0; c < dy.cols(); ++c) brow[c] += drow[c];
  }
  gemm(dy, weight.value, dx, false, true);
}

void Relu::forward(const Matrix& x, Matrix& y) {
  y.resize(x.rows(), x.cols());
  const float* in = x.data();
  float* out = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = in[i] > 0.0f ? in[i] : 0.0f;
  }
}

void Relu::backward(const Matrix& y, const Matrix& dy, Matrix& dx) {
  dx.resize(y.rows(), y.cols());
  const float* act = y.data();
  const float* grad = dy.data();
  float* out = dx.data();
  for (std::size_t i = 0; i < y.size(); ++i) {
    out[i] = act[i] > 0.0f ? grad[i] : 0.0f;
  }
}

}  // namespace gcnt
