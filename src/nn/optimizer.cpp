#include "nn/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace gcnt {

void SgdOptimizer::ensure_state(const std::vector<Param*>& params) {
  if (!velocity_.empty()) return;
  for (const Param* p : params) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

std::vector<Matrix*> SgdOptimizer::state_matrices() {
  std::vector<Matrix*> state;
  state.reserve(velocity_.size());
  for (Matrix& m : velocity_) state.push_back(&m);
  return state;
}

void SgdOptimizer::step(const std::vector<Param*>& params) {
  ensure_state(params);
  if (velocity_.size() != params.size()) {
    throw std::invalid_argument("SgdOptimizer: param list changed");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    Matrix& v = velocity_[i];
    float* value = p.value.data();
    float* grad = p.grad.data();
    float* vel = v.data();
    for (std::size_t k = 0; k < p.value.size(); ++k) {
      const float g = grad[k] + weight_decay_ * value[k];
      vel[k] = momentum_ * vel[k] + g;
      value[k] -= learning_rate_ * vel[k];
    }
    p.zero_grad();
  }
}

void AdamOptimizer::ensure_state(const std::vector<Param*>& params) {
  if (!first_moment_.empty()) return;
  for (const Param* p : params) {
    first_moment_.emplace_back(p->value.rows(), p->value.cols());
    second_moment_.emplace_back(p->value.rows(), p->value.cols());
  }
}

std::vector<Matrix*> AdamOptimizer::state_matrices() {
  std::vector<Matrix*> state;
  state.reserve(first_moment_.size() * 2);
  for (Matrix& m : first_moment_) state.push_back(&m);
  for (Matrix& m : second_moment_) state.push_back(&m);
  return state;
}

void AdamOptimizer::step(const std::vector<Param*>& params) {
  ensure_state(params);
  if (first_moment_.size() != params.size()) {
    throw std::invalid_argument("AdamOptimizer: param list changed");
  }
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    float* value = p.value.data();
    float* grad = p.grad.data();
    float* m = first_moment_[i].data();
    float* v = second_moment_[i].data();
    for (std::size_t k = 0; k < p.value.size(); ++k) {
      m[k] = beta1_ * m[k] + (1.0f - beta1_) * grad[k];
      v[k] = beta2_ * v[k] + (1.0f - beta2_) * grad[k] * grad[k];
      const float m_hat = m[k] / bias1;
      const float v_hat = v[k] / bias2;
      value[k] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
    p.zero_grad();
  }
}

}  // namespace gcnt
