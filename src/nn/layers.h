#pragma once
// Neural-network building blocks with explicit forward/backward methods.
//
// There is deliberately no general autograd: each module knows its own
// gradient, the models compose them in reverse order, and the tests verify
// every module against finite differences. Parameters pair a value with an
// accumulated gradient so multiple graphs can contribute before a step
// (the paper's multi-device gradient averaging).

#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace gcnt {

/// A trainable tensor: value + accumulated gradient of matching shape.
struct Param {
  Matrix value;
  Matrix grad;

  explicit Param(std::size_t rows = 0, std::size_t cols = 0)
      : value(rows, cols), grad(rows, cols) {}

  void zero_grad() noexcept { grad.fill(0.0f); }
};

/// Fully-connected layer: y = x * W + b, with x of shape N x in.
class Linear {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  std::size_t in_features() const noexcept { return weight.value.rows(); }
  std::size_t out_features() const noexcept { return weight.value.cols(); }

  void forward(const Matrix& x, Matrix& y) const;

  /// Fused y = ReLU(x * W + b) in one output pass (gemm_bias_act).
  /// Bitwise identical to forward() followed by Relu::forward(); pairs
  /// with Relu::backward, which masks on the forward *output*.
  void forward_relu(const Matrix& x, Matrix& y) const;

  /// Accumulates dW/db from (x, dy) and writes dx. `dx` may alias nothing.
  void backward(const Matrix& x, const Matrix& dy, Matrix& dx);

  /// Parameters in a stable order (weight, bias).
  std::vector<Param*> params() { return {&weight, &bias}; }

  Param weight;  ///< in x out
  Param bias;    ///< 1 x out
};

/// Rectified linear unit, elementwise.
struct Relu {
  static void forward(const Matrix& x, Matrix& y);
  /// dx = dy where y > 0 (uses the forward output as the mask).
  static void backward(const Matrix& y, const Matrix& dy, Matrix& dx);
};

}  // namespace gcnt
