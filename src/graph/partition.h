#pragma once
// Graph partitioning for out-of-core sharded GCN execution.
//
// A GraphPartition splits the CSR compute-row space into K disjoint
// *owner* sets plus, per shard, a D-hop *halo*: the rows within D hops
// (along predecessor or successor edges — Eq. 1 aggregates both
// directions) of the shard's owners that the shard does not own itself.
// A shard holding its owners' and halo rows' layer-(d-1) embeddings can
// compute D aggregation layers for its owners without touching any other
// row — the same closure argument the incremental engine's dirty cone
// uses (gcn/incremental.h), applied spatially instead of temporally.
//
// The halo rows carry their hop distance (1..D). A sharded engine
// running m <= D layers in one resident round computes the shrinking
// row sets {dist <= m-1}, {dist <= m-2}, ..., {dist == 0}: every row it
// computes at layer j reads only rows it computed (or loaded) at layer
// j-1, so the round needs exactly one gather of the halo embeddings —
// the "halo exchange" — per m layers.
//
// Partitioning is purely structural (CsrMatrix forms only), so the
// library sits below gcn/: callers operating on GraphTensors pass the
// pred/succ compute forms and, for the key-ordered strategy, a per-row
// ordering key (e.g. logic level, which groups topological cones).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/sparse.h"

namespace gcnt {

enum class PartitionStrategy : int {
  /// Owners are contiguous compute-row ranges of balanced size. Under
  /// GCNT_REORDER=rcm the compute order is already bandwidth-minimized,
  /// so contiguous ranges are locality (cone) clusters with thin halos.
  kContiguous = 0,
  /// Rows are ordered by an external key (ascending, ties by row id) and
  /// the *sorted* order is chunked — e.g. keyed by logic level, so each
  /// shard holds a band of topological depth.
  kByKey = 1,
};

struct PartitionOptions {
  std::size_t shards = 1;
  /// Halo depth D >= 1: hop radius of the boundary closure.
  int halo = 1;
  PartitionStrategy strategy = PartitionStrategy::kContiguous;
  /// Row-indexed ordering key for kByKey (must outlive build()).
  const std::vector<float>* order_key = nullptr;
};

/// Halo rows a shard receives from one producer shard: `rows` is the
/// ascending list of global compute rows, a subset of the producer's
/// owners. The union over a shard's recv groups is exactly its halo.
struct ShardRecv {
  std::uint32_t producer = 0;
  std::vector<std::uint32_t> rows;
};

struct Shard {
  /// Globally disjoint; every row is owned by exactly one shard.
  /// Ascending.
  std::vector<std::uint32_t> owners;
  /// Rows within halo-depth hops of an owner, excluding owners.
  /// Ascending, disjoint from every shard's owner set intersection with
  /// this shard (a halo row is always some *other* shard's owner).
  std::vector<std::uint32_t> halo;
  /// Exact hop distance of halo[i] from the nearest owner (1..D).
  std::vector<std::uint8_t> halo_dist;
  /// Halo grouped by owning shard, producers ascending.
  std::vector<ShardRecv> recv;
};

/// Disjoint K-way cover of the compute rows with exact D-hop halos and
/// the derived exchange lists. Built once per graph; extend() follows
/// the OPI flow's appended rows without a full rebuild.
class GraphPartition {
 public:
  GraphPartition() = default;

  /// Partitions rows [0, pred.rows()) — pred and succ must be the two
  /// adjacency compute forms of the same graph (equal row counts).
  /// Throws Error{kUsage} on bad options, Error{kInternal} on
  /// mismatched inputs.
  static GraphPartition build(const CsrMatrix& pred, const CsrMatrix& succ,
                              const PartitionOptions& options);

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t row_count() const noexcept { return owner_of_.size(); }
  int halo_depth() const noexcept { return halo_; }
  PartitionStrategy strategy() const noexcept { return strategy_; }

  const Shard& shard(std::size_t k) const { return shards_.at(k); }
  std::uint32_t owner_of(std::uint32_t row) const { return owner_of_.at(row); }

  /// Total halo rows across shards (duplicates counted — the exchange
  /// volume of one full halo gather).
  std::size_t total_halo_rows() const noexcept;

  /// Follows appended rows: pred/succ are the *rebuilt* forms whose row
  /// count grew past row_count(). Each new row joins the shard owning
  /// its first predecessor (else successor) neighbor — OPI appends
  /// observe points whose only fanin is their target, so an OP lands in
  /// its target's shard. Halos (and recv lists) of every shard within
  /// halo-depth hops of a new row are recomputed exactly; returns the
  /// ascending list of shards whose owner set, halo, or recv lists may
  /// have changed.
  std::vector<std::size_t> extend(const CsrMatrix& pred,
                                  const CsrMatrix& succ);

  /// Checks every structural invariant against the adjacency (owners
  /// form a disjoint cover, halo = exact D-hop BFS closure with exact
  /// distances, recv groups partition the halo by owner). O(K * (rows +
  /// nnz)) — test/debug tier, not a hot path. Throws Error{kInternal}
  /// with a description of the first violation.
  void validate(const CsrMatrix& pred, const CsrMatrix& succ) const;

 private:
  /// Recomputes shard k's halo/halo_dist/recv from its owners by BFS.
  void rebuild_halo(std::size_t k, const CsrMatrix& pred,
                    const CsrMatrix& succ);

  std::vector<Shard> shards_;
  std::vector<std::uint32_t> owner_of_;
  int halo_ = 1;
  PartitionStrategy strategy_ = PartitionStrategy::kContiguous;
};

}  // namespace gcnt
