#include "graph/partition.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "common/error.h"
#include "common/trace.h"

namespace gcnt {

namespace {

/// Exact multi-source BFS from `owners` (dist 0) over the union of both
/// adjacency directions, up to `depth` hops. Fills `halo`/`halo_dist`
/// with the reached non-owner rows, ascending. `dist` is an n-sized
/// scratch (0xFF = unreached) owned by the caller.
void halo_bfs(const std::vector<std::uint32_t>& owners, const CsrMatrix& pred,
              const CsrMatrix& succ, int depth, std::vector<std::uint8_t>& dist,
              std::vector<std::uint32_t>& halo,
              std::vector<std::uint8_t>& halo_dist) {
  std::vector<std::uint32_t> frontier = owners;
  for (const std::uint32_t v : owners) dist[v] = 0;
  std::vector<std::uint32_t> reached;  // non-owner rows, discovery order
  std::vector<std::uint32_t> next;
  for (int hop = 1; hop <= depth && !frontier.empty(); ++hop) {
    next.clear();
    for (const std::uint32_t v : frontier) {
      const auto expand = [&](const CsrMatrix& adjacency) {
        const auto& row_ptr = adjacency.row_ptr();
        const auto& cols = adjacency.col_index();
        for (std::uint32_t k = row_ptr[v]; k < row_ptr[v + 1]; ++k) {
          const std::uint32_t u = cols[k];
          if (dist[u] == 0xFF) {
            dist[u] = static_cast<std::uint8_t>(hop);
            next.push_back(u);
            reached.push_back(u);
          }
        }
      };
      expand(pred);
      expand(succ);
    }
    frontier.swap(next);
  }
  std::sort(reached.begin(), reached.end());
  halo.assign(reached.begin(), reached.end());
  halo_dist.resize(halo.size());
  for (std::size_t i = 0; i < halo.size(); ++i) halo_dist[i] = dist[halo[i]];
  // Reset only the touched entries so the caller can reuse the scratch.
  for (const std::uint32_t v : owners) dist[v] = 0xFF;
  for (const std::uint32_t v : reached) dist[v] = 0xFF;
}

}  // namespace

GraphPartition GraphPartition::build(const CsrMatrix& pred,
                                     const CsrMatrix& succ,
                                     const PartitionOptions& options) {
  GCNT_KERNEL_SCOPE("graph.partition");
  const std::size_t n = pred.rows();
  if (succ.rows() != n) {
    throw Error(ErrorKind::kInternal,
                "GraphPartition::build: pred/succ row count mismatch");
  }
  if (options.shards == 0) {
    throw Error(ErrorKind::kUsage, "GraphPartition::build: shards must be > 0");
  }
  if (options.halo < 1 || options.halo > 0xFE) {
    throw Error(ErrorKind::kUsage,
                "GraphPartition::build: halo depth out of range");
  }
  if (options.strategy == PartitionStrategy::kByKey &&
      (options.order_key == nullptr || options.order_key->size() != n)) {
    throw Error(ErrorKind::kUsage,
                "GraphPartition::build: kByKey needs an n-sized order_key");
  }

  GraphPartition partition;
  partition.halo_ = options.halo;
  partition.strategy_ = options.strategy;
  const std::size_t shard_count = std::max<std::size_t>(
      1, std::min(options.shards, std::max<std::size_t>(1, n)));
  partition.shards_.resize(shard_count);
  partition.owner_of_.assign(n, 0);

  // Owner assignment: chunk either the identity order or the key-sorted
  // order into balanced contiguous runs, then store each shard's owners
  // ascending (the merge-based gathers downstream rely on sorted lists).
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (options.strategy == PartitionStrategy::kByKey) {
    const std::vector<float>& key = *options.order_key;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return key[a] < key[b];
                     });
  }
  for (std::size_t k = 0; k < shard_count; ++k) {
    const std::size_t begin = n * k / shard_count;
    const std::size_t end = n * (k + 1) / shard_count;
    Shard& shard = partition.shards_[k];
    shard.owners.assign(order.begin() + static_cast<std::ptrdiff_t>(begin),
                        order.begin() + static_cast<std::ptrdiff_t>(end));
    std::sort(shard.owners.begin(), shard.owners.end());
    for (const std::uint32_t row : shard.owners) {
      partition.owner_of_[row] = static_cast<std::uint32_t>(k);
    }
  }
  for (std::size_t k = 0; k < shard_count; ++k) {
    partition.rebuild_halo(k, pred, succ);
  }
  return partition;
}

void GraphPartition::rebuild_halo(std::size_t k, const CsrMatrix& pred,
                                  const CsrMatrix& succ) {
  Shard& shard = shards_[k];
  std::vector<std::uint8_t> dist(owner_of_.size(), 0xFF);
  halo_bfs(shard.owners, pred, succ, halo_, dist, shard.halo,
           shard.halo_dist);
  // Regroup the halo by producer. Iterating the ascending halo keeps
  // each group's rows ascending; the groups themselves sort by producer.
  shard.recv.clear();
  std::vector<std::int32_t> group_of(shards_.size(), -1);
  for (const std::uint32_t row : shard.halo) {
    const std::uint32_t producer = owner_of_[row];
    if (group_of[producer] < 0) {
      group_of[producer] = static_cast<std::int32_t>(shard.recv.size());
      shard.recv.push_back(ShardRecv{producer, {}});
    }
    shard.recv[static_cast<std::size_t>(group_of[producer])].rows.push_back(
        row);
  }
  std::sort(shard.recv.begin(), shard.recv.end(),
            [](const ShardRecv& a, const ShardRecv& b) {
              return a.producer < b.producer;
            });
}

std::size_t GraphPartition::total_halo_rows() const noexcept {
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.halo.size();
  return total;
}

std::vector<std::size_t> GraphPartition::extend(const CsrMatrix& pred,
                                                const CsrMatrix& succ) {
  GCNT_KERNEL_SCOPE("graph.partition_extend");
  const std::size_t old_rows = owner_of_.size();
  const std::size_t n = pred.rows();
  if (succ.rows() != n || n < old_rows) {
    throw Error(ErrorKind::kInternal,
                "GraphPartition::extend: adjacency shrank or mismatched");
  }
  if (n == old_rows) return {};

  // Assign each appended row to the shard of its first already-assigned
  // neighbor (fanin preferred: an OPI observe point's only fanin is its
  // target, so the OP lands in the target's shard).
  std::vector<std::uint32_t> new_rows;
  new_rows.reserve(n - old_rows);
  for (std::size_t r = old_rows; r < n; ++r) {
    const std::uint32_t row = static_cast<std::uint32_t>(r);
    std::uint32_t shard = 0;
    bool found = false;
    for (const CsrMatrix* adjacency : {&pred, &succ}) {
      const auto& row_ptr = adjacency->row_ptr();
      const auto& cols = adjacency->col_index();
      for (std::uint32_t k = row_ptr[row]; k < row_ptr[row + 1] && !found;
           ++k) {
        if (cols[k] < owner_of_.size()) {
          shard = owner_of_[cols[k]];
          found = true;
        }
      }
      if (found) break;
    }
    owner_of_.push_back(shard);
    shards_[shard].owners.push_back(row);  // row > every prior id: stays sorted
    new_rows.push_back(row);
  }

  // Every shard with an owner within halo-depth hops of a new row may
  // gain halo rows — including pairs of *old* rows newly connected
  // through an appended node, whose endpoints are both within D hops of
  // it. A full halo rebuild for exactly those shards restores the exact
  // closure; all other shards are untouched by construction.
  std::vector<std::uint8_t> dist(n, 0xFF);
  std::vector<std::uint32_t> reached;
  std::vector<std::uint8_t> reached_dist;
  halo_bfs(new_rows, pred, succ, halo_, dist, reached, reached_dist);
  std::vector<std::uint8_t> affected(shards_.size(), 0);
  for (const std::uint32_t row : new_rows) affected[owner_of_[row]] = 1;
  for (const std::uint32_t row : reached) affected[owner_of_[row]] = 1;
  std::vector<std::size_t> result;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (affected[k]) {
      rebuild_halo(k, pred, succ);
      result.push_back(k);
    }
  }
  return result;
}

void GraphPartition::validate(const CsrMatrix& pred,
                              const CsrMatrix& succ) const {
  const std::size_t n = owner_of_.size();
  const auto fail = [](const std::string& what) {
    throw Error(ErrorKind::kInternal, "GraphPartition::validate: " + what);
  };
  if (pred.rows() != n || succ.rows() != n) fail("adjacency size mismatch");

  // Owners: disjoint, exhaustive, consistent with owner_of.
  std::vector<std::uint8_t> seen(n, 0);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const Shard& shard = shards_[k];
    for (std::size_t i = 0; i < shard.owners.size(); ++i) {
      const std::uint32_t row = shard.owners[i];
      if (row >= n) fail("owner row out of range");
      if (i > 0 && shard.owners[i - 1] >= row) fail("owners not ascending");
      if (seen[row]) fail("row owned by two shards");
      seen[row] = 1;
      if (owner_of_[row] != k) fail("owner_of inconsistent");
    }
  }
  for (std::size_t row = 0; row < n; ++row) {
    if (!seen[row]) fail("row owned by no shard");
  }

  // Halo: exact D-hop closure with exact distances; recv regroups it.
  std::vector<std::uint8_t> dist(n, 0xFF);
  std::vector<std::uint32_t> expected_halo;
  std::vector<std::uint8_t> expected_dist;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const Shard& shard = shards_[k];
    halo_bfs(shard.owners, pred, succ, halo_, dist, expected_halo,
             expected_dist);
    if (shard.halo != expected_halo) fail("halo is not the D-hop closure");
    if (shard.halo_dist != expected_dist) fail("halo distance wrong");
    std::size_t grouped = 0;
    for (std::size_t g = 0; g < shard.recv.size(); ++g) {
      const ShardRecv& recv = shard.recv[g];
      if (g > 0 && shard.recv[g - 1].producer >= recv.producer) {
        fail("recv producers not ascending");
      }
      if (recv.producer == k) fail("recv from self");
      for (std::size_t i = 0; i < recv.rows.size(); ++i) {
        const std::uint32_t row = recv.rows[i];
        if (i > 0 && recv.rows[i - 1] >= row) fail("recv rows not ascending");
        if (owner_of_[row] != recv.producer) fail("recv row owner mismatch");
        if (!std::binary_search(shard.halo.begin(), shard.halo.end(), row)) {
          fail("recv row not in halo");
        }
      }
      grouped += recv.rows.size();
    }
    if (grouped != shard.halo.size()) fail("recv does not cover halo");
  }
}

}  // namespace gcnt
