#include "scoap/scoap.h"

#include <algorithm>
#include <cassert>

#include "common/trace.h"

namespace gcnt {

namespace {

/// Controllability of a gate output from its fanin measures.
void gate_controllability(const Netlist& netlist, NodeId v,
                          const std::vector<std::uint32_t>& cc0,
                          const std::vector<std::uint32_t>& cc1,
                          std::uint32_t& out0, std::uint32_t& out1) {
  const auto& fanins = netlist.fanins(v);
  const CellType type = netlist.type(v);
  switch (type) {
    case CellType::kInput:
    case CellType::kDff:
    case CellType::kObserve:
      // Sources are fully controllable through the scan chain; observation
      // points carry the paper's fixed [0,1,1,0] attribute convention.
      out0 = 1;
      out1 = 1;
      return;
    case CellType::kBuf:
    case CellType::kOutput:
      out0 = scoap_add(cc0[fanins[0]], 1);
      out1 = scoap_add(cc1[fanins[0]], 1);
      return;
    case CellType::kNot:
      out0 = scoap_add(cc1[fanins[0]], 1);
      out1 = scoap_add(cc0[fanins[0]], 1);
      return;
    case CellType::kAnd:
    case CellType::kNand: {
      std::uint32_t all_one = 0;
      std::uint32_t min_zero = kScoapInfinity;
      for (NodeId u : fanins) {
        all_one = scoap_add(all_one, cc1[u]);
        min_zero = std::min(min_zero, cc0[u]);
      }
      const std::uint32_t zero_cost = scoap_add(min_zero, 1);
      const std::uint32_t one_cost = scoap_add(all_one, 1);
      if (type == CellType::kAnd) {
        out0 = zero_cost;
        out1 = one_cost;
      } else {
        out0 = one_cost;
        out1 = zero_cost;
      }
      return;
    }
    case CellType::kOr:
    case CellType::kNor: {
      std::uint32_t all_zero = 0;
      std::uint32_t min_one = kScoapInfinity;
      for (NodeId u : fanins) {
        all_zero = scoap_add(all_zero, cc0[u]);
        min_one = std::min(min_one, cc1[u]);
      }
      // OR is 0 only when every input is 0; it is 1 via any single input.
      const std::uint32_t all_zero_cost = scoap_add(all_zero, 1);
      const std::uint32_t any_one_cost = scoap_add(min_one, 1);
      if (type == CellType::kOr) {
        out0 = all_zero_cost;
        out1 = any_one_cost;
      } else {
        out0 = any_one_cost;
        out1 = all_zero_cost;
      }
      return;
    }
    case CellType::kXor:
    case CellType::kXnor: {
      // Dynamic program over inputs: cheapest cost of even / odd parity.
      std::uint32_t even = 0;
      std::uint32_t odd = kScoapInfinity;
      for (NodeId u : fanins) {
        const std::uint32_t new_even =
            std::min(scoap_add(even, cc0[u]), scoap_add(odd, cc1[u]));
        const std::uint32_t new_odd =
            std::min(scoap_add(even, cc1[u]), scoap_add(odd, cc0[u]));
        even = new_even;
        odd = new_odd;
      }
      const std::uint32_t parity0 = scoap_add(even, 1);
      const std::uint32_t parity1 = scoap_add(odd, 1);
      if (type == CellType::kXor) {
        out0 = parity0;
        out1 = parity1;
      } else {
        out0 = parity1;
        out1 = parity0;
      }
      return;
    }
  }
  out0 = kScoapInfinity;
  out1 = kScoapInfinity;
}

}  // namespace

/// Observability of fanin slot `slot` of gate `g`, given the gate's own
/// output observability: cost of sensitizing the path through `g`.
std::uint32_t scoap_observe_through(const Netlist& netlist, NodeId g,
                                    std::size_t slot,
                                    const ScoapMeasures& measures,
                                    std::uint32_t gate_co) {
  const std::vector<std::uint32_t>& cc0 = measures.cc0;
  const std::vector<std::uint32_t>& cc1 = measures.cc1;
  const auto& fanins = netlist.fanins(g);
  switch (netlist.type(g)) {
    case CellType::kOutput:
    case CellType::kObserve:
      return 0;
    case CellType::kDff:
      return 0;  // captured by the scan cell
    case CellType::kBuf:
    case CellType::kNot:
      return scoap_add(gate_co, 1);
    case CellType::kAnd:
    case CellType::kNand: {
      std::uint32_t cost = scoap_add(gate_co, 1);
      for (std::size_t j = 0; j < fanins.size(); ++j) {
        if (j == slot) continue;
        cost = scoap_add(cost, cc1[fanins[j]]);  // side inputs at 1
      }
      return cost;
    }
    case CellType::kOr:
    case CellType::kNor: {
      std::uint32_t cost = scoap_add(gate_co, 1);
      for (std::size_t j = 0; j < fanins.size(); ++j) {
        if (j == slot) continue;
        cost = scoap_add(cost, cc0[fanins[j]]);  // side inputs at 0
      }
      return cost;
    }
    case CellType::kXor:
    case CellType::kXnor: {
      std::uint32_t cost = scoap_add(gate_co, 1);
      for (std::size_t j = 0; j < fanins.size(); ++j) {
        if (j == slot) continue;
        cost = scoap_add(cost, std::min(cc0[fanins[j]], cc1[fanins[j]]));
      }
      return cost;
    }
    case CellType::kInput:
      break;
  }
  return kScoapInfinity;
}

void compute_controllability(const Netlist& netlist, ScoapMeasures& measures) {
  const auto order = netlist.topological_order();
  measures.cc0.assign(netlist.size(), kScoapInfinity);
  measures.cc1.assign(netlist.size(), kScoapInfinity);
  for (NodeId v : order) {
    gate_controllability(netlist, v, measures.cc0, measures.cc1,
                         measures.cc0[v], measures.cc1[v]);
  }
}

void compute_observability(const Netlist& netlist, ScoapMeasures& measures) {
  const auto order = netlist.topological_order();
  measures.co.assign(netlist.size(), kScoapInfinity);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    if (is_sink(netlist.type(v))) {
      measures.co[v] = 0;  // value lands in a scan cell / on a pin
      continue;
    }
    std::uint32_t best = kScoapInfinity;
    for (NodeId g : netlist.fanouts(v)) {
      const auto& gf = netlist.fanins(g);
      for (std::size_t slot = 0; slot < gf.size(); ++slot) {
        if (gf[slot] != v) continue;
        best = std::min(best, scoap_observe_through(netlist, g, slot,
                                                    measures, measures.co[g]));
      }
    }
    measures.co[v] = best;
  }
}

ScoapMeasures compute_scoap(const Netlist& netlist) {
  GCNT_KERNEL_SCOPE("scoap.full");
  ScoapMeasures measures;
  compute_controllability(netlist, measures);
  compute_observability(netlist, measures);
  return measures;
}

void resize_for(const Netlist& netlist, ScoapMeasures& measures) {
  // New nodes are observation points: fully observable, and their own
  // controllability mirrors a scan cell ([0,1,1,0] attributes in the paper).
  measures.cc0.resize(netlist.size(), 1);
  measures.cc1.resize(netlist.size(), 1);
  measures.co.resize(netlist.size(), 0);
}

void update_observability_after_observe(const Netlist& netlist, NodeId target,
                                        ScoapMeasures& measures) {
  resize_for(netlist, measures);
  // Only nodes in the fan-in cone of `target` (inclusive) can improve.
  auto cone = netlist.fanin_cone(target);
  cone.push_back(target);
  const auto levels = netlist.logic_levels();
  std::sort(cone.begin(), cone.end(), [&](NodeId a, NodeId b) {
    return levels[a] > levels[b];
  });
  for (NodeId v : cone) {
    if (is_sink(netlist.type(v))) continue;
    std::uint32_t best = kScoapInfinity;
    for (NodeId g : netlist.fanouts(v)) {
      const auto& gf = netlist.fanins(g);
      for (std::size_t slot = 0; slot < gf.size(); ++slot) {
        if (gf[slot] != v) continue;
        best = std::min(best, scoap_observe_through(netlist, g, slot,
                                                    measures, measures.co[g]));
      }
    }
    measures.co[v] = best;
  }
}

}  // namespace gcnt
