#pragma once
// SCOAP testability measures (Goldstein & Thigpen, DAC 1980).
//
// Combinational controllability CC0/CC1 and observability CO per node,
// under the full-scan assumption: primary inputs and scan flip-flop outputs
// cost 1 to control; primary outputs, scan D pins and observation points
// cost 0 to observe. These are the [C0, C1, O] node attributes of the
// paper's GCN (Section 3.1), alongside the logic level LL.
//
// Values use saturating arithmetic so deep circuits cannot overflow.

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace gcnt {

/// Saturation ceiling for SCOAP values.
constexpr std::uint32_t kScoapInfinity = 1u << 24;

struct ScoapMeasures {
  std::vector<std::uint32_t> cc0;  ///< cost of setting the node's output to 0
  std::vector<std::uint32_t> cc1;  ///< cost of setting the node's output to 1
  std::vector<std::uint32_t> co;   ///< cost of observing the node's output
};

/// Saturating add capped at kScoapInfinity.
constexpr std::uint32_t scoap_add(std::uint32_t a, std::uint32_t b) noexcept {
  const std::uint64_t sum = static_cast<std::uint64_t>(a) + b;
  return sum >= kScoapInfinity ? kScoapInfinity
                               : static_cast<std::uint32_t>(sum);
}

/// Computes all three measures for every node.
ScoapMeasures compute_scoap(const Netlist& netlist);

/// Recomputes only controllability (topological pass).
void compute_controllability(const Netlist& netlist, ScoapMeasures& measures);

/// Recomputes only observability (reverse topological pass); requires
/// controllability to be up to date.
void compute_observability(const Netlist& netlist, ScoapMeasures& measures);

/// Incrementally repairs observability after insert_observe_point(target):
/// controllability is unaffected, and CO can only change inside the fan-in
/// cone of `target`, which this updates in reverse-level order. `measures`
/// must be resized by the caller via `resize_for`.
void update_observability_after_observe(const Netlist& netlist,
                                        NodeId target,
                                        ScoapMeasures& measures);

/// Extends the measure vectors for nodes appended since the last compute
/// (new OBSERVE nodes); new entries get neutral values.
void resize_for(const Netlist& netlist, ScoapMeasures& measures);

/// Observability cost of fanin slot `slot` of gate `g` given the gate's own
/// output observability `gate_co` (cost of sensitizing the path through g,
/// using the controllability in `measures`). Exposed for overlay-style
/// tentative evaluation (OP impact analysis).
std::uint32_t scoap_observe_through(const Netlist& netlist, NodeId g,
                                    std::size_t slot,
                                    const ScoapMeasures& measures,
                                    std::uint32_t gate_co);

}  // namespace gcnt
