#include "serve/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gcnt::serve {

std::uint8_t wire_status(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kIo:
      return 1;
    case ErrorKind::kCorrupt:
      return 2;
    case ErrorKind::kVersion:
      return 3;
    case ErrorKind::kResource:
      return 4;
    case ErrorKind::kUsage:
      return 5;
    case ErrorKind::kInternal:
      return 6;
    case ErrorKind::kDeadline:
      return 7;
  }
  return 6;
}

ErrorKind error_kind_for_status(std::uint8_t status) noexcept {
  switch (status) {
    case 1:
      return ErrorKind::kIo;
    case 2:
      return ErrorKind::kCorrupt;
    case 3:
      return ErrorKind::kVersion;
    case 4:
      return ErrorKind::kResource;
    case 5:
      return ErrorKind::kUsage;
    case 7:
      return ErrorKind::kDeadline;
    default:
      return ErrorKind::kInternal;
  }
}

const char* op_name(std::uint8_t opcode) noexcept {
  switch (static_cast<Op>(opcode)) {
    case Op::kPing:
      return "ping";
    case Op::kLoadSession:
      return "load_session";
    case Op::kInfer:
      return "infer";
    case Op::kAppendObserve:
      return "append_observe";
    case Op::kAppendControl:
      return "append_control";
    case Op::kStats:
      return "stats";
    case Op::kReloadModel:
      return "reload_model";
    case Op::kCloseSession:
      return "close_session";
    case Op::kShutdown:
      return "shutdown";
    case Op::kMetrics:
      return "metrics";
  }
  return "unknown";
}

namespace {

void append_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t load_u32(const char* p) noexcept {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

/// Parses the `payload` bytes at `p` (fixed header, optional deadline
/// extension, body) into `out`. The caller has already bounds-checked
/// payload >= kFrameHeaderBytes; this only has to validate the optional
/// extension against the payload length.
bool parse_payload(const char* p, std::uint32_t payload, Frame& out,
                   ErrorKind& kind, std::string& message) {
  out.version = static_cast<std::uint8_t>(p[0]);
  out.opcode = static_cast<std::uint8_t>(p[1]);
  out.flags = static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[2]) |
      (static_cast<std::uint16_t>(static_cast<unsigned char>(p[3])) << 8));
  out.request_id = load_u32(p + 4);
  out.deadline_ms = 0;
  std::size_t body_offset = kFrameHeaderBytes;
  if (out.has_deadline()) {
    if (payload < kFrameHeaderBytes + 4) {
      kind = ErrorKind::kCorrupt;
      message = "frame sets the deadline flag but is too short for the "
                "deadline field";
      return false;
    }
    out.deadline_ms = load_u32(p + kFrameHeaderBytes);
    body_offset += 4;
  }
  out.body.assign(p + body_offset, payload - body_offset);
  return true;
}

}  // namespace

std::string encode_frame(const Frame& frame) {
  const std::size_t extension = frame.has_deadline() ? 4 : 0;
  if (frame.body.size() > kMaxFramePayload - kFrameHeaderBytes - extension) {
    throw Error(ErrorKind::kUsage,
                "frame body of " + std::to_string(frame.body.size()) +
                    " bytes exceeds the frame payload limit");
  }
  const std::uint32_t payload = static_cast<std::uint32_t>(
      kFrameHeaderBytes + extension + frame.body.size());
  std::string out;
  out.reserve(4 + payload);
  append_u32(out, payload);
  out.push_back(static_cast<char>(frame.version));
  out.push_back(static_cast<char>(frame.opcode));
  // v1 wrote a zero "reserved" u16 here; v2 reuses it as the flag word.
  out.push_back(static_cast<char>(frame.flags & 0xff));
  out.push_back(static_cast<char>((frame.flags >> 8) & 0xff));
  append_u32(out, frame.request_id);
  if (frame.has_deadline()) append_u32(out, frame.deadline_ms);
  out.append(frame.body);
  return out;
}

DecodeResult decode_frame(std::string_view buffer, Frame& out,
                          std::size_t& consumed, ErrorKind& kind,
                          std::string& message) {
  if (buffer.size() < 4) return DecodeResult::kNeedMore;
  const std::uint32_t payload = load_u32(buffer.data());
  if (payload > kMaxFramePayload) {
    kind = ErrorKind::kCorrupt;
    message = "frame length " + std::to_string(payload) +
              " exceeds the " + std::to_string(kMaxFramePayload) +
              "-byte payload limit";
    return DecodeResult::kMalformed;
  }
  if (payload < kFrameHeaderBytes) {
    kind = ErrorKind::kCorrupt;
    message = "frame payload of " + std::to_string(payload) +
              " bytes is shorter than the frame header";
    return DecodeResult::kMalformed;
  }
  if (buffer.size() < 4 + static_cast<std::size_t>(payload)) {
    return DecodeResult::kNeedMore;
  }
  if (!parse_payload(buffer.data() + 4, payload, out, kind, message)) {
    return DecodeResult::kMalformed;
  }
  consumed = 4 + static_cast<std::size_t>(payload);
  return DecodeResult::kFrame;
}

namespace {

/// Responses speak the requester's dialect — clamped to a version we
/// actually implement, so replies to bad-version frames stay parseable.
std::uint8_t response_version(const Frame& request) noexcept {
  if (request.version < kMinProtocolVersion ||
      request.version > kProtocolVersion) {
    return kProtocolVersion;
  }
  return request.version;
}

}  // namespace

Frame make_error_response(const Frame& request, ErrorKind kind,
                          const std::string& message) {
  Frame response;
  response.version = response_version(request);
  response.opcode = request.opcode | kResponseBit;
  response.request_id = request.request_id;
  WireWriter writer(response.body);
  writer.u8(wire_status(kind));
  writer.str(message);
  return response;
}

Frame make_ok_response(const Frame& request, std::string payload) {
  Frame response;
  response.version = response_version(request);
  response.opcode = request.opcode | kResponseBit;
  response.request_id = request.request_id;
  response.body.reserve(1 + payload.size());
  response.body.push_back(static_cast<char>(kStatusOk));
  response.body.append(payload);
  return response;
}

void WireWriter::u32(std::uint32_t v) { append_u32(*out_, v); }

void WireWriter::u64(std::uint64_t v) {
  append_u32(*out_, static_cast<std::uint32_t>(v & 0xffffffffu));
  append_u32(*out_, static_cast<std::uint32_t>(v >> 32));
}

void WireWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  append_u32(*out_, bits);
}

void WireWriter::str(std::string_view v) {
  if (v.size() > kMaxFramePayload) {
    throw Error(ErrorKind::kUsage, "string field exceeds the frame limit");
  }
  append_u32(*out_, static_cast<std::uint32_t>(v.size()));
  out_->append(v);
}

void WireReader::need(std::size_t bytes) const {
  if (cursor_ + bytes > data_.size()) {
    throw Error(ErrorKind::kCorrupt, "truncated message body");
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[cursor_++]);
}

std::uint32_t WireReader::u32() {
  need(4);
  const std::uint32_t v = load_u32(data_.data() + cursor_);
  cursor_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

float WireReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string WireReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string v(data_.substr(cursor_, len));
  cursor_ += len;
  return v;
}

namespace {

/// Reads exactly `n` bytes. Returns n on success, 0 on immediate EOF,
/// -1 on I/O error, and the partial count on EOF mid-read. A receive
/// timeout (SO_RCVTIMEO / O_NONBLOCK) sets `timed_out` and returns the
/// partial count instead.
std::ptrdiff_t read_exact(int fd, char* buf, std::size_t n,
                          bool& timed_out) {
  timed_out = false;
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) return static_cast<std::ptrdiff_t>(got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        timed_out = true;
        return static_cast<std::ptrdiff_t>(got);
      }
      return -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return static_cast<std::ptrdiff_t>(got);
}

}  // namespace

ReadStatus read_frame(int fd, Frame& out, ErrorKind& kind,
                      std::string& message) {
  char prefix[4];
  bool timed_out = false;
  const std::ptrdiff_t got = read_exact(fd, prefix, sizeof prefix, timed_out);
  if (timed_out && got == 0) return ReadStatus::kIdle;
  if (timed_out) {
    kind = ErrorKind::kIo;
    message = "read timed out mid-frame (got " + std::to_string(got) +
              " of 4 length-prefix bytes)";
    return ReadStatus::kError;
  }
  if (got == 0) return ReadStatus::kEof;
  if (got < 0) {
    kind = ErrorKind::kIo;
    message = std::string("read failed: ") + std::strerror(errno);
    return ReadStatus::kError;
  }
  if (got < static_cast<std::ptrdiff_t>(sizeof prefix)) {
    kind = ErrorKind::kCorrupt;
    message = "truncated frame length prefix";
    return ReadStatus::kError;
  }
  const std::uint32_t payload = load_u32(prefix);
  if (payload > kMaxFramePayload || payload < kFrameHeaderBytes) {
    kind = ErrorKind::kCorrupt;
    message = payload > kMaxFramePayload
                  ? "frame length " + std::to_string(payload) +
                        " exceeds the payload limit"
                  : "frame payload shorter than the frame header";
    return ReadStatus::kError;
  }
  std::string buf(payload, '\0');
  bool body_timed_out = false;
  const std::ptrdiff_t body =
      read_exact(fd, buf.data(), payload, body_timed_out);
  if (body_timed_out) {
    kind = ErrorKind::kIo;
    message = "read timed out mid-frame (got " + std::to_string(body) +
              " of " + std::to_string(payload) + " payload bytes)";
    return ReadStatus::kError;
  }
  if (body < 0) {
    kind = ErrorKind::kIo;
    message = std::string("read failed: ") + std::strerror(errno);
    return ReadStatus::kError;
  }
  if (body < static_cast<std::ptrdiff_t>(payload)) {
    kind = ErrorKind::kCorrupt;
    message = "truncated frame payload (stream ended mid-frame)";
    return ReadStatus::kError;
  }
  if (!parse_payload(buf.data(), payload, out, kind, message)) {
    return ReadStatus::kError;
  }
  return ReadStatus::kFrame;
}

void write_bytes(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t w = ::write(fd, data + sent, len - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw Error(ErrorKind::kIo, "write timed out (sent " +
                                        std::to_string(sent) + " of " +
                                        std::to_string(len) + " bytes)");
      }
      throw Error(ErrorKind::kIo,
                  std::string("write failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(w);
  }
}

void write_frame(int fd, const Frame& frame) {
  const std::string bytes = encode_frame(frame);
  write_bytes(fd, bytes.data(), bytes.size());
}

}  // namespace gcnt::serve
