#pragma once
// Wire protocol for the `gcnt serve` daemon: length-prefixed binary
// frames with a versioned header, carried over a Unix/TCP socket or a
// stdin/stdout pipe pair.
//
// Frame layout (all integers little-endian):
//
//   u32 payload_length            (bounded by kMaxFramePayload)
//   payload:
//     u8  version                 (kMinProtocolVersion..kProtocolVersion)
//     u8  opcode                  (Op; responses set kResponseBit)
//     u16 flags                   (v1: reserved, always 0)
//     u32 request_id              (echoed verbatim in the response)
//     [u32 deadline_ms]           (v2+, only when kFrameFlagDeadline set)
//     ... opcode-specific body
//
// Version history: v1 had a zero "reserved" u16 where flags now live, so
// every v1 frame is also a valid v2 frame with no flags set. v2 turned
// the field into a flag word and added the optional deadline extension
// (kFrameFlagDeadline on requests) plus the brownout marker
// (kFrameFlagBrownout on responses). Responses echo the request's
// version so old clients never see fields they cannot parse.
//
// Response bodies start with a u8 status: kStatusOk followed by the
// opcode-specific payload, or a non-zero ErrorKind mapping followed by a
// human-readable message string. Every malformed input — truncated
// length prefix, oversized length, short header, bad version, unknown
// opcode, truncated body, a deadline flag without its field — maps to a
// typed gcnt::Error; the codec never crashes on hostile bytes (pinned by
// tests/serve_protocol_test.cpp).

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"

namespace gcnt::serve {

constexpr std::uint8_t kProtocolVersion = 2;
/// Oldest version the server still accepts (v1 peers get v1 replies).
constexpr std::uint8_t kMinProtocolVersion = 1;
/// Responses echo the request opcode with this bit set.
constexpr std::uint8_t kResponseBit = 0x80;
/// Hard cap on a frame payload (header + body). A hostile length prefix
/// above this is rejected before any allocation.
constexpr std::uint32_t kMaxFramePayload = 64u << 20;
/// Bytes of payload before the optional extensions and the body.
constexpr std::size_t kFrameHeaderBytes = 8;

/// Frame flag (v2+ requests): a u32 deadline in milliseconds — measured
/// from server receipt — follows the fixed header. Requests still queued
/// or batched past it are shed with an ErrorKind::kDeadline response.
constexpr std::uint16_t kFrameFlagDeadline = 0x1;
/// Frame flag (v2+ responses): the reply was served from the session's
/// cached logits under brownout instead of a fresh (re-)propagation.
constexpr std::uint16_t kFrameFlagBrownout = 0x2;

/// Request opcodes. Keep values stable: they are the wire format.
enum class Op : std::uint8_t {
  kPing = 1,           ///< health check; empty body, empty reply
  kLoadSession = 2,    ///< load a netlist as a named resident session
  kInfer = 3,          ///< whole-graph logits for a session
  kAppendObserve = 4,  ///< insert an observation point (incremental)
  kAppendControl = 5,  ///< insert a control point (incremental)
  kStats = 6,          ///< stats-registry JSON snapshot
  kReloadModel = 7,    ///< atomically swap in a re-verified model artifact
  kCloseSession = 8,   ///< drop a resident session
  kShutdown = 9,       ///< stop accepting, drain, exit cleanly
  kMetrics = 10,       ///< Prometheus-style exposition + slow-request ring
};

/// Stable lowercase name of a request opcode ("ping", "infer", ...);
/// unknown opcodes return "unknown". Used for per-opcode stats names and
/// the access-log "op" field.
const char* op_name(std::uint8_t opcode) noexcept;

/// Response status byte: 0 = ok, otherwise a stable ErrorKind encoding.
enum : std::uint8_t { kStatusOk = 0 };

/// Wire encoding of an ErrorKind (1..7, never 0).
std::uint8_t wire_status(ErrorKind kind) noexcept;
/// Inverse of wire_status; unknown bytes decode as kInternal.
ErrorKind error_kind_for_status(std::uint8_t status) noexcept;

/// One decoded frame (request or response).
struct Frame {
  std::uint8_t version = kProtocolVersion;
  std::uint8_t opcode = 0;
  std::uint16_t flags = 0;
  std::uint32_t request_id = 0;
  /// Milliseconds the sender allows from receipt to reply; meaningful
  /// only when has_deadline().
  std::uint32_t deadline_ms = 0;
  std::string body;

  bool is_response() const noexcept { return (opcode & kResponseBit) != 0; }
  std::uint8_t request_opcode() const noexcept {
    return opcode & static_cast<std::uint8_t>(~kResponseBit);
  }
  bool has_deadline() const noexcept {
    return version >= 2 && (flags & kFrameFlagDeadline) != 0;
  }
  bool is_brownout() const noexcept {
    return version >= 2 && (flags & kFrameFlagBrownout) != 0;
  }
};

/// Serializes `frame` into length prefix + payload. Throws Error{kUsage}
/// when the body would exceed kMaxFramePayload.
std::string encode_frame(const Frame& frame);

enum class DecodeResult {
  kNeedMore,   ///< buffer holds a frame prefix; read more bytes
  kFrame,      ///< one frame decoded; `consumed` bytes were used
  kMalformed,  ///< unrecoverable framing error; `error` describes it
};

/// Decodes the first complete frame from `buffer`. On kFrame, `out` is
/// filled and `consumed` is the total bytes (prefix + payload) used; on
/// kMalformed, `kind`/`message` carry the typed error (oversized length
/// prefix, payload shorter than the frame header). A truncated prefix or
/// body is kNeedMore — the caller decides whether EOF makes it an error.
DecodeResult decode_frame(std::string_view buffer, Frame& out,
                          std::size_t& consumed, ErrorKind& kind,
                          std::string& message);

/// Builds the standard error-response frame for a failed request. The
/// response echoes the request's version (clamped to a version we
/// speak), so v1 peers receive v1 replies.
Frame make_error_response(const Frame& request, ErrorKind kind,
                          const std::string& message);
/// Builds an ok-response frame carrying `payload` after the status byte.
Frame make_ok_response(const Frame& request, std::string payload);

// --- body serialization helpers ------------------------------------------

/// Appends fixed-width little-endian fields to a body string.
class WireWriter {
 public:
  explicit WireWriter(std::string& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f32(float v);
  /// u32 length + raw bytes.
  void str(std::string_view v);

 private:
  std::string* out_;
};

/// Reads the fields back; any read past the end throws Error{kCorrupt}
/// ("truncated message body") — a malformed request body therefore turns
/// into a typed error response, never undefined behavior.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  float f32();
  std::string str();

  bool empty() const noexcept { return cursor_ >= data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - cursor_; }

 private:
  void need(std::size_t bytes) const;

  std::string_view data_;
  std::size_t cursor_ = 0;
};

// --- framed I/O over file descriptors -------------------------------------

enum class ReadStatus {
  kFrame,  ///< one frame read
  kEof,    ///< orderly end of stream at a frame boundary
  kIdle,   ///< receive timeout expired with zero bytes read (only on fds
           ///< with SO_RCVTIMEO / O_NONBLOCK); the stream is still valid
  kError,  ///< framing or I/O error; `kind`/`message` describe it
};

/// Blocking read of exactly one frame from `fd`. EOF mid-frame is a
/// kCorrupt error (truncated length prefix / truncated payload). On fds
/// with a receive timeout, expiry at a frame boundary is kIdle — the
/// caller decides whether that reaps the connection — while expiry
/// mid-frame is a kIo error (a stalled or byzantine peer).
ReadStatus read_frame(int fd, Frame& out, ErrorKind& kind,
                      std::string& message);

/// Blocking write of one encoded frame to `fd`. Throws Error{kIo} on
/// failure. Callers serialize concurrent writers per fd themselves.
void write_frame(int fd, const Frame& frame);

/// Blocking EINTR-safe write of raw bytes. Throws Error{kIo} on failure,
/// including an expired SO_SNDTIMEO. Building block of write_frame,
/// exposed for the serve chaos probes' torn-write injection.
void write_bytes(int fd, const char* data, std::size_t len);

}  // namespace gcnt::serve
