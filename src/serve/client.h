#pragma once
// Blocking client for the `gcnt serve` protocol, used by bench/loadgen,
// the integration tests, and scripting against a running daemon.
//
// One client drives one connection with one outstanding request at a
// time (the daemon batches across connections, not within one). Error
// responses are re-thrown as the gcnt::Error the server raised, so a
// caller sees the same taxonomy whether it links the engine directly or
// talks to a daemon.
//
// Resilience (opt-in via ClientOptions; the defaults are the blocking
// PR 6 behavior):
//   - connect/recv/send timeouts surface as typed `io` errors instead of
//     hanging forever on a dead or wedged daemon.
//   - a RetryPolicy makes call() retry TRANSPORT failures (connect
//     refused, torn reply, timeout) with exponential backoff and full
//     jitter — but only for idempotent opcodes (ping/infer/stats/
//     metrics) and never for errors the server actually answered with.
//   - deadline_ms stamps every request with a v2 wire deadline, so an
//     overloaded daemon sheds it instead of serving a dead request.

#include <cstdint>
#include <string>

#include "common/error.h"
#include "netlist/netlist.h"
#include "serve/protocol.h"
#include "tensor/matrix.h"

namespace gcnt::serve {

/// Retry policy for transport failures on idempotent calls.
/// max_attempts == 1 disables retries entirely.
struct RetryPolicy {
  std::size_t max_attempts = 1;       ///< total tries (first + retries)
  std::uint64_t base_backoff_ms = 10;  ///< first-retry backoff cap
  std::uint64_t max_backoff_ms = 500;  ///< per-retry backoff cap
  /// Total sleep budget across one call()'s retries; when the next
  /// backoff would blow it, the last transport error is rethrown.
  std::uint64_t budget_ms = 2000;
  std::uint64_t jitter_seed = 1;  ///< full-jitter PRNG seed (determinism)
};

struct ClientOptions {
  std::uint64_t connect_timeout_ms = 0;  ///< 0 = blocking connect
  std::uint64_t recv_timeout_ms = 0;     ///< SO_RCVTIMEO (0 = none)
  std::uint64_t send_timeout_ms = 0;     ///< SO_SNDTIMEO (0 = none)
  /// When nonzero, every request carries this wire deadline (v2 frames);
  /// the server sheds it with a typed `deadline` error once expired.
  std::uint32_t deadline_ms = 0;
  RetryPolicy retry;
};

class ServeClient {
 public:
  /// Connects to a Unix domain socket. Throws Error{kIo} on failure or
  /// when options.connect_timeout_ms expires first.
  static ServeClient connect_unix(const std::string& path,
                                  const ClientOptions& options = {});

  /// Connects to 127.0.0.1:<port>. Throws Error{kIo} on failure.
  static ServeClient connect_tcp(int port,
                                 const ClientOptions& options = {});

  /// Wraps existing descriptors (e.g. pipes to a --stdio child). The fds
  /// are closed on destruction only when `owns_fds`. Not reconnectable,
  /// so retries repair nothing once the transport dies.
  static ServeClient from_fds(int read_fd, int write_fd, bool owns_fds);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// Sends one request and blocks for its response. Returns the response
  /// payload after the status byte. An error response is re-thrown as
  /// Error{<its wire status>, <its message>}; transport failures throw
  /// Error{kIo} (after exhausting the retry policy for idempotent ops);
  /// a response that does not match the request throws Error{kCorrupt}.
  std::string call(Op op, const std::string& body = {});

  /// Daemon health, parsed from the v2 ping reply. A v1 daemon answers
  /// with an empty body; every field stays zero/false then.
  struct Health {
    std::uint32_t queue_depth = 0;
    std::uint32_t workers = 0;
    std::uint64_t model_generation = 0;
    bool brownout = false;
    std::uint32_t sessions = 0;
  };
  Health ping();

  struct SessionInfo {
    std::uint32_t nodes = 0;
    std::uint32_t edges = 0;
  };
  /// Loads a netlist resident in the daemon from a server-side file path
  /// (.bench, or .v for Verilog).
  SessionInfo load_session_file(const std::string& name,
                                const std::string& path, bool standardize);
  /// Loads from .bench text carried inline in the request.
  SessionInfo load_session_inline(const std::string& name,
                                  const std::string& bench_text,
                                  bool standardize);

  /// Whole-graph logits (node order, N x num_classes).
  Matrix infer(const std::string& session);

  struct ObserveResult {
    NodeId op = kInvalidNode;       ///< new observation-point node
    std::uint32_t node_count = 0;   ///< session size after the insert
  };
  ObserveResult append_observe(const std::string& session, NodeId target);

  struct ControlResult {
    NodeId control = kInvalidNode;
    NodeId gate = kInvalidNode;
    NodeId inverter = kInvalidNode;  ///< kInvalidNode for OR-type points
  };
  ControlResult append_control(const std::string& session, NodeId target,
                               bool drive_to_one);

  /// The daemon's stats registry as JSON.
  std::string stats_json();

  struct MetricsResult {
    std::string exposition;  ///< Prometheus-style text exposition
    std::string slow_json;   ///< slow-request ring ("" unless requested)
  };
  /// Scrapes the daemon's metrics (kMetrics). Counter deltas and
  /// windowed quantiles are relative to the previous scrape by anyone.
  MetricsResult metrics(bool include_slow = false);

  /// Hot-reloads the model (empty path = re-read the current artifact).
  /// Returns the new model generation.
  std::uint64_t reload(const std::string& path = {});

  void close_session(const std::string& name);

  /// Asks the daemon to shut down cleanly (acknowledged before it does).
  void shutdown();

  /// True when the last successful call() was answered from brownout
  /// (stale cached logits; kFrameFlagBrownout on the response).
  bool last_brownout() const noexcept { return last_brownout_; }

  /// Changes the per-request wire deadline for subsequent calls.
  void set_deadline_ms(std::uint32_t ms) noexcept {
    options_.deadline_ms = ms;
  }

  /// Raw write descriptor — lets tests inject malformed bytes.
  int write_fd() const noexcept { return write_fd_; }

 private:
  ServeClient(int read_fd, int write_fd, bool owns_fds)
      : read_fd_(read_fd), write_fd_(write_fd), owns_fds_(owns_fds) {}
  void close() noexcept;
  /// One request/response exchange, no retries. Sets *transport while
  /// the failure could be transport-level (send/recv); clears it once a
  /// matching response header decoded (server errors are not retryable).
  std::string call_once(Op op, const std::string& body, bool* transport);
  /// Re-establishes the stored endpoint (unix path / tcp port). Throws
  /// Error{kIo} when this client has no reconnectable endpoint.
  void reconnect();

  int read_fd_ = -1;
  int write_fd_ = -1;
  bool owns_fds_ = true;
  std::uint32_t next_request_id_ = 1;
  ClientOptions options_;
  bool last_brownout_ = false;
  // Reconnect endpoint: exactly one is set for socket clients.
  std::string unix_path_;
  int tcp_port_ = -1;
};

}  // namespace gcnt::serve
