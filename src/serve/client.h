#pragma once
// Blocking client for the `gcnt serve` protocol, used by bench/loadgen,
// the integration tests, and scripting against a running daemon.
//
// One client drives one connection with one outstanding request at a
// time (the daemon batches across connections, not within one). Error
// responses are re-thrown as the gcnt::Error the server raised, so a
// caller sees the same taxonomy whether it links the engine directly or
// talks to a daemon.

#include <cstdint>
#include <string>

#include "common/error.h"
#include "netlist/netlist.h"
#include "serve/protocol.h"
#include "tensor/matrix.h"

namespace gcnt::serve {

class ServeClient {
 public:
  /// Connects to a Unix domain socket. Throws Error{kIo} on failure.
  static ServeClient connect_unix(const std::string& path);

  /// Connects to 127.0.0.1:<port>. Throws Error{kIo} on failure.
  static ServeClient connect_tcp(int port);

  /// Wraps existing descriptors (e.g. pipes to a --stdio child). The fds
  /// are closed on destruction only when `owns_fds`.
  static ServeClient from_fds(int read_fd, int write_fd, bool owns_fds);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// Sends one request and blocks for its response. Returns the response
  /// payload after the status byte. An error response is re-thrown as
  /// Error{<its wire status>, <its message>}; transport failures throw
  /// Error{kIo}; a response that does not match the request throws
  /// Error{kCorrupt}.
  std::string call(Op op, const std::string& body = {});

  void ping();

  struct SessionInfo {
    std::uint32_t nodes = 0;
    std::uint32_t edges = 0;
  };
  /// Loads a netlist resident in the daemon from a server-side file path
  /// (.bench, or .v for Verilog).
  SessionInfo load_session_file(const std::string& name,
                                const std::string& path, bool standardize);
  /// Loads from .bench text carried inline in the request.
  SessionInfo load_session_inline(const std::string& name,
                                  const std::string& bench_text,
                                  bool standardize);

  /// Whole-graph logits (node order, N x num_classes).
  Matrix infer(const std::string& session);

  struct ObserveResult {
    NodeId op = kInvalidNode;       ///< new observation-point node
    std::uint32_t node_count = 0;   ///< session size after the insert
  };
  ObserveResult append_observe(const std::string& session, NodeId target);

  struct ControlResult {
    NodeId control = kInvalidNode;
    NodeId gate = kInvalidNode;
    NodeId inverter = kInvalidNode;  ///< kInvalidNode for OR-type points
  };
  ControlResult append_control(const std::string& session, NodeId target,
                               bool drive_to_one);

  /// The daemon's stats registry as JSON.
  std::string stats_json();

  struct MetricsResult {
    std::string exposition;  ///< Prometheus-style text exposition
    std::string slow_json;   ///< slow-request ring ("" unless requested)
  };
  /// Scrapes the daemon's metrics (kMetrics). Counter deltas and
  /// windowed quantiles are relative to the previous scrape by anyone.
  MetricsResult metrics(bool include_slow = false);

  /// Hot-reloads the model (empty path = re-read the current artifact).
  /// Returns the new model generation.
  std::uint64_t reload(const std::string& path = {});

  void close_session(const std::string& name);

  /// Asks the daemon to shut down cleanly (acknowledged before it does).
  void shutdown();

  /// Raw write descriptor — lets tests inject malformed bytes.
  int write_fd() const noexcept { return write_fd_; }

 private:
  ServeClient(int read_fd, int write_fd, bool owns_fds)
      : read_fd_(read_fd), write_fd_(write_fd), owns_fds_(owns_fds) {}
  void close() noexcept;

  int read_fd_ = -1;
  int write_fd_ = -1;
  bool owns_fds_ = true;
  std::uint32_t next_request_id_ = 1;
};

}  // namespace gcnt::serve
