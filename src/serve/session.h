#pragma once
// Resident state of the `gcnt serve` daemon: the hot-reloadable model
// registry and named netlist sessions.
//
// A session keeps a netlist, its SCOAP measures, its GraphTensors and the
// last-forward caches resident between requests, so an infer request on a
// warm session is a cache hit and an append-observe request costs one
// dirty-cone re-propagation (gcn/incremental.h) instead of a full reload
// + forward the single-shot CLI pays. Logits are bit-identical to
// `GcnModel::infer` on tensors freshly built from the same netlist —
// serving changes where the bits are computed, never which bits
// (pinned by tests/serve_server_test.cpp).
//
// The registry owns the current model behind a shared_ptr; reload()
// re-reads the artifact (checksum-verified by load_model_file) and swaps
// atomically under a mutex. Sessions compare generations per request and
// rebuild their inference caches on the first request after a swap, so
// in-flight requests finish on the model they started with.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.h"
#include "gcn/graph_tensors.h"
#include "gcn/incremental.h"
#include "gcn/model.h"
#include "gcn/workspace.h"
#include "netlist/netlist.h"
#include "scoap/scoap.h"

namespace gcnt::serve {

/// Process-wide model state with atomic hot reload.
class ModelRegistry {
 public:
  struct Snapshot {
    std::shared_ptr<const GcnModel> model;
    std::uint64_t generation = 0;
  };

  /// Loads the initial model (generation 1). Throws like load_model_file.
  /// `precision` kInt8 calibrates the int8 inference tier at load time
  /// (resolve the serve --precision flag / GCNT_PRECISION through
  /// resolve_precision first); kFp32 keeps whatever tier the artifact
  /// itself encodes (v2 quantized artifacts stay int8, v1 stays fp32).
  /// The same rule re-applies on every reload().
  explicit ModelRegistry(std::string path,
                         Precision precision = Precision::kFp32);

  Snapshot snapshot() const;

  /// Re-reads the artifact at `path` (or the construction path when
  /// empty), verifies it, and swaps it in. The old model stays alive
  /// until the last session snapshot drops it. Returns the new
  /// generation; on failure the current model is untouched.
  std::uint64_t reload(const std::string& path = {});

 private:
  mutable std::mutex mutex_;
  std::string path_;
  Precision precision_ = Precision::kFp32;
  std::shared_ptr<const GcnModel> model_;
  std::uint64_t generation_ = 1;
};

/// One resident netlist. All request handling happens under mutex();
/// distinct sessions serve concurrently (per-session engines and
/// workspaces, shared kernel pool underneath).
class ServeSession {
 public:
  ServeSession(std::string name, Netlist netlist, bool standardize);

  const std::string& name() const noexcept { return name_; }
  std::mutex& mutex() noexcept { return mutex_; }
  std::size_t node_count() const noexcept { return netlist_.size(); }
  std::size_t edge_count() const noexcept { return netlist_.edge_count(); }

  /// Whole-graph logits (node order, N x num_classes) for the model in
  /// `snapshot`. Warm sessions with no pending edits return the cached
  /// matrix; pending observe/control edits re-propagate only the dirty
  /// cone; a model-generation change rebuilds the caches. `ws` is the
  /// calling worker's reusable scratch (used for full forwards).
  const Matrix& logits(const ModelRegistry::Snapshot& snapshot,
                       ForwardWorkspace& ws);

  /// Inserts an observation point on `target` and applies the
  /// incremental tensor update. Throws Error{kUsage} for an invalid
  /// target. Returns the new OP node id.
  NodeId append_observe(NodeId target);

  /// Inserts a control point on `target`. The fanout rewiring makes the
  /// delta non-append-only, so the next logits() diffs a rebuilt tensor
  /// set against the cached one (same scheme as run_gcn_cpi).
  Netlist::ControlPoint append_control(NodeId target, bool drive_to_one);

  /// Brownout answer source: the last logits this session computed for
  /// the model generation in `snapshot`, or nullptr when none exist.
  /// The returned matrix may be STALE — pending edits have not been
  /// propagated into it — which is exactly the degraded-but-fast tier
  /// brownout trades for skipping the forward. Never runs a forward.
  const Matrix* cached_logits(
      const ModelRegistry::Snapshot& snapshot) const noexcept;

 private:
  void ensure_model(const ModelRegistry::Snapshot& snapshot);

  std::string name_;
  std::mutex mutex_;
  Netlist netlist_;
  bool standardize_ = false;
  ScoapMeasures scoap_;
  std::vector<std::uint32_t> levels_;
  GraphTensors tensors_;
  DirtyConeTracker tracker_;
  bool structural_rebuild_ = false;  ///< control-point fanout rewiring
  bool csr_stale_ = false;           ///< appended COO tuples not yet in CSR

  std::shared_ptr<const GcnModel> model_;  ///< engine's model stays alive
  std::uint64_t model_generation_ = 0;
  /// Pure-infer cache: sessions that were never edited skip the
  /// per-layer embedding cache entirely — the full forward runs through
  /// the calling worker's ForwardWorkspace and only the logits persist.
  Matrix plain_logits_;
  bool have_plain_ = false;
  /// Generation plain_logits_ was computed under. have_plain_ means
  /// "fresh"; the matrix itself stays valid for brownout until the next
  /// full forward or a model reload invalidates this generation tag.
  std::uint64_t plain_generation_ = 0;

  /// Cached-embedding engine; constructed lazily on the first edited
  /// forward, dropped on model reload.
  std::unique_ptr<IncrementalGcnEngine> engine_;
  bool have_cache_ = false;
};

}  // namespace gcnt::serve
