#pragma once
// The `gcnt serve` daemon: loads model artifacts once, keeps netlists
// resident as named sessions, and serves framed requests over a Unix or
// TCP socket (or a stdin/stdout pipe pair for tests and scripting).
//
// Architecture:
//
//   acceptor thread ── accept() ──> one reader thread per connection
//        reader: read_frame -> admission control -> bounded queue
//   worker pool (N threads, each with a reusable ForwardWorkspace)
//        worker: pop -> batch same-session infers -> dispatch -> reply
//
// Admission control: the request queue is bounded; when it is full the
// reader replies immediately with a typed `resource` error ("server
// overloaded") instead of queueing — callers see the same ErrorKind
// taxonomy (and therefore the same exit codes) as the rest of the
// system. Batching: a worker that pops an infer request also claims
// every queued infer for the same session (up to batch_limit) and
// answers them all from one forward pass / cache hit.
//
// Shutdown is always clean: a kShutdown request, request_stop() (the
// CLI's signal handler), or EOF in stdio mode stop the acceptor, drain
// the queue, answer everything in flight, and join all threads.
//
// Resilience (all opt-in via ServeOptions; defaults keep the PR 6/7
// behavior):
//   - deadlines: v2 requests may carry a deadline; requests that expire
//     in the queue or inside a claimed batch are shed with a typed
//     `deadline` error (serve.shed_deadline / serve.shed_batch).
//   - connection hygiene: per-connection receive timeouts reap idle
//     peers and kill mid-frame stalls; a connection cap rejects excess
//     peers with a typed `resource` error before a reader is spawned.
//   - watchdog: a monitor thread flags requests stuck past a budget
//     (serve.watchdog_stuck), and can abort the stuck connection or
//     quarantine the session (further requests get typed `resource`
//     errors) instead of just logging.
//   - brownout: past a queue-depth threshold, infer requests are
//     answered from the session's cached (possibly stale) logits
//     instead of running (re-)propagation — flagged on the wire
//     (kFrameFlagBrownout) and in the access log.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "gcn/workspace.h"
#include "serve/access_log.h"
#include "serve/protocol.h"
#include "serve/session.h"

namespace gcnt::serve {

/// What the watchdog does to a request stuck past its budget (beyond
/// logging rid/op/session and bumping serve.watchdog_stuck, which it
/// always does).
enum class WatchdogAction {
  kLog,         ///< log only
  kAbort,       ///< close the stuck request's connection
  kQuarantine,  ///< refuse further requests on the stuck session
};

struct ServeOptions {
  std::string model_path;  ///< required: initial model artifact
  /// Inference precision applied at model load and every hot reload
  /// (resolve --precision / GCNT_PRECISION via resolve_precision()).
  Precision precision = Precision::kFp32;

  // Exactly one transport:
  std::string unix_socket;  ///< bind a Unix domain socket at this path
  int tcp_port = -1;        ///< bind 127.0.0.1:<port> (0 = ephemeral)
  bool stdio = false;       ///< single connection on fds 0/1

  std::size_t workers = 2;       ///< request worker threads
  std::size_t queue_limit = 64;  ///< admission bound on queued requests
  std::size_t batch_limit = 16;  ///< max same-session infers per batch
  std::size_t max_sessions = 64;

  /// JSON-lines access log path ("" = disabled; see serve/access_log.h).
  std::string access_log;
  /// Slow-request ring capacity (N worst by service time, kMetrics dump).
  std::size_t slow_ring = 16;

  // --- resilience (0 = feature disabled, the pre-resilience behavior) ---

  /// Mid-frame read stall budget per connection, ms. A peer that goes
  /// silent inside a frame for this long is dropped (slowloris guard).
  std::uint64_t read_timeout_ms = 0;
  /// Reap connections idle (no frame started) this long, ms. When
  /// read_timeout_ms is 0 the idle budget is one receive-timeout tick.
  std::uint64_t idle_timeout_ms = 0;
  /// Concurrent connection cap; excess peers get one typed `resource`
  /// error frame and are closed before a reader thread is spawned.
  std::size_t max_connections = 0;
  /// Watchdog: flag a request its worker has held longer than this, ms.
  std::uint64_t watchdog_budget_ms = 0;
  WatchdogAction watchdog_action = WatchdogAction::kLog;
  /// Brownout: serve infer from cached logits when the queue depth at
  /// dequeue is at or above this threshold.
  std::size_t brownout_queue = 0;
};

class ServeServer {
 public:
  explicit ServeServer(ServeOptions options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds the configured transport and starts the acceptor + workers.
  /// Throws Error{kUsage} on a bad configuration, Error{kIo} when the
  /// socket cannot be bound. In stdio mode, starts workers only; call
  /// run_stdio() to pump the connection.
  void start();

  /// Blocks until shutdown completes (kShutdown request, request_stop(),
  /// or stdio EOF), then joins every thread.
  void wait();

  /// Requests shutdown from another thread or a signal handler (only
  /// sets an atomic flag; the acceptor notices within its poll tick).
  void request_stop() noexcept { stop_requested_.store(true); }

  /// Pumps the stdio connection on the calling thread until EOF or
  /// shutdown (stdio mode only).
  void run_stdio();

  /// Bound TCP port (after start(); useful with tcp_port = 0).
  int bound_tcp_port() const noexcept { return bound_tcp_port_; }

  std::size_t session_count() const;

 private:
  struct Connection {
    int read_fd = -1;
    int write_fd = -1;
    bool owns_fds = true;
    std::mutex write_mutex;
    std::atomic<bool> closed{false};

    void send(const Frame& frame);
    void close() noexcept;
    ~Connection() { close(); }
  };

  /// Per-request context, threaded from the connection reader through
  /// the bounded queue into the worker (and, when sampled, into the
  /// request's trace span tree via the "rid" span arg).
  struct Request {
    std::shared_ptr<Connection> conn;
    Frame frame;
    std::string session;  ///< pre-parsed session name ("" when none)
    std::uint64_t rid = 0;         ///< server-wide request sequence
    std::uint64_t enqueue_ns = 0;  ///< trace-epoch admission timestamp
    std::size_t bytes_in = 0;      ///< request frame bytes on the wire
    bool sampled = false;  ///< records serve.* spans for this request
  };

  /// What one worker is doing right now, published for the watchdog.
  /// The worker writes busy/rid/start_ns with release stores; the
  /// watchdog reads them with acquires and takes name_mutex only for
  /// the session string and connection handle.
  struct InFlight {
    std::atomic<bool> busy{false};
    std::atomic<std::uint64_t> rid{0};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint8_t> opcode{0};
    std::mutex name_mutex;
    std::string session;
    std::weak_ptr<Connection> conn;
    std::uint64_t reported_rid = ~0ull;  ///< watchdog-thread-only state
  };

  void acceptor_loop();
  void connection_loop(std::shared_ptr<Connection> conn);
  void worker_loop(std::size_t index);
  void watchdog_loop();
  /// Reads frames from `conn` until EOF/shutdown; enqueues requests.
  void pump_connection(const std::shared_ptr<Connection>& conn);
  /// Admission control; replies with a typed error when not admitted.
  void enqueue(Request request);
  void dispatch(const Request& request, ForwardWorkspace& ws,
                InFlight* slot);
  /// Answers `request` plus every batched same-session infer. Fills
  /// `record`'s phase timings, batch size, bytes_out, and outcome (it
  /// replies errors itself and never throws for handler failures).
  void handle_infer(const Request& request, ForwardWorkspace& ws,
                    AccessRecord& record);

  /// v2 ping body: queue depth, workers, model generation, brownout
  /// flag, session count. v1 requesters get an empty body (the PR 6
  /// contract), so old clients never see fields they cannot parse.
  std::string health_payload(std::uint8_t version);
  std::string handle_load_session(const Frame& frame);
  std::string handle_append_observe(const Frame& frame);
  std::string handle_append_control(const Frame& frame);
  std::string handle_stats();
  std::string handle_metrics(const Frame& frame);
  std::string handle_reload(const Frame& frame);
  std::string handle_close_session(const Frame& frame);

  /// Looks up a resident session. Returns nullptr when unknown; throws
  /// Error{kResource} when the watchdog has quarantined it.
  std::shared_ptr<ServeSession> find_session(const std::string& name);
  void begin_shutdown();
  /// Emits one access-log line and offers the record to the slow ring.
  void log_access(AccessRecord record);

 public:
  /// Access-log lines emitted so far (0 when the log is disabled).
  std::uint64_t access_log_lines() const noexcept;

 private:

  ServeOptions options_;
  std::unique_ptr<ModelRegistry> models_;

  mutable std::mutex sessions_mutex_;
  std::map<std::string, std::shared_ptr<ServeSession>> sessions_;
  /// Sessions the watchdog took out of service (under sessions_mutex_).
  std::set<std::string> quarantined_;

  std::mutex queue_mutex_;
  std::condition_variable queue_ready_;
  std::deque<Request> queue_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> shutting_down_{false};

  std::atomic<std::uint64_t> next_rid_{0};
  std::unique_ptr<AccessLog> access_log_;
  std::unique_ptr<SlowRequestRing> slow_ring_;

  // kMetrics scrape state: the previous snapshot, kept so the exposition
  // reports counter deltas and windowed quantiles since the last scrape.
  std::mutex scrape_mutex_;
  StatsSnapshot last_scrape_;
  bool have_scrape_ = false;

  int listen_fd_ = -1;
  int bound_tcp_port_ = -1;
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<InFlight>> in_flight_;  ///< one per worker
  std::thread watchdog_;
  std::atomic<std::size_t> live_connections_{0};
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;
};

}  // namespace gcnt::serve
