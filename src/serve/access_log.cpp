#include "serve/access_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>

#include "common/json.h"

namespace gcnt::serve {

std::string format_access_record(const AccessRecord& record) {
  std::ostringstream out;
  out << "{\"ts_us\":" << record.ts_us << ",\"rid\":" << record.rid
      << ",\"request_id\":" << record.request_id << ",\"session\":\"";
  json::write_escaped(out, record.session);
  out << "\",\"op\":\"";
  json::write_escaped(out, record.op);
  out << "\",\"queue_wait_us\":" << record.queue_wait_us
      << ",\"service_us\":" << record.service_us;
  if (record.decode_us != 0 || record.forward_us != 0 ||
      record.encode_us != 0) {
    out << ",\"decode_us\":" << record.decode_us
        << ",\"forward_us\":" << record.forward_us
        << ",\"encode_us\":" << record.encode_us;
  }
  out << ",\"batch\":" << record.batch << ",\"bytes_in\":" << record.bytes_in
      << ",\"bytes_out\":" << record.bytes_out << ",\"outcome\":\"";
  json::write_escaped(out, record.outcome);
  out << "\"";
  if (!record.error.empty()) {
    out << ",\"error\":\"";
    json::write_escaped(out, record.error);
    out << "\"";
  }
  if (record.brownout) out << ",\"brownout\":true";
  out << "}";
  return out.str();
}

AccessLog::AccessLog(const std::string& path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
}

AccessLog::~AccessLog() {
  if (fd_ >= 0) ::close(fd_);
}

void AccessLog::write(const AccessRecord& record) {
  if (fd_ < 0) return;
  std::string line = format_access_record(record);
  line.push_back('\n');
  // One write(2) on an O_APPEND fd: POSIX appends atomically, so lines
  // from concurrent workers never interleave. A short write (disk full)
  // can truncate a line but never reorder one; the daemon keeps serving.
  std::lock_guard<std::mutex> lock(mutex_);
  const ssize_t wrote = ::write(fd_, line.data(), line.size());
  if (wrote == static_cast<ssize_t>(line.size())) ++lines_;
}

std::uint64_t AccessLog::lines_written() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

SlowRequestRing::SlowRequestRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  entries_.reserve(capacity_);
}

void SlowRequestRing::offer(const AccessRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= capacity_ &&
      record.service_us <= entries_.back().service_us) {
    return;
  }
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), record,
      [](const AccessRecord& a, const AccessRecord& b) {
        return a.service_us > b.service_us;
      });
  entries_.insert(pos, record);
  if (entries_.size() > capacity_) entries_.pop_back();
}

std::string SlowRequestRing::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "[";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i != 0) out += ",";
    out += format_access_record(entries_[i]);
  }
  out += "]";
  return out;
}

}  // namespace gcnt::serve
