#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "common/stats.h"
#include "common/trace.h"
#include "netlist/bench_io.h"
#include "netlist/verilog_io.h"

namespace gcnt::serve {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool is_verilog_path(const std::string& path) {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".v") == 0;
}

Netlist read_netlist_source(std::uint8_t source, const std::string& data) {
  if (source == 0) {  // server-side file path
    std::ifstream in(data);
    if (!in) throw Error(ErrorKind::kIo, "cannot open " + data);
    return is_verilog_path(data) ? read_verilog(in, data)
                                 : read_bench(in, data);
  }
  if (source == 1) {  // inline .bench text
    std::istringstream in(data);
    return read_bench(in, "<inline>");
  }
  throw Error(ErrorKind::kUsage,
              "unknown netlist source kind " + std::to_string(source));
}

/// Ops whose body begins with a session-name string (pre-parsed by the
/// reader so the worker can batch without decoding bodies twice).
bool has_session_name(std::uint8_t opcode) noexcept {
  switch (static_cast<Op>(opcode)) {
    case Op::kLoadSession:
    case Op::kInfer:
    case Op::kAppendObserve:
    case Op::kAppendControl:
    case Op::kCloseSession:
      return true;
    default:
      return false;
  }
}

bool known_opcode(std::uint8_t opcode) noexcept {
  switch (static_cast<Op>(opcode)) {
    case Op::kPing:
    case Op::kLoadSession:
    case Op::kInfer:
    case Op::kAppendObserve:
    case Op::kAppendControl:
    case Op::kStats:
    case Op::kReloadModel:
    case Op::kCloseSession:
    case Op::kShutdown:
      return true;
  }
  return false;
}

}  // namespace

void ServeServer::Connection::send(const Frame& frame) {
  std::lock_guard<std::mutex> lock(write_mutex);
  if (closed.load()) throw Error(ErrorKind::kIo, "connection closed");
  write_frame(write_fd, frame);
}

void ServeServer::Connection::close() noexcept {
  if (closed.exchange(true)) return;
  // shutdown() wakes a reader blocked in read(); harmless ENOTSOCK on
  // pipe fds (stdio mode, where the fds are borrowed anyway).
  ::shutdown(read_fd, SHUT_RDWR);
  if (owns_fds) {
    ::close(read_fd);
    if (write_fd != read_fd) ::close(write_fd);
  }
}

ServeServer::ServeServer(ServeOptions options)
    : options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.queue_limit == 0) options_.queue_limit = 1;
  if (options_.batch_limit == 0) options_.batch_limit = 1;
}

ServeServer::~ServeServer() {
  begin_shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  queue_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) conn->close();
  }
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!options_.unix_socket.empty()) ::unlink(options_.unix_socket.c_str());
}

void ServeServer::start() {
  const int transports = (options_.unix_socket.empty() ? 0 : 1) +
                         (options_.tcp_port >= 0 ? 1 : 0) +
                         (options_.stdio ? 1 : 0);
  if (transports != 1) {
    throw Error(ErrorKind::kUsage,
                "serve needs exactly one of --socket, --port, --stdio");
  }
  if (options_.model_path.empty()) {
    throw Error(ErrorKind::kUsage, "serve needs --model <artifact>");
  }
  // A peer that disconnects mid-reply must surface as Error{kIo} from
  // write(), not kill the daemon with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  models_ = std::make_unique<ModelRegistry>(options_.model_path);

  if (!options_.unix_socket.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw Error(ErrorKind::kIo, "socket() failed");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      throw Error(ErrorKind::kUsage, "unix socket path too long");
    }
    std::strncpy(addr.sun_path, options_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      throw Error(ErrorKind::kIo, "cannot bind unix socket " +
                                      options_.unix_socket + ": " +
                                      std::strerror(errno));
    }
  } else if (options_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw Error(ErrorKind::kIo, "socket() failed");
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      throw Error(ErrorKind::kIo,
                  "cannot bind 127.0.0.1:" +
                      std::to_string(options_.tcp_port) + ": " +
                      std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_tcp_port_ = ntohs(bound.sin_port);
  }

  StatsRegistry::instance().gauge("serve.workers").set(
      static_cast<std::int64_t>(options_.workers));
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  if (listen_fd_ >= 0) {
    acceptor_ = std::thread([this] { acceptor_loop(); });
  }
  log_info("serve: ready (",
           options_.stdio
               ? std::string("stdio")
               : (!options_.unix_socket.empty()
                      ? "unix " + options_.unix_socket
                      : "tcp 127.0.0.1:" + std::to_string(bound_tcp_port_)),
           ", ", options_.workers, " workers, queue ", options_.queue_limit,
           ")");
}

void ServeServer::run_stdio() {
  auto conn = std::make_shared<Connection>();
  conn->read_fd = 0;
  conn->write_fd = 1;
  conn->owns_fds = false;  // stdin/stdout are borrowed from the process
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(conn);
  }
  pump_connection(conn);
  begin_shutdown();
}

void ServeServer::wait() {
  if (acceptor_.joinable()) {
    acceptor_.join();
  } else {
    // stdio mode: run_stdio() already pumped to EOF / shutdown; spin
    // lightly for a signal-driven stop otherwise.
    while (!shutting_down_.load()) {
      if (stop_requested_.load()) begin_shutdown();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  queue_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) conn->close();
  }
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  readers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_socket.empty()) ::unlink(options_.unix_socket.c_str());
  log_info("serve: shutdown complete");
}

std::size_t ServeServer::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

void ServeServer::begin_shutdown() {
  stop_requested_.store(true);
  if (shutting_down_.exchange(true)) return;
  queue_ready_.notify_all();
}

void ServeServer::acceptor_loop() {
  trace_set_thread_name("serve-accept");
  while (!stop_requested_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;  // timeout, EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->read_fd = fd;
    conn->write_fd = fd;
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(conn);
    readers_.emplace_back(
        [this, conn = std::move(conn)] { connection_loop(conn); });
  }
  begin_shutdown();
}

void ServeServer::connection_loop(std::shared_ptr<Connection> conn) {
  trace_set_thread_name("serve-reader");
  pump_connection(conn);
  conn->close();
}

void ServeServer::pump_connection(const std::shared_ptr<Connection>& conn) {
  static Counter& malformed =
      StatsRegistry::instance().counter("serve.malformed_frames");
  while (!shutting_down_.load()) {
    Frame frame;
    ErrorKind kind = ErrorKind::kInternal;
    std::string message;
    const ReadStatus status =
        read_frame(conn->read_fd, frame, kind, message);
    if (status == ReadStatus::kEof) return;
    if (status == ReadStatus::kError) {
      // Framing is broken: the stream cannot be resynced. Report the
      // typed error best-effort and drop the connection; resident
      // sessions are server-scoped and unaffected.
      malformed.add();
      if (kind != ErrorKind::kIo) {
        try {
          Frame bad;  // no request context survives a framing error
          conn->send(make_error_response(bad, kind, message));
        } catch (const Error&) {
        }
      }
      return;
    }
    if (frame.version != kProtocolVersion) {
      try {
        conn->send(make_error_response(
            frame, ErrorKind::kVersion,
            "protocol version " + std::to_string(frame.version) +
                " unsupported (want " + std::to_string(kProtocolVersion) +
                ")"));
      } catch (const Error&) {
        return;
      }
      continue;
    }
    if (!known_opcode(frame.opcode)) {
      try {
        conn->send(make_error_response(
            frame, ErrorKind::kUsage,
            "unknown opcode " + std::to_string(frame.opcode)));
      } catch (const Error&) {
        return;
      }
      continue;
    }
    if (static_cast<Op>(frame.opcode) == Op::kShutdown) {
      // Handled inline so shutdown is never rejected by a full queue.
      try {
        conn->send(make_ok_response(frame, {}));
      } catch (const Error&) {
      }
      begin_shutdown();
      return;
    }
    Request request;
    request.conn = conn;
    if (has_session_name(frame.opcode)) {
      try {
        WireReader reader(frame.body);
        request.session = reader.str();
      } catch (const Error& e) {
        try {
          conn->send(make_error_response(frame, e.kind(), e.what()));
        } catch (const Error&) {
          return;
        }
        continue;
      }
    }
    request.frame = std::move(frame);
    enqueue(std::move(request));
  }
}

void ServeServer::enqueue(Request request) {
  static Counter& rejected =
      StatsRegistry::instance().counter("serve.overload_rejected");
  static Gauge& depth = StatsRegistry::instance().gauge("serve.queue_depth");
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!shutting_down_.load() && queue_.size() < options_.queue_limit) {
      queue_.push_back(std::move(request));
      depth.set(static_cast<std::int64_t>(queue_.size()));
      queue_ready_.notify_one();
      return;
    }
  }
  // Admission control: reply immediately with the typed `resource`
  // error instead of queueing (or accepting work during shutdown).
  rejected.add();
  const std::string reason =
      shutting_down_.load()
          ? "server is shutting down"
          : "server overloaded: request queue full (" +
                std::to_string(options_.queue_limit) + ")";
  try {
    request.conn->send(
        make_error_response(request.frame, ErrorKind::kResource, reason));
  } catch (const Error&) {
  }
}

void ServeServer::worker_loop(std::size_t index) {
  trace_set_thread_name("serve-worker");
  (void)index;
  ForwardWorkspace ws;  // reused across every request this worker runs
  static Gauge& depth = StatsRegistry::instance().gauge("serve.queue_depth");
  for (;;) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_ready_.wait(lock, [this] {
        return !queue_.empty() || shutting_down_.load();
      });
      if (queue_.empty()) {
        if (shutting_down_.load()) return;  // drained
        continue;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    dispatch(request, ws);
  }
}

void ServeServer::dispatch(const Request& request, ForwardWorkspace& ws) {
  static Counter& requests =
      StatsRegistry::instance().counter("serve.requests");
  static Counter& errors = StatsRegistry::instance().counter("serve.errors");
  static Histogram& latency =
      StatsRegistry::instance().histogram("serve.request_ns");
  requests.add();
  const std::uint64_t began = now_ns();
  try {
    TraceSpan span("serve.request");
    span.arg("op", static_cast<double>(request.frame.opcode));
    switch (static_cast<Op>(request.frame.opcode)) {
      case Op::kPing:
        request.conn->send(make_ok_response(request.frame, {}));
        break;
      case Op::kInfer:
        handle_infer(request, ws);
        break;
      case Op::kLoadSession:
        request.conn->send(make_ok_response(
            request.frame, handle_load_session(request.frame)));
        break;
      case Op::kAppendObserve:
        request.conn->send(make_ok_response(
            request.frame, handle_append_observe(request.frame)));
        break;
      case Op::kAppendControl:
        request.conn->send(make_ok_response(
            request.frame, handle_append_control(request.frame)));
        break;
      case Op::kStats:
        request.conn->send(
            make_ok_response(request.frame, handle_stats()));
        break;
      case Op::kReloadModel:
        request.conn->send(
            make_ok_response(request.frame, handle_reload(request.frame)));
        break;
      case Op::kCloseSession:
        request.conn->send(make_ok_response(
            request.frame, handle_close_session(request.frame)));
        break;
      case Op::kShutdown:
        break;  // answered by the reader
    }
  } catch (const Error& e) {
    errors.add();
    try {
      request.conn->send(
          make_error_response(request.frame, e.kind(), e.what()));
    } catch (const Error&) {
    }
  } catch (const std::bad_alloc&) {
    errors.add();
    try {
      request.conn->send(make_error_response(
          request.frame, ErrorKind::kResource, "out of memory"));
    } catch (const Error&) {
    }
  } catch (const std::exception& e) {
    errors.add();
    try {
      request.conn->send(
          make_error_response(request.frame, ErrorKind::kInternal, e.what()));
    } catch (const Error&) {
    }
  }
  latency.record(now_ns() - began);
}

void ServeServer::handle_infer(const Request& request, ForwardWorkspace& ws) {
  static Counter& batched =
      StatsRegistry::instance().counter("serve.batched_infers");
  // Claim every queued infer for the same session: one forward pass (or
  // cache hit) answers the whole batch.
  std::vector<Request> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() + 1 < options_.batch_limit;) {
      if (static_cast<Op>(it->frame.opcode) == Op::kInfer &&
          it->session == request.session) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  batched.add(batch.size());

  std::string payload;
  ErrorKind error_kind = ErrorKind::kInternal;
  std::string error_message;
  bool ok = true;
  try {
    const std::shared_ptr<ServeSession> session =
        find_session(request.session);
    if (!session) {
      throw Error(ErrorKind::kUsage,
                  "unknown session '" + request.session + "'");
    }
    const ModelRegistry::Snapshot snapshot = models_->snapshot();
    std::lock_guard<std::mutex> lock(session->mutex());
    const Matrix& logits = session->logits(snapshot, ws);
    WireWriter writer(payload);
    writer.u32(static_cast<std::uint32_t>(logits.rows()));
    writer.u32(static_cast<std::uint32_t>(logits.cols()));
    payload.reserve(payload.size() +
                    logits.rows() * logits.cols() * sizeof(float));
    for (std::size_t r = 0; r < logits.rows(); ++r) {
      const float* row = logits.row(r);
      for (std::size_t c = 0; c < logits.cols(); ++c) writer.f32(row[c]);
    }
  } catch (const Error& e) {
    ok = false;
    error_kind = e.kind();
    error_message = e.what();
  } catch (const std::exception& e) {
    ok = false;
    error_kind = ErrorKind::kInternal;
    error_message = e.what();
  }

  const auto reply = [&](const Request& r) {
    try {
      r.conn->send(ok ? make_ok_response(r.frame, payload)
                      : make_error_response(r.frame, error_kind,
                                            error_message));
    } catch (const Error&) {
    }
  };
  reply(request);
  for (const Request& r : batch) reply(r);
  if (!ok) {
    throw Error(error_kind, error_message);  // counted by dispatch()
  }
}

std::string ServeServer::handle_load_session(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string name = reader.str();
  const std::uint8_t source = reader.u8();
  const std::string data = reader.str();
  const bool standardize = reader.u8() != 0;
  if (name.empty()) {
    throw Error(ErrorKind::kUsage, "session name must not be empty");
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (sessions_.count(name) != 0) {
      throw Error(ErrorKind::kUsage,
                  "session '" + name + "' already exists");
    }
    if (sessions_.size() >= options_.max_sessions) {
      throw Error(ErrorKind::kResource,
                  "session limit reached (" +
                      std::to_string(options_.max_sessions) + ")");
    }
  }
  // Build outside the lock (SCOAP + tensors dominate); publish after.
  auto session = std::make_shared<ServeSession>(
      name, read_netlist_source(source, data), standardize);
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  if (sessions_.count(name) != 0) {
    throw Error(ErrorKind::kUsage, "session '" + name + "' already exists");
  }
  if (sessions_.size() >= options_.max_sessions) {
    throw Error(ErrorKind::kResource,
                "session limit reached (" +
                    std::to_string(options_.max_sessions) + ")");
  }
  std::string payload;
  WireWriter writer(payload);
  writer.u32(static_cast<std::uint32_t>(session->node_count()));
  writer.u32(static_cast<std::uint32_t>(session->edge_count()));
  sessions_.emplace(name, std::move(session));
  StatsRegistry::instance().gauge("serve.sessions").set(
      static_cast<std::int64_t>(sessions_.size()));
  return payload;
}

std::string ServeServer::handle_append_observe(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string name = reader.str();
  const NodeId target = reader.u32();
  const std::shared_ptr<ServeSession> session = find_session(name);
  if (!session) {
    throw Error(ErrorKind::kUsage, "unknown session '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(session->mutex());
  const NodeId op = session->append_observe(target);
  std::string payload;
  WireWriter writer(payload);
  writer.u32(op);
  writer.u32(static_cast<std::uint32_t>(session->node_count()));
  return payload;
}

std::string ServeServer::handle_append_control(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string name = reader.str();
  const NodeId target = reader.u32();
  const bool drive_to_one = reader.u8() != 0;
  const std::shared_ptr<ServeSession> session = find_session(name);
  if (!session) {
    throw Error(ErrorKind::kUsage, "unknown session '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(session->mutex());
  const Netlist::ControlPoint cp =
      session->append_control(target, drive_to_one);
  std::string payload;
  WireWriter writer(payload);
  writer.u32(cp.control);
  writer.u32(cp.gate);
  writer.u32(cp.inverter);
  return payload;
}

std::string ServeServer::handle_stats() {
  std::ostringstream json;
  StatsRegistry::instance().write_json(json);
  std::string payload;
  WireWriter writer(payload);
  writer.str(json.str());
  return payload;
}

std::string ServeServer::handle_reload(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string path = reader.str();
  const std::uint64_t generation = models_->reload(path);
  std::string payload;
  WireWriter writer(payload);
  writer.u64(generation);
  return payload;
}

std::string ServeServer::handle_close_session(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string name = reader.str();
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  if (sessions_.erase(name) == 0) {
    throw Error(ErrorKind::kUsage, "unknown session '" + name + "'");
  }
  StatsRegistry::instance().gauge("serve.sessions").set(
      static_cast<std::int64_t>(sessions_.size()));
  return {};
}

std::shared_ptr<ServeSession> ServeServer::find_session(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

}  // namespace gcnt::serve
