#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/fault_inject.h"
#include "common/log.h"
#include "common/stats.h"
#include "common/trace.h"
#include "netlist/bench_io.h"
#include "netlist/verilog_io.h"

namespace gcnt::serve {

namespace {

/// Wall-clock microseconds for access-log timestamps (span timings use
/// the trace epoch via trace_now_ns so spans and stats agree).
std::uint64_t unix_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// On-the-wire size of one encoded frame (length prefix + header +
/// optional deadline extension + body).
std::size_t frame_bytes(const Frame& frame) noexcept {
  return 4 + kFrameHeaderBytes + (frame.has_deadline() ? 4 : 0) +
         frame.body.size();
}

/// True when a request with this frame/enqueue time has blown its
/// deadline by `now_ns` (deadlines are measured from server receipt).
bool deadline_expired(const Frame& frame, std::uint64_t enqueue_ns,
                      std::uint64_t now_ns) noexcept {
  return frame.has_deadline() && frame.deadline_ms != 0 &&
         now_ns > enqueue_ns + frame.deadline_ms * 1'000'000ull;
}

/// Applies SO_RCVTIMEO so blocked reads wake up every `ms` milliseconds
/// (read_frame turns the expiry into kIdle / a mid-frame kIo error).
void set_receive_timeout(int fd, std::uint64_t ms) {
  if (ms == 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

/// Cached per-opcode request counters ("serve.op.<name>"), so the
/// per-request cost is one relaxed add, not a registry lookup. Racing
/// initializers resolve to the same registry slot, so the last store
/// wins harmlessly.
Counter& op_counter(std::uint8_t opcode) {
  static std::atomic<Counter*> cache[256] = {};
  std::atomic<Counter*>& slot = cache[opcode];
  Counter* counter = slot.load(std::memory_order_acquire);
  if (counter == nullptr) {
    counter = &StatsRegistry::instance().counter(std::string("serve.op.") +
                                                 op_name(opcode));
    slot.store(counter, std::memory_order_release);
  }
  return *counter;
}

bool is_verilog_path(const std::string& path) {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".v") == 0;
}

Netlist read_netlist_source(std::uint8_t source, const std::string& data) {
  if (source == 0) {  // server-side file path
    std::ifstream in(data);
    if (!in) throw Error(ErrorKind::kIo, "cannot open " + data);
    return is_verilog_path(data) ? read_verilog(in, data)
                                 : read_bench(in, data);
  }
  if (source == 1) {  // inline .bench text
    std::istringstream in(data);
    return read_bench(in, "<inline>");
  }
  throw Error(ErrorKind::kUsage,
              "unknown netlist source kind " + std::to_string(source));
}

/// Ops whose body begins with a session-name string (pre-parsed by the
/// reader so the worker can batch without decoding bodies twice).
bool has_session_name(std::uint8_t opcode) noexcept {
  switch (static_cast<Op>(opcode)) {
    case Op::kLoadSession:
    case Op::kInfer:
    case Op::kAppendObserve:
    case Op::kAppendControl:
    case Op::kCloseSession:
      return true;
    default:
      return false;
  }
}

bool known_opcode(std::uint8_t opcode) noexcept {
  switch (static_cast<Op>(opcode)) {
    case Op::kPing:
    case Op::kLoadSession:
    case Op::kInfer:
    case Op::kAppendObserve:
    case Op::kAppendControl:
    case Op::kStats:
    case Op::kReloadModel:
    case Op::kCloseSession:
    case Op::kShutdown:
    case Op::kMetrics:
      return true;
  }
  return false;
}

}  // namespace

void ServeServer::Connection::send(const Frame& frame) {
  std::lock_guard<std::mutex> lock(write_mutex);
  if (closed.load()) throw Error(ErrorKind::kIo, "connection closed");
  if (fault_serve_write_probe()) {
    // Chaos: tear the reply mid-frame and drop the connection — what a
    // peer sees when the daemon dies between write() calls.
    const std::string bytes = encode_frame(frame);
    try {
      write_bytes(write_fd, bytes.data(), bytes.size() / 2);
    } catch (const Error&) {
    }
    close();
    throw Error(ErrorKind::kIo, "injected short write (connection dropped)");
  }
  write_frame(write_fd, frame);
}

void ServeServer::Connection::close() noexcept {
  if (closed.exchange(true)) return;
  // shutdown() wakes a reader blocked in read(); harmless ENOTSOCK on
  // pipe fds (stdio mode, where the fds are borrowed anyway).
  ::shutdown(read_fd, SHUT_RDWR);
  if (owns_fds) {
    ::close(read_fd);
    if (write_fd != read_fd) ::close(write_fd);
  }
}

ServeServer::ServeServer(ServeOptions options)
    : options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.queue_limit == 0) options_.queue_limit = 1;
  if (options_.batch_limit == 0) options_.batch_limit = 1;
}

ServeServer::~ServeServer() {
  begin_shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  if (watchdog_.joinable()) watchdog_.join();
  queue_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) conn->close();
  }
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!options_.unix_socket.empty()) ::unlink(options_.unix_socket.c_str());
}

void ServeServer::start() {
  const int transports = (options_.unix_socket.empty() ? 0 : 1) +
                         (options_.tcp_port >= 0 ? 1 : 0) +
                         (options_.stdio ? 1 : 0);
  if (transports != 1) {
    throw Error(ErrorKind::kUsage,
                "serve needs exactly one of --socket, --port, --stdio");
  }
  if (options_.model_path.empty()) {
    throw Error(ErrorKind::kUsage, "serve needs --model <artifact>");
  }
  // A peer that disconnects mid-reply must surface as Error{kIo} from
  // write(), not kill the daemon with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  models_ =
      std::make_unique<ModelRegistry>(options_.model_path, options_.precision);
  slow_ring_ = std::make_unique<SlowRequestRing>(options_.slow_ring);
  if (!options_.access_log.empty()) {
    access_log_ = std::make_unique<AccessLog>(options_.access_log);
    if (!access_log_->ok()) {
      log_warn("serve: cannot open access log ", options_.access_log,
               "; serving without one");
      access_log_.reset();
    }
  }

  if (!options_.unix_socket.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw Error(ErrorKind::kIo, "socket() failed");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      throw Error(ErrorKind::kUsage, "unix socket path too long");
    }
    std::strncpy(addr.sun_path, options_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      throw Error(ErrorKind::kIo, "cannot bind unix socket " +
                                      options_.unix_socket + ": " +
                                      std::strerror(errno));
    }
  } else if (options_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw Error(ErrorKind::kIo, "socket() failed");
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      throw Error(ErrorKind::kIo,
                  "cannot bind 127.0.0.1:" +
                      std::to_string(options_.tcp_port) + ": " +
                      std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_tcp_port_ = ntohs(bound.sin_port);
  }

  StatsRegistry::instance().gauge("serve.workers").set(
      static_cast<std::int64_t>(options_.workers));
  in_flight_.clear();
  for (std::size_t i = 0; i < options_.workers; ++i) {
    in_flight_.push_back(std::make_unique<InFlight>());
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  if (options_.watchdog_budget_ms != 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
  if (listen_fd_ >= 0) {
    acceptor_ = std::thread([this] { acceptor_loop(); });
  }
  log_info("serve: ready (",
           options_.stdio
               ? std::string("stdio")
               : (!options_.unix_socket.empty()
                      ? "unix " + options_.unix_socket
                      : "tcp 127.0.0.1:" + std::to_string(bound_tcp_port_)),
           ", ", options_.workers, " workers, queue ", options_.queue_limit,
           ")");
}

void ServeServer::run_stdio() {
  auto conn = std::make_shared<Connection>();
  conn->read_fd = 0;
  conn->write_fd = 1;
  conn->owns_fds = false;  // stdin/stdout are borrowed from the process
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(conn);
  }
  pump_connection(conn);
  begin_shutdown();
}

void ServeServer::wait() {
  if (acceptor_.joinable()) {
    acceptor_.join();
  } else {
    // stdio mode: run_stdio() already pumped to EOF / shutdown; spin
    // lightly for a signal-driven stop otherwise.
    while (!shutting_down_.load()) {
      if (stop_requested_.load()) begin_shutdown();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  if (watchdog_.joinable()) watchdog_.join();
  queue_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) conn->close();
  }
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  readers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_socket.empty()) ::unlink(options_.unix_socket.c_str());
  log_info("serve: shutdown complete");
}

std::size_t ServeServer::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

void ServeServer::begin_shutdown() {
  stop_requested_.store(true);
  if (shutting_down_.exchange(true)) return;
  queue_ready_.notify_all();
}

void ServeServer::acceptor_loop() {
  trace_set_thread_name("serve-accept");
  while (!stop_requested_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;  // timeout, EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (options_.max_connections != 0 &&
        live_connections_.load(std::memory_order_acquire) >=
            options_.max_connections) {
      // Refuse before spawning a reader: one best-effort typed error
      // frame (request_id 0 — no request was read), then close.
      static Counter& conn_rejected =
          StatsRegistry::instance().counter("serve.conn_rejected");
      conn_rejected.add();
      const std::string reason =
          "connection limit reached (" +
          std::to_string(options_.max_connections) + ")";
      try {
        Frame refused;
        write_frame(fd, make_error_response(refused, ErrorKind::kResource,
                                            reason));
      } catch (const Error&) {
      }
      ::close(fd);
      log_warn("serve: rejected connection: ", reason);
      continue;
    }
    // One receive-timeout tick per read: the mid-frame budget when
    // read_timeout_ms is set, otherwise the whole idle budget.
    set_receive_timeout(fd, options_.read_timeout_ms != 0
                                ? options_.read_timeout_ms
                                : options_.idle_timeout_ms);
    live_connections_.fetch_add(1, std::memory_order_acq_rel);
    auto conn = std::make_shared<Connection>();
    conn->read_fd = fd;
    conn->write_fd = fd;
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(conn);
    readers_.emplace_back(
        [this, conn = std::move(conn)] { connection_loop(conn); });
  }
  begin_shutdown();
}

void ServeServer::connection_loop(std::shared_ptr<Connection> conn) {
  trace_set_thread_name("serve-reader");
  pump_connection(conn);
  conn->close();
  live_connections_.fetch_sub(1, std::memory_order_acq_rel);
}

void ServeServer::pump_connection(const std::shared_ptr<Connection>& conn) {
  static Counter& malformed =
      StatsRegistry::instance().counter("serve.malformed_frames");
  static Counter& idle_reaped =
      StatsRegistry::instance().counter("serve.idle_reaped");
  const std::uint64_t tick_ms = options_.read_timeout_ms != 0
                                    ? options_.read_timeout_ms
                                    : options_.idle_timeout_ms;
  std::uint64_t idle_ms = 0;
  while (!shutting_down_.load()) {
    Frame frame;
    ErrorKind kind = ErrorKind::kInternal;
    std::string message;
    const ReadStatus status =
        read_frame(conn->read_fd, frame, kind, message);
    if (status == ReadStatus::kEof) return;
    if (status == ReadStatus::kIdle) {
      // Receive timeout with no frame started: accumulate idle ticks and
      // reap the connection once the idle budget is spent. (A mid-frame
      // timeout is kError/kIo — the slowloris case — handled below.)
      idle_ms += tick_ms;
      if (options_.idle_timeout_ms != 0 &&
          idle_ms >= options_.idle_timeout_ms) {
        idle_reaped.add();
        log_info("serve: reaping idle connection (idle ", idle_ms, " ms)");
        return;
      }
      continue;
    }
    if (status == ReadStatus::kError) {
      // Framing is broken: the stream cannot be resynced. Report the
      // typed error best-effort and drop the connection; resident
      // sessions are server-scoped and unaffected. No access-log line:
      // without a decodable header there is no request to attribute.
      malformed.add();
      if (kind != ErrorKind::kIo) {
        try {
          Frame bad;  // no request context survives a framing error
          conn->send(make_error_response(bad, kind, message));
        } catch (const Error&) {
        }
      }
      return;
    }

    // Request context starts here: every decodable frame gets a
    // server-wide sequence number, its wire size, and a deterministic
    // sampling decision that rides with it into the worker.
    idle_ms = 0;
    const std::uint64_t rid = next_rid_.fetch_add(1);
    const std::size_t bytes_in = frame_bytes(frame);
    // Replies the reader sends itself (protocol errors, shutdown) still
    // produce one access-log line each, so line count == reply count.
    const auto reply_inline = [&](const Frame& response, const char* outcome,
                                  const std::string& error) {
      AccessRecord record;
      record.ts_us = unix_micros();
      record.rid = rid;
      record.request_id = frame.request_id;
      record.op = op_name(frame.opcode);
      record.bytes_in = bytes_in;
      record.bytes_out = frame_bytes(response);
      record.outcome = outcome;
      record.error = error;
      bool sent = true;
      try {
        conn->send(response);
      } catch (const Error&) {
        sent = false;
      }
      if (sent) log_access(std::move(record));
      return sent;
    };

    if (fault_serve_read_probe()) {
      // Chaos: pretend this frame arrived torn — answer exactly like a
      // real framing failure (typed `corrupt`), but with the request
      // context intact so the peer can correlate, then drop the stream.
      malformed.add();
      const std::string error = "injected torn request frame";
      reply_inline(make_error_response(frame, ErrorKind::kCorrupt, error),
                   "corrupt", error);
      return;
    }

    if (frame.version < kMinProtocolVersion ||
        frame.version > kProtocolVersion) {
      const std::string error =
          "protocol version " + std::to_string(frame.version) +
          " unsupported (want " + std::to_string(kMinProtocolVersion) +
          ".." + std::to_string(kProtocolVersion) + ")";
      if (!reply_inline(make_error_response(frame, ErrorKind::kVersion, error),
                        "version", error)) {
        return;
      }
      continue;
    }
    if (!known_opcode(frame.opcode)) {
      const std::string error =
          "unknown opcode " + std::to_string(frame.opcode);
      if (!reply_inline(make_error_response(frame, ErrorKind::kUsage, error),
                        "usage", error)) {
        return;
      }
      continue;
    }
    if (static_cast<Op>(frame.opcode) == Op::kShutdown) {
      // Handled inline so shutdown is never rejected by a full queue.
      reply_inline(make_ok_response(frame, {}), "ok", {});
      begin_shutdown();
      return;
    }
    Request request;
    request.conn = conn;
    request.rid = rid;
    request.bytes_in = bytes_in;
    request.sampled = trace_should_sample(rid);
    if (has_session_name(frame.opcode)) {
      try {
        WireReader reader(frame.body);
        request.session = reader.str();
      } catch (const Error& e) {
        if (!reply_inline(make_error_response(frame, e.kind(), e.what()),
                          error_kind_name(e.kind()), e.what())) {
          return;
        }
        continue;
      }
    }
    request.frame = std::move(frame);
    enqueue(std::move(request));
  }
}

void ServeServer::enqueue(Request request) {
  static Counter& rejected =
      StatsRegistry::instance().counter("serve.overload_rejected");
  static Gauge& depth = StatsRegistry::instance().gauge("serve.queue_depth");
  request.enqueue_ns = trace_now_ns();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!shutting_down_.load() && queue_.size() < options_.queue_limit) {
      queue_.push_back(std::move(request));
      depth.set(static_cast<std::int64_t>(queue_.size()));
      queue_ready_.notify_one();
      return;
    }
  }
  // Admission control: reply immediately with the typed `resource`
  // error instead of queueing (or accepting work during shutdown).
  rejected.add();
  const std::string reason =
      shutting_down_.load()
          ? "server is shutting down"
          : "server overloaded: request queue full (" +
                std::to_string(options_.queue_limit) + ")";
  const Frame response =
      make_error_response(request.frame, ErrorKind::kResource, reason);
  bool sent = true;
  try {
    request.conn->send(response);
  } catch (const Error&) {
    sent = false;
  }
  if (sent) {
    AccessRecord record;
    record.ts_us = unix_micros();
    record.rid = request.rid;
    record.request_id = request.frame.request_id;
    record.session = request.session;
    record.op = op_name(request.frame.opcode);
    record.bytes_in = request.bytes_in;
    record.bytes_out = frame_bytes(response);
    record.outcome = "resource";
    record.error = reason;
    log_access(std::move(record));
  }
}

void ServeServer::worker_loop(std::size_t index) {
  trace_set_thread_name("serve-worker");
  ForwardWorkspace ws;  // reused across every request this worker runs
  static Gauge& depth = StatsRegistry::instance().gauge("serve.queue_depth");
  for (;;) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_ready_.wait(lock, [this] {
        return !queue_.empty() || shutting_down_.load();
      });
      if (queue_.empty()) {
        if (shutting_down_.load()) return;  // drained
        continue;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    dispatch(request, ws, in_flight_[index].get());
  }
}

void ServeServer::dispatch(const Request& request, ForwardWorkspace& ws,
                           InFlight* slot) {
  static Counter& requests =
      StatsRegistry::instance().counter("serve.requests");
  static Counter& errors = StatsRegistry::instance().counter("serve.errors");
  static Histogram& latency =
      StatsRegistry::instance().histogram("serve.request_ns");
  static Histogram& queue_wait =
      StatsRegistry::instance().histogram("serve.queue_wait_us");
  const std::uint64_t dequeue_ns = trace_now_ns();
  const std::uint64_t queue_wait_ns =
      dequeue_ns > request.enqueue_ns ? dequeue_ns - request.enqueue_ns : 0;
  requests.add();
  op_counter(request.frame.opcode).add();
  queue_wait.record(queue_wait_ns / 1000);

  // Publish what this worker is doing for the watchdog: string/handle
  // under the slot mutex, scalars as release stores so the watchdog's
  // acquire loads see a consistent (busy, rid, start) triple.
  if (slot != nullptr) {
    {
      std::lock_guard<std::mutex> lock(slot->name_mutex);
      slot->session = request.session;
      slot->conn = request.conn;
    }
    slot->rid.store(request.rid, std::memory_order_relaxed);
    slot->opcode.store(request.frame.opcode, std::memory_order_relaxed);
    slot->start_ns.store(dequeue_ns, std::memory_order_relaxed);
    slot->busy.store(true, std::memory_order_release);
  }

  // The queue-wait span completed at dequeue time; record it before any
  // phase span so per-thread completion order stays monotonic. Sampling
  // is decided per request, and an unsampled request also silences its
  // nested GCNT_KERNEL_SCOPE spans via the suppress scope.
  const bool tracing = request.sampled && trace_enabled();
  if (tracing) {
    trace_detail::record("serve.queue_wait", request.enqueue_ns, dequeue_ns,
                         "rid", static_cast<double>(request.rid), nullptr,
                         0.0);
  }
  TraceSuppressScope suppress(trace_enabled() && !request.sampled);

  AccessRecord record;
  record.rid = request.rid;
  record.request_id = request.frame.request_id;
  record.session = request.session;
  record.op = op_name(request.frame.opcode);
  record.queue_wait_us = queue_wait_ns / 1000;
  record.bytes_in = request.bytes_in;

  const auto respond = [&](Frame response) {
    record.bytes_out = frame_bytes(response);
    request.conn->send(response);
  };
  // Non-infer handlers run under one "serve.handle" child span; the
  // infer path records finer decode/forward/encode phases itself.
  const auto handle = [&](std::string (ServeServer::*handler)(const Frame&)) {
    TraceSpan span("serve.handle");
    span.arg("rid", static_cast<double>(request.rid));
    return (this->*handler)(request.frame);
  };
  try {
    // Chaos probes fire before any real work: a delayed worker is what a
    // page fault storm looks like, an alloc failure is what decode OOM
    // looks like. Both are no-ops unless GCNT_FAULT_INJECT arms them.
    if (const std::uint64_t delay = fault_serve_delay_probe()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    fault_serve_alloc_probe(op_name(request.frame.opcode));

    // Deadline shed at dequeue: work whose caller has already given up
    // is answered with the typed `deadline` error instead of being run.
    if (deadline_expired(request.frame, request.enqueue_ns,
                         trace_now_ns())) {
      static Counter& shed =
          StatsRegistry::instance().counter("serve.shed_deadline");
      shed.add();
      throw Error(ErrorKind::kDeadline,
                  "deadline of " + std::to_string(request.frame.deadline_ms) +
                      " ms exceeded after " +
                      std::to_string(queue_wait_ns / 1'000'000) +
                      " ms in queue");
    }
    switch (static_cast<Op>(request.frame.opcode)) {
      case Op::kPing:
        respond(make_ok_response(request.frame,
                                 health_payload(request.frame.version)));
        break;
      case Op::kInfer:
        handle_infer(request, ws, record);
        break;
      case Op::kLoadSession:
        respond(make_ok_response(request.frame,
                                 handle(&ServeServer::handle_load_session)));
        break;
      case Op::kAppendObserve:
        respond(make_ok_response(
            request.frame, handle(&ServeServer::handle_append_observe)));
        break;
      case Op::kAppendControl:
        respond(make_ok_response(
            request.frame, handle(&ServeServer::handle_append_control)));
        break;
      case Op::kStats: {
        TraceSpan span("serve.handle");
        span.arg("rid", static_cast<double>(request.rid));
        respond(make_ok_response(request.frame, handle_stats()));
        break;
      }
      case Op::kMetrics:
        respond(make_ok_response(request.frame,
                                 handle(&ServeServer::handle_metrics)));
        break;
      case Op::kReloadModel:
        respond(make_ok_response(request.frame,
                                 handle(&ServeServer::handle_reload)));
        break;
      case Op::kCloseSession:
        respond(make_ok_response(request.frame,
                                 handle(&ServeServer::handle_close_session)));
        break;
      case Op::kShutdown:
        break;  // answered by the reader
    }
  } catch (const Error& e) {
    record.outcome = error_kind_name(e.kind());
    record.error = e.what();
    try {
      respond(make_error_response(request.frame, e.kind(), e.what()));
    } catch (const Error&) {
    }
  } catch (const std::bad_alloc&) {
    record.outcome = error_kind_name(ErrorKind::kResource);
    record.error = "out of memory";
    try {
      respond(make_error_response(request.frame, ErrorKind::kResource,
                                  "out of memory"));
    } catch (const Error&) {
    }
  } catch (const std::exception& e) {
    record.outcome = error_kind_name(ErrorKind::kInternal);
    record.error = e.what();
    try {
      respond(make_error_response(request.frame, ErrorKind::kInternal,
                                  e.what()));
    } catch (const Error&) {
    }
  }
  const std::uint64_t done_ns = trace_now_ns();
  if (slot != nullptr) slot->busy.store(false, std::memory_order_release);
  latency.record(done_ns - dequeue_ns);
  if (tracing) {
    trace_detail::record("serve.request", dequeue_ns, done_ns, "rid",
                         static_cast<double>(request.rid), "op",
                         static_cast<double>(request.frame.opcode));
  }
  if (record.outcome != "ok") errors.add();
  record.ts_us = unix_micros();
  record.service_us = (done_ns - dequeue_ns) / 1000;
  log_access(std::move(record));
}

std::string ServeServer::health_payload(std::uint8_t version) {
  // v1 pings keep their empty-body reply: old clients must never see
  // payload bytes they do not know how to parse.
  if (version < 2) return {};
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    depth = queue_.size();
  }
  std::string payload;
  WireWriter writer(payload);
  writer.u32(static_cast<std::uint32_t>(depth));
  writer.u32(static_cast<std::uint32_t>(options_.workers));
  writer.u64(models_->snapshot().generation);
  writer.u8(options_.brownout_queue != 0 && depth >= options_.brownout_queue
                ? 1
                : 0);
  writer.u32(static_cast<std::uint32_t>(session_count()));
  return payload;
}

void ServeServer::handle_infer(const Request& request, ForwardWorkspace& ws,
                               AccessRecord& record) {
  static Counter& batched =
      StatsRegistry::instance().counter("serve.batched_infers");
  static Histogram& batch_size =
      StatsRegistry::instance().histogram("serve.batch_size");
  // Claim every queued infer for the same session: one forward pass (or
  // cache hit) answers the whole batch. The queue depth at claim time is
  // the brownout signal — it is the backlog this request actually saw.
  std::vector<Request> batch;
  std::size_t depth_at_claim = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    depth_at_claim = queue_.size();
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() + 1 < options_.batch_limit;) {
      if (static_cast<Op>(it->frame.opcode) == Op::kInfer &&
          it->session == request.session) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  const std::uint64_t claim_ns = trace_now_ns();
  // Mid-batch deadline shed: members whose deadline expired while the
  // batch formed get the typed `deadline` error now instead of riding a
  // forward pass whose answer their caller has stopped waiting for.
  {
    static Counter& shed_batch =
        StatsRegistry::instance().counter("serve.shed_batch");
    std::vector<Request> kept;
    kept.reserve(batch.size());
    for (Request& r : batch) {
      if (!deadline_expired(r.frame, r.enqueue_ns, claim_ns)) {
        kept.push_back(std::move(r));
        continue;
      }
      shed_batch.add();
      const std::string error =
          "deadline of " + std::to_string(r.frame.deadline_ms) +
          " ms exceeded while batched";
      const Frame response =
          make_error_response(r.frame, ErrorKind::kDeadline, error);
      bool sent = true;
      try {
        r.conn->send(response);
      } catch (const Error&) {
        sent = false;
      }
      if (sent) {
        AccessRecord member;
        member.ts_us = unix_micros();
        member.rid = r.rid;
        member.request_id = r.frame.request_id;
        member.session = r.session;
        member.op = op_name(r.frame.opcode);
        member.queue_wait_us =
            (claim_ns > r.enqueue_ns ? claim_ns - r.enqueue_ns : 0) / 1000;
        member.bytes_in = r.bytes_in;
        member.bytes_out = frame_bytes(response);
        member.outcome = error_kind_name(ErrorKind::kDeadline);
        member.error = error;
        log_access(std::move(member));
      }
    }
    batch = std::move(kept);
  }
  batched.add(batch.size());
  batch_size.record(batch.size() + 1);
  // A batch member's queue wait ends when the batch claims it.
  for (const Request& r : batch) {
    if (r.sampled && trace_enabled()) {
      trace_detail::record("serve.queue_wait", r.enqueue_ns, claim_ns, "rid",
                           static_cast<double>(r.rid), nullptr, 0.0);
    }
  }

  const bool brownout_on = options_.brownout_queue != 0 &&
                           depth_at_claim >= options_.brownout_queue;
  bool served_brownout = false;
  std::string payload;
  ErrorKind error_kind = ErrorKind::kInternal;
  std::string error_message;
  bool ok = true;
  std::uint64_t decode_done_ns = claim_ns;
  std::uint64_t forward_done_ns = claim_ns;
  try {
    std::shared_ptr<ServeSession> session;
    {
      TraceSpan span("serve.decode");
      span.arg("rid", static_cast<double>(request.rid));
      session = find_session(request.session);
      if (!session) {
        throw Error(ErrorKind::kUsage,
                    "unknown session '" + request.session + "'");
      }
    }
    decode_done_ns = trace_now_ns();
    const ModelRegistry::Snapshot snapshot = models_->snapshot();
    std::lock_guard<std::mutex> lock(session->mutex());
    const Matrix* logits = nullptr;
    if (brownout_on) {
      // Brownout: past the queue-depth threshold, answer from the
      // session's cached (possibly stale) logits and skip the forward.
      // Cold sessions have nothing cached and fall through to a normal
      // forward — degrading them would mean failing them.
      static Counter& brownout_served =
          StatsRegistry::instance().counter("serve.brownout_served");
      static Counter& brownout_miss =
          StatsRegistry::instance().counter("serve.brownout_miss");
      logits = session->cached_logits(snapshot);
      if (logits != nullptr) {
        brownout_served.add(batch.size() + 1);
        served_brownout = true;
      } else {
        brownout_miss.add();
      }
    }
    if (logits == nullptr) {
      TraceSpan span("serve.forward");
      span.arg("rid", static_cast<double>(request.rid));
      logits = &session->logits(snapshot, ws);
    }
    forward_done_ns = trace_now_ns();
    {
      TraceSpan span("serve.encode");
      span.arg("rid", static_cast<double>(request.rid));
      WireWriter writer(payload);
      writer.u32(static_cast<std::uint32_t>(logits->rows()));
      writer.u32(static_cast<std::uint32_t>(logits->cols()));
      payload.reserve(payload.size() +
                      logits->rows() * logits->cols() * sizeof(float));
      for (std::size_t r = 0; r < logits->rows(); ++r) {
        const float* row = logits->row(r);
        for (std::size_t c = 0; c < logits->cols(); ++c) writer.f32(row[c]);
      }
    }
  } catch (const Error& e) {
    ok = false;
    error_kind = e.kind();
    error_message = e.what();
  } catch (const std::exception& e) {
    ok = false;
    error_kind = ErrorKind::kInternal;
    error_message = e.what();
  }
  const std::uint64_t encode_done_ns = trace_now_ns();
  record.decode_us = (decode_done_ns - claim_ns) / 1000;
  record.forward_us = (forward_done_ns - decode_done_ns) / 1000;
  record.encode_us = (encode_done_ns - forward_done_ns) / 1000;
  record.batch = batch.size() + 1;
  record.brownout = served_brownout;
  if (!ok) {
    record.outcome = error_kind_name(error_kind);
    record.error = error_message;
  }

  const auto response_for = [&](const Frame& frame) {
    Frame response = ok ? make_ok_response(frame, payload)
                        : make_error_response(frame, error_kind,
                                              error_message);
    if (ok && served_brownout && response.version >= 2) {
      response.flags |= kFrameFlagBrownout;
    }
    return response;
  };
  {
    const Frame response = response_for(request.frame);
    record.bytes_out = frame_bytes(response);
    try {
      request.conn->send(response);
    } catch (const Error& e) {
      // The reply never reached the peer: the access line must say so,
      // not claim success (chaos asserts every faulted request is typed).
      if (record.outcome == "ok") {
        record.outcome = error_kind_name(e.kind());
        record.error = e.what();
      }
    }
  }
  // Batch members get their own spans and access-log lines; the shared
  // forward pass is visible through the common batch size.
  for (const Request& r : batch) {
    const Frame response = response_for(r.frame);
    AccessRecord member;
    member.outcome = record.outcome;
    member.error = record.error;
    member.brownout = served_brownout;
    try {
      r.conn->send(response);
    } catch (const Error& e) {
      if (member.outcome == "ok") {
        member.outcome = error_kind_name(e.kind());
        member.error = e.what();
      }
    }
    const std::uint64_t done_ns = trace_now_ns();
    if (r.sampled && trace_enabled()) {
      trace_detail::record("serve.request", claim_ns, done_ns, "rid",
                           static_cast<double>(r.rid), "op",
                           static_cast<double>(r.frame.opcode));
    }
    member.ts_us = unix_micros();
    member.rid = r.rid;
    member.request_id = r.frame.request_id;
    member.session = r.session;
    member.op = op_name(r.frame.opcode);
    member.queue_wait_us =
        (claim_ns > r.enqueue_ns ? claim_ns - r.enqueue_ns : 0) / 1000;
    member.service_us = (done_ns - claim_ns) / 1000;
    member.batch = batch.size() + 1;
    member.bytes_in = r.bytes_in;
    member.bytes_out = frame_bytes(response);
    log_access(std::move(member));
  }
}

std::string ServeServer::handle_load_session(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string name = reader.str();
  const std::uint8_t source = reader.u8();
  const std::string data = reader.str();
  const bool standardize = reader.u8() != 0;
  if (name.empty()) {
    throw Error(ErrorKind::kUsage, "session name must not be empty");
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (sessions_.count(name) != 0) {
      throw Error(ErrorKind::kUsage,
                  "session '" + name + "' already exists");
    }
    if (sessions_.size() >= options_.max_sessions) {
      throw Error(ErrorKind::kResource,
                  "session limit reached (" +
                      std::to_string(options_.max_sessions) + ")");
    }
  }
  // Build outside the lock (SCOAP + tensors dominate); publish after.
  auto session = std::make_shared<ServeSession>(
      name, read_netlist_source(source, data), standardize);
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  if (sessions_.count(name) != 0) {
    throw Error(ErrorKind::kUsage, "session '" + name + "' already exists");
  }
  if (sessions_.size() >= options_.max_sessions) {
    throw Error(ErrorKind::kResource,
                "session limit reached (" +
                    std::to_string(options_.max_sessions) + ")");
  }
  std::string payload;
  WireWriter writer(payload);
  writer.u32(static_cast<std::uint32_t>(session->node_count()));
  writer.u32(static_cast<std::uint32_t>(session->edge_count()));
  sessions_.emplace(name, std::move(session));
  StatsRegistry::instance().gauge("serve.sessions").set(
      static_cast<std::int64_t>(sessions_.size()));
  return payload;
}

std::string ServeServer::handle_append_observe(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string name = reader.str();
  const NodeId target = reader.u32();
  const std::shared_ptr<ServeSession> session = find_session(name);
  if (!session) {
    throw Error(ErrorKind::kUsage, "unknown session '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(session->mutex());
  const NodeId op = session->append_observe(target);
  std::string payload;
  WireWriter writer(payload);
  writer.u32(op);
  writer.u32(static_cast<std::uint32_t>(session->node_count()));
  return payload;
}

std::string ServeServer::handle_append_control(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string name = reader.str();
  const NodeId target = reader.u32();
  const bool drive_to_one = reader.u8() != 0;
  const std::shared_ptr<ServeSession> session = find_session(name);
  if (!session) {
    throw Error(ErrorKind::kUsage, "unknown session '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(session->mutex());
  const Netlist::ControlPoint cp =
      session->append_control(target, drive_to_one);
  std::string payload;
  WireWriter writer(payload);
  writer.u32(cp.control);
  writer.u32(cp.gate);
  writer.u32(cp.inverter);
  return payload;
}

std::string ServeServer::handle_stats() {
  std::ostringstream json;
  StatsRegistry::instance().write_json(json);
  std::string payload;
  WireWriter writer(payload);
  writer.str(json.str());
  return payload;
}

std::string ServeServer::handle_metrics(const Frame& frame) {
  std::uint8_t flags = 0;
  if (!frame.body.empty()) {
    WireReader reader(frame.body);
    flags = reader.u8();
  }
  std::ostringstream text;
  {
    // One scrape at a time: the exposition reports deltas and windowed
    // quantiles relative to the previous scrape, whoever made it.
    std::lock_guard<std::mutex> lock(scrape_mutex_);
    const StatsSnapshot cur = StatsRegistry::instance().snapshot();
    write_prometheus(text, cur, have_scrape_ ? &last_scrape_ : nullptr);
    last_scrape_ = cur;
    have_scrape_ = true;
  }
  std::string payload;
  WireWriter writer(payload);
  writer.str(text.str());
  writer.str((flags & 0x1) != 0 && slow_ring_ ? slow_ring_->to_json()
                                              : std::string());
  return payload;
}

void ServeServer::log_access(AccessRecord record) {
  if (slow_ring_) slow_ring_->offer(record);
  if (access_log_) access_log_->write(record);
}

std::uint64_t ServeServer::access_log_lines() const noexcept {
  return access_log_ ? access_log_->lines_written() : 0;
}

std::string ServeServer::handle_reload(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string path = reader.str();
  const std::uint64_t generation = models_->reload(path);
  std::string payload;
  WireWriter writer(payload);
  writer.u64(generation);
  return payload;
}

std::string ServeServer::handle_close_session(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string name = reader.str();
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  if (sessions_.erase(name) == 0) {
    throw Error(ErrorKind::kUsage, "unknown session '" + name + "'");
  }
  if (quarantined_.erase(name) != 0) {
    // Closing a quarantined session lifts the quarantine: reloading it
    // is the operator's way of putting it back in service.
    StatsRegistry::instance().gauge("serve.quarantined").set(
        static_cast<std::int64_t>(quarantined_.size()));
  }
  StatsRegistry::instance().gauge("serve.sessions").set(
      static_cast<std::int64_t>(sessions_.size()));
  return {};
}

std::shared_ptr<ServeSession> ServeServer::find_session(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  if (quarantined_.count(name) != 0) {
    throw Error(ErrorKind::kResource,
                "session '" + name +
                    "' is quarantined (watchdog flagged a stuck request; "
                    "close and reload it to restore service)");
  }
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

void ServeServer::watchdog_loop() {
  trace_set_thread_name("serve-watchdog");
  static Counter& stuck =
      StatsRegistry::instance().counter("serve.watchdog_stuck");
  const std::uint64_t budget_ns = options_.watchdog_budget_ms * 1'000'000ull;
  const std::uint64_t tick_ms =
      std::min<std::uint64_t>(50,
                              std::max<std::uint64_t>(
                                  5, options_.watchdog_budget_ms / 4));
  while (!shutting_down_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(tick_ms));
    const std::uint64_t now_ns = trace_now_ns();
    for (const std::unique_ptr<InFlight>& slot : in_flight_) {
      if (!slot->busy.load(std::memory_order_acquire)) continue;
      const std::uint64_t rid = slot->rid.load(std::memory_order_relaxed);
      const std::uint64_t start_ns =
          slot->start_ns.load(std::memory_order_relaxed);
      if (now_ns <= start_ns + budget_ns) continue;
      if (slot->reported_rid == rid) continue;  // already flagged
      // Re-check after the loads: the worker may have finished and
      // started a different request between our busy and rid reads.
      if (!slot->busy.load(std::memory_order_acquire) ||
          slot->rid.load(std::memory_order_relaxed) != rid) {
        continue;
      }
      slot->reported_rid = rid;
      stuck.add();
      const std::uint8_t opcode =
          slot->opcode.load(std::memory_order_relaxed);
      std::string session;
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(slot->name_mutex);
        session = slot->session;
        conn = slot->conn.lock();
      }
      const std::string session_label =
          session.empty() ? std::string("-") : session;
      log_warn("serve: watchdog: rid ", rid, " (", op_name(opcode),
               ", session ", session_label, ") held for ",
               (now_ns - start_ns) / 1'000'000, " ms (budget ",
               options_.watchdog_budget_ms, " ms)");
      if (options_.watchdog_action == WatchdogAction::kQuarantine &&
          !session.empty()) {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        if (quarantined_.insert(session).second) {
          StatsRegistry::instance().gauge("serve.quarantined").set(
              static_cast<std::int64_t>(quarantined_.size()));
          log_warn("serve: watchdog: quarantined session ", session);
        }
      } else if (options_.watchdog_action == WatchdogAction::kAbort &&
                 conn != nullptr) {
        log_warn("serve: watchdog: aborting connection of rid ", rid);
        conn->close();
      }
    }
  }
}

}  // namespace gcnt::serve
