#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "common/stats.h"
#include "common/trace.h"
#include "netlist/bench_io.h"
#include "netlist/verilog_io.h"

namespace gcnt::serve {

namespace {

/// Wall-clock microseconds for access-log timestamps (span timings use
/// the trace epoch via trace_now_ns so spans and stats agree).
std::uint64_t unix_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// On-the-wire size of one encoded frame (length prefix + header + body).
std::size_t frame_bytes(const Frame& frame) noexcept {
  return 4 + kFrameHeaderBytes + frame.body.size();
}

/// Cached per-opcode request counters ("serve.op.<name>"), so the
/// per-request cost is one relaxed add, not a registry lookup. Racing
/// initializers resolve to the same registry slot, so the last store
/// wins harmlessly.
Counter& op_counter(std::uint8_t opcode) {
  static std::atomic<Counter*> cache[256] = {};
  std::atomic<Counter*>& slot = cache[opcode];
  Counter* counter = slot.load(std::memory_order_acquire);
  if (counter == nullptr) {
    counter = &StatsRegistry::instance().counter(std::string("serve.op.") +
                                                 op_name(opcode));
    slot.store(counter, std::memory_order_release);
  }
  return *counter;
}

bool is_verilog_path(const std::string& path) {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".v") == 0;
}

Netlist read_netlist_source(std::uint8_t source, const std::string& data) {
  if (source == 0) {  // server-side file path
    std::ifstream in(data);
    if (!in) throw Error(ErrorKind::kIo, "cannot open " + data);
    return is_verilog_path(data) ? read_verilog(in, data)
                                 : read_bench(in, data);
  }
  if (source == 1) {  // inline .bench text
    std::istringstream in(data);
    return read_bench(in, "<inline>");
  }
  throw Error(ErrorKind::kUsage,
              "unknown netlist source kind " + std::to_string(source));
}

/// Ops whose body begins with a session-name string (pre-parsed by the
/// reader so the worker can batch without decoding bodies twice).
bool has_session_name(std::uint8_t opcode) noexcept {
  switch (static_cast<Op>(opcode)) {
    case Op::kLoadSession:
    case Op::kInfer:
    case Op::kAppendObserve:
    case Op::kAppendControl:
    case Op::kCloseSession:
      return true;
    default:
      return false;
  }
}

bool known_opcode(std::uint8_t opcode) noexcept {
  switch (static_cast<Op>(opcode)) {
    case Op::kPing:
    case Op::kLoadSession:
    case Op::kInfer:
    case Op::kAppendObserve:
    case Op::kAppendControl:
    case Op::kStats:
    case Op::kReloadModel:
    case Op::kCloseSession:
    case Op::kShutdown:
    case Op::kMetrics:
      return true;
  }
  return false;
}

}  // namespace

void ServeServer::Connection::send(const Frame& frame) {
  std::lock_guard<std::mutex> lock(write_mutex);
  if (closed.load()) throw Error(ErrorKind::kIo, "connection closed");
  write_frame(write_fd, frame);
}

void ServeServer::Connection::close() noexcept {
  if (closed.exchange(true)) return;
  // shutdown() wakes a reader blocked in read(); harmless ENOTSOCK on
  // pipe fds (stdio mode, where the fds are borrowed anyway).
  ::shutdown(read_fd, SHUT_RDWR);
  if (owns_fds) {
    ::close(read_fd);
    if (write_fd != read_fd) ::close(write_fd);
  }
}

ServeServer::ServeServer(ServeOptions options)
    : options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.queue_limit == 0) options_.queue_limit = 1;
  if (options_.batch_limit == 0) options_.batch_limit = 1;
}

ServeServer::~ServeServer() {
  begin_shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  queue_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) conn->close();
  }
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!options_.unix_socket.empty()) ::unlink(options_.unix_socket.c_str());
}

void ServeServer::start() {
  const int transports = (options_.unix_socket.empty() ? 0 : 1) +
                         (options_.tcp_port >= 0 ? 1 : 0) +
                         (options_.stdio ? 1 : 0);
  if (transports != 1) {
    throw Error(ErrorKind::kUsage,
                "serve needs exactly one of --socket, --port, --stdio");
  }
  if (options_.model_path.empty()) {
    throw Error(ErrorKind::kUsage, "serve needs --model <artifact>");
  }
  // A peer that disconnects mid-reply must surface as Error{kIo} from
  // write(), not kill the daemon with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  models_ = std::make_unique<ModelRegistry>(options_.model_path);
  slow_ring_ = std::make_unique<SlowRequestRing>(options_.slow_ring);
  if (!options_.access_log.empty()) {
    access_log_ = std::make_unique<AccessLog>(options_.access_log);
    if (!access_log_->ok()) {
      log_warn("serve: cannot open access log ", options_.access_log,
               "; serving without one");
      access_log_.reset();
    }
  }

  if (!options_.unix_socket.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw Error(ErrorKind::kIo, "socket() failed");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      throw Error(ErrorKind::kUsage, "unix socket path too long");
    }
    std::strncpy(addr.sun_path, options_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      throw Error(ErrorKind::kIo, "cannot bind unix socket " +
                                      options_.unix_socket + ": " +
                                      std::strerror(errno));
    }
  } else if (options_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw Error(ErrorKind::kIo, "socket() failed");
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      throw Error(ErrorKind::kIo,
                  "cannot bind 127.0.0.1:" +
                      std::to_string(options_.tcp_port) + ": " +
                      std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_tcp_port_ = ntohs(bound.sin_port);
  }

  StatsRegistry::instance().gauge("serve.workers").set(
      static_cast<std::int64_t>(options_.workers));
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  if (listen_fd_ >= 0) {
    acceptor_ = std::thread([this] { acceptor_loop(); });
  }
  log_info("serve: ready (",
           options_.stdio
               ? std::string("stdio")
               : (!options_.unix_socket.empty()
                      ? "unix " + options_.unix_socket
                      : "tcp 127.0.0.1:" + std::to_string(bound_tcp_port_)),
           ", ", options_.workers, " workers, queue ", options_.queue_limit,
           ")");
}

void ServeServer::run_stdio() {
  auto conn = std::make_shared<Connection>();
  conn->read_fd = 0;
  conn->write_fd = 1;
  conn->owns_fds = false;  // stdin/stdout are borrowed from the process
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(conn);
  }
  pump_connection(conn);
  begin_shutdown();
}

void ServeServer::wait() {
  if (acceptor_.joinable()) {
    acceptor_.join();
  } else {
    // stdio mode: run_stdio() already pumped to EOF / shutdown; spin
    // lightly for a signal-driven stop otherwise.
    while (!shutting_down_.load()) {
      if (stop_requested_.load()) begin_shutdown();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  queue_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) conn->close();
  }
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  readers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_socket.empty()) ::unlink(options_.unix_socket.c_str());
  log_info("serve: shutdown complete");
}

std::size_t ServeServer::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

void ServeServer::begin_shutdown() {
  stop_requested_.store(true);
  if (shutting_down_.exchange(true)) return;
  queue_ready_.notify_all();
}

void ServeServer::acceptor_loop() {
  trace_set_thread_name("serve-accept");
  while (!stop_requested_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;  // timeout, EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->read_fd = fd;
    conn->write_fd = fd;
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(conn);
    readers_.emplace_back(
        [this, conn = std::move(conn)] { connection_loop(conn); });
  }
  begin_shutdown();
}

void ServeServer::connection_loop(std::shared_ptr<Connection> conn) {
  trace_set_thread_name("serve-reader");
  pump_connection(conn);
  conn->close();
}

void ServeServer::pump_connection(const std::shared_ptr<Connection>& conn) {
  static Counter& malformed =
      StatsRegistry::instance().counter("serve.malformed_frames");
  while (!shutting_down_.load()) {
    Frame frame;
    ErrorKind kind = ErrorKind::kInternal;
    std::string message;
    const ReadStatus status =
        read_frame(conn->read_fd, frame, kind, message);
    if (status == ReadStatus::kEof) return;
    if (status == ReadStatus::kError) {
      // Framing is broken: the stream cannot be resynced. Report the
      // typed error best-effort and drop the connection; resident
      // sessions are server-scoped and unaffected. No access-log line:
      // without a decodable header there is no request to attribute.
      malformed.add();
      if (kind != ErrorKind::kIo) {
        try {
          Frame bad;  // no request context survives a framing error
          conn->send(make_error_response(bad, kind, message));
        } catch (const Error&) {
        }
      }
      return;
    }

    // Request context starts here: every decodable frame gets a
    // server-wide sequence number, its wire size, and a deterministic
    // sampling decision that rides with it into the worker.
    const std::uint64_t rid = next_rid_.fetch_add(1);
    const std::size_t bytes_in = frame_bytes(frame);
    // Replies the reader sends itself (protocol errors, shutdown) still
    // produce one access-log line each, so line count == reply count.
    const auto reply_inline = [&](const Frame& response, const char* outcome,
                                  const std::string& error) {
      AccessRecord record;
      record.ts_us = unix_micros();
      record.rid = rid;
      record.request_id = frame.request_id;
      record.op = op_name(frame.opcode);
      record.bytes_in = bytes_in;
      record.bytes_out = frame_bytes(response);
      record.outcome = outcome;
      record.error = error;
      bool sent = true;
      try {
        conn->send(response);
      } catch (const Error&) {
        sent = false;
      }
      if (sent) log_access(std::move(record));
      return sent;
    };

    if (frame.version != kProtocolVersion) {
      const std::string error =
          "protocol version " + std::to_string(frame.version) +
          " unsupported (want " + std::to_string(kProtocolVersion) + ")";
      if (!reply_inline(make_error_response(frame, ErrorKind::kVersion, error),
                        "version", error)) {
        return;
      }
      continue;
    }
    if (!known_opcode(frame.opcode)) {
      const std::string error =
          "unknown opcode " + std::to_string(frame.opcode);
      if (!reply_inline(make_error_response(frame, ErrorKind::kUsage, error),
                        "usage", error)) {
        return;
      }
      continue;
    }
    if (static_cast<Op>(frame.opcode) == Op::kShutdown) {
      // Handled inline so shutdown is never rejected by a full queue.
      reply_inline(make_ok_response(frame, {}), "ok", {});
      begin_shutdown();
      return;
    }
    Request request;
    request.conn = conn;
    request.rid = rid;
    request.bytes_in = bytes_in;
    request.sampled = trace_should_sample(rid);
    if (has_session_name(frame.opcode)) {
      try {
        WireReader reader(frame.body);
        request.session = reader.str();
      } catch (const Error& e) {
        if (!reply_inline(make_error_response(frame, e.kind(), e.what()),
                          error_kind_name(e.kind()), e.what())) {
          return;
        }
        continue;
      }
    }
    request.frame = std::move(frame);
    enqueue(std::move(request));
  }
}

void ServeServer::enqueue(Request request) {
  static Counter& rejected =
      StatsRegistry::instance().counter("serve.overload_rejected");
  static Gauge& depth = StatsRegistry::instance().gauge("serve.queue_depth");
  request.enqueue_ns = trace_now_ns();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!shutting_down_.load() && queue_.size() < options_.queue_limit) {
      queue_.push_back(std::move(request));
      depth.set(static_cast<std::int64_t>(queue_.size()));
      queue_ready_.notify_one();
      return;
    }
  }
  // Admission control: reply immediately with the typed `resource`
  // error instead of queueing (or accepting work during shutdown).
  rejected.add();
  const std::string reason =
      shutting_down_.load()
          ? "server is shutting down"
          : "server overloaded: request queue full (" +
                std::to_string(options_.queue_limit) + ")";
  const Frame response =
      make_error_response(request.frame, ErrorKind::kResource, reason);
  bool sent = true;
  try {
    request.conn->send(response);
  } catch (const Error&) {
    sent = false;
  }
  if (sent) {
    AccessRecord record;
    record.ts_us = unix_micros();
    record.rid = request.rid;
    record.request_id = request.frame.request_id;
    record.session = request.session;
    record.op = op_name(request.frame.opcode);
    record.bytes_in = request.bytes_in;
    record.bytes_out = frame_bytes(response);
    record.outcome = "resource";
    record.error = reason;
    log_access(std::move(record));
  }
}

void ServeServer::worker_loop(std::size_t index) {
  trace_set_thread_name("serve-worker");
  (void)index;
  ForwardWorkspace ws;  // reused across every request this worker runs
  static Gauge& depth = StatsRegistry::instance().gauge("serve.queue_depth");
  for (;;) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_ready_.wait(lock, [this] {
        return !queue_.empty() || shutting_down_.load();
      });
      if (queue_.empty()) {
        if (shutting_down_.load()) return;  // drained
        continue;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    dispatch(request, ws);
  }
}

void ServeServer::dispatch(const Request& request, ForwardWorkspace& ws) {
  static Counter& requests =
      StatsRegistry::instance().counter("serve.requests");
  static Counter& errors = StatsRegistry::instance().counter("serve.errors");
  static Histogram& latency =
      StatsRegistry::instance().histogram("serve.request_ns");
  static Histogram& queue_wait =
      StatsRegistry::instance().histogram("serve.queue_wait_us");
  const std::uint64_t dequeue_ns = trace_now_ns();
  const std::uint64_t queue_wait_ns =
      dequeue_ns > request.enqueue_ns ? dequeue_ns - request.enqueue_ns : 0;
  requests.add();
  op_counter(request.frame.opcode).add();
  queue_wait.record(queue_wait_ns / 1000);

  // The queue-wait span completed at dequeue time; record it before any
  // phase span so per-thread completion order stays monotonic. Sampling
  // is decided per request, and an unsampled request also silences its
  // nested GCNT_KERNEL_SCOPE spans via the suppress scope.
  const bool tracing = request.sampled && trace_enabled();
  if (tracing) {
    trace_detail::record("serve.queue_wait", request.enqueue_ns, dequeue_ns,
                         "rid", static_cast<double>(request.rid), nullptr,
                         0.0);
  }
  TraceSuppressScope suppress(trace_enabled() && !request.sampled);

  AccessRecord record;
  record.rid = request.rid;
  record.request_id = request.frame.request_id;
  record.session = request.session;
  record.op = op_name(request.frame.opcode);
  record.queue_wait_us = queue_wait_ns / 1000;
  record.bytes_in = request.bytes_in;

  const auto respond = [&](Frame response) {
    record.bytes_out = frame_bytes(response);
    request.conn->send(response);
  };
  // Non-infer handlers run under one "serve.handle" child span; the
  // infer path records finer decode/forward/encode phases itself.
  const auto handle = [&](std::string (ServeServer::*handler)(const Frame&)) {
    TraceSpan span("serve.handle");
    span.arg("rid", static_cast<double>(request.rid));
    return (this->*handler)(request.frame);
  };
  try {
    switch (static_cast<Op>(request.frame.opcode)) {
      case Op::kPing:
        respond(make_ok_response(request.frame, {}));
        break;
      case Op::kInfer:
        handle_infer(request, ws, record);
        break;
      case Op::kLoadSession:
        respond(make_ok_response(request.frame,
                                 handle(&ServeServer::handle_load_session)));
        break;
      case Op::kAppendObserve:
        respond(make_ok_response(
            request.frame, handle(&ServeServer::handle_append_observe)));
        break;
      case Op::kAppendControl:
        respond(make_ok_response(
            request.frame, handle(&ServeServer::handle_append_control)));
        break;
      case Op::kStats: {
        TraceSpan span("serve.handle");
        span.arg("rid", static_cast<double>(request.rid));
        respond(make_ok_response(request.frame, handle_stats()));
        break;
      }
      case Op::kMetrics:
        respond(make_ok_response(request.frame,
                                 handle(&ServeServer::handle_metrics)));
        break;
      case Op::kReloadModel:
        respond(make_ok_response(request.frame,
                                 handle(&ServeServer::handle_reload)));
        break;
      case Op::kCloseSession:
        respond(make_ok_response(request.frame,
                                 handle(&ServeServer::handle_close_session)));
        break;
      case Op::kShutdown:
        break;  // answered by the reader
    }
  } catch (const Error& e) {
    record.outcome = error_kind_name(e.kind());
    record.error = e.what();
    try {
      respond(make_error_response(request.frame, e.kind(), e.what()));
    } catch (const Error&) {
    }
  } catch (const std::bad_alloc&) {
    record.outcome = error_kind_name(ErrorKind::kResource);
    record.error = "out of memory";
    try {
      respond(make_error_response(request.frame, ErrorKind::kResource,
                                  "out of memory"));
    } catch (const Error&) {
    }
  } catch (const std::exception& e) {
    record.outcome = error_kind_name(ErrorKind::kInternal);
    record.error = e.what();
    try {
      respond(make_error_response(request.frame, ErrorKind::kInternal,
                                  e.what()));
    } catch (const Error&) {
    }
  }
  const std::uint64_t done_ns = trace_now_ns();
  latency.record(done_ns - dequeue_ns);
  if (tracing) {
    trace_detail::record("serve.request", dequeue_ns, done_ns, "rid",
                         static_cast<double>(request.rid), "op",
                         static_cast<double>(request.frame.opcode));
  }
  if (record.outcome != "ok") errors.add();
  record.ts_us = unix_micros();
  record.service_us = (done_ns - dequeue_ns) / 1000;
  log_access(std::move(record));
}

void ServeServer::handle_infer(const Request& request, ForwardWorkspace& ws,
                               AccessRecord& record) {
  static Counter& batched =
      StatsRegistry::instance().counter("serve.batched_infers");
  static Histogram& batch_size =
      StatsRegistry::instance().histogram("serve.batch_size");
  // Claim every queued infer for the same session: one forward pass (or
  // cache hit) answers the whole batch.
  std::vector<Request> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() + 1 < options_.batch_limit;) {
      if (static_cast<Op>(it->frame.opcode) == Op::kInfer &&
          it->session == request.session) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  batched.add(batch.size());
  batch_size.record(batch.size() + 1);
  const std::uint64_t claim_ns = trace_now_ns();
  // A batch member's queue wait ends when the batch claims it.
  for (const Request& r : batch) {
    if (r.sampled && trace_enabled()) {
      trace_detail::record("serve.queue_wait", r.enqueue_ns, claim_ns, "rid",
                           static_cast<double>(r.rid), nullptr, 0.0);
    }
  }

  std::string payload;
  ErrorKind error_kind = ErrorKind::kInternal;
  std::string error_message;
  bool ok = true;
  std::uint64_t decode_done_ns = claim_ns;
  std::uint64_t forward_done_ns = claim_ns;
  try {
    std::shared_ptr<ServeSession> session;
    {
      TraceSpan span("serve.decode");
      span.arg("rid", static_cast<double>(request.rid));
      session = find_session(request.session);
      if (!session) {
        throw Error(ErrorKind::kUsage,
                    "unknown session '" + request.session + "'");
      }
    }
    decode_done_ns = trace_now_ns();
    const ModelRegistry::Snapshot snapshot = models_->snapshot();
    std::lock_guard<std::mutex> lock(session->mutex());
    const Matrix* logits = nullptr;
    {
      TraceSpan span("serve.forward");
      span.arg("rid", static_cast<double>(request.rid));
      logits = &session->logits(snapshot, ws);
    }
    forward_done_ns = trace_now_ns();
    {
      TraceSpan span("serve.encode");
      span.arg("rid", static_cast<double>(request.rid));
      WireWriter writer(payload);
      writer.u32(static_cast<std::uint32_t>(logits->rows()));
      writer.u32(static_cast<std::uint32_t>(logits->cols()));
      payload.reserve(payload.size() +
                      logits->rows() * logits->cols() * sizeof(float));
      for (std::size_t r = 0; r < logits->rows(); ++r) {
        const float* row = logits->row(r);
        for (std::size_t c = 0; c < logits->cols(); ++c) writer.f32(row[c]);
      }
    }
  } catch (const Error& e) {
    ok = false;
    error_kind = e.kind();
    error_message = e.what();
  } catch (const std::exception& e) {
    ok = false;
    error_kind = ErrorKind::kInternal;
    error_message = e.what();
  }
  const std::uint64_t encode_done_ns = trace_now_ns();
  record.decode_us = (decode_done_ns - claim_ns) / 1000;
  record.forward_us = (forward_done_ns - decode_done_ns) / 1000;
  record.encode_us = (encode_done_ns - forward_done_ns) / 1000;
  record.batch = batch.size() + 1;
  if (!ok) {
    record.outcome = error_kind_name(error_kind);
    record.error = error_message;
  }

  const auto response_for = [&](const Frame& frame) {
    return ok ? make_ok_response(frame, payload)
              : make_error_response(frame, error_kind, error_message);
  };
  {
    const Frame response = response_for(request.frame);
    record.bytes_out = frame_bytes(response);
    try {
      request.conn->send(response);
    } catch (const Error&) {
    }
  }
  // Batch members get their own spans and access-log lines; the shared
  // forward pass is visible through the common batch size.
  for (const Request& r : batch) {
    const Frame response = response_for(r.frame);
    try {
      r.conn->send(response);
    } catch (const Error&) {
    }
    const std::uint64_t done_ns = trace_now_ns();
    if (r.sampled && trace_enabled()) {
      trace_detail::record("serve.request", claim_ns, done_ns, "rid",
                           static_cast<double>(r.rid), "op",
                           static_cast<double>(r.frame.opcode));
    }
    AccessRecord member;
    member.ts_us = unix_micros();
    member.rid = r.rid;
    member.request_id = r.frame.request_id;
    member.session = r.session;
    member.op = op_name(r.frame.opcode);
    member.queue_wait_us =
        (claim_ns > r.enqueue_ns ? claim_ns - r.enqueue_ns : 0) / 1000;
    member.service_us = (done_ns - claim_ns) / 1000;
    member.batch = batch.size() + 1;
    member.bytes_in = r.bytes_in;
    member.bytes_out = frame_bytes(response);
    member.outcome = record.outcome;
    member.error = record.error;
    log_access(std::move(member));
  }
}

std::string ServeServer::handle_load_session(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string name = reader.str();
  const std::uint8_t source = reader.u8();
  const std::string data = reader.str();
  const bool standardize = reader.u8() != 0;
  if (name.empty()) {
    throw Error(ErrorKind::kUsage, "session name must not be empty");
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (sessions_.count(name) != 0) {
      throw Error(ErrorKind::kUsage,
                  "session '" + name + "' already exists");
    }
    if (sessions_.size() >= options_.max_sessions) {
      throw Error(ErrorKind::kResource,
                  "session limit reached (" +
                      std::to_string(options_.max_sessions) + ")");
    }
  }
  // Build outside the lock (SCOAP + tensors dominate); publish after.
  auto session = std::make_shared<ServeSession>(
      name, read_netlist_source(source, data), standardize);
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  if (sessions_.count(name) != 0) {
    throw Error(ErrorKind::kUsage, "session '" + name + "' already exists");
  }
  if (sessions_.size() >= options_.max_sessions) {
    throw Error(ErrorKind::kResource,
                "session limit reached (" +
                    std::to_string(options_.max_sessions) + ")");
  }
  std::string payload;
  WireWriter writer(payload);
  writer.u32(static_cast<std::uint32_t>(session->node_count()));
  writer.u32(static_cast<std::uint32_t>(session->edge_count()));
  sessions_.emplace(name, std::move(session));
  StatsRegistry::instance().gauge("serve.sessions").set(
      static_cast<std::int64_t>(sessions_.size()));
  return payload;
}

std::string ServeServer::handle_append_observe(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string name = reader.str();
  const NodeId target = reader.u32();
  const std::shared_ptr<ServeSession> session = find_session(name);
  if (!session) {
    throw Error(ErrorKind::kUsage, "unknown session '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(session->mutex());
  const NodeId op = session->append_observe(target);
  std::string payload;
  WireWriter writer(payload);
  writer.u32(op);
  writer.u32(static_cast<std::uint32_t>(session->node_count()));
  return payload;
}

std::string ServeServer::handle_append_control(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string name = reader.str();
  const NodeId target = reader.u32();
  const bool drive_to_one = reader.u8() != 0;
  const std::shared_ptr<ServeSession> session = find_session(name);
  if (!session) {
    throw Error(ErrorKind::kUsage, "unknown session '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(session->mutex());
  const Netlist::ControlPoint cp =
      session->append_control(target, drive_to_one);
  std::string payload;
  WireWriter writer(payload);
  writer.u32(cp.control);
  writer.u32(cp.gate);
  writer.u32(cp.inverter);
  return payload;
}

std::string ServeServer::handle_stats() {
  std::ostringstream json;
  StatsRegistry::instance().write_json(json);
  std::string payload;
  WireWriter writer(payload);
  writer.str(json.str());
  return payload;
}

std::string ServeServer::handle_metrics(const Frame& frame) {
  std::uint8_t flags = 0;
  if (!frame.body.empty()) {
    WireReader reader(frame.body);
    flags = reader.u8();
  }
  std::ostringstream text;
  {
    // One scrape at a time: the exposition reports deltas and windowed
    // quantiles relative to the previous scrape, whoever made it.
    std::lock_guard<std::mutex> lock(scrape_mutex_);
    const StatsSnapshot cur = StatsRegistry::instance().snapshot();
    write_prometheus(text, cur, have_scrape_ ? &last_scrape_ : nullptr);
    last_scrape_ = cur;
    have_scrape_ = true;
  }
  std::string payload;
  WireWriter writer(payload);
  writer.str(text.str());
  writer.str((flags & 0x1) != 0 && slow_ring_ ? slow_ring_->to_json()
                                              : std::string());
  return payload;
}

void ServeServer::log_access(AccessRecord record) {
  if (slow_ring_) slow_ring_->offer(record);
  if (access_log_) access_log_->write(record);
}

std::uint64_t ServeServer::access_log_lines() const noexcept {
  return access_log_ ? access_log_->lines_written() : 0;
}

std::string ServeServer::handle_reload(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string path = reader.str();
  const std::uint64_t generation = models_->reload(path);
  std::string payload;
  WireWriter writer(payload);
  writer.u64(generation);
  return payload;
}

std::string ServeServer::handle_close_session(const Frame& frame) {
  WireReader reader(frame.body);
  const std::string name = reader.str();
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  if (sessions_.erase(name) == 0) {
    throw Error(ErrorKind::kUsage, "unknown session '" + name + "'");
  }
  StatsRegistry::instance().gauge("serve.sessions").set(
      static_cast<std::int64_t>(sessions_.size()));
  return {};
}

std::shared_ptr<ServeSession> ServeServer::find_session(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

}  // namespace gcnt::serve
