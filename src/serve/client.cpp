#include "serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/rng.h"

namespace gcnt::serve {

namespace {

void set_socket_timeout(int fd, int which, std::uint64_t ms) {
  if (ms == 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof tv);
}

/// connect(2) with an optional timeout: flip the socket non-blocking,
/// poll for writability, read SO_ERROR, restore the original flags.
void connect_fd(int fd, const sockaddr* addr, socklen_t len,
                std::uint64_t timeout_ms, const std::string& target) {
  if (timeout_ms == 0) {
    if (::connect(fd, addr, len) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw Error(ErrorKind::kIo, "cannot connect to " + target + ": " + why);
    }
    return;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, addr, len) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw Error(ErrorKind::kIo, "cannot connect to " + target + ": " + why);
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready <= 0) {
      ::close(fd);
      throw Error(ErrorKind::kIo,
                  "cannot connect to " + target + ": timed out after " +
                      std::to_string(timeout_ms) + " ms");
    }
    int soerr = 0;
    socklen_t soerr_len = sizeof soerr;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &soerr_len);
    if (soerr != 0) {
      const std::string why = std::strerror(soerr);
      ::close(fd);
      throw Error(ErrorKind::kIo, "cannot connect to " + target + ": " + why);
    }
  }
  ::fcntl(fd, F_SETFL, flags);
}

int open_unix(const std::string& path, const ClientOptions& options) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error(ErrorKind::kIo, "socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw Error(ErrorKind::kUsage, "unix socket path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  connect_fd(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr,
             options.connect_timeout_ms, path);
  set_socket_timeout(fd, SO_RCVTIMEO, options.recv_timeout_ms);
  set_socket_timeout(fd, SO_SNDTIMEO, options.send_timeout_ms);
  return fd;
}

int open_tcp(int port, const ClientOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error(ErrorKind::kIo, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  connect_fd(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr,
             options.connect_timeout_ms,
             "127.0.0.1:" + std::to_string(port));
  set_socket_timeout(fd, SO_RCVTIMEO, options.recv_timeout_ms);
  set_socket_timeout(fd, SO_SNDTIMEO, options.send_timeout_ms);
  return fd;
}

/// Ops safe to resend after a transport failure: the daemon either never
/// saw the request or answering it twice changes no state. Mutating ops
/// (load/append/close/reload/shutdown) must never be retried blind.
bool idempotent(Op op) noexcept {
  switch (op) {
    case Op::kPing:
    case Op::kInfer:
    case Op::kStats:
    case Op::kMetrics:
      return true;
    default:
      return false;
  }
}

}  // namespace

ServeClient ServeClient::connect_unix(const std::string& path,
                                      const ClientOptions& options) {
  const int fd = open_unix(path, options);
  ServeClient client(fd, fd, true);
  client.options_ = options;
  client.unix_path_ = path;
  return client;
}

ServeClient ServeClient::connect_tcp(int port, const ClientOptions& options) {
  const int fd = open_tcp(port, options);
  ServeClient client(fd, fd, true);
  client.options_ = options;
  client.tcp_port_ = port;
  return client;
}

ServeClient ServeClient::from_fds(int read_fd, int write_fd, bool owns_fds) {
  return ServeClient(read_fd, write_fd, owns_fds);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : read_fd_(std::exchange(other.read_fd_, -1)),
      write_fd_(std::exchange(other.write_fd_, -1)),
      owns_fds_(other.owns_fds_),
      next_request_id_(other.next_request_id_),
      options_(other.options_),
      last_brownout_(other.last_brownout_),
      unix_path_(std::move(other.unix_path_)),
      tcp_port_(other.tcp_port_) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    close();
    read_fd_ = std::exchange(other.read_fd_, -1);
    write_fd_ = std::exchange(other.write_fd_, -1);
    owns_fds_ = other.owns_fds_;
    next_request_id_ = other.next_request_id_;
    options_ = other.options_;
    last_brownout_ = other.last_brownout_;
    unix_path_ = std::move(other.unix_path_);
    tcp_port_ = other.tcp_port_;
  }
  return *this;
}

ServeClient::~ServeClient() { close(); }

void ServeClient::close() noexcept {
  if (read_fd_ < 0) return;
  if (owns_fds_) {
    ::close(read_fd_);
    if (write_fd_ != read_fd_) ::close(write_fd_);
  }
  read_fd_ = -1;
  write_fd_ = -1;
}

void ServeClient::reconnect() {
  if (unix_path_.empty() && tcp_port_ < 0) {
    throw Error(ErrorKind::kIo,
                "connection lost and this client cannot reconnect "
                "(borrowed descriptors)");
  }
  close();
  const int fd = unix_path_.empty() ? open_tcp(tcp_port_, options_)
                                    : open_unix(unix_path_, options_);
  read_fd_ = fd;
  write_fd_ = fd;
  owns_fds_ = true;
}

std::string ServeClient::call_once(Op op, const std::string& body,
                                   bool* transport) {
  *transport = true;
  Frame request;
  request.version = kProtocolVersion;
  request.opcode = static_cast<std::uint8_t>(op);
  request.request_id = next_request_id_++;
  if (options_.deadline_ms != 0) {
    request.flags |= kFrameFlagDeadline;
    request.deadline_ms = options_.deadline_ms;
  }
  request.body = body;
  if (read_fd_ < 0) {
    throw Error(ErrorKind::kIo, "client connection is closed");
  }
  write_frame(write_fd_, request);

  Frame response;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  const ReadStatus status = read_frame(read_fd_, response, kind, message);
  if (status == ReadStatus::kEof) {
    throw Error(ErrorKind::kIo, "server closed the connection");
  }
  if (status == ReadStatus::kIdle) {
    // SO_RCVTIMEO expired with no reply started. The connection is now
    // ambiguous (the reply may still arrive and desynchronize matching),
    // so a retry must reconnect first — which the transport flag forces.
    throw Error(ErrorKind::kIo,
                "timed out waiting for a response (" +
                    std::to_string(options_.recv_timeout_ms) + " ms)");
  }
  if (status == ReadStatus::kError) throw Error(kind, message);
  if (!response.is_response() ||
      response.request_id != request.request_id) {
    throw Error(ErrorKind::kCorrupt,
                "response does not match the outstanding request");
  }
  // A matching response header means the server processed the request:
  // whatever it says, resending would duplicate work, not repair it.
  *transport = false;
  last_brownout_ = response.is_brownout();
  WireReader reader(response.body);
  const std::uint8_t wire = reader.u8();
  if (wire != kStatusOk) {
    throw Error(error_kind_for_status(wire), reader.str());
  }
  return response.body.substr(1);
}

std::string ServeClient::call(Op op, const std::string& body) {
  const RetryPolicy& retry = options_.retry;
  const bool reconnectable = !unix_path_.empty() || tcp_port_ >= 0;
  std::uint64_t rng_state =
      retry.jitter_seed ^ (static_cast<std::uint64_t>(next_request_id_) *
                           0x9e3779b97f4a7c15ull);
  std::uint64_t slept_ms = 0;
  for (std::size_t attempt = 1;; ++attempt) {
    bool transport = false;
    try {
      return call_once(op, body, &transport);
    } catch (const Error& e) {
      const bool retryable = transport && idempotent(op) && reconnectable &&
                             attempt < retry.max_attempts;
      if (!retryable) throw;
      // Full jitter: sleep uniform in [0, min(max, base << attempt)],
      // bounded by the per-call budget so pathological outages fail
      // fast instead of sleeping forever.
      const std::uint64_t shift = attempt < 20 ? attempt : 20;
      const std::uint64_t cap = std::min<std::uint64_t>(
          retry.max_backoff_ms, retry.base_backoff_ms << shift);
      const std::uint64_t backoff = splitmix64(rng_state) % (cap + 1);
      if (slept_ms + backoff > retry.budget_ms) throw;
      slept_ms += backoff;
      if (backoff != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
      try {
        reconnect();
      } catch (const Error&) {
        // The endpoint is still down; keep backing off until the
        // attempt or sleep budget runs out, then surface this failure.
        if (attempt + 1 >= retry.max_attempts) throw;
      }
    }
  }
}

ServeClient::Health ServeClient::ping() {
  const std::string payload = call(Op::kPing);
  Health health;
  if (payload.empty()) return health;  // v1 daemon: empty ping body
  WireReader reader(payload);
  health.queue_depth = reader.u32();
  health.workers = reader.u32();
  health.model_generation = reader.u64();
  health.brownout = reader.u8() != 0;
  health.sessions = reader.u32();
  return health;
}

ServeClient::SessionInfo ServeClient::load_session_file(
    const std::string& name, const std::string& path, bool standardize) {
  std::string body;
  WireWriter writer(body);
  writer.str(name);
  writer.u8(0);  // source 0: server-side file path
  writer.str(path);
  writer.u8(standardize ? 1 : 0);
  const std::string payload = call(Op::kLoadSession, body);
  WireReader reader(payload);
  SessionInfo info;
  info.nodes = reader.u32();
  info.edges = reader.u32();
  return info;
}

ServeClient::SessionInfo ServeClient::load_session_inline(
    const std::string& name, const std::string& bench_text,
    bool standardize) {
  std::string body;
  WireWriter writer(body);
  writer.str(name);
  writer.u8(1);  // source 1: inline .bench text
  writer.str(bench_text);
  writer.u8(standardize ? 1 : 0);
  const std::string payload = call(Op::kLoadSession, body);
  WireReader reader(payload);
  SessionInfo info;
  info.nodes = reader.u32();
  info.edges = reader.u32();
  return info;
}

Matrix ServeClient::infer(const std::string& session) {
  std::string body;
  WireWriter writer(body);
  writer.str(session);
  const std::string payload = call(Op::kInfer, body);
  WireReader reader(payload);
  const std::uint32_t rows = reader.u32();
  const std::uint32_t cols = reader.u32();
  Matrix logits(rows, cols);
  for (std::uint32_t r = 0; r < rows; ++r) {
    float* row = logits.row(r);
    for (std::uint32_t c = 0; c < cols; ++c) row[c] = reader.f32();
  }
  return logits;
}

ServeClient::ObserveResult ServeClient::append_observe(
    const std::string& session, NodeId target) {
  std::string body;
  WireWriter writer(body);
  writer.str(session);
  writer.u32(target);
  const std::string payload = call(Op::kAppendObserve, body);
  WireReader reader(payload);
  ObserveResult result;
  result.op = reader.u32();
  result.node_count = reader.u32();
  return result;
}

ServeClient::ControlResult ServeClient::append_control(
    const std::string& session, NodeId target, bool drive_to_one) {
  std::string body;
  WireWriter writer(body);
  writer.str(session);
  writer.u32(target);
  writer.u8(drive_to_one ? 1 : 0);
  const std::string payload = call(Op::kAppendControl, body);
  WireReader reader(payload);
  ControlResult result;
  result.control = reader.u32();
  result.gate = reader.u32();
  result.inverter = reader.u32();
  return result;
}

std::string ServeClient::stats_json() {
  const std::string payload = call(Op::kStats);
  WireReader reader(payload);
  return reader.str();
}

ServeClient::MetricsResult ServeClient::metrics(bool include_slow) {
  std::string body;
  WireWriter writer(body);
  writer.u8(include_slow ? 0x1 : 0x0);
  const std::string payload = call(Op::kMetrics, body);
  WireReader reader(payload);
  MetricsResult result;
  result.exposition = reader.str();
  result.slow_json = reader.str();
  return result;
}

std::uint64_t ServeClient::reload(const std::string& path) {
  std::string body;
  WireWriter writer(body);
  writer.str(path);
  const std::string payload = call(Op::kReloadModel, body);
  WireReader reader(payload);
  return reader.u64();
}

void ServeClient::close_session(const std::string& name) {
  std::string body;
  WireWriter writer(body);
  writer.str(name);
  call(Op::kCloseSession, body);
}

void ServeClient::shutdown() { call(Op::kShutdown); }

}  // namespace gcnt::serve
