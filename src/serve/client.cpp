#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gcnt::serve {

ServeClient ServeClient::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error(ErrorKind::kIo, "socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw Error(ErrorKind::kUsage, "unix socket path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error(ErrorKind::kIo, "cannot connect to " + path + ": " + why);
  }
  return ServeClient(fd, fd, true);
}

ServeClient ServeClient::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error(ErrorKind::kIo, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error(ErrorKind::kIo, "cannot connect to 127.0.0.1:" +
                                    std::to_string(port) + ": " + why);
  }
  return ServeClient(fd, fd, true);
}

ServeClient ServeClient::from_fds(int read_fd, int write_fd, bool owns_fds) {
  return ServeClient(read_fd, write_fd, owns_fds);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : read_fd_(std::exchange(other.read_fd_, -1)),
      write_fd_(std::exchange(other.write_fd_, -1)),
      owns_fds_(other.owns_fds_),
      next_request_id_(other.next_request_id_) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    close();
    read_fd_ = std::exchange(other.read_fd_, -1);
    write_fd_ = std::exchange(other.write_fd_, -1);
    owns_fds_ = other.owns_fds_;
    next_request_id_ = other.next_request_id_;
  }
  return *this;
}

ServeClient::~ServeClient() { close(); }

void ServeClient::close() noexcept {
  if (read_fd_ < 0) return;
  if (owns_fds_) {
    ::close(read_fd_);
    if (write_fd_ != read_fd_) ::close(write_fd_);
  }
  read_fd_ = -1;
  write_fd_ = -1;
}

std::string ServeClient::call(Op op, const std::string& body) {
  Frame request;
  request.version = kProtocolVersion;
  request.opcode = static_cast<std::uint8_t>(op);
  request.request_id = next_request_id_++;
  request.body = body;
  write_frame(write_fd_, request);

  Frame response;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  const ReadStatus status = read_frame(read_fd_, response, kind, message);
  if (status == ReadStatus::kEof) {
    throw Error(ErrorKind::kIo, "server closed the connection");
  }
  if (status == ReadStatus::kError) throw Error(kind, message);
  if (!response.is_response() ||
      response.request_id != request.request_id) {
    throw Error(ErrorKind::kCorrupt,
                "response does not match the outstanding request");
  }
  WireReader reader(response.body);
  const std::uint8_t wire = reader.u8();
  if (wire != kStatusOk) {
    throw Error(error_kind_for_status(wire), reader.str());
  }
  return response.body.substr(1);
}

void ServeClient::ping() { call(Op::kPing); }

ServeClient::SessionInfo ServeClient::load_session_file(
    const std::string& name, const std::string& path, bool standardize) {
  std::string body;
  WireWriter writer(body);
  writer.str(name);
  writer.u8(0);  // source 0: server-side file path
  writer.str(path);
  writer.u8(standardize ? 1 : 0);
  const std::string payload = call(Op::kLoadSession, body);
  WireReader reader(payload);
  SessionInfo info;
  info.nodes = reader.u32();
  info.edges = reader.u32();
  return info;
}

ServeClient::SessionInfo ServeClient::load_session_inline(
    const std::string& name, const std::string& bench_text,
    bool standardize) {
  std::string body;
  WireWriter writer(body);
  writer.str(name);
  writer.u8(1);  // source 1: inline .bench text
  writer.str(bench_text);
  writer.u8(standardize ? 1 : 0);
  const std::string payload = call(Op::kLoadSession, body);
  WireReader reader(payload);
  SessionInfo info;
  info.nodes = reader.u32();
  info.edges = reader.u32();
  return info;
}

Matrix ServeClient::infer(const std::string& session) {
  std::string body;
  WireWriter writer(body);
  writer.str(session);
  const std::string payload = call(Op::kInfer, body);
  WireReader reader(payload);
  const std::uint32_t rows = reader.u32();
  const std::uint32_t cols = reader.u32();
  Matrix logits(rows, cols);
  for (std::uint32_t r = 0; r < rows; ++r) {
    float* row = logits.row(r);
    for (std::uint32_t c = 0; c < cols; ++c) row[c] = reader.f32();
  }
  return logits;
}

ServeClient::ObserveResult ServeClient::append_observe(
    const std::string& session, NodeId target) {
  std::string body;
  WireWriter writer(body);
  writer.str(session);
  writer.u32(target);
  const std::string payload = call(Op::kAppendObserve, body);
  WireReader reader(payload);
  ObserveResult result;
  result.op = reader.u32();
  result.node_count = reader.u32();
  return result;
}

ServeClient::ControlResult ServeClient::append_control(
    const std::string& session, NodeId target, bool drive_to_one) {
  std::string body;
  WireWriter writer(body);
  writer.str(session);
  writer.u32(target);
  writer.u8(drive_to_one ? 1 : 0);
  const std::string payload = call(Op::kAppendControl, body);
  WireReader reader(payload);
  ControlResult result;
  result.control = reader.u32();
  result.gate = reader.u32();
  result.inverter = reader.u32();
  return result;
}

std::string ServeClient::stats_json() {
  const std::string payload = call(Op::kStats);
  WireReader reader(payload);
  return reader.str();
}

ServeClient::MetricsResult ServeClient::metrics(bool include_slow) {
  std::string body;
  WireWriter writer(body);
  writer.u8(include_slow ? 0x1 : 0x0);
  const std::string payload = call(Op::kMetrics, body);
  WireReader reader(payload);
  MetricsResult result;
  result.exposition = reader.str();
  result.slow_json = reader.str();
  return result;
}

std::uint64_t ServeClient::reload(const std::string& path) {
  std::string body;
  WireWriter writer(body);
  writer.str(path);
  const std::string payload = call(Op::kReloadModel, body);
  WireReader reader(payload);
  return reader.u64();
}

void ServeClient::close_session(const std::string& name) {
  std::string body;
  WireWriter writer(body);
  writer.str(name);
  call(Op::kCloseSession, body);
}

void ServeClient::shutdown() { call(Op::kShutdown); }

}  // namespace gcnt::serve
