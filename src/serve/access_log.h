#pragma once
// Structured per-request access log for the `gcnt serve` daemon, plus a
// fixed-size ring of the slowest requests.
//
// Every request that received a response produces exactly one JSON line:
//
//   {"ts_us":...,"rid":...,"request_id":...,"session":"...","op":"...",
//    "queue_wait_us":...,"service_us":...,"batch":...,"bytes_in":...,
//    "bytes_out":...,"outcome":"ok"}
//
// `outcome` is "ok" or the typed error-kind name ("io", "corrupt",
// "version", "resource", "usage", "internal", "deadline"); error lines
// add an "error" message field. Phase timings ("decode_us"/"forward_us"/
// "encode_us") appear when the server measured them (the infer path),
// and a `"brownout":true` field marks replies served from cached logits
// under brownout instead of a fresh forward.
//
// Each line is formatted in full, then emitted as ONE write(2) on an
// O_APPEND descriptor — concurrent workers never interleave partial
// lines, and `wc -l` equals the completed-request count.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gcnt::serve {

/// Everything the access log and slow-request ring know about one
/// completed request.
struct AccessRecord {
  std::uint64_t ts_us = 0;       ///< unix wall-clock microseconds
  std::uint64_t rid = 0;         ///< server-assigned request sequence
  std::uint32_t request_id = 0;  ///< client-chosen wire id
  std::string session;           ///< "" for session-less opcodes
  std::string op;                ///< opcode name (see op_name)
  std::uint64_t queue_wait_us = 0;
  std::uint64_t service_us = 0;
  std::uint64_t decode_us = 0;   ///< phase timings; 0 when not measured
  std::uint64_t forward_us = 0;
  std::uint64_t encode_us = 0;
  std::size_t batch = 1;         ///< infers answered by this forward pass
  std::size_t bytes_in = 0;      ///< request frame bytes on the wire
  std::size_t bytes_out = 0;     ///< response frame bytes on the wire
  std::string outcome = "ok";    ///< "ok" or an ErrorKind name
  std::string error;             ///< human-readable message when not ok
  bool brownout = false;         ///< served from cached logits (degraded)
};

/// Serializes `record` as one JSON object (no trailing newline). Session
/// names and error messages are escaped; hostile bytes cannot corrupt
/// the log. Shared by AccessLog and SlowRequestRing::to_json.
std::string format_access_record(const AccessRecord& record);

/// Append-only JSON-lines log. Thread-safe; one write(2) per line.
class AccessLog {
 public:
  /// Opens (or creates) `path` for appending. ok() reports failure —
  /// the daemon logs a warning and serves without an access log rather
  /// than refusing to start.
  explicit AccessLog(const std::string& path);
  ~AccessLog();
  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  bool ok() const noexcept { return fd_ >= 0; }
  void write(const AccessRecord& record);
  std::uint64_t lines_written() const noexcept;

 private:
  int fd_ = -1;
  mutable std::mutex mutex_;
  std::uint64_t lines_ = 0;
};

/// Keeps the N worst requests by service time, dumpable on demand via
/// the kMetrics opcode — the retained records carry the phase timings,
/// so the span tree of a tail-latency request survives after the trace
/// ring has wrapped.
class SlowRequestRing {
 public:
  explicit SlowRequestRing(std::size_t capacity);

  void offer(const AccessRecord& record);
  /// JSON array, slowest first.
  std::string to_json() const;

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<AccessRecord> entries_;  ///< sorted, slowest first
};

}  // namespace gcnt::serve
