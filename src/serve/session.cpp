#include "serve/session.h"

#include <algorithm>

#include "common/log.h"
#include "common/stats.h"
#include "common/trace.h"
#include "gcn/serialize.h"

namespace gcnt::serve {

namespace {

/// load_model_file + the registry's precision policy: an explicit kInt8
/// request calibrates a freshly loaded fp32 model; otherwise the model
/// keeps the tier its artifact encodes.
GcnModel load_serving_model(const std::string& path, Precision precision) {
  GcnModel model = load_model_file(path);
  if (precision == Precision::kInt8 &&
      model.precision() != Precision::kInt8) {
    model.set_precision(Precision::kInt8);
  }
  if (model.precision() == Precision::kInt8) {
    log_info("serve: model serving int8 inference (unedited sessions; "
             "edited sessions fall back to fp32 incremental)");
  }
  return model;
}

}  // namespace

ModelRegistry::ModelRegistry(std::string path, Precision precision)
    : path_(std::move(path)), precision_(precision) {
  model_ = std::make_shared<const GcnModel>(
      load_serving_model(path_, precision_));
}

ModelRegistry::Snapshot ModelRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Snapshot{model_, generation_};
}

std::uint64_t ModelRegistry::reload(const std::string& path) {
  // Load and verify outside the lock: a corrupt artifact throws here and
  // the served model is never touched (load_model_file checks the
  // envelope CRC, the architecture bounds, and weight finiteness).
  const std::string source = path.empty() ? path_ : path;
  auto fresh = std::make_shared<const GcnModel>(
      load_serving_model(source, precision_));
  std::lock_guard<std::mutex> lock(mutex_);
  model_ = std::move(fresh);
  path_ = source;
  ++generation_;
  StatsRegistry::instance().counter("serve.model_reloads").add();
  log_info("serve: model reloaded from ", source, " (generation ",
           generation_, ")");
  return generation_;
}

namespace {

/// OP targets must drive a real signal (same rule as run_gcn_opi).
bool valid_observe_target(const Netlist& netlist, NodeId v) {
  const CellType t = netlist.type(v);
  if (is_sink(t) || t == CellType::kInput) return false;
  for (NodeId g : netlist.fanouts(v)) {
    if (netlist.type(g) == CellType::kObserve) return false;
  }
  return true;
}

bool valid_control_target(const Netlist& netlist, NodeId v) {
  const CellType t = netlist.type(v);
  return !is_sink(t) && t != CellType::kInput;
}

}  // namespace

ServeSession::ServeSession(std::string name, Netlist netlist,
                           bool standardize)
    : name_(std::move(name)),
      netlist_(std::move(netlist)),
      standardize_(standardize) {
  scoap_ = compute_scoap(netlist_);
  levels_ = netlist_.logic_levels();
  tensors_ = build_graph_tensors(netlist_, scoap_, levels_);
  if (standardize_) tensors_.standardize_features();
}

void ServeSession::ensure_model(const ModelRegistry::Snapshot& snapshot) {
  if (model_generation_ == snapshot.generation) return;
  // Hot reload: drop every cache derived from the old weights. The next
  // forward rebuilds them; the old model dies with its last snapshot.
  model_ = snapshot.model;
  model_generation_ = snapshot.generation;
  engine_.reset();
  have_cache_ = false;
  have_plain_ = false;
}

const Matrix& ServeSession::logits(const ModelRegistry::Snapshot& snapshot,
                                   ForwardWorkspace& ws) {
  GCNT_KERNEL_SCOPE("serve.session_infer");
  ensure_model(snapshot);

  if (structural_rebuild_) {
    // Control-point insertion rewires fanouts, so the delta is not
    // append-only: rebuild the tensors and seed the dirty cone with the
    // rows that actually changed (same scheme as run_gcn_cpi).
    scoap_ = compute_scoap(netlist_);
    levels_ = netlist_.logic_levels();
    GraphTensors fresh = build_graph_tensors(netlist_, scoap_, levels_);
    if (standardize_) fresh.standardize_features();
    if (engine_ && have_cache_) {
      const std::size_t old_nodes =
          std::min(tensors_.node_count(), fresh.node_count());
      for (NodeId v = 0; v < old_nodes; ++v) {
        const float* previous = tensors_.features.row(v);
        const float* current = fresh.features.row(v);
        if (!std::equal(previous, previous + kNodeFeatureDim, current)) {
          tracker_.record_feature(v);
        }
      }
      for (NodeId v = static_cast<NodeId>(old_nodes);
           v < fresh.node_count(); ++v) {
        tracker_.record_new_node(v);
      }
    }
    tensors_ = std::move(fresh);
    structural_rebuild_ = false;
    csr_stale_ = false;
  }
  if (csr_stale_) {
    tensors_.rebuild_csr();
    csr_stale_ = false;
  }

  const bool pending_edits = !tracker_.empty();
  if (!pending_edits && engine_ == nullptr) {
    // Pure-infer session: no per-layer embedding cache is kept, the full
    // forward runs through the calling worker's reusable workspace, and
    // repeat requests are cache hits.
    if (!have_plain_) {
      model_->infer(tensors_, ws, plain_logits_);
      have_plain_ = true;
      plain_generation_ = model_generation_;
    }
    return plain_logits_;
  }

  // Edited session: the incremental engine caches E_0..E_D so an
  // insertion batch costs one dirty-cone re-propagation.
  if (engine_ == nullptr) {
    engine_ = std::make_unique<IncrementalGcnEngine>(*model_);
    have_cache_ = false;
    have_plain_ = false;
  }
  if (!have_cache_) {
    engine_->refresh(tensors_);
    have_cache_ = true;
    tracker_.clear();
  } else if (pending_edits) {
    const std::vector<NodeId> dirty =
        tracker_.affected(tensors_, model_->config().depth);
    StatsRegistry::instance().counter("serve.dirty_rows").add(dirty.size());
    engine_->update(tensors_, dirty);
    tracker_.clear();
  }
  return engine_->logits();
}

const Matrix* ServeSession::cached_logits(
    const ModelRegistry::Snapshot& snapshot) const noexcept {
  // The engine's cached logits stay bit-valid across edits (update()
  // keeps them current modulo un-propagated tracker entries); engine_
  // and have_cache_ are dropped on reload before model_generation_
  // advances, so the generation check gates both sources.
  if (engine_ && have_cache_ && model_generation_ == snapshot.generation) {
    return &engine_->logits();
  }
  if (plain_logits_.rows() != 0 && plain_generation_ == snapshot.generation) {
    return &plain_logits_;
  }
  return nullptr;
}

NodeId ServeSession::append_observe(NodeId target) {
  if (target >= netlist_.size()) {
    throw Error(ErrorKind::kUsage,
                "observe target " + std::to_string(target) +
                    " out of range (session has " +
                    std::to_string(netlist_.size()) + " nodes)");
  }
  if (!valid_observe_target(netlist_, target)) {
    throw Error(ErrorKind::kUsage,
                "node " + std::to_string(target) +
                    " cannot take an observation point");
  }
  const NodeId op = netlist_.insert_observe_point(target);
  update_observability_after_observe(netlist_, target, scoap_);
  levels_.resize(netlist_.size(), 0);
  levels_[op] = levels_[target] + 1;
  const std::vector<NodeId> cone = netlist_.fanin_cone(target);
  std::vector<NodeId> changed_rows;
  append_observe_point(tensors_, netlist_, target, op, scoap_, cone,
                       &changed_rows);
  tracker_.record_new_node(op);
  tracker_.record_edge(target, op);
  for (NodeId v : changed_rows) tracker_.record_feature(v);
  csr_stale_ = true;
  have_plain_ = false;
  return op;
}

Netlist::ControlPoint ServeSession::append_control(NodeId target,
                                                   bool drive_to_one) {
  if (target >= netlist_.size()) {
    throw Error(ErrorKind::kUsage,
                "control target " + std::to_string(target) +
                    " out of range (session has " +
                    std::to_string(netlist_.size()) + " nodes)");
  }
  if (!valid_control_target(netlist_, target)) {
    throw Error(ErrorKind::kUsage,
                "node " + std::to_string(target) +
                    " cannot take a control point");
  }
  const Netlist::ControlPoint cp =
      netlist_.insert_control_point(target, drive_to_one);
  // Structural seeds; feature deltas come from the rebuild diff.
  tracker_.record_new_node(cp.control);
  tracker_.record_new_node(cp.gate);
  if (cp.inverter != kInvalidNode) tracker_.record_new_node(cp.inverter);
  tracker_.record_feature(target);
  for (NodeId w : netlist_.fanouts(cp.gate)) tracker_.record_feature(w);
  structural_rebuild_ = true;
  have_plain_ = false;
  return cp;
}

}  // namespace gcnt::serve
