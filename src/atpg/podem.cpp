#include "atpg/podem.h"

#include <algorithm>
#include <limits>

namespace gcnt {

namespace {
constexpr std::size_t kNoSource = std::numeric_limits<std::size_t>::max();
}  // namespace

Podem::Podem(const LogicSimulator& sim, const ScoapMeasures& scoap,
             PodemOptions options)
    : sim_(&sim), scoap_(&scoap), options_(options) {
  const std::size_t n = sim.netlist().size();
  good_.assign(n, Ternary::kX);
  faulty_.assign(n, Ternary::kX);
  source_index_of_.assign(n, kNoSource);
  for (std::size_t i = 0; i < sim.sources().size(); ++i) {
    source_index_of_[sim.sources()[i]] = i;
  }
}

void Podem::imply(const Fault& fault) {
  const Netlist& netlist = sim_->netlist();
  std::fill(good_.begin(), good_.end(), Ternary::kX);
  std::fill(faulty_.begin(), faulty_.end(), Ternary::kX);
  for (std::size_t i = 0; i < sim_->sources().size(); ++i) {
    const NodeId s = sim_->sources()[i];
    good_[s] = source_assignment_[i];
    faulty_[s] = source_assignment_[i];
  }
  // The fault site is pinned in the faulty machine regardless of drive.
  faulty_[fault.node] = ternary_of(fault.stuck_at_one);
  for (NodeId v : sim_->order()) {
    if (!is_source(netlist.type(v))) {
      good_[v] =
          evaluate_ternary(netlist, v, [this](NodeId u) { return good_[u]; });
      if (v != fault.node) {
        faulty_[v] = evaluate_ternary(netlist, v,
                                      [this](NodeId u) { return faulty_[u]; });
      }
    } else if (v == fault.node) {
      // A faulty source still reads the stuck value.
      faulty_[v] = ternary_of(fault.stuck_at_one);
    }
  }
}

bool Podem::fault_detected() const {
  const Netlist& netlist = sim_->netlist();
  for (NodeId sink : sim_->sinks()) {
    const NodeId driver = netlist.fanins(sink).front();
    const Ternary g = good_[driver];
    const Ternary f = faulty_[driver];
    if (g != Ternary::kX && f != Ternary::kX && g != f) return true;
  }
  return false;
}

bool Podem::fault_effect_alive(const Fault& fault) const {
  // Activation still possible?
  const Ternary g = good_[fault.node];
  if (g == ternary_of(fault.stuck_at_one)) return false;  // never activated
  if (g == Ternary::kX) return true;                      // not yet decided
  // Activated: effect must exist somewhere with a path forward. We accept
  // any node carrying a known difference whose fanout is not exhausted.
  const Netlist& netlist = sim_->netlist();
  for (NodeId v = 0; v < netlist.size(); ++v) {
    const Ternary gv = good_[v];
    const Ternary fv = faulty_[v];
    if (gv == Ternary::kX || fv == Ternary::kX || gv == fv) continue;
    if (is_sink(netlist.type(v))) return true;
    for (NodeId g2 : netlist.fanouts(v)) {
      if (good_[g2] == Ternary::kX || faulty_[g2] == Ternary::kX) return true;
      if (is_sink(netlist.type(g2))) return true;
    }
  }
  return false;
}

std::optional<Podem::Objective> Podem::find_objective(
    const Fault& fault) const {
  const Netlist& netlist = sim_->netlist();
  const Ternary activation = ternary_of(!fault.stuck_at_one);
  if (good_[fault.node] == Ternary::kX) {
    return Objective{fault.node, activation == Ternary::kOne};
  }
  if (good_[fault.node] != activation) return std::nullopt;  // conflict

  // D-frontier: gates with a known difference on some fanin and an
  // undetermined output in at least one machine. Prefer the most
  // observable gate (smallest SCOAP CO).
  NodeId best_gate = kInvalidNode;
  std::uint32_t best_co = std::numeric_limits<std::uint32_t>::max();
  for (NodeId v = 0; v < netlist.size(); ++v) {
    if (good_[v] != Ternary::kX && faulty_[v] != Ternary::kX) continue;
    if (is_source(netlist.type(v))) continue;
    bool has_diff_input = false;
    for (NodeId u : netlist.fanins(v)) {
      if (good_[u] != Ternary::kX && faulty_[u] != Ternary::kX &&
          good_[u] != faulty_[u]) {
        has_diff_input = true;
        break;
      }
    }
    if (!has_diff_input) continue;
    const std::uint32_t co =
        v < scoap_->co.size() ? scoap_->co[v] : kScoapInfinity;
    if (co < best_co) {
      best_co = co;
      best_gate = v;
    }
  }
  if (best_gate == kInvalidNode) return std::nullopt;

  // Objective: set an X side input of the chosen gate to its
  // non-controlling value.
  const CellType type = netlist.type(best_gate);
  bool non_controlling = true;  // AND/NAND side inputs at 1
  if (type == CellType::kOr || type == CellType::kNor) non_controlling = false;
  for (NodeId u : netlist.fanins(best_gate)) {
    if (good_[u] == Ternary::kX) {
      // XOR side inputs only need a known value; aim for 0 (cheap default).
      const bool value = (type == CellType::kXor || type == CellType::kXnor)
                             ? false
                             : non_controlling;
      return Objective{u, value};
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> Podem::backtrace(Objective objective,
                                            bool& value) const {
  const Netlist& netlist = sim_->netlist();
  NodeId node = objective.node;
  bool target = objective.value;
  for (;;) {
    if (source_index_of_[node] != kNoSource) {
      value = target;
      return source_index_of_[node];
    }
    const CellType type = netlist.type(node);
    const auto& fanins = netlist.fanins(node);

    // Gate inversion parity.
    const bool inverting = type == CellType::kNot || type == CellType::kNand ||
                           type == CellType::kNor || type == CellType::kXnor;
    const bool input_target = inverting ? !target : target;

    // "All inputs" cases pick the hardest X input; "any input" cases the
    // easiest, following SCOAP controllability.
    bool want_all = false;
    switch (type) {
      case CellType::kAnd:
      case CellType::kNand:
        want_all = input_target;  // output non-controlled value needs all 1s
        break;
      case CellType::kOr:
      case CellType::kNor:
        want_all = !input_target;  // all inputs 0
        break;
      default:
        want_all = false;
        break;
    }

    NodeId chosen = kInvalidNode;
    if (type == CellType::kXor || type == CellType::kXnor) {
      // Choose any X input; required value assumes the remaining X inputs
      // settle to 0 (later objectives will fix them if they do not).
      bool known_parity = false;
      NodeId first_x = kInvalidNode;
      for (NodeId u : fanins) {
        if (good_[u] == Ternary::kX) {
          if (first_x == kInvalidNode) first_x = u;
        } else {
          known_parity ^= good_[u] == Ternary::kOne;
        }
      }
      if (first_x == kInvalidNode) return std::nullopt;
      chosen = first_x;
      target = input_target != known_parity;
      node = chosen;
      continue;
    }

    std::uint32_t best_cost =
        want_all ? 0 : std::numeric_limits<std::uint32_t>::max();
    for (NodeId u : fanins) {
      if (good_[u] != Ternary::kX) continue;
      const std::uint32_t cost =
          input_target ? scoap_->cc1[u] : scoap_->cc0[u];
      const bool better = want_all ? cost >= best_cost : cost <= best_cost;
      if (chosen == kInvalidNode || better) {
        chosen = u;
        best_cost = cost;
      }
    }
    if (chosen == kInvalidNode) return std::nullopt;  // no X input left
    node = chosen;
    target = input_target;
  }
}

PodemResult Podem::generate(const Fault& fault) {
  source_assignment_.assign(sim_->sources().size(), Ternary::kX);
  std::vector<Decision> decisions;
  std::size_t backtracks = 0;
  std::size_t implications = 0;
  bool exhausted = false;

  for (;;) {
    if (++implications > options_.implication_limit) {
      return PodemResult{PodemResult::Status::kAborted, {}};
    }
    imply(fault);
    if (fault_detected()) {
      return PodemResult{PodemResult::Status::kTest, source_assignment_};
    }

    std::optional<Objective> objective;
    if (fault_effect_alive(fault)) {
      objective = find_objective(fault);
    }

    bool need_backtrack = true;
    if (objective) {
      bool value = false;
      if (const auto source = backtrace(*objective, value)) {
        decisions.push_back(Decision{*source, value, false});
        source_assignment_[*source] = ternary_of(value);
        need_backtrack = false;
      }
    }

    if (need_backtrack) {
      ++backtracks;
      if (backtracks > options_.backtrack_limit) {
        return PodemResult{PodemResult::Status::kAborted, {}};
      }
      for (;;) {
        if (decisions.empty()) {
          exhausted = true;
          break;
        }
        Decision& top = decisions.back();
        if (!top.tried_other) {
          top.tried_other = true;
          top.value = !top.value;
          source_assignment_[top.source_index] = ternary_of(top.value);
          break;
        }
        source_assignment_[top.source_index] = Ternary::kX;
        decisions.pop_back();
      }
      if (exhausted) {
        return PodemResult{PodemResult::Status::kUntestable, {}};
      }
    }
  }
}

}  // namespace gcnt
