#pragma once
// PODEM deterministic test generation (Goel, 1981) for single stuck-at
// faults under the full-scan assumption.
//
// Used as the "top-off" stage after random-pattern fault simulation, which
// is how the commercial flow the paper compares against reaches its final
// coverage. Decisions are made only on sources (PIs / scan cells); each
// decision is followed by a full 3-valued implication of the good and
// faulty machines. SCOAP measures guide backtrace (easiest/hardest input
// selection) and D-frontier gate choice (most observable first).

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/ternary.h"
#include "scoap/scoap.h"
#include "sim/fault.h"
#include "sim/logic_sim.h"

namespace gcnt {

struct PodemOptions {
  /// Give up on a fault after this many backtracks (fault is then "aborted",
  /// counted as untestable by the harness, as real ATPG tools do).
  std::size_t backtrack_limit = 64;
  /// Hard cap on implication passes per fault (each pass is O(|V|));
  /// exceeding it aborts the fault. Bounds worst-case runtime.
  std::size_t implication_limit = 512;
};

struct PodemResult {
  enum class Status { kTest, kUntestable, kAborted };
  Status status = Status::kAborted;
  /// Source assignment (in LogicSimulator::sources() order) when
  /// status == kTest; X positions are don't-cares.
  std::vector<Ternary> assignment;
};

class Podem {
 public:
  /// `scoap` must correspond to the same netlist as `sim`.
  Podem(const LogicSimulator& sim, const ScoapMeasures& scoap,
        PodemOptions options = {});

  /// Attempts to generate a test for `fault`.
  PodemResult generate(const Fault& fault);

 private:
  struct Objective {
    NodeId node = kInvalidNode;
    bool value = false;
  };
  struct Decision {
    std::size_t source_index;
    bool value;
    bool tried_other;
  };

  void imply(const Fault& fault);
  bool fault_detected() const;
  bool fault_effect_alive(const Fault& fault) const;
  std::optional<Objective> find_objective(const Fault& fault) const;
  std::optional<std::size_t> backtrace(Objective objective, bool& value) const;

  const LogicSimulator* sim_;
  const ScoapMeasures* scoap_;
  PodemOptions options_;
  std::vector<Ternary> source_assignment_;   // by source index
  std::vector<Ternary> good_;                // by node
  std::vector<Ternary> faulty_;              // by node
  std::vector<std::size_t> source_index_of_; // node -> source index or npos
};

}  // namespace gcnt
