#pragma once
// Full test-generation flow: random-pattern fault simulation with fault
// dropping, greedy pattern compaction, and deterministic PODEM top-off.
//
// This engine plays the role of the commercial ATPG tool in Table 3: both
// OPI flows (baseline and GCN-driven) hand their modified netlists to the
// same run_atpg() and are compared on pattern count and fault coverage.

#include <cstdint>
#include <vector>

#include "atpg/podem.h"
#include "sim/fault.h"

namespace gcnt {

struct AtpgOptions {
  std::uint64_t seed = 7;
  /// Random stage: at most this many 64-pattern batches.
  std::size_t max_random_batches = 48;
  /// Stop the random stage early after this many consecutive batches with
  /// no new detection.
  std::size_t stall_batches = 3;
  /// Run PODEM on faults the random stage missed.
  bool deterministic_topoff = true;
  PodemOptions podem;
  /// Evaluate on a deterministic sample of this many faults (0 = all).
  std::size_t fault_sample = 0;
  /// Keep the compacted pattern set in AtpgResult::patterns (one bit per
  /// source, LogicSimulator::sources() order) for export/replay.
  bool collect_patterns = false;
};

struct AtpgResult {
  std::size_t total_faults = 0;
  std::size_t detected_faults = 0;
  std::size_t untestable_faults = 0;  ///< proven redundant by PODEM
  std::size_t aborted_faults = 0;     ///< PODEM gave up (backtrack limit)
  std::size_t pattern_count = 0;      ///< compacted useful patterns
  /// When AtpgOptions::collect_patterns: the compacted patterns, one
  /// vector<bool> per pattern in sources order. Replaying exactly this set
  /// re-detects every fault counted in detected_faults (tested property).
  std::vector<std::vector<bool>> patterns;

  /// detected / total.
  double fault_coverage() const noexcept {
    return total_faults == 0
               ? 1.0
               : static_cast<double>(detected_faults) /
                     static_cast<double>(total_faults);
  }
  /// detected / (total - proven untestable): what commercial tools report.
  double test_coverage() const noexcept {
    const std::size_t testable = total_faults - untestable_faults;
    return testable == 0 ? 1.0
                         : static_cast<double>(detected_faults) /
                               static_cast<double>(testable);
  }
};

AtpgResult run_atpg(const Netlist& netlist, const AtpgOptions& options = {});

}  // namespace gcnt
