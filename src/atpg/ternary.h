#pragma once
// Three-valued logic (0, 1, X) used by the deterministic test generator.

#include <cstdint>

#include "netlist/netlist.h"

namespace gcnt {

enum class Ternary : std::uint8_t { kZero = 0, kOne = 1, kX = 2 };

constexpr Ternary ternary_not(Ternary a) noexcept {
  if (a == Ternary::kX) return Ternary::kX;
  return a == Ternary::kZero ? Ternary::kOne : Ternary::kZero;
}

constexpr Ternary ternary_of(bool b) noexcept {
  return b ? Ternary::kOne : Ternary::kZero;
}

/// Evaluates node v in 3-valued logic; `value_of(NodeId) -> Ternary`.
template <typename Getter>
Ternary evaluate_ternary(const Netlist& netlist, NodeId v, Getter&& value_of) {
  const auto& fanins = netlist.fanins(v);
  switch (netlist.type(v)) {
    case CellType::kBuf:
    case CellType::kOutput:
    case CellType::kObserve:
      return value_of(fanins[0]);
    case CellType::kNot:
      return ternary_not(value_of(fanins[0]));
    case CellType::kAnd:
    case CellType::kNand: {
      bool any_x = false;
      bool any_zero = false;
      for (NodeId u : fanins) {
        const Ternary t = value_of(u);
        any_x |= t == Ternary::kX;
        any_zero |= t == Ternary::kZero;
      }
      Ternary out = any_zero  ? Ternary::kZero
                    : any_x   ? Ternary::kX
                              : Ternary::kOne;
      return netlist.type(v) == CellType::kAnd ? out : ternary_not(out);
    }
    case CellType::kOr:
    case CellType::kNor: {
      bool any_x = false;
      bool any_one = false;
      for (NodeId u : fanins) {
        const Ternary t = value_of(u);
        any_x |= t == Ternary::kX;
        any_one |= t == Ternary::kOne;
      }
      Ternary out = any_one ? Ternary::kOne
                    : any_x ? Ternary::kX
                            : Ternary::kZero;
      return netlist.type(v) == CellType::kOr ? out : ternary_not(out);
    }
    case CellType::kXor:
    case CellType::kXnor: {
      bool parity = false;
      for (NodeId u : fanins) {
        const Ternary t = value_of(u);
        if (t == Ternary::kX) return Ternary::kX;
        parity ^= t == Ternary::kOne;
      }
      const Ternary out = ternary_of(parity);
      return netlist.type(v) == CellType::kXor ? out : ternary_not(out);
    }
    case CellType::kInput:
    case CellType::kDff:
      break;
  }
  return Ternary::kX;
}

}  // namespace gcnt
