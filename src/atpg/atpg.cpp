#include "atpg/atpg.h"

#include <bit>
#include <unordered_set>

#include "common/log.h"
#include "common/rng.h"
#include "common/trace.h"
#include "sim/fault_sim.h"
#include "sim/logic_sim.h"

namespace gcnt {

AtpgResult run_atpg(const Netlist& netlist, const AtpgOptions& options) {
  LogicSimulator sim(netlist);
  ParallelFaultSimulator fault_sim(sim);
  Rng rng(options.seed);

  std::vector<Fault> faults =
      options.fault_sample == 0
          ? enumerate_faults(netlist)
          : sample_faults(netlist, options.fault_sample, options.seed);

  AtpgResult result;
  result.total_faults = faults.size();
  std::vector<bool> detected(faults.size(), false);
  std::vector<std::uint64_t> words;

  const auto record_pattern = [&](const PatternBatch& batch, int bit) {
    if (!options.collect_patterns) return;
    std::vector<bool> pattern(batch.size());
    for (std::size_t s = 0; s < batch.size(); ++s) {
      pattern[s] = ((batch[s] >> bit) & 1ULL) != 0;
    }
    result.patterns.push_back(std::move(pattern));
  };

  // --- Stage 1: random patterns with fault dropping. A pattern is counted
  // only if it is the first detector of at least one fault (greedy
  // compaction, applied identically to every netlist we compare).
  static Counter& random_batches_counter =
      StatsRegistry::instance().counter("atpg.random_batches");
  std::unordered_set<std::uint64_t> used_patterns;
  {
    TraceSpan random_span("atpg.random");
    random_span.arg("faults", static_cast<double>(faults.size()));
    std::size_t stall = 0;
    for (std::size_t batch_index = 0;
         batch_index < options.max_random_batches &&
         stall < options.stall_batches;
         ++batch_index) {
      random_batches_counter.add();
      const PatternBatch batch = sim.random_batch(rng);
      // Snapshot to attribute each new detection to a concrete pattern.
      std::vector<bool> before = detected;
      const std::size_t newly =
          fault_sim.run_batch(batch, faults, detected, words);
      if (newly == 0) {
        ++stall;
        continue;
      }
      stall = 0;
      for (std::size_t i = 0; i < faults.size(); ++i) {
        if (before[i] || !detected[i]) continue;
        const int first_bit = std::countr_zero(words[i]);
        const std::size_t pattern_id =
            batch_index * 64 + static_cast<std::size_t>(first_bit);
        if (used_patterns.insert(pattern_id).second) {
          record_pattern(batch, first_bit);
        }
      }
    }
  }
  result.pattern_count = used_patterns.size();

  // --- Stage 2: deterministic top-off with PODEM. Each generated test is
  // fault-simulated against all remaining faults so one pattern can drop
  // many.
  if (options.deterministic_topoff) {
    TraceSpan podem_span("atpg.podem");
    static Counter& podem_targets_counter =
        StatsRegistry::instance().counter("atpg.podem_targets");
    const ScoapMeasures scoap = compute_scoap(netlist);
    Podem podem(sim, scoap, options.podem);
    std::vector<std::uint64_t> good_values;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (detected[i]) continue;
      podem_targets_counter.add();
      const PodemResult test = podem.generate(faults[i]);
      if (test.status == PodemResult::Status::kUntestable) {
        ++result.untestable_faults;
        continue;
      }
      if (test.status == PodemResult::Status::kAborted) {
        ++result.aborted_faults;
        continue;
      }
      // One concrete pattern per PODEM test (as production ATPG stores
      // it): don't-cares get a single random fill, replicated across the
      // batch, and the whole remaining fault list is simulated against it
      // so one pattern can drop many faults.
      PatternBatch batch(sim.sources().size());
      for (std::size_t s = 0; s < batch.size(); ++s) {
        switch (test.assignment[s]) {
          case Ternary::kZero:
            batch[s] = 0;
            break;
          case Ternary::kOne:
            batch[s] = ~0ULL;
            break;
          case Ternary::kX:
            batch[s] = rng.chance(0.5) ? ~0ULL : 0ULL;
            break;
        }
      }
      const std::size_t newly =
          fault_sim.run_batch(batch, faults, detected, words);
      if (newly > 0) {
        ++result.pattern_count;
        record_pattern(batch, 0);
      } else {
        // The target fault should have been detected; if random fill broke
        // propagation elsewhere, still count the pattern only on success.
        log_warn("PODEM pattern detected nothing for fault on node ",
                 faults[i].node);
      }
    }
  }

  for (bool d : detected) {
    if (d) ++result.detected_faults;
  }
  return result;
}

}  // namespace gcnt
