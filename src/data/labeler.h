#pragma once
// Difficult-to-observe labeling — the stand-in for the paper's commercial
// DFT tool labels (Section 3.1: "Labels can be obtained from commercial
// DFT tools").
//
// Two oracles are provided:
//
//  * kEmpirical (default): for every node, inject an inversion and count
//    under how many random patterns the change reaches any observed point
//    (scan cell / PO). Nodes observed under fewer than
//    `min_observed_rate` of the patterns are labeled difficult-to-observe.
//    This is the behavioral definition commercial tools approximate.
//  * kCopThreshold: label nodes whose analytic COP observability falls
//    below `cop_threshold`. Orders of magnitude faster; used on very large
//    designs.
//
// Sink pseudo-cells (PO / OP) and sources are labeled easy: there is
// nothing to observe behind a pin, and scan cells are observed directly.

#include <cstdint>
#include <vector>

#include "cop/cop.h"
#include "netlist/netlist.h"

namespace gcnt {

struct LabelerOptions {
  enum class Oracle { kEmpirical, kCopThreshold };
  Oracle oracle = Oracle::kEmpirical;
  /// kEmpirical: number of 64-pattern batches to probe with.
  std::size_t batches = 16;
  /// kEmpirical: observed-fraction below which a node is positive.
  double min_observed_rate = 0.01;
  /// kCopThreshold: COP observability below which a node is positive.
  double cop_threshold = 5e-3;
  std::uint64_t seed = 97;
};

/// Per-node labels: 1 = difficult-to-observe, 0 = easy.
std::vector<std::int32_t> label_difficult_to_observe(
    const Netlist& netlist, const LabelerOptions& options = {});

/// COP-threshold labeling against precomputed measures.
std::vector<std::int32_t> label_by_cop(const Netlist& netlist,
                                       const CopMeasures& cop,
                                       double threshold);

/// Difficult-to-control labels: min(P(=1), P(=0)) below `threshold`
/// (the control-side analog, used by the CPI extension).
std::vector<std::int32_t> label_difficult_to_control(const Netlist& netlist,
                                                     const CopMeasures& cop,
                                                     double threshold);

}  // namespace gcnt
