#pragma once
// Labeled benchmark designs and the sampling schemes of Section 5.
//
// A Dataset owns a netlist, its testability measures, tensors and labels.
// Experiments use leave-one-design-out splits: train on three designs,
// test on the fourth. Balanced experiments (Table 2, Fig. 8) use all
// positive nodes plus an equal-size random sample of negatives.

#include <cstdint>
#include <string>
#include <vector>

#include "data/labeler.h"
#include "gcn/graph_tensors.h"
#include "netlist/netlist.h"
#include "scoap/scoap.h"

namespace gcnt {

struct Dataset {
  Netlist netlist;
  ScoapMeasures scoap;
  std::vector<std::uint32_t> levels;
  GraphTensors tensors;  ///< labels filled in

  std::vector<std::uint32_t> positive_rows;
  std::vector<std::uint32_t> negative_rows;

  const std::string& name() const noexcept { return netlist.name(); }
  std::size_t positives() const noexcept { return positive_rows.size(); }
  std::size_t negatives() const noexcept { return negative_rows.size(); }
};

/// Computes measures, tensors and labels for `netlist` (takes ownership).
Dataset make_dataset(Netlist netlist, const LabelerOptions& options = {});

/// The four Table-1 designs at a given gate budget, fully labeled.
std::vector<Dataset> make_benchmark_suite(std::size_t target_gates,
                                          const LabelerOptions& options = {});

/// All positives plus an equal number of seeded-random negatives.
std::vector<std::uint32_t> balanced_rows(const Dataset& dataset,
                                         std::uint64_t seed);

}  // namespace gcnt
