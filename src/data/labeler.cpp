#include "data/labeler.h"

#include <algorithm>
#include <bit>

#include "common/rng.h"
#include "common/trace.h"
#include "sim/fault_sim.h"
#include "sim/logic_sim.h"

namespace gcnt {

namespace {

bool labelable(const Netlist& netlist, NodeId v) {
  const CellType t = netlist.type(v);
  // Sinks are pins/scan cells (directly observed); sources are scan-fed.
  return !is_sink(t) && t != CellType::kInput;
}

std::vector<std::int32_t> label_empirical(const Netlist& netlist,
                                          const LabelerOptions& options) {
  TraceSpan span("label.empirical");
  span.arg("nodes", static_cast<double>(netlist.size()));
  span.arg("batches", static_cast<double>(options.batches));
  LogicSimulator sim(netlist);
  FaultSimulator probe(sim);
  Rng rng(options.seed);

  std::vector<std::uint32_t> observed(netlist.size(), 0);
  std::vector<std::uint64_t> values;
  for (std::size_t b = 0; b < options.batches; ++b) {
    TraceSpan batch_span("fault_sim.observe");
    sim.simulate(sim.random_batch(rng), values);
    for (NodeId v = 0; v < netlist.size(); ++v) {
      if (!labelable(netlist, v)) continue;
      observed[v] += static_cast<std::uint32_t>(
          std::popcount(probe.observe_word(v, values)));
    }
  }

  const double patterns = static_cast<double>(options.batches) * 64.0;
  std::vector<std::int32_t> labels(netlist.size(), 0);
  for (NodeId v = 0; v < netlist.size(); ++v) {
    if (!labelable(netlist, v)) continue;
    const double rate = static_cast<double>(observed[v]) / patterns;
    labels[v] = rate < options.min_observed_rate ? 1 : 0;
  }
  return labels;
}

}  // namespace

std::vector<std::int32_t> label_by_cop(const Netlist& netlist,
                                       const CopMeasures& cop,
                                       double threshold) {
  std::vector<std::int32_t> labels(netlist.size(), 0);
  for (NodeId v = 0; v < netlist.size(); ++v) {
    if (!labelable(netlist, v)) continue;
    labels[v] = cop.observability[v] < threshold ? 1 : 0;
  }
  return labels;
}

std::vector<std::int32_t> label_difficult_to_control(const Netlist& netlist,
                                                     const CopMeasures& cop,
                                                     double threshold) {
  std::vector<std::int32_t> labels(netlist.size(), 0);
  for (NodeId v = 0; v < netlist.size(); ++v) {
    if (!labelable(netlist, v)) continue;
    const double p1 = cop.prob_one[v];
    labels[v] = std::min(p1, 1.0 - p1) < threshold ? 1 : 0;
  }
  return labels;
}

std::vector<std::int32_t> label_difficult_to_observe(
    const Netlist& netlist, const LabelerOptions& options) {
  if (options.oracle == LabelerOptions::Oracle::kCopThreshold) {
    const CopMeasures cop = compute_cop(netlist);
    return label_by_cop(netlist, cop, options.cop_threshold);
  }
  return label_empirical(netlist, options);
}

}  // namespace gcnt
