#include "data/dataset.h"

#include <algorithm>

#include "common/rng.h"
#include "common/trace.h"
#include "gen/generator.h"

namespace gcnt {

Dataset make_dataset(Netlist netlist, const LabelerOptions& options) {
  TraceSpan span("dataset.build");
  span.arg("nodes", static_cast<double>(netlist.size()));
  Dataset dataset;
  dataset.netlist = std::move(netlist);
  dataset.scoap = compute_scoap(dataset.netlist);
  dataset.levels = dataset.netlist.logic_levels();
  dataset.tensors =
      build_graph_tensors(dataset.netlist, dataset.scoap, dataset.levels);
  dataset.tensors.labels = label_difficult_to_observe(dataset.netlist, options);
  for (std::uint32_t v = 0; v < dataset.netlist.size(); ++v) {
    if (dataset.tensors.labels[v] == 1) {
      dataset.positive_rows.push_back(v);
    } else {
      dataset.negative_rows.push_back(v);
    }
  }
  return dataset;
}

std::vector<Dataset> make_benchmark_suite(std::size_t target_gates,
                                          const LabelerOptions& options) {
  std::vector<Dataset> suite;
  suite.reserve(4);
  for (int i = 0; i < 4; ++i) {
    suite.push_back(
        make_dataset(generate_benchmark_design(i, target_gates), options));
  }
  return suite;
}

std::vector<std::uint32_t> balanced_rows(const Dataset& dataset,
                                         std::uint64_t seed) {
  std::vector<std::uint32_t> rows = dataset.positive_rows;
  Rng rng(seed);
  const std::size_t take =
      std::min(dataset.negative_rows.size(), dataset.positive_rows.size());
  for (std::size_t index : rng.sample_indices(dataset.negative_rows.size(), take)) {
    rows.push_back(dataset.negative_rows[index]);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace gcnt
