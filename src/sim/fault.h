#pragma once
// Single stuck-at fault model on node outputs.
//
// The fault universe matches the paper's OPI granularity: for every gate,
// the question is whether its *output* is testable, so faults live on node
// outputs (stuck-at-0 and stuck-at-1 per node). Sink cells (PO / OP) have
// no output net and carry no faults.

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace gcnt {

struct Fault {
  NodeId node = kInvalidNode;
  bool stuck_at_one = false;

  friend bool operator==(const Fault&, const Fault&) = default;
};

/// Full collapsed fault list: sa0 + sa1 on every node that has an output
/// net (everything except OUTPUT and OBSERVE cells).
std::vector<Fault> enumerate_faults(const Netlist& netlist);

/// Deterministically samples `count` faults (for tractable coverage
/// evaluation on large designs). Returns the full list if it is smaller.
std::vector<Fault> sample_faults(const Netlist& netlist, std::size_t count,
                                 std::uint64_t seed);

}  // namespace gcnt
