#pragma once
// Event-driven parallel-pattern single-fault propagation (PPSFP).
//
// For one 64-pattern batch, the good machine is simulated once; each fault
// is then injected and only the divergence is propagated (in topological
// rank order) until it dies out or reaches a sink. Returns, per fault, the
// 64-bit word of patterns that detect it. Epoch-stamped scratch arrays make
// per-fault cleanup O(events), not O(nodes).

#include <cstdint>
#include <vector>

#include "sim/fault.h"
#include "sim/logic_sim.h"

namespace gcnt {

class FaultSimulator {
 public:
  explicit FaultSimulator(const LogicSimulator& sim);

  /// Detection word for `fault` under the batch whose good-machine values
  /// are `good` (from LogicSimulator::simulate). Bit k set = pattern k
  /// observes the fault at some sink.
  std::uint64_t detect_word(const Fault& fault,
                            const std::vector<std::uint64_t>& good);

  /// Empirical observability probe: injects an *inversion* at `node`
  /// (faulty word = ~good) so the fault is excited under every pattern,
  /// and returns the patterns under which the change reaches a sink. The
  /// popcount over many batches estimates P(change at node is observed) —
  /// the behavioral quantity commercial DFT tools threshold when flagging
  /// difficult-to-observe nodes.
  std::uint64_t observe_word(NodeId node,
                             const std::vector<std::uint64_t>& good);

  /// Convenience: simulates `batch` and updates `detected` flags for all
  /// not-yet-detected faults (fault dropping). Returns how many faults
  /// were newly detected, and stores each fault's detection word in
  /// `words` (zeroed for already-detected faults).
  std::size_t run_batch(const PatternBatch& batch,
                        const std::vector<Fault>& faults,
                        std::vector<bool>& detected,
                        std::vector<std::uint64_t>& words);

 private:
  /// Shared propagation engine: seeds `node` with `forced` and returns the
  /// detection word.
  std::uint64_t propagate(NodeId node, std::uint64_t forced,
                          const std::vector<std::uint64_t>& good);

  struct Event {
    std::uint32_t rank;
    NodeId node;
    friend bool operator>(const Event& a, const Event& b) {
      return a.rank > b.rank;
    }
  };

  std::uint64_t faulty_or_good(NodeId u,
                               const std::vector<std::uint64_t>& good) const {
    return stamp_[u] == epoch_ ? faulty_[u] : good[u];
  }

  const LogicSimulator* sim_;
  std::vector<std::uint64_t> faulty_;
  std::vector<std::uint32_t> stamp_;    // faulty_[v] valid this epoch
  std::vector<std::uint32_t> queued_;   // v already scheduled this epoch
  std::uint32_t epoch_ = 0;
  std::vector<std::uint64_t> scratch_values_;
};

/// Fault-partition parallel PPSFP: the good machine is simulated once per
/// batch, then the fault list is split into contiguous static blocks, each
/// propagated by a private FaultSimulator lane on the shared kernel pool
/// (common/parallel.h). Every fault's detection word depends only on the
/// shared good-machine values, so results are bitwise identical to the
/// serial FaultSimulator for any thread count; the detected/newly update
/// is a fixed-order serial reduce. Lanes persist across batches so the
/// per-lane scratch arrays are allocated once.
class ParallelFaultSimulator {
 public:
  explicit ParallelFaultSimulator(const LogicSimulator& sim);

  /// Drop-in replacement for FaultSimulator::run_batch.
  std::size_t run_batch(const PatternBatch& batch,
                        const std::vector<Fault>& faults,
                        std::vector<bool>& detected,
                        std::vector<std::uint64_t>& words);

 private:
  const LogicSimulator* sim_;
  std::vector<FaultSimulator> lanes_;  // one per partition, grown on demand
  std::vector<std::uint64_t> good_;
};

}  // namespace gcnt
