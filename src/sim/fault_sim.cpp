#include "sim/fault_sim.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/parallel.h"
#include "common/trace.h"
#include "sim/gate_eval.h"

namespace gcnt {

FaultSimulator::FaultSimulator(const LogicSimulator& sim) : sim_(&sim) {
  const std::size_t n = sim.netlist().size();
  faulty_.assign(n, 0);
  stamp_.assign(n, 0);
  queued_.assign(n, 0);
}

std::uint64_t FaultSimulator::detect_word(
    const Fault& fault, const std::vector<std::uint64_t>& good) {
  const std::uint64_t forced = fault.stuck_at_one ? ~0ULL : 0ULL;
  if ((good[fault.node] ^ forced) == 0) return 0;  // never excited
  return propagate(fault.node, forced, good);
}

std::uint64_t FaultSimulator::observe_word(
    NodeId node, const std::vector<std::uint64_t>& good) {
  return propagate(node, ~good[node], good);
}

std::uint64_t FaultSimulator::propagate(
    NodeId node, std::uint64_t forced,
    const std::vector<std::uint64_t>& good) {
  const Netlist& netlist = sim_->netlist();
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    // Epoch wrap would alias stale stamps; reset the scratch arrays.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    std::fill(queued_.begin(), queued_.end(), 0);
    epoch_ = 0;
  }
  ++epoch_;

  faulty_[node] = forced;
  stamp_[node] = epoch_;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  const auto& rank = sim_->rank();
  const auto schedule = [&](NodeId v) {
    if (queued_[v] == epoch_) return;
    queued_[v] = epoch_;
    queue.push(Event{rank[v], v});
  };

  std::uint64_t detected = 0;
  // A fault on a source/logic node may itself be directly captured if it
  // drives a sink; seed by scheduling its fanouts.
  for (NodeId g : netlist.fanouts(node)) schedule(g);

  while (!queue.empty()) {
    const NodeId v = queue.top().node;
    queue.pop();
    const CellType type = netlist.type(v);
    if (is_sink(type)) {
      // Capture: compare the D/pin value. (For a DFF the fault effect is
      // captured but does not propagate through the Q output this cycle.)
      const NodeId driver = netlist.fanins(v).front();
      detected |= faulty_or_good(driver, good) ^ good[driver];
      continue;
    }
    const std::uint64_t value = evaluate_gate(
        netlist, v, [&](NodeId u) { return faulty_or_good(u, good); });
    if (value == good[v]) continue;  // divergence died here
    faulty_[v] = value;
    stamp_[v] = epoch_;
    for (NodeId g : netlist.fanouts(v)) schedule(g);
  }
  return detected;
}

std::size_t FaultSimulator::run_batch(const PatternBatch& batch,
                                      const std::vector<Fault>& faults,
                                      std::vector<bool>& detected,
                                      std::vector<std::uint64_t>& words) {
  sim_->simulate(batch, scratch_values_);
  words.assign(faults.size(), 0);
  std::size_t newly = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i]) continue;
    const std::uint64_t word = detect_word(faults[i], scratch_values_);
    words[i] = word;
    if (word != 0) {
      detected[i] = true;
      ++newly;
    }
  }
  return newly;
}

namespace {
// Fault propagation is hundreds of events per fault; small lists run on one
// lane to skip the dispatch cost.
constexpr std::size_t kMinParallelFaults = 64;
}  // namespace

ParallelFaultSimulator::ParallelFaultSimulator(const LogicSimulator& sim)
    : sim_(&sim) {}

std::size_t ParallelFaultSimulator::run_batch(
    const PatternBatch& batch, const std::vector<Fault>& faults,
    std::vector<bool>& detected, std::vector<std::uint64_t>& words) {
  GCNT_KERNEL_SCOPE("fault_sim.batch");
  static Counter& faults_counter =
      StatsRegistry::instance().counter("fault_sim.faults_simulated");
  faults_counter.add(faults.size());
  sim_->simulate(batch, good_);
  words.assign(faults.size(), 0);

  const BlockPlan plan = plan_blocks(faults.size(), kMinParallelFaults);
  while (lanes_.size() < plan.count) lanes_.emplace_back(*sim_);
  // Parallel phase: reads `detected` (no writer), writes disjoint `words`
  // slices; each lane keeps its own epoch-stamped scratch.
  run_blocks(plan, [&](std::size_t block, std::size_t begin, std::size_t end) {
    FaultSimulator& lane = lanes_[block];
    for (std::size_t i = begin; i < end; ++i) {
      if (detected[i]) continue;
      words[i] = lane.detect_word(faults[i], good_);
    }
  });
  // Fixed-order reduce: update drop flags and count new detections
  // serially (vector<bool> packs bits, so flag writes must not race).
  std::size_t newly = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (!detected[i] && words[i] != 0) {
      detected[i] = true;
      ++newly;
    }
  }
  return newly;
}

}  // namespace gcnt
