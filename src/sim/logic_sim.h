#pragma once
// 64-way bit-parallel logic simulation of the combinational (full-scan)
// view of a netlist.
//
// Each simulation evaluates 64 patterns at once: every node holds a 64-bit
// word whose bit k is the node's value under pattern k. Sources are the
// primary inputs plus scan flip-flop outputs (scan load); sinks are primary
// outputs, scan D pins and observation points (scan capture).

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "netlist/netlist.h"

namespace gcnt {

/// A batch of 64 patterns: one word per source, in source-order.
using PatternBatch = std::vector<std::uint64_t>;

class LogicSimulator {
 public:
  explicit LogicSimulator(const Netlist& netlist);

  const Netlist& netlist() const noexcept { return *netlist_; }

  /// Sources in the order PatternBatch words are consumed
  /// (primary inputs first, then flip-flops).
  const std::vector<NodeId>& sources() const noexcept { return sources_; }

  /// Sink nodes where values are observed (POs, OPs, DFFs via D capture).
  const std::vector<NodeId>& sinks() const noexcept { return sinks_; }

  /// Nodes in evaluation (topological) order.
  const std::vector<NodeId>& order() const noexcept { return order_; }
  /// Position of each node within order() — ranks increase along edges.
  const std::vector<std::uint32_t>& rank() const noexcept { return rank_; }

  /// Evaluates all 64 patterns; `values` is resized to netlist().size().
  /// values[v] bit k = value of node v under pattern k. A DFF's word is its
  /// scan-loaded value (from the batch); the captured D value is the word
  /// of its fanin.
  void simulate(const PatternBatch& batch,
                std::vector<std::uint64_t>& values) const;

  /// Evaluates one node from already-computed fanin words (used by the
  /// fault simulator when replaying events). Not meaningful for sources.
  std::uint64_t evaluate(NodeId v,
                         const std::vector<std::uint64_t>& values) const;

  /// Uniform random batch.
  PatternBatch random_batch(Rng& rng) const;

 private:
  const Netlist* netlist_;
  std::vector<NodeId> sources_;
  std::vector<NodeId> sinks_;
  std::vector<NodeId> order_;
  std::vector<std::uint32_t> rank_;
};

}  // namespace gcnt
