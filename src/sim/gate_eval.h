#pragma once
// Shared 64-bit gate evaluation over an arbitrary fanin-value getter.
//
// Used by both the good-machine simulator (getter = dense value array) and
// the fault simulator (getter = faulty-else-good overlay), so the two can
// never disagree on gate semantics.

#include <cstdint>

#include "netlist/netlist.h"

namespace gcnt {

/// Evaluates node v's output word; `value_of(NodeId) -> std::uint64_t`
/// supplies fanin words. Source nodes (INPUT/DFF) are not evaluable here.
template <typename Getter>
std::uint64_t evaluate_gate(const Netlist& netlist, NodeId v,
                            Getter&& value_of) {
  const auto& fanins = netlist.fanins(v);
  switch (netlist.type(v)) {
    case CellType::kBuf:
    case CellType::kOutput:
    case CellType::kObserve:
      return value_of(fanins[0]);
    case CellType::kNot:
      return ~value_of(fanins[0]);
    case CellType::kAnd:
    case CellType::kNand: {
      std::uint64_t acc = ~0ULL;
      for (NodeId u : fanins) acc &= value_of(u);
      return netlist.type(v) == CellType::kAnd ? acc : ~acc;
    }
    case CellType::kOr:
    case CellType::kNor: {
      std::uint64_t acc = 0;
      for (NodeId u : fanins) acc |= value_of(u);
      return netlist.type(v) == CellType::kOr ? acc : ~acc;
    }
    case CellType::kXor:
    case CellType::kXnor: {
      std::uint64_t acc = 0;
      for (NodeId u : fanins) acc ^= value_of(u);
      return netlist.type(v) == CellType::kXor ? acc : ~acc;
    }
    case CellType::kInput:
    case CellType::kDff:
      break;
  }
  return 0;
}

}  // namespace gcnt
