#include "sim/logic_sim.h"

#include <stdexcept>

#include "sim/gate_eval.h"

namespace gcnt {

LogicSimulator::LogicSimulator(const Netlist& netlist)
    : netlist_(&netlist), order_(netlist.topological_order()) {
  for (NodeId pi : netlist.primary_inputs()) sources_.push_back(pi);
  for (NodeId ff : netlist.flip_flops()) sources_.push_back(ff);
  for (NodeId po : netlist.primary_outputs()) sinks_.push_back(po);
  for (NodeId op : netlist.observe_points()) sinks_.push_back(op);
  for (NodeId ff : netlist.flip_flops()) sinks_.push_back(ff);
  rank_.assign(netlist.size(), 0);
  for (std::uint32_t i = 0; i < order_.size(); ++i) rank_[order_[i]] = i;
}

std::uint64_t LogicSimulator::evaluate(
    NodeId v, const std::vector<std::uint64_t>& values) const {
  if (is_source(netlist_->type(v))) {
    return values[v];  // sources keep their scan-loaded word
  }
  return evaluate_gate(*netlist_, v,
                       [&values](NodeId u) { return values[u]; });
}

void LogicSimulator::simulate(const PatternBatch& batch,
                              std::vector<std::uint64_t>& values) const {
  if (batch.size() != sources_.size()) {
    throw std::invalid_argument("pattern batch size does not match sources");
  }
  values.assign(netlist_->size(), 0);
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    values[sources_[i]] = batch[i];
  }
  for (NodeId v : order_) {
    if (is_source(netlist_->type(v))) continue;
    values[v] = evaluate(v, values);
  }
}

PatternBatch LogicSimulator::random_batch(Rng& rng) const {
  PatternBatch batch(sources_.size());
  for (auto& word : batch) word = rng();
  return batch;
}

}  // namespace gcnt
