#include "sim/fault.h"

#include "common/rng.h"

namespace gcnt {

std::vector<Fault> enumerate_faults(const Netlist& netlist) {
  std::vector<Fault> faults;
  faults.reserve(2 * netlist.size());
  for (NodeId v = 0; v < netlist.size(); ++v) {
    const CellType t = netlist.type(v);
    if (t == CellType::kOutput || t == CellType::kObserve) continue;
    faults.push_back(Fault{v, false});
    faults.push_back(Fault{v, true});
  }
  return faults;
}

std::vector<Fault> sample_faults(const Netlist& netlist, std::size_t count,
                                 std::uint64_t seed) {
  auto all = enumerate_faults(netlist);
  if (all.size() <= count) return all;
  Rng rng(seed);
  const auto keep = rng.sample_indices(all.size(), count);
  std::vector<Fault> sampled;
  sampled.reserve(count);
  for (std::size_t index : keep) sampled.push_back(all[index]);
  return sampled;
}

}  // namespace gcnt
