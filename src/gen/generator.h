#pragma once
// Seeded synthetic gate-level circuit generator.
//
// Stand-in for the paper's four industrial 12nm designs (Table 1), which we
// cannot redistribute. The generator reproduces the properties the GCN and
// the DFT flows actually react to:
//
//  * levelized DAG structure with locality-biased fanin selection
//    (module-like clustering) and reconvergent fanout,
//  * a realistic gate-type mix and fanin distribution,
//  * sequential elements treated as scan cells,
//  * XOR-tree output compaction so no signal dangles, and
//  * "observability traps": regions whose only propagation path runs
//    through an AND/OR gate whose side input is a wide reduction that is
//    almost never at its non-controlling value (the paper's Figure 2
//    "Module 1 is unobservable" pattern). These regions produce the
//    difficult-to-observe population (~0.5-1% of nodes, matching the
//    paper's #POS/#NEG ratio).
//
// The same seed always yields the same netlist.

#include <cstdint>

#include "netlist/netlist.h"

namespace gcnt {

struct GeneratorConfig {
  std::uint64_t seed = 1;
  /// Approximate number of logic gates (the final node count also includes
  /// PIs, POs, DFFs and compactor gates; see generate_circuit docs).
  std::size_t target_gates = 10000;
  std::size_t primary_inputs = 64;
  std::size_t primary_outputs = 32;
  /// Number of scan flip-flops (sources at level 0, D pins tied to logic).
  std::size_t flip_flops = 128;
  /// Gate fanin is drawn from [2, max_fanin] with geometric bias toward 2.
  int max_fanin = 4;
  /// Fraction of logic gates placed inside observability traps.
  double trap_fraction = 0.03;
  /// Width of each trap's enable reduction tree; propagation probability
  /// through the trap gate is ~2^-trap_enable_width.
  int trap_enable_width = 9;
  /// Target combinational depth (scan-to-scan logic levels); gates at rank
  /// r draw mostly from rank r-1, as synthesized pipelines do.
  std::size_t target_depth = 24;
};

/// Generates a structurally valid netlist (Netlist::validate() is empty).
Netlist generate_circuit(const GeneratorConfig& config);

/// The four Table-1 designs B1..B4 at a given gate budget: same generator
/// with per-design seeds/shape tweaks. `index` is 0..3.
Netlist generate_benchmark_design(int index, std::size_t target_gates);

}  // namespace gcnt
