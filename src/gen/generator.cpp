#include "gen/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"

namespace gcnt {

namespace {

/// Gate-type mix for ordinary logic. Inversion-rich (NAND/NOR/NOT heavy)
/// like synthesized standard-cell netlists: inverting gates keep signal
/// probabilities near 0.5, which keeps typical logic randomly observable —
/// so the difficult-to-observe population comes from the deliberate traps,
/// not from probability drift.
CellType random_logic_type(Rng& rng) {
  const double r = rng.uniform();
  if (r < 0.08) return CellType::kAnd;
  if (r < 0.36) return CellType::kNand;
  if (r < 0.42) return CellType::kOr;
  if (r < 0.60) return CellType::kNor;
  if (r < 0.70) return CellType::kXor;
  if (r < 0.75) return CellType::kXnor;
  if (r < 0.92) return CellType::kNot;
  return CellType::kBuf;
}

int random_arity(CellType type, int max_fanin, Rng& rng) {
  if (type == CellType::kNot || type == CellType::kBuf) return 1;
  (void)type;
  // Geometric bias toward 2-input gates.
  int arity = 2;
  while (arity < max_fanin && rng.chance(0.3)) ++arity;
  return arity;
}

/// COP-style signal probability of a prospective gate (independence
/// approximation). Used to keep generated logic probability-balanced: a
/// netlist whose signals drift to near-constant values is untypical of
/// synthesized logic and drowns the deliberate traps in accidental ones.
double gate_p1(CellType type, const std::vector<NodeId>& fanins,
               const std::vector<double>& p1) {
  switch (type) {
    case CellType::kBuf:
      return p1[fanins[0]];
    case CellType::kNot:
      return 1.0 - p1[fanins[0]];
    case CellType::kAnd:
    case CellType::kNand: {
      double all = 1.0;
      for (NodeId u : fanins) all *= p1[u];
      return type == CellType::kAnd ? all : 1.0 - all;
    }
    case CellType::kOr:
    case CellType::kNor: {
      double none = 1.0;
      for (NodeId u : fanins) none *= 1.0 - p1[u];
      return type == CellType::kOr ? 1.0 - none : none;
    }
    case CellType::kXor:
    case CellType::kXnor: {
      double odd = 0.0;
      for (NodeId u : fanins) odd = odd * (1.0 - p1[u]) + (1.0 - odd) * p1[u];
      return type == CellType::kXor ? odd : 1.0 - odd;
    }
    default:
      return 0.5;
  }
}

/// AND-reduces `signals` with a tree of AND gates; returns the root.
NodeId and_reduce(Netlist& netlist, std::vector<NodeId> signals,
                  int max_fanin, std::size_t* created) {
  assert(!signals.empty());
  while (signals.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < signals.size();) {
      const std::size_t take = std::min<std::size_t>(
          static_cast<std::size_t>(max_fanin), signals.size() - i);
      if (take == 1) {
        next.push_back(signals[i]);
        ++i;
        continue;
      }
      const NodeId gate = netlist.add_node(CellType::kAnd);
      for (std::size_t k = 0; k < take; ++k) {
        netlist.connect(signals[i + k], gate);
      }
      if (created) ++*created;
      next.push_back(gate);
      i += take;
    }
    signals = std::move(next);
  }
  return signals.front();
}

/// XOR-reduces `signals` (output-compactor style) down to at most `keep`.
std::vector<NodeId> xor_compact(Netlist& netlist, std::vector<NodeId> signals,
                                std::size_t keep, int max_fanin) {
  while (signals.size() > keep) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < signals.size();) {
      const std::size_t take = std::min<std::size_t>(
          static_cast<std::size_t>(max_fanin), signals.size() - i);
      if (take == 1) {
        next.push_back(signals[i]);
        ++i;
        continue;
      }
      const NodeId gate = netlist.add_node(CellType::kXor);
      for (std::size_t k = 0; k < take; ++k) {
        netlist.connect(signals[i + k], gate);
      }
      next.push_back(gate);
      i += take;
    }
    if (next.size() == signals.size()) break;
    signals = std::move(next);
  }
  return signals;
}

/// Levelized driver pools: rank 0 holds the sources; gates at rank r draw
/// mostly from rank r-1, which bounds combinational depth the way logic
/// between scan stages is bounded in real designs.
class LeveledPools {
 public:
  explicit LeveledPools(std::vector<NodeId> sources) {
    ranks_.push_back(std::move(sources));
  }

  void start_rank() { ranks_.emplace_back(); }
  void add(NodeId v) { ranks_.back().push_back(v); }
  std::size_t current_rank() const { return ranks_.size() - 1; }

  /// Picks one driver for a gate at the current rank: mostly the previous
  /// rank (with a dangling-node preference), sometimes 2-4 ranks back
  /// (reconvergence), occasionally a source.
  NodeId pick(const Netlist& netlist, Rng& rng) const {
    const std::size_t r = current_rank();
    const double roll = rng.uniform();
    const std::vector<NodeId>* pool;
    if (roll < 0.72 || r <= 1) {
      pool = &ranks_[r - 1];
    } else if (roll < 0.92) {
      const std::size_t back = 2 + rng.below(std::min<std::size_t>(3, r - 1));
      pool = &ranks_[r - back];
    } else {
      pool = &ranks_[0];
    }
    if (pool->empty()) pool = &ranks_[r - 1];
    NodeId candidate = (*pool)[rng.below(pool->size())];
    // Prefer a dangling node from the previous rank so little logic is
    // left unconnected.
    if (!netlist.fanouts(candidate).empty() && rng.chance(0.5)) {
      const auto& prev = ranks_[r - 1];
      const NodeId retry = prev[rng.below(prev.size())];
      if (netlist.fanouts(retry).empty()) candidate = retry;
    }
    return candidate;
  }

  std::vector<NodeId> pick_distinct(const Netlist& netlist, int arity,
                                    Rng& rng) const {
    std::vector<NodeId> chosen;
    chosen.reserve(static_cast<std::size_t>(arity));
    for (int attempt = 0; static_cast<int>(chosen.size()) < arity; ++attempt) {
      const NodeId candidate = pick(netlist, rng);
      if (std::find(chosen.begin(), chosen.end(), candidate) ==
          chosen.end()) {
        chosen.push_back(candidate);
      } else if (attempt > 8 * arity) {
        chosen.push_back(candidate);  // tiny pools: accept duplicates
      }
    }
    return chosen;
  }

 private:
  std::vector<std::vector<NodeId>> ranks_;
};

}  // namespace

Netlist generate_circuit(const GeneratorConfig& config) {
  Rng rng(config.seed);
  Netlist netlist("synth_" + std::to_string(config.seed));

  // Sources: primary inputs and scan flip-flops.
  std::vector<NodeId> sources;
  for (std::size_t i = 0; i < config.primary_inputs; ++i) {
    sources.push_back(
        netlist.add_node(CellType::kInput, "pi" + std::to_string(i)));
  }
  std::vector<NodeId> dffs;
  for (std::size_t i = 0; i < config.flip_flops; ++i) {
    const NodeId ff =
        netlist.add_node(CellType::kDff, "ff" + std::to_string(i));
    dffs.push_back(ff);
    sources.push_back(ff);
  }
  LeveledPools pools(sources);

  // Tracked signal probabilities (COP approximation) for balancing.
  std::vector<double> p1(netlist.size(), 0.5);
  const auto track = [&](NodeId gate, CellType type,
                         const std::vector<NodeId>& fanins) {
    p1.resize(netlist.size(), 0.5);
    p1[gate] = gate_p1(type, fanins, p1);
  };

  const std::size_t depth = std::max<std::size_t>(4, config.target_depth);
  const std::size_t width =
      std::max<std::size_t>(6, config.target_gates / depth);

  const auto trap_budget = static_cast<std::size_t>(
      config.trap_fraction * static_cast<double>(config.target_gates));
  std::size_t trap_gates = 0;
  std::size_t gates_placed = 0;

  for (std::size_t rank = 1;
       rank <= depth || gates_placed < config.target_gates; ++rank) {
    pools.start_rank();

    // --- Observability trap (paper Fig. 2: "Module 1 is unobservable").
    // Budgeted so traps spread across ranks.
    if (trap_gates < trap_budget && rank >= 3 && rng.chance(0.5)) {
      // Enable: wide AND reduction over lower-rank signals; it sits at 1
      // with probability ~2^-width under random patterns.
      std::vector<NodeId> enable_taps;
      for (int i = 0; i < config.trap_enable_width; ++i) {
        enable_taps.push_back(pools.pick(netlist, rng));
      }
      std::size_t created = 0;
      const NodeId enable =
          and_reduce(netlist, enable_taps, config.max_fanin, &created);

      // Trapped region: a private subtree whose only exits are gated by
      // `enable`; region nodes never enter the shared pools, so no other
      // (observable) path out can appear later. Regions are kept SHALLOW
      // (most nodes within 2 hops of an exit): a D-hop GCN can then see the
      // enable tree from every trapped node, matching the paper's setting
      // where a depth-3 neighborhood suffices to recognize the pattern.
      const std::vector<NodeId> seeds = pools.pick_distinct(netlist, 4, rng);
      std::vector<NodeId> region = seeds;
      const std::size_t region_size = 5 + rng.below(10);
      std::vector<NodeId> region_nodes;
      for (std::size_t g = 0; g < region_size; ++g) {
        const CellType type = random_logic_type(rng);
        const int arity = random_arity(type, config.max_fanin, rng);
        const NodeId gate = netlist.add_node(type);
        std::vector<NodeId> chosen;
        for (int attempt = 0; static_cast<int>(chosen.size()) < arity;
             ++attempt) {
          // Bias toward the seeds: keeps the region wide and shallow.
          const NodeId driver = rng.chance(0.6)
                                    ? seeds[rng.below(seeds.size())]
                                    : region[rng.below(region.size())];
          if (std::find(chosen.begin(), chosen.end(), driver) ==
                  chosen.end() ||
              attempt > 8 * arity) {
            chosen.push_back(driver);
          }
        }
        for (NodeId driver : chosen) netlist.connect(driver, gate);
        region.push_back(gate);
        region_nodes.push_back(gate);
        ++created;
      }
      for (NodeId v : region_nodes) {
        if (!netlist.fanouts(v).empty()) continue;
        const NodeId gate = netlist.add_node(CellType::kAnd);
        netlist.connect(v, gate);
        netlist.connect(enable, gate);
        pools.add(gate);
        // Exit gates really are near-constant 0 (the enable is ~2^-width);
        // record that so downstream balancing reacts correctly.
        p1.resize(netlist.size(), 0.5);
        p1[gate] =
            0.5 * std::pow(0.5, static_cast<double>(config.trap_enable_width));
        ++created;
      }
      trap_gates += created;
      gates_placed += created;
    }

    // --- Ordinary gates for this rank.
    for (std::size_t g = 0; g < width; ++g) {
      CellType type = random_logic_type(rng);
      const int arity = random_arity(type, config.max_fanin, rng);
      const auto fanins = pools.pick_distinct(netlist, arity, rng);
      // Probability balancing: a near-constant output would make this and
      // all downstream logic accidentally untestable, so degrade to a
      // parity gate (probability ~0.5) instead.
      if (const double p = gate_p1(type, fanins, p1);
          (p < 0.05 || p > 0.95) && arity >= 2) {
        type = rng.chance(0.5) ? CellType::kXor : CellType::kXnor;
      }
      const NodeId gate = netlist.add_node(type);
      for (NodeId u : fanins) netlist.connect(u, gate);
      track(gate, type, fanins);
      pools.add(gate);
      ++gates_placed;
    }
    if (gates_placed >= config.target_gates && rank >= depth) break;
  }

  // Tie scan flip-flop D pins to arbitrary logic (sequential edges cannot
  // create combinational cycles).
  std::vector<NodeId> capture_candidates;
  for (NodeId v = 0; v < netlist.size(); ++v) {
    if (is_logic(netlist.type(v))) capture_candidates.push_back(v);
  }
  for (NodeId ff : dffs) {
    netlist.connect(
        capture_candidates[rng.below(capture_candidates.size())], ff);
  }

  // Output stage: XOR-compact every dangling signal down to the PO budget.
  std::vector<NodeId> dangling;
  for (NodeId v = 0; v < netlist.size(); ++v) {
    if (netlist.fanouts(v).empty() && !is_sink(netlist.type(v))) {
      dangling.push_back(v);
    }
  }
  if (dangling.empty()) dangling.push_back(capture_candidates.back());
  auto roots = xor_compact(netlist, std::move(dangling),
                           config.primary_outputs, config.max_fanin);
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const NodeId po =
        netlist.add_node(CellType::kOutput, "po" + std::to_string(i));
    netlist.connect(roots[i], po);
  }

  return netlist;
}

Netlist generate_benchmark_design(int index, std::size_t target_gates) {
  GeneratorConfig config;
  config.seed = 0xB100 + static_cast<std::uint64_t>(index);
  config.target_gates = target_gates;
  config.primary_inputs = 48 + 16 * static_cast<std::size_t>(index);
  config.primary_outputs = 24 + 8 * static_cast<std::size_t>(index);
  config.flip_flops = std::max<std::size_t>(16, target_gates / 24);
  // Mild per-design shape variation, mirroring the spread in Table 1.
  config.trap_fraction = 0.018 + 0.002 * index;
  config.trap_enable_width = 8 + (index % 2);
  config.target_depth = 22 + 3 * static_cast<std::size_t>(index);
  Netlist netlist = generate_circuit(config);
  netlist.set_name("B" + std::to_string(index + 1));
  return netlist;
}

}  // namespace gcnt
