#pragma once
// COP: probabilistic controllability/observability (Brglez-style).
//
// Under uniformly random patterns, COP estimates for every node the
// probability its output is 1 (signal probability) and the probability that
// a value change on the node propagates to some observed point. The product
// approximates stuck-at fault detection probability per random pattern.
//
// This is the labeling oracle of our reproduction: commercial DFT tools
// flag nodes that random patterns almost never observe, and a node with
// COP observability below a threshold is exactly that population. It also
// powers the "industrial tool" baseline OPI flow.
//
// COP assumes signal independence (ignores reconvergent correlation) —
// the standard, fast approximation.

#include <vector>

#include "netlist/netlist.h"

namespace gcnt {

struct CopMeasures {
  std::vector<double> prob_one;       ///< P(node output == 1)
  std::vector<double> observability;  ///< P(change at node reaches a sink)
};

/// Computes both measures for every node.
CopMeasures compute_cop(const Netlist& netlist);

/// Recomputes only signal probabilities (topological pass).
void compute_signal_probabilities(const Netlist& netlist, CopMeasures& out);

/// Recomputes only observabilities (reverse topological pass); requires
/// signal probabilities to be up to date.
void compute_cop_observability(const Netlist& netlist, CopMeasures& out);

/// Per-node detection probability estimates for stuck-at-0 / stuck-at-1
/// faults on the node output: P(drive opposite value) * observability.
struct DetectionProbability {
  double sa0;  ///< detect stuck-at-0: node must carry 1 and be observed
  double sa1;  ///< detect stuck-at-1: node must carry 0 and be observed
};
DetectionProbability detection_probability(const CopMeasures& measures,
                                           NodeId node);

}  // namespace gcnt
