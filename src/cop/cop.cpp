#include "cop/cop.h"

#include <algorithm>
#include <cmath>

namespace gcnt {

namespace {

double gate_prob_one(const Netlist& netlist, NodeId v,
                     const std::vector<double>& p1) {
  const auto& fanins = netlist.fanins(v);
  switch (netlist.type(v)) {
    case CellType::kInput:
    case CellType::kDff:
      return 0.5;  // scan-loaded with uniform random values
    case CellType::kBuf:
    case CellType::kOutput:
    case CellType::kObserve:
      return p1[fanins[0]];
    case CellType::kNot:
      return 1.0 - p1[fanins[0]];
    case CellType::kAnd:
    case CellType::kNand: {
      double all_one = 1.0;
      for (NodeId u : fanins) all_one *= p1[u];
      return netlist.type(v) == CellType::kAnd ? all_one : 1.0 - all_one;
    }
    case CellType::kOr:
    case CellType::kNor: {
      double all_zero = 1.0;
      for (NodeId u : fanins) all_zero *= 1.0 - p1[u];
      return netlist.type(v) == CellType::kOr ? 1.0 - all_zero : all_zero;
    }
    case CellType::kXor:
    case CellType::kXnor: {
      // Probability of odd parity across independent inputs.
      double odd = 0.0;
      for (NodeId u : fanins) {
        odd = odd * (1.0 - p1[u]) + (1.0 - odd) * p1[u];
      }
      return netlist.type(v) == CellType::kXor ? odd : 1.0 - odd;
    }
  }
  return 0.5;
}

/// P(a change at fanin slot `slot` of gate `g` appears at g's output):
/// the side inputs must hold their non-controlling values.
double sensitization_probability(const Netlist& netlist, NodeId g,
                                 std::size_t slot,
                                 const std::vector<double>& p1) {
  const auto& fanins = netlist.fanins(g);
  switch (netlist.type(g)) {
    case CellType::kOutput:
    case CellType::kObserve:
    case CellType::kDff:
      return 1.0;  // directly captured
    case CellType::kBuf:
    case CellType::kNot:
      return 1.0;
    case CellType::kAnd:
    case CellType::kNand: {
      double prob = 1.0;
      for (std::size_t j = 0; j < fanins.size(); ++j) {
        if (j != slot) prob *= p1[fanins[j]];
      }
      return prob;
    }
    case CellType::kOr:
    case CellType::kNor: {
      double prob = 1.0;
      for (std::size_t j = 0; j < fanins.size(); ++j) {
        if (j != slot) prob *= 1.0 - p1[fanins[j]];
      }
      return prob;
    }
    case CellType::kXor:
    case CellType::kXnor:
      return 1.0;  // XOR propagates any single-input change
    case CellType::kInput:
      break;
  }
  return 0.0;
}

}  // namespace

void compute_signal_probabilities(const Netlist& netlist, CopMeasures& out) {
  const auto order = netlist.topological_order();
  out.prob_one.assign(netlist.size(), 0.5);
  for (NodeId v : order) {
    out.prob_one[v] = gate_prob_one(netlist, v, out.prob_one);
  }
}

void compute_cop_observability(const Netlist& netlist, CopMeasures& out) {
  const auto order = netlist.topological_order();
  out.observability.assign(netlist.size(), 0.0);
  // Sinks first: a DFF is a *source* in the combinational order (its D-pin
  // edge is sequential), so drivers of a DFF are visited before the DFF in
  // the reverse sweep and must already see observability 1.
  for (NodeId v = 0; v < netlist.size(); ++v) {
    if (is_sink(netlist.type(v))) out.observability[v] = 1.0;
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    if (is_sink(netlist.type(v))) continue;
    // Combine fanout branches as independent chances to observe.
    double miss_all = 1.0;
    for (NodeId g : netlist.fanouts(v)) {
      const auto& gf = netlist.fanins(g);
      for (std::size_t slot = 0; slot < gf.size(); ++slot) {
        if (gf[slot] != v) continue;
        const double branch =
            sensitization_probability(netlist, g, slot, out.prob_one) *
            out.observability[g];
        miss_all *= 1.0 - std::min(1.0, branch);
      }
    }
    out.observability[v] = 1.0 - miss_all;
  }
}

CopMeasures compute_cop(const Netlist& netlist) {
  CopMeasures measures;
  compute_signal_probabilities(netlist, measures);
  compute_cop_observability(netlist, measures);
  return measures;
}

DetectionProbability detection_probability(const CopMeasures& measures,
                                           NodeId node) {
  const double p1 = measures.prob_one[node];
  const double obs = measures.observability[node];
  return DetectionProbability{p1 * obs, (1.0 - p1) * obs};
}

}  // namespace gcnt
