#pragma once
// Dense row-major float32 matrix with the handful of BLAS-like operations
// the GCN and the classical baselines need. Deliberately small: this is an
// owning value type with explicit, allocation-free compute kernels.

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace gcnt {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  float* row(std::size_t r) noexcept { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }
  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }

  void fill(float value) noexcept {
    std::fill(data_.begin(), data_.end(), value);
  }
  void resize(std::size_t rows, std::size_t cols, float fill = 0.0f) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  /// Xavier/Glorot uniform initialization (for layer weights).
  void xavier_init(Rng& rng);

  /// this += alpha * other (shapes must match).
  void axpy(float alpha, const Matrix& other);
  /// this *= alpha.
  void scale(float alpha) noexcept;

  /// Frobenius-style elementwise dot product: sum(this .* other).
  float dot(const Matrix& other) const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = alpha * op(a) * op(b) + beta * out, with op = optional transpose.
/// `out` is resized to the result shape when beta == 0.
void gemm(const Matrix& a, const Matrix& b, Matrix& out, bool transpose_a,
          bool transpose_b, float alpha = 1.0f, float beta = 0.0f);

/// Convenience: a * b.
Matrix matmul(const Matrix& a, const Matrix& b);

}  // namespace gcnt
