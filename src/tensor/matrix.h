#pragma once
// Dense row-major float32 matrix with the handful of BLAS-like operations
// the GCN and the classical baselines need. Deliberately small: this is an
// owning value type with explicit, allocation-free compute kernels.

#include <cstddef>
#include <vector>

#include "common/debug_assert.h"
#include "common/rng.h"

namespace gcnt {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) noexcept {
    GCNT_DEBUG_ASSERT(r < rows_ && c < cols_, "Matrix::at out of range");
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const noexcept {
    GCNT_DEBUG_ASSERT(r < rows_ && c < cols_, "Matrix::at out of range");
    return data_[r * cols_ + c];
  }
  float* row(std::size_t r) noexcept {
    GCNT_DEBUG_ASSERT(r < rows_, "Matrix::row out of range");
    return data_.data() + r * cols_;
  }
  const float* row(std::size_t r) const noexcept {
    GCNT_DEBUG_ASSERT(r < rows_, "Matrix::row out of range");
    return data_.data() + r * cols_;
  }
  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }

  void fill(float value) noexcept {
    std::fill(data_.begin(), data_.end(), value);
  }
  /// Reshapes and fills. Reuses the existing allocation when the new
  /// element count fits in capacity() — the ForwardWorkspace zero-alloc
  /// contract relies on this.
  void resize(std::size_t rows, std::size_t cols, float fill = 0.0f) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  /// Reshapes without touching existing contents: when the new element
  /// count fits the current size, no element is written at all (unlike
  /// resize(), which refills everything). Callers must overwrite every
  /// element before reading it — spmm_q8 uses this to skip the full
  /// prefill pass and instead zero each output slice right before
  /// accumulating into it, while it is cache-hot.
  void resize_for_overwrite(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Allocated element capacity (>= size()).
  std::size_t capacity() const noexcept { return data_.capacity(); }
  /// Grows capacity to at least `elements` without changing the shape.
  void reserve(std::size_t elements) { data_.reserve(elements); }

  /// Becomes a copy of `other`, reusing this matrix's allocation when it
  /// is large enough (operator= may reallocate; this never shrinks).
  void copy_from(const Matrix& other) {
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_.assign(other.data_.begin(), other.data_.end());
  }

  /// Xavier/Glorot uniform initialization (for layer weights).
  void xavier_init(Rng& rng);

  /// this += alpha * other (shapes must match).
  void axpy(float alpha, const Matrix& other);
  /// this *= alpha.
  void scale(float alpha) noexcept;

  /// Frobenius-style elementwise dot product: sum(this .* other).
  float dot(const Matrix& other) const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = alpha * op(a) * op(b) + beta * out, with op = optional transpose.
/// `out` is resized to the result shape when beta == 0.
///
/// Accumulation policy (uniform across all four transpose variants):
/// every output element accumulates its k products in float32, in fixed
/// ascending-p order, through the runtime-dispatched SIMD microkernels
/// (tensor/simd/simd.h). The row-update variants fold alpha into the
/// streamed a-element; the inner-product variant (!transpose_a &&
/// transpose_b) applies alpha to the completed dot product — at
/// alpha == 1 all variants are bitwise identical on the scalar target.
/// For a fixed dispatch target results are bitwise identical across
/// thread counts; across targets (scalar vs avx2) they differ only by
/// FMA contraction / dot-product lane blocking, within the tolerance
/// documented in docs/API.md ("SIMD backend").
void gemm(const Matrix& a, const Matrix& b, Matrix& out, bool transpose_a,
          bool transpose_b, float alpha = 1.0f, float beta = 0.0f);

/// Fused dense layer: out = act(a * b + bias), with bias a 1 x n row
/// broadcast over output rows and act = ReLU when `relu` (identity
/// otherwise). The epilogue runs on each output row right after its
/// k-loop completes — one pass over the output instead of three
/// (gemm write, bias pass, ReLU pass) — and applies the exact same
/// per-element operation sequence, so the result is bitwise identical
/// to gemm + bias add + Relu::forward.
void gemm_bias_act(const Matrix& a, const Matrix& b, const Matrix& bias,
                   Matrix& out, bool relu);

/// Convenience: a * b.
Matrix matmul(const Matrix& a, const Matrix& b);

}  // namespace gcnt
