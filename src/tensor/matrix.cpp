#include "tensor/matrix.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/parallel.h"
#include "common/trace.h"
#include "tensor/simd/simd.h"

namespace gcnt {

namespace {
// Minimum size of the partitioned dimension before GEMM fans out to the
// kernel pool; below it the dispatch overhead dominates.
constexpr std::size_t kMinParallelDim = 64;
}  // namespace

void Matrix::xavier_init(Rng& rng) {
  const double bound =
      std::sqrt(6.0 / static_cast<double>(rows_ + cols_ + 1));
  for (float& w : data_) {
    w = static_cast<float>(rng.uniform(-bound, bound));
  }
}

void Matrix::axpy(float alpha, const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("axpy: shape mismatch");
  }
  simd_ops().axpy(data_.data(), other.data_.data(), alpha, data_.size());
}

void Matrix::scale(float alpha) noexcept {
  simd_ops().scale(data_.data(), alpha, data_.size());
}

float Matrix::dot(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("dot: shape mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    acc += static_cast<double>(data_[i]) * other.data_[i];
  }
  return static_cast<float>(acc);
}

void gemm(const Matrix& a, const Matrix& b, Matrix& out, bool transpose_a,
          bool transpose_b, float alpha, float beta) {
  GCNT_KERNEL_SCOPE("gemm");
  const std::size_t m = transpose_a ? a.cols() : a.rows();
  const std::size_t k = transpose_a ? a.rows() : a.cols();
  const std::size_t kb = transpose_b ? b.cols() : b.rows();
  const std::size_t n = transpose_b ? b.rows() : b.cols();
  if (k != kb) throw std::invalid_argument("gemm: inner dimension mismatch");

  if (beta == 0.0f) {
    out.resize(m, n, 0.0f);
  } else {
    if (out.rows() != m || out.cols() != n) {
      throw std::invalid_argument("gemm: output shape mismatch");
    }
    out.scale(beta);
  }

  // Loop orders chosen so the innermost loop is always contiguous in the
  // matrix being streamed. The no-transpose-a variants partition output
  // rows across the kernel pool, the transpose-a variants output columns;
  // either way each output element is accumulated by one block in fixed
  // ascending-p order (the uniform fp32 policy documented in matrix.h),
  // so results are bitwise identical for any thread count (see
  // common/parallel.h). The contiguous inner loops run on the dispatched
  // SIMD microkernels.
  const SimdOps& ops = simd_ops();
  if (!transpose_a && !transpose_b) {
    parallel_blocks(m, kMinParallelDim, [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        const float* arow = a.row(i);
        float* orow = out.row(i);
        for (std::size_t p = 0; p < k; ++p) {
          const float av = alpha * arow[p];
          if (av == 0.0f) continue;
          ops.axpy(orow, b.row(p), av, n);
        }
      }
    });
  } else if (transpose_a && !transpose_b) {
    parallel_blocks(n, kMinParallelDim, [&](std::size_t j0, std::size_t j1) {
      for (std::size_t p = 0; p < k; ++p) {
        const float* arow = a.row(p);  // a is k x m
        const float* brow = b.row(p);
        for (std::size_t i = 0; i < m; ++i) {
          const float av = alpha * arow[i];
          if (av == 0.0f) continue;
          ops.axpy(out.row(i) + j0, brow + j0, av, j1 - j0);
        }
      }
    });
  } else if (!transpose_a && transpose_b) {
    parallel_blocks(m, kMinParallelDim, [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        const float* arow = a.row(i);
        float* orow = out.row(i);
        for (std::size_t j = 0; j < n; ++j) {
          // fp32 ascending-p accumulation like the other variants (this
          // one historically accumulated in double — unified in PR 5).
          orow[j] += alpha * ops.dot(arow, b.row(j), k);  // b is n x k
        }
      }
    });
  } else {
    // Double-transpose streams b with stride k — no contiguous run for a
    // microkernel, so this stays a scalar loop (same ascending-p policy).
    parallel_blocks(n, kMinParallelDim, [&](std::size_t j0, std::size_t j1) {
      for (std::size_t p = 0; p < k; ++p) {
        const float* arow = a.row(p);  // a is k x m
        for (std::size_t i = 0; i < m; ++i) {
          const float av = alpha * arow[i];
          if (av == 0.0f) continue;
          float* orow = out.row(i);
          for (std::size_t j = j0; j < j1; ++j) {
            orow[j] += av * b.at(j, p);  // b is n x k
          }
        }
      }
    });
  }
}

void gemm_bias_act(const Matrix& a, const Matrix& b, const Matrix& bias,
                   Matrix& out, bool relu) {
  GCNT_KERNEL_SCOPE("gemm_bias_act");
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  if (k != b.rows()) {
    throw std::invalid_argument("gemm_bias_act: inner dimension mismatch");
  }
  if (bias.rows() != 1 || bias.cols() != n) {
    throw std::invalid_argument("gemm_bias_act: bias shape mismatch");
  }
  out.resize(m, n, 0.0f);
  const SimdOps& ops = simd_ops();
  const float* bias_row = bias.row(0);
  parallel_blocks(m, kMinParallelDim, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* arow = a.row(i);
      float* orow = out.row(i);
      for (std::size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        ops.axpy(orow, b.row(p), av, n);
      }
      // Epilogue as soon as the row completes, while it is still hot.
      if (relu) {
        ops.bias_relu(orow, bias_row, n);
      } else {
        ops.bias_add(orow, bias_row, n);
      }
    }
  });
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix out;
  gemm(a, b, out, false, false);
  return out;
}

}  // namespace gcnt
