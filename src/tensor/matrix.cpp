#include "tensor/matrix.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/parallel.h"
#include "common/trace.h"

namespace gcnt {

namespace {
// Minimum size of the partitioned dimension before GEMM fans out to the
// kernel pool; below it the dispatch overhead dominates.
constexpr std::size_t kMinParallelDim = 64;
}  // namespace

void Matrix::xavier_init(Rng& rng) {
  const double bound =
      std::sqrt(6.0 / static_cast<double>(rows_ + cols_ + 1));
  for (float& w : data_) {
    w = static_cast<float>(rng.uniform(-bound, bound));
  }
}

void Matrix::axpy(float alpha, const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("axpy: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Matrix::scale(float alpha) noexcept {
  for (float& x : data_) x *= alpha;
}

float Matrix::dot(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("dot: shape mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    acc += static_cast<double>(data_[i]) * other.data_[i];
  }
  return static_cast<float>(acc);
}

void gemm(const Matrix& a, const Matrix& b, Matrix& out, bool transpose_a,
          bool transpose_b, float alpha, float beta) {
  GCNT_KERNEL_SCOPE("gemm");
  const std::size_t m = transpose_a ? a.cols() : a.rows();
  const std::size_t k = transpose_a ? a.rows() : a.cols();
  const std::size_t kb = transpose_b ? b.cols() : b.rows();
  const std::size_t n = transpose_b ? b.rows() : b.cols();
  if (k != kb) throw std::invalid_argument("gemm: inner dimension mismatch");

  if (beta == 0.0f) {
    out.resize(m, n, 0.0f);
  } else {
    if (out.rows() != m || out.cols() != n) {
      throw std::invalid_argument("gemm: output shape mismatch");
    }
    out.scale(beta);
  }

  // Loop orders chosen so the innermost loop is always contiguous in the
  // matrix being streamed. The no-transpose-a variants partition output
  // rows across the kernel pool, the transpose-a variants output columns;
  // either way each output element is accumulated by one block in fixed
  // ascending-p order, so results are bitwise identical for any thread
  // count (see common/parallel.h).
  if (!transpose_a && !transpose_b) {
    parallel_blocks(m, kMinParallelDim, [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        const float* arow = a.row(i);
        float* orow = out.row(i);
        for (std::size_t p = 0; p < k; ++p) {
          const float av = alpha * arow[p];
          if (av == 0.0f) continue;
          const float* brow = b.row(p);
          for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
        }
      }
    });
  } else if (transpose_a && !transpose_b) {
    parallel_blocks(n, kMinParallelDim, [&](std::size_t j0, std::size_t j1) {
      for (std::size_t p = 0; p < k; ++p) {
        const float* arow = a.row(p);  // a is k x m
        const float* brow = b.row(p);
        for (std::size_t i = 0; i < m; ++i) {
          const float av = alpha * arow[i];
          if (av == 0.0f) continue;
          float* orow = out.row(i);
          for (std::size_t j = j0; j < j1; ++j) orow[j] += av * brow[j];
        }
      }
    });
  } else if (!transpose_a && transpose_b) {
    parallel_blocks(m, kMinParallelDim, [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        const float* arow = a.row(i);
        float* orow = out.row(i);
        for (std::size_t j = 0; j < n; ++j) {
          const float* brow = b.row(j);  // b is n x k
          double acc = 0.0;
          for (std::size_t p = 0; p < k; ++p) {
            acc += static_cast<double>(arow[p]) * brow[p];
          }
          orow[j] += alpha * static_cast<float>(acc);
        }
      }
    });
  } else {
    parallel_blocks(n, kMinParallelDim, [&](std::size_t j0, std::size_t j1) {
      for (std::size_t p = 0; p < k; ++p) {
        const float* arow = a.row(p);  // a is k x m
        for (std::size_t i = 0; i < m; ++i) {
          const float av = alpha * arow[i];
          if (av == 0.0f) continue;
          float* orow = out.row(i);
          for (std::size_t j = j0; j < j1; ++j) {
            orow[j] += av * b.at(j, p);  // b is n x k
          }
        }
      }
    });
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix out;
  gemm(a, b, out, false, false);
  return out;
}

}  // namespace gcnt
