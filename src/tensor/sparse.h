#pragma once
// Sparse matrices: incremental COO for construction/graph edits and CSR
// for compute (SpMM).
//
// This is the core of the paper's "high performance" claim (Section 3.4):
// the whole-graph aggregation G_d = A * E_{d-1} becomes one sparse-dense
// multiplication, and inserting an observation point is three appended COO
// tuples instead of a matrix rebuild.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace gcnt {

/// Coordinate-format sparse matrix; supports O(1) appends.
struct CooMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint32_t> row_index;
  std::vector<std::uint32_t> col_index;
  std::vector<float> values;

  CooMatrix() = default;
  CooMatrix(std::size_t r, std::size_t c) : rows(r), cols(c) {}

  std::size_t nnz() const noexcept { return values.size(); }

  /// Appends one (value, row, col) tuple; grows the shape if needed.
  void add(std::uint32_t r, std::uint32_t c, float value) {
    if (r >= rows) rows = r + 1;
    if (c >= cols) cols = c + 1;
    row_index.push_back(r);
    col_index.push_back(c);
    values.push_back(value);
  }

  /// Appends one tuple but refuses to grow the shape: the incremental OPI
  /// path must have resized the matrix for any appended nodes already, so
  /// an out-of-range coordinate there is a bug, not a resize request.
  /// Throws std::out_of_range.
  void add_checked(std::uint32_t r, std::uint32_t c, float value);

  /// Grows the shape to exactly r x c. Throws std::invalid_argument when
  /// shrinking below the current shape (entries could become dangling).
  void reshape(std::size_t r, std::size_t c);

  /// Fraction of zero entries (the paper reports > 99.95% for its designs).
  double sparsity() const noexcept {
    const double total = static_cast<double>(rows) * static_cast<double>(cols);
    return total == 0.0 ? 1.0 : 1.0 - static_cast<double>(nnz()) / total;
  }
};

/// Compressed sparse row matrix (read-only compute form).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from COO; duplicate coordinates are summed. The index arrays
  /// are 32-bit, so shapes or nonzero counts that cannot be narrowed
  /// (>= 2^32 - 1) throw Error{kResource} up front — a graph past the
  /// index width fails loudly instead of wrapping silently.
  static CsrMatrix from_coo(const CooMatrix& coo);

  /// Builds directly from validated CSR arrays (moved in): row_ptr must
  /// be monotone with row_ptr[0] == 0 and rows+1 entries, col_index and
  /// values equally long with every column < cols. Used by the sharded
  /// engine to carve per-shard sub-matrices out of a global CSR while
  /// preserving each row's nonzero order exactly (from_coo would merge
  /// and therefore also require re-deriving the insertion order).
  /// Throws Error{kInternal} on any inconsistency.
  static CsrMatrix from_parts(std::size_t rows, std::size_t cols,
                              std::vector<std::uint32_t> row_ptr,
                              std::vector<std::uint32_t> col_index,
                              std::vector<float> values);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return values_.size(); }

  const std::vector<std::uint32_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  const std::vector<std::uint32_t>& col_index() const noexcept {
    return col_index_;
  }
  const std::vector<float>& values() const noexcept { return values_; }

  /// out = this * dense (+ beta * out). dense.rows() must equal cols().
  ///
  /// Cache blocking: the dense operand is processed in column tiles of
  /// spmm_tile_cols() (row blocks come from the kernel-pool BlockPlan), so
  /// each sparse row's gathered dense rows touch at most one tile-width
  /// slice at a time. Every output element still accumulates its nonzeros
  /// in ascending-k order, so the result is bitwise identical for any tile
  /// width and any thread count — one tile reproduces the untiled kernel
  /// exactly.
  void spmm(const Matrix& dense, Matrix& out, float alpha = 1.0f,
            float beta = 0.0f) const;

  /// Row-subset SpMM: out.row(i) = alpha * this.row(row_ids[i]) * dense,
  /// with `out` resized to row_ids.size() x dense.cols(). Each compact
  /// output row reproduces the corresponding spmm() row bit-for-bit (same
  /// ascending-k accumulation), which is what lets the incremental
  /// inference engine re-propagate only dirty rows. Throws on out-of-range
  /// row ids or a dimension mismatch.
  void spmm_rows(const std::vector<std::uint32_t>& row_ids,
                 const Matrix& dense, Matrix& out, float alpha = 1.0f) const;

  /// Fused epilogue variant for spmm-terminal pipelines:
  /// out = ReLU(this * dense + bias), with bias a 1 x dense.cols() row
  /// broadcast over output rows. The bias+ReLU runs on each output
  /// row-tile slice right after its nonzero loop completes — one pass
  /// over the output instead of three — and applies the exact same
  /// per-element operation sequence, so the result is bitwise identical
  /// to spmm() + bias add + Relu::forward for any thread count and tile
  /// width. (The GCN layer itself is GEMM-terminal; its fused epilogue
  /// is gemm_bias_act — see matrix.h.)
  void spmm_bias_relu(const Matrix& dense, const Matrix& bias,
                      Matrix& out) const;

  /// Structural transpose (values preserved).
  CsrMatrix transpose() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> row_ptr_;
  std::vector<std::uint32_t> col_index_;
  std::vector<float> values_;
};

/// Resolved dense-column tile width for CsrMatrix::spmm (always >= 1).
/// Resolution order: set_spmm_tile_cols override > GCNT_SPMM_TILE
/// environment (read once) > untiled default (SIZE_MAX, i.e. one tile).
std::size_t spmm_tile_cols();

/// Overrides the SpMM column tile width (0 reverts to GCNT_SPMM_TILE /
/// the untiled default). Tiling never changes results — only locality.
void set_spmm_tile_cols(std::size_t n);

}  // namespace gcnt
