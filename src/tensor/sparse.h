#pragma once
// Sparse matrices: incremental COO for construction/graph edits and CSR
// for compute (SpMM).
//
// This is the core of the paper's "high performance" claim (Section 3.4):
// the whole-graph aggregation G_d = A * E_{d-1} becomes one sparse-dense
// multiplication, and inserting an observation point is three appended COO
// tuples instead of a matrix rebuild.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace gcnt {

/// Coordinate-format sparse matrix; supports O(1) appends.
struct CooMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint32_t> row_index;
  std::vector<std::uint32_t> col_index;
  std::vector<float> values;

  CooMatrix() = default;
  CooMatrix(std::size_t r, std::size_t c) : rows(r), cols(c) {}

  std::size_t nnz() const noexcept { return values.size(); }

  /// Appends one (value, row, col) tuple; grows the shape if needed.
  void add(std::uint32_t r, std::uint32_t c, float value) {
    if (r >= rows) rows = r + 1;
    if (c >= cols) cols = c + 1;
    row_index.push_back(r);
    col_index.push_back(c);
    values.push_back(value);
  }

  /// Fraction of zero entries (the paper reports > 99.95% for its designs).
  double sparsity() const noexcept {
    const double total = static_cast<double>(rows) * static_cast<double>(cols);
    return total == 0.0 ? 1.0 : 1.0 - static_cast<double>(nnz()) / total;
  }
};

/// Compressed sparse row matrix (read-only compute form).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from COO; duplicate coordinates are summed.
  static CsrMatrix from_coo(const CooMatrix& coo);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return values_.size(); }

  const std::vector<std::uint32_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  const std::vector<std::uint32_t>& col_index() const noexcept {
    return col_index_;
  }
  const std::vector<float>& values() const noexcept { return values_; }

  /// out = this * dense (+ beta * out). dense.rows() must equal cols().
  void spmm(const Matrix& dense, Matrix& out, float alpha = 1.0f,
            float beta = 0.0f) const;

  /// Structural transpose (values preserved).
  CsrMatrix transpose() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> row_ptr_;
  std::vector<std::uint32_t> col_index_;
  std::vector<float> values_;
};

}  // namespace gcnt
