// AVX2 + FMA microkernels. This translation unit is the only one
// compiled with -mavx2 -mfma (see src/tensor/CMakeLists.txt); nothing
// here runs unless the dispatcher verified CPUID support, so the rest of
// the binary stays executable on baseline x86-64 (and other ISAs compile
// the stub at the bottom).
//
// Lane discipline: the elementwise ops (axpy, bias epilogues, relu,
// scale) map vector lanes one-to-one onto output elements — lane i only
// ever reads/writes element i — so they are bitwise deterministic for
// any thread count or tile width, and differ from the scalar target only
// by FMA's single rounding. dot() is the one reassociating kernel: four
// 8-lane accumulators reduced in a fixed tree, documented as
// tolerance-only across targets.

#include "tensor/simd/simd.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

namespace gcnt {
// Scalar tails use std::fmaf so an element gets the same single-rounded
// contraction whether a tile/loop boundary lands it in a vector lane or
// in the tail — this is what keeps SpMM bitwise identical across column
// tile widths on this target.
namespace {

void avx2_axpy(float* y, const float* x, float a, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 y0 = _mm256_loadu_ps(y + i);
    const __m256 y1 = _mm256_loadu_ps(y + i + 8);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), y0));
    _mm256_storeu_ps(y + i + 8,
                     _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i + 8), y1));
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 y0 = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), y0));
  }
  for (; i < n; ++i) y[i] = std::fmaf(a, x[i], y[i]);
}

float avx2_dot(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  // Fixed reduction tree: (0+1) + (2+3), then horizontal sum.
  const __m256 acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                   _mm256_add_ps(acc2, acc3));
  const __m128 low = _mm256_castps256_ps128(acc);
  const __m128 high = _mm256_extractf128_ps(acc, 1);
  __m128 sum = _mm_add_ps(low, high);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_movehdup_ps(sum));
  float result = _mm_cvtss_f32(sum);
  for (; i < n; ++i) result = std::fmaf(a[i], b[i], result);
  return result;
}

void avx2_bias_add(float* y, const float* bias, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(bias + i)));
  }
  for (; i < n; ++i) y[i] += bias[i];
}

void avx2_bias_relu(float* y, const float* bias, std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v =
        _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(bias + i));
    _mm256_storeu_ps(y + i, _mm256_max_ps(v, zero));
  }
  for (; i < n; ++i) {
    const float v = y[i] + bias[i];
    y[i] = v > 0.0f ? v : 0.0f;
  }
}

void avx2_relu(float* y, std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(y + i), zero));
  }
  for (; i < n; ++i) y[i] = y[i] > 0.0f ? y[i] : 0.0f;
}

void avx2_scale(float* y, float a, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), va));
  }
  for (; i < n; ++i) y[i] *= a;
}

}  // namespace

namespace simd_detail {

const SimdOps kAvx2Ops = {
    "avx2",        avx2_axpy, avx2_dot, avx2_bias_add,
    avx2_bias_relu, avx2_relu, avx2_scale,
};

}  // namespace simd_detail
}  // namespace gcnt

#else  // !(__AVX2__ && __FMA__): non-x86 or toolchain without the flags.

namespace gcnt::simd_detail {

const SimdOps kAvx2Ops = {nullptr, nullptr, nullptr, nullptr,
                          nullptr, nullptr, nullptr};

}  // namespace gcnt::simd_detail

#endif
