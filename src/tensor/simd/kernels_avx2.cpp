// AVX2 + FMA microkernels. This translation unit is the only one
// compiled with -mavx2 -mfma (see src/tensor/CMakeLists.txt); nothing
// here runs unless the dispatcher verified CPUID support, so the rest of
// the binary stays executable on baseline x86-64 (and other ISAs compile
// the stub at the bottom).
//
// Lane discipline: the elementwise ops (axpy, bias epilogues, relu,
// scale) map vector lanes one-to-one onto output elements — lane i only
// ever reads/writes element i — so they are bitwise deterministic for
// any thread count or tile width, and differ from the scalar target only
// by FMA's single rounding. dot() is the one reassociating kernel: four
// 8-lane accumulators reduced in a fixed tree, documented as
// tolerance-only across targets.

#include "tensor/simd/simd.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>
#include <cstring>

namespace gcnt {
// Scalar tails use std::fmaf so an element gets the same single-rounded
// contraction whether a tile/loop boundary lands it in a vector lane or
// in the tail — this is what keeps SpMM bitwise identical across column
// tile widths on this target.
namespace {

void avx2_axpy(float* y, const float* x, float a, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 y0 = _mm256_loadu_ps(y + i);
    const __m256 y1 = _mm256_loadu_ps(y + i + 8);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), y0));
    _mm256_storeu_ps(y + i + 8,
                     _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i + 8), y1));
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 y0 = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), y0));
  }
  for (; i < n; ++i) y[i] = std::fmaf(a, x[i], y[i]);
}

float avx2_dot(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  // Fixed reduction tree: (0+1) + (2+3), then horizontal sum.
  const __m256 acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                   _mm256_add_ps(acc2, acc3));
  const __m128 low = _mm256_castps256_ps128(acc);
  const __m128 high = _mm256_extractf128_ps(acc, 1);
  __m128 sum = _mm_add_ps(low, high);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_movehdup_ps(sum));
  float result = _mm_cvtss_f32(sum);
  for (; i < n; ++i) result = std::fmaf(a[i], b[i], result);
  return result;
}

void avx2_bias_add(float* y, const float* bias, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(bias + i)));
  }
  for (; i < n; ++i) y[i] += bias[i];
}

void avx2_bias_relu(float* y, const float* bias, std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v =
        _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(bias + i));
    _mm256_storeu_ps(y + i, _mm256_max_ps(v, zero));
  }
  for (; i < n; ++i) {
    const float v = y[i] + bias[i];
    y[i] = v > 0.0f ? v : 0.0f;
  }
}

void avx2_relu(float* y, std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(y + i), zero));
  }
  for (; i < n; ++i) y[i] = y[i] > 0.0f ? y[i] : 0.0f;
}

void avx2_scale(float* y, float a, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), va));
  }
  for (; i < n; ++i) y[i] *= a;
}

// ---- int8 quantized tier -------------------------------------------
// The classic maddubs/madd dot: u8 x s8 pairs widen to s16 (no
// saturation possible — codes are 7-bit by contract, so |pair sum| <=
// 2 * 127 * 127 < 2^15), then madd against ones widens to s32. All
// integer, hence exact and bitwise identical to the scalar reference.

std::int32_t avx2_dot_u8s8(const std::uint8_t* a, const std::int8_t* b,
                           std::size_t n) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i pairs = _mm256_maddubs_epi16(va, vb);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
  }
  const __m128i low = _mm256_castsi256_si128(acc);
  const __m128i high = _mm256_extracti128_si256(acc, 1);
  __m128i sum = _mm_add_epi32(low, high);
  sum = _mm_add_epi32(sum, _mm_unpackhi_epi64(sum, sum));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, 0x55));
  std::int32_t result = _mm_cvtsi128_si32(sum);
  for (; i < n; ++i) {
    result += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return result;
}

void avx2_axpy_dq8(float* y, const std::uint8_t* codes, float a,
                   std::int32_t zp, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  const __m256i vzp = _mm256_set1_epi32(zp);
  std::size_t i = 0;
  // 4x unroll (see the avx512 variant): independent code loads keep the
  // byte widening pipelined; per-lane math is unchanged, so results are
  // bitwise identical to the 8-wide and scalar loops.
  for (; i + 32 <= n; i += 32) {
    const __m128i b0 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i));
    const __m128i b1 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i + 8));
    const __m128i b2 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i + 16));
    const __m128i b3 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i + 24));
    const __m256 x0 = _mm256_cvtepi32_ps(
        _mm256_sub_epi32(_mm256_cvtepu8_epi32(b0), vzp));
    const __m256 x1 = _mm256_cvtepi32_ps(
        _mm256_sub_epi32(_mm256_cvtepu8_epi32(b1), vzp));
    const __m256 x2 = _mm256_cvtepi32_ps(
        _mm256_sub_epi32(_mm256_cvtepu8_epi32(b2), vzp));
    const __m256 x3 = _mm256_cvtepi32_ps(
        _mm256_sub_epi32(_mm256_cvtepu8_epi32(b3), vzp));
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, x0, _mm256_loadu_ps(y + i)));
    _mm256_storeu_ps(y + i + 8,
                     _mm256_fmadd_ps(va, x1, _mm256_loadu_ps(y + i + 8)));
    _mm256_storeu_ps(y + i + 16,
                     _mm256_fmadd_ps(va, x2, _mm256_loadu_ps(y + i + 16)));
    _mm256_storeu_ps(y + i + 24,
                     _mm256_fmadd_ps(va, x3, _mm256_loadu_ps(y + i + 24)));
  }
  for (; i + 8 <= n; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i));
    const __m256 x = _mm256_cvtepi32_ps(
        _mm256_sub_epi32(_mm256_cvtepu8_epi32(bytes), vzp));
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, x, _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) {
    y[i] = std::fmaf(
        a, static_cast<float>(static_cast<std::int32_t>(codes[i]) - zp), y[i]);
  }
}

void avx2_quantize_u8(std::uint8_t* codes, const float* x, float inv_scale,
                      std::int32_t zp, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(inv_scale);
  const __m256 lo = _mm256_set1_ps(-256.0f);
  const __m256 hi = _mm256_set1_ps(256.0f);
  const __m256i vzp = _mm256_set1_epi32(zp);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i v127 = _mm256_set1_epi32(127);
  // Per-128-bit-lane shuffle collecting byte 0 of each dword.
  const __m256i pick = _mm256_setr_epi8(
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  //
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // max_ps(v, lo) returns lo when v is NaN, matching the scalar
    // reference's ordered comparisons.
    __m256 v = _mm256_mul_ps(_mm256_loadu_ps(x + i), vs);
    v = _mm256_max_ps(v, lo);
    v = _mm256_min_ps(v, hi);
    __m256i q = _mm256_add_epi32(_mm256_cvtps_epi32(v), vzp);
    q = _mm256_min_epi32(_mm256_max_epi32(q, zero), v127);
    const __m256i bytes = _mm256_shuffle_epi8(q, pick);
    const std::uint32_t low =
        static_cast<std::uint32_t>(_mm256_extract_epi32(bytes, 0));
    const std::uint32_t high =
        static_cast<std::uint32_t>(_mm256_extract_epi32(bytes, 4));
    std::memcpy(codes + i, &low, 4);
    std::memcpy(codes + i + 4, &high, 4);
  }
  for (; i < n; ++i) {
    float v = x[i] * inv_scale;
    v = v > -256.0f ? v : -256.0f;
    v = v < 256.0f ? v : 256.0f;
    const std::int32_t q = _mm_cvtss_si32(_mm_set_ss(v)) + zp;
    const std::int32_t clamped = q < 0 ? 0 : (q > 127 ? 127 : q);
    codes[i] = static_cast<std::uint8_t>(clamped);
  }
}

void avx2_dequantize_u8(float* y, const std::uint8_t* codes, float scale,
                        std::int32_t zp, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(scale);
  const __m256i vzp = _mm256_set1_epi32(zp);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i));
    const __m256 x = _mm256_cvtepi32_ps(
        _mm256_sub_epi32(_mm256_cvtepu8_epi32(bytes), vzp));
    _mm256_storeu_ps(y + i, _mm256_mul_ps(x, vs));
  }
  for (; i < n; ++i) {
    y[i] = static_cast<float>(static_cast<std::int32_t>(codes[i]) - zp) * scale;
  }
}

}  // namespace

namespace simd_detail {

const SimdOps kAvx2Ops = {
    "avx2",          avx2_axpy,     avx2_dot,
    avx2_bias_add,   avx2_bias_relu, avx2_relu,
    avx2_scale,      avx2_dot_u8s8, avx2_axpy_dq8,
    avx2_quantize_u8, avx2_dequantize_u8,
};

}  // namespace simd_detail
}  // namespace gcnt

#else  // !(__AVX2__ && __FMA__): non-x86 or toolchain without the flags.

namespace gcnt::simd_detail {

const SimdOps kAvx2Ops = {nullptr, nullptr, nullptr, nullptr, nullptr, nullptr,
                          nullptr, nullptr, nullptr, nullptr, nullptr};

}  // namespace gcnt::simd_detail

#endif
