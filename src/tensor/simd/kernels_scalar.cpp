// Portable fallback microkernels. The loops are blocked at a fixed width
// of 8 elements so the compiler's vectorizer has a clean unit to work
// with on any ISA, but every operation stays per-element independent (or,
// for dot, strictly ascending-order) — this target reproduces the
// historical scalar kernels bit-for-bit, which is what the cross-target
// tolerance tests compare AVX2/AVX-512 against.
//
// The int8 ops are the semantic reference for the quantized tier: the
// AVX2/AVX-512 implementations must match them bit-for-bit (integer
// accumulation is exact, the float steps use std::fmaf / a single
// multiply, and quantization rounds to nearest-even — the same one
// rounding sequence the vector cvtps path performs).

#include "tensor/simd/simd.h"

#include <cmath>

namespace gcnt {
namespace {

constexpr std::size_t kBlock = 8;

void scalar_axpy(float* y, const float* x, float a, std::size_t n) {
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    for (std::size_t j = 0; j < kBlock; ++j) y[i + j] += a * x[i + j];
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

float scalar_dot(const float* a, const float* b, std::size_t n) {
  // Ascending-order fp32 accumulation — the documented GEMM policy
  // (matrix.h). Deliberately not blocked into partial sums: reassociation
  // is the AVX2/AVX-512 targets' documented, tolerance-tested deviation.
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void scalar_bias_add(float* y, const float* bias, std::size_t n) {
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    for (std::size_t j = 0; j < kBlock; ++j) y[i + j] += bias[i + j];
  }
  for (; i < n; ++i) y[i] += bias[i];
}

void scalar_bias_relu(float* y, const float* bias, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float v = y[i] + bias[i];
    y[i] = v > 0.0f ? v : 0.0f;
  }
}

void scalar_relu(float* y, std::size_t n) {
  // `v > 0 ? v : 0` (not `v < 0`) so -0.0 canonicalizes to +0.0 exactly
  // like the historical Relu::forward and the AVX2 max(v, 0).
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = y[i] > 0.0f ? y[i] : 0.0f;
  }
}

void scalar_scale(float* y, float a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= a;
}

std::int32_t scalar_dot_u8s8(const std::uint8_t* a, const std::int8_t* b,
                             std::size_t n) {
  std::int32_t acc = 0;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    for (std::size_t j = 0; j < kBlock; ++j) {
      acc += static_cast<std::int32_t>(a[i + j]) *
             static_cast<std::int32_t>(b[i + j]);
    }
  }
  for (; i < n; ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return acc;
}

void scalar_axpy_dq8(float* y, const std::uint8_t* codes, float a,
                     std::int32_t zp, std::size_t n) {
  // fmaf, not a * x + y: the vector targets fuse this multiply-add, and
  // the int8 tier's cross-target bitwise contract requires the scalar
  // reference to perform the same single rounding.
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = std::fmaf(
        a, static_cast<float>(static_cast<std::int32_t>(codes[i]) - zp), y[i]);
  }
}

void scalar_quantize_u8(std::uint8_t* codes, const float* x, float inv_scale,
                        std::int32_t zp, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    // Pre-clamp to [-256, 256] exactly like the vector paths, so huge or
    // NaN inputs cannot hit int-conversion UB (NaN lands on the lower
    // clamp and quantizes to code 0 after the final clamp).
    float v = x[i] * inv_scale;
    v = v > -256.0f ? v : -256.0f;
    v = v < 256.0f ? v : 256.0f;
    const std::int32_t q = static_cast<std::int32_t>(std::nearbyintf(v)) + zp;
    const std::int32_t clamped = q < 0 ? 0 : (q > 127 ? 127 : q);
    codes[i] = static_cast<std::uint8_t>(clamped);
  }
}

void scalar_dequantize_u8(float* y, const std::uint8_t* codes, float scale,
                          std::int32_t zp, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<float>(static_cast<std::int32_t>(codes[i]) - zp) * scale;
  }
}

}  // namespace

namespace simd_detail {

const SimdOps kScalarOps = {
    "scalar",          scalar_axpy,     scalar_dot,
    scalar_bias_add,   scalar_bias_relu, scalar_relu,
    scalar_scale,      scalar_dot_u8s8, scalar_axpy_dq8,
    scalar_quantize_u8, scalar_dequantize_u8,
};

}  // namespace simd_detail
}  // namespace gcnt
