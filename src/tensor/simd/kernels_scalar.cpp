// Portable fallback microkernels. The loops are blocked at a fixed width
// of 8 elements so the compiler's vectorizer has a clean unit to work
// with on any ISA, but every operation stays per-element independent (or,
// for dot, strictly ascending-order) — this target reproduces the
// historical scalar kernels bit-for-bit, which is what the cross-target
// tolerance tests compare AVX2 against.

#include "tensor/simd/simd.h"

namespace gcnt {
namespace {

constexpr std::size_t kBlock = 8;

void scalar_axpy(float* y, const float* x, float a, std::size_t n) {
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    for (std::size_t j = 0; j < kBlock; ++j) y[i + j] += a * x[i + j];
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

float scalar_dot(const float* a, const float* b, std::size_t n) {
  // Ascending-order fp32 accumulation — the documented GEMM policy
  // (matrix.h). Deliberately not blocked into partial sums: reassociation
  // is the AVX2 target's documented, tolerance-tested deviation.
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void scalar_bias_add(float* y, const float* bias, std::size_t n) {
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    for (std::size_t j = 0; j < kBlock; ++j) y[i + j] += bias[i + j];
  }
  for (; i < n; ++i) y[i] += bias[i];
}

void scalar_bias_relu(float* y, const float* bias, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float v = y[i] + bias[i];
    y[i] = v > 0.0f ? v : 0.0f;
  }
}

void scalar_relu(float* y, std::size_t n) {
  // `v > 0 ? v : 0` (not `v < 0`) so -0.0 canonicalizes to +0.0 exactly
  // like the historical Relu::forward and the AVX2 max(v, 0).
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = y[i] > 0.0f ? y[i] : 0.0f;
  }
}

void scalar_scale(float* y, float a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= a;
}

}  // namespace

namespace simd_detail {

const SimdOps kScalarOps = {
    "scalar",        scalar_axpy, scalar_dot, scalar_bias_add,
    scalar_bias_relu, scalar_relu, scalar_scale,
};

}  // namespace simd_detail
}  // namespace gcnt
