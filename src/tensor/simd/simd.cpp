#include "tensor/simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "common/stats.h"

namespace gcnt {

namespace {

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if defined(__x86_64__) || defined(_M_X64)
  // F for the fp32 kernels, BW for the byte-granular int8 ops and masked
  // byte loads/stores, VL for their 128/256-bit forms.
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

bool avx2_compiled_in() { return simd_detail::kAvx2Ops.name != nullptr; }
bool avx512_compiled_in() { return simd_detail::kAvx512Ops.name != nullptr; }

const SimdOps* table_for(SimdTarget target) {
  switch (target) {
    case SimdTarget::kAvx512:
      return &simd_detail::kAvx512Ops;
    case SimdTarget::kAvx2:
      return &simd_detail::kAvx2Ops;
    case SimdTarget::kScalar:
      break;
  }
  return &simd_detail::kScalarOps;
}

/// Publishes the active target so traces/stats/benches can record which
/// path produced their numbers.
void publish_target(SimdTarget target) {
  StatsRegistry::instance().gauge("simd.target").set(static_cast<int>(target));
}

/// Best target the host supports: avx512 > avx2 > scalar.
SimdTarget best_target() {
  if (simd_target_available(SimdTarget::kAvx512)) return SimdTarget::kAvx512;
  if (simd_target_available(SimdTarget::kAvx2)) return SimdTarget::kAvx2;
  return SimdTarget::kScalar;
}

SimdTarget detect_target() {
  const char* env = std::getenv("GCNT_SIMD");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    if (std::strcmp(env, "scalar") == 0) return SimdTarget::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      if (simd_target_available(SimdTarget::kAvx2)) return SimdTarget::kAvx2;
      log_warn("GCNT_SIMD=avx2 requested but this host cannot run AVX2+FMA; "
               "falling back to scalar");
      return SimdTarget::kScalar;
    }
    if (std::strcmp(env, "avx512") == 0) {
      if (simd_target_available(SimdTarget::kAvx512)) {
        return SimdTarget::kAvx512;
      }
      // Graceful skip, not a failure: CI runs a GCNT_SIMD=avx512 leg on
      // runners that may not have AVX-512 — those hosts run the best
      // target they do have.
      log_warn("GCNT_SIMD=avx512 requested but this host cannot run "
               "AVX-512F/BW/VL; falling back to ",
               simd_target_available(SimdTarget::kAvx2) ? "avx2" : "scalar");
      return simd_target_available(SimdTarget::kAvx2) ? SimdTarget::kAvx2
                                                      : SimdTarget::kScalar;
    }
    log_warn("unknown GCNT_SIMD value '", env,
             "' (want auto|avx512|avx2|scalar); using auto");
  }
  return best_target();
}

/// The resolved table. Written only by resolution/override, read on every
/// kernel entry with a relaxed load (the table itself is immutable).
std::atomic<const SimdOps*> active_ops{nullptr};

const SimdOps& resolve() {
  const SimdOps* ops = active_ops.load(std::memory_order_acquire);
  if (ops != nullptr) return *ops;
  const SimdTarget target = detect_target();
  ops = table_for(target);
  active_ops.store(ops, std::memory_order_release);
  publish_target(target);
  return *ops;
}

}  // namespace

const SimdOps& simd_ops() { return resolve(); }

SimdTarget simd_target() {
  const SimdOps* ops = &resolve();
  if (ops == &simd_detail::kAvx512Ops) return SimdTarget::kAvx512;
  if (ops == &simd_detail::kAvx2Ops) return SimdTarget::kAvx2;
  return SimdTarget::kScalar;
}

const char* simd_target_name() { return resolve().name; }

bool simd_target_available(SimdTarget target) {
  switch (target) {
    case SimdTarget::kScalar:
      return true;
    case SimdTarget::kAvx2:
      return avx2_compiled_in() && cpu_has_avx2_fma();
    case SimdTarget::kAvx512:
      return avx512_compiled_in() && cpu_has_avx512();
  }
  return false;
}

bool set_simd_target(SimdTarget target) {
  if (!simd_target_available(target)) return false;
  active_ops.store(table_for(target), std::memory_order_release);
  publish_target(target);
  return true;
}

void reset_simd_target() {
  active_ops.store(nullptr, std::memory_order_release);
  (void)resolve();
}

}  // namespace gcnt
