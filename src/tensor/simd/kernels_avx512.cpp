// AVX-512 microkernels (F + BW + VL). This translation unit is the only
// one compiled with -mavx512f -mavx512bw -mavx512vl (see
// src/tensor/CMakeLists.txt); nothing here runs unless the dispatcher
// verified CPUID support, so the rest of the binary stays executable on
// baseline x86-64 (and other ISAs compile the stub at the bottom).
//
// Masked-tail discipline: every kernel processes the remainder (< 16
// elements) with maskz loads and mask stores executing the exact same
// per-element operation as the vector body — no scalar tail loop at all.
// Because a masked lane performs the identical fmadd/add/max/mul the
// body lane would, results are independent of where a loop or tile
// boundary falls, preserving the bitwise-across-threads/tiles guarantee.
//
// Cross-target behavior: this target is bitwise identical to AVX2 for
// every fp32 kernel — the elementwise ops perform the same single
// per-element fmadd/add/max/mul, and dot() deliberately reuses the AVX2
// lane blocking (see its comment) — so auto-resolution upgrading a host
// from avx2 to avx512 never changes results. Versus scalar, the same
// FMA-contraction tolerance as AVX2 applies. The int8 ops are bitwise
// identical to the scalar reference on every input, like all targets.

#include "tensor/simd/simd.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)

#include <immintrin.h>

#include <cmath>

namespace gcnt {
namespace {

/// Lane mask selecting the first `rem` (< 16) elements.
inline __mmask16 tail_mask(std::size_t rem) {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

void avx512_axpy(float* y, const float* x, float a, std::size_t n) {
  const __m512 va = _mm512_set1_ps(a);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512 y0 = _mm512_loadu_ps(y + i);
    const __m512 y1 = _mm512_loadu_ps(y + i + 16);
    _mm512_storeu_ps(y + i, _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i), y0));
    _mm512_storeu_ps(y + i + 16,
                     _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i + 16), y1));
  }
  for (; i + 16 <= n; i += 16) {
    const __m512 y0 = _mm512_loadu_ps(y + i);
    _mm512_storeu_ps(y + i, _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i), y0));
  }
  if (i < n) {
    const __mmask16 m = tail_mask(n - i);
    const __m512 y0 = _mm512_maskz_loadu_ps(m, y + i);
    const __m512 x0 = _mm512_maskz_loadu_ps(m, x + i);
    _mm512_mask_storeu_ps(y + i, m, _mm512_fmadd_ps(va, x0, y0));
  }
}

float avx512_dot(const float* a, const float* b, std::size_t n) {
  // Deliberately the AVX2 kernel, verbatim: four 8-lane accumulators,
  // the same reduction tree, 8-wide masked tail. dot() is the one
  // reassociating fp32 kernel, and keeping its blocking identical makes
  // the whole fp32 avx512 target bitwise identical to avx2 (every other
  // fp32 kernel is per-element) — so auto-resolution picking avx512 over
  // avx2 can never change a result, only speed. The avx512 win lives in
  // the 16-lane elementwise ops (SpMM's axpy) and the int8 kernels;
  // 256-bit dot costs little in the GEMM variants that use it.
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  const __m256 acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                   _mm256_add_ps(acc2, acc3));
  const __m128 low = _mm256_castps256_ps128(acc);
  const __m128 high = _mm256_extractf128_ps(acc, 1);
  __m128 sum = _mm_add_ps(low, high);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_movehdup_ps(sum));
  float result = _mm_cvtss_f32(sum);
  for (; i < n; ++i) result = std::fmaf(a[i], b[i], result);
  return result;
}

void avx512_bias_add(float* y, const float* bias, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(y + i, _mm512_add_ps(_mm512_loadu_ps(y + i),
                                          _mm512_loadu_ps(bias + i)));
  }
  if (i < n) {
    const __mmask16 m = tail_mask(n - i);
    _mm512_mask_storeu_ps(y + i, m,
                          _mm512_add_ps(_mm512_maskz_loadu_ps(m, y + i),
                                        _mm512_maskz_loadu_ps(m, bias + i)));
  }
}

void avx512_bias_relu(float* y, const float* bias, std::size_t n) {
  const __m512 zero = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v =
        _mm512_add_ps(_mm512_loadu_ps(y + i), _mm512_loadu_ps(bias + i));
    _mm512_storeu_ps(y + i, _mm512_max_ps(v, zero));
  }
  if (i < n) {
    const __mmask16 m = tail_mask(n - i);
    const __m512 v = _mm512_add_ps(_mm512_maskz_loadu_ps(m, y + i),
                                   _mm512_maskz_loadu_ps(m, bias + i));
    _mm512_mask_storeu_ps(y + i, m, _mm512_max_ps(v, zero));
  }
}

void avx512_relu(float* y, std::size_t n) {
  const __m512 zero = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(y + i, _mm512_max_ps(_mm512_loadu_ps(y + i), zero));
  }
  if (i < n) {
    const __mmask16 m = tail_mask(n - i);
    _mm512_mask_storeu_ps(
        y + i, m, _mm512_max_ps(_mm512_maskz_loadu_ps(m, y + i), zero));
  }
}

void avx512_scale(float* y, float a, std::size_t n) {
  const __m512 va = _mm512_set1_ps(a);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(y + i, _mm512_mul_ps(_mm512_loadu_ps(y + i), va));
  }
  if (i < n) {
    const __mmask16 m = tail_mask(n - i);
    _mm512_mask_storeu_ps(
        y + i, m, _mm512_mul_ps(_mm512_maskz_loadu_ps(m, y + i), va));
  }
}

// ---- int8 quantized tier -------------------------------------------

std::int32_t avx512_dot_u8s8(const std::uint8_t* a, const std::int8_t* b,
                             std::size_t n) {
  const __m512i ones = _mm512_set1_epi16(1);
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i va =
        _mm512_loadu_si512(reinterpret_cast<const void*>(a + i));
    const __m512i vb =
        _mm512_loadu_si512(reinterpret_cast<const void*>(b + i));
    const __m512i pairs = _mm512_maddubs_epi16(va, vb);
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(pairs, ones));
  }
  if (i < n) {
    // Zero-filled masked byte loads: dead lanes multiply to 0.
    const __mmask64 m = (n - i == 64) ? ~__mmask64{0}
                                      : ((__mmask64{1} << (n - i)) - 1);
    const __m512i va = _mm512_maskz_loadu_epi8(m, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi8(m, b + i);
    const __m512i pairs = _mm512_maddubs_epi16(va, vb);
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(pairs, ones));
  }
  return _mm512_reduce_add_epi32(acc);
}

void avx512_axpy_dq8(float* y, const std::uint8_t* codes, float a,
                     std::int32_t zp, std::size_t n) {
  const __m512 va = _mm512_set1_ps(a);
  const __m512i vzp = _mm512_set1_epi32(zp);
  std::size_t i = 0;
  // 4x unroll: four independent 128-bit code loads per pass keep the
  // byte->dword widening (a shuffle-port op) pipelined instead of
  // serializing behind one load per iteration. Each lane still computes
  // fma(a, (code - zp), y) exactly like the 16-wide and scalar loops,
  // so results stay bitwise identical at every length.
  for (; i + 64 <= n; i += 64) {
    const __m128i b0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    const __m128i b1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i + 16));
    const __m128i b2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i + 32));
    const __m128i b3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i + 48));
    const __m512 x0 = _mm512_cvtepi32_ps(
        _mm512_sub_epi32(_mm512_cvtepu8_epi32(b0), vzp));
    const __m512 x1 = _mm512_cvtepi32_ps(
        _mm512_sub_epi32(_mm512_cvtepu8_epi32(b1), vzp));
    const __m512 x2 = _mm512_cvtepi32_ps(
        _mm512_sub_epi32(_mm512_cvtepu8_epi32(b2), vzp));
    const __m512 x3 = _mm512_cvtepi32_ps(
        _mm512_sub_epi32(_mm512_cvtepu8_epi32(b3), vzp));
    _mm512_storeu_ps(y + i, _mm512_fmadd_ps(va, x0, _mm512_loadu_ps(y + i)));
    _mm512_storeu_ps(y + i + 16,
                     _mm512_fmadd_ps(va, x1, _mm512_loadu_ps(y + i + 16)));
    _mm512_storeu_ps(y + i + 32,
                     _mm512_fmadd_ps(va, x2, _mm512_loadu_ps(y + i + 32)));
    _mm512_storeu_ps(y + i + 48,
                     _mm512_fmadd_ps(va, x3, _mm512_loadu_ps(y + i + 48)));
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    const __m512 x = _mm512_cvtepi32_ps(
        _mm512_sub_epi32(_mm512_cvtepu8_epi32(bytes), vzp));
    _mm512_storeu_ps(y + i, _mm512_fmadd_ps(va, x, _mm512_loadu_ps(y + i)));
  }
  if (i < n) {
    const __mmask16 m = tail_mask(n - i);
    const __m128i bytes = _mm_maskz_loadu_epi8(m, codes + i);
    const __m512 x = _mm512_cvtepi32_ps(
        _mm512_sub_epi32(_mm512_cvtepu8_epi32(bytes), vzp));
    const __m512 y0 = _mm512_maskz_loadu_ps(m, y + i);
    _mm512_mask_storeu_ps(y + i, m, _mm512_fmadd_ps(va, x, y0));
  }
}

void avx512_quantize_u8(std::uint8_t* codes, const float* x, float inv_scale,
                        std::int32_t zp, std::size_t n) {
  const __m512 vs = _mm512_set1_ps(inv_scale);
  const __m512 lo = _mm512_set1_ps(-256.0f);
  const __m512 hi = _mm512_set1_ps(256.0f);
  const __m512i vzp = _mm512_set1_epi32(zp);
  const __m512i zero = _mm512_setzero_si512();
  const __m512i v127 = _mm512_set1_epi32(127);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 v = _mm512_mul_ps(_mm512_loadu_ps(x + i), vs);
    v = _mm512_max_ps(v, lo);
    v = _mm512_min_ps(v, hi);
    __m512i q = _mm512_add_epi32(_mm512_cvtps_epi32(v), vzp);
    q = _mm512_min_epi32(_mm512_max_epi32(q, zero), v127);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(codes + i),
                     _mm512_cvtepi32_epi8(q));
  }
  if (i < n) {
    const __mmask16 m = tail_mask(n - i);
    __m512 v = _mm512_mul_ps(_mm512_maskz_loadu_ps(m, x + i), vs);
    v = _mm512_max_ps(v, lo);
    v = _mm512_min_ps(v, hi);
    __m512i q = _mm512_add_epi32(_mm512_cvtps_epi32(v), vzp);
    q = _mm512_min_epi32(_mm512_max_epi32(q, zero), v127);
    _mm_mask_storeu_epi8(codes + i, m, _mm512_cvtepi32_epi8(q));
  }
}

void avx512_dequantize_u8(float* y, const std::uint8_t* codes, float scale,
                          std::int32_t zp, std::size_t n) {
  const __m512 vs = _mm512_set1_ps(scale);
  const __m512i vzp = _mm512_set1_epi32(zp);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    const __m512 x = _mm512_cvtepi32_ps(
        _mm512_sub_epi32(_mm512_cvtepu8_epi32(bytes), vzp));
    _mm512_storeu_ps(y + i, _mm512_mul_ps(x, vs));
  }
  if (i < n) {
    const __mmask16 m = tail_mask(n - i);
    const __m128i bytes = _mm_maskz_loadu_epi8(m, codes + i);
    const __m512 x = _mm512_cvtepi32_ps(
        _mm512_sub_epi32(_mm512_cvtepu8_epi32(bytes), vzp));
    _mm512_mask_storeu_ps(y + i, m, _mm512_mul_ps(x, vs));
  }
}

}  // namespace

namespace simd_detail {

const SimdOps kAvx512Ops = {
    "avx512",           avx512_axpy,     avx512_dot,
    avx512_bias_add,    avx512_bias_relu, avx512_relu,
    avx512_scale,       avx512_dot_u8s8, avx512_axpy_dq8,
    avx512_quantize_u8, avx512_dequantize_u8,
};

}  // namespace simd_detail
}  // namespace gcnt

#else  // !(__AVX512F__ && __AVX512BW__ && __AVX512VL__)

namespace gcnt::simd_detail {

const SimdOps kAvx512Ops = {nullptr, nullptr, nullptr, nullptr,
                            nullptr, nullptr, nullptr, nullptr,
                            nullptr, nullptr, nullptr};

}  // namespace gcnt::simd_detail

#endif
