#pragma once
// Vectorized microkernel backend for the dense/sparse hot loops.
//
// Every inner loop the compute kernels spend their time in (GEMM row
// update, SpMM row accumulation, dot products, the bias/ReLU epilogues,
// and the vec_ops.h row helpers) funnels through one table of function
// pointers — SimdOps — resolved once per process by runtime CPU
// detection. Two implementations are built into every binary:
//
//   * scalar — portable fixed-width-blocked loops, no ISA requirements.
//     The per-element accumulation order is exactly the historical
//     scalar kernels', so results on this target reproduce pre-SIMD
//     builds bit-for-bit.
//   * avx2   — AVX2 + FMA intrinsics (x86-64 only), compiled in a
//     separate translation unit with -mavx2 -mfma and only ever invoked
//     after a CPUID check, so the binary stays runnable on older CPUs.
//
// Target resolution, highest priority first:
//   1. set_simd_target(t)  — programmatic override (tests, benches)
//   2. GCNT_SIMD=auto|avx2|scalar — environment, read once per process
//      (an unavailable request logs a warning and falls back to scalar)
//   3. best target the CPU supports
//
// Determinism contract (see docs/API.md "SIMD backend"):
//   * For a FIXED target, every kernel built on these ops is bitwise
//     deterministic across thread counts, SpMM tile widths, and runs —
//     vector lanes map one-to-one onto output elements for the
//     elementwise ops (axpy, bias/ReLU epilogues, scale), so no
//     floating-point reassociation happens there at all.
//   * ACROSS targets results differ within a small tolerance: the AVX2
//     ops contract multiply-add pairs to FMA (one rounding instead of
//     two) and dot() accumulates in lane-blocked partial sums.
//
// The active target is published to the stats registry as the
// "simd.target" gauge (0 = scalar, 1 = avx2) and recorded by the bench
// JSON writer as "schema.simd" so perf results always carry the path
// that produced them.

#include <cstddef>

namespace gcnt {

enum class SimdTarget : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// The microkernel table. All pointers are always non-null.
struct SimdOps {
  /// Human-readable target name ("scalar", "avx2").
  const char* name;

  /// y[i] += a * x[i] for i in [0, n).
  void (*axpy)(float* y, const float* x, float a, std::size_t n);

  /// sum of a[i] * b[i] over [0, n), fp32 accumulation. The scalar
  /// target sums in ascending-i order; AVX2 sums lane-blocked partials.
  float (*dot)(const float* a, const float* b, std::size_t n);

  /// y[i] += bias[i] (row-broadcast bias epilogue).
  void (*bias_add)(float* y, const float* bias, std::size_t n);

  /// y[i] = max(y[i] + bias[i], 0) — fused bias + ReLU epilogue.
  void (*bias_relu)(float* y, const float* bias, std::size_t n);

  /// y[i] = max(y[i], 0) in place.
  void (*relu)(float* y, std::size_t n);

  /// y[i] *= a.
  void (*scale)(float* y, float a, std::size_t n);
};

/// The resolved microkernel table (override > GCNT_SIMD > CPU detect).
/// Cheap enough to call per kernel invocation: one relaxed atomic load.
const SimdOps& simd_ops();

/// The resolved dispatch target.
SimdTarget simd_target();

/// Name of the resolved dispatch target ("scalar" / "avx2").
const char* simd_target_name();

/// True when this host can execute `target`.
bool simd_target_available(SimdTarget target);

/// Forces the dispatch target. Returns false (and changes nothing) when
/// the host cannot execute it. Must not race with running kernels.
bool set_simd_target(SimdTarget target);

/// Drops the programmatic override; resolution falls back to
/// GCNT_SIMD / CPU detection on next use.
void reset_simd_target();

namespace simd_detail {
/// The two built-in tables (kernels_scalar.cpp / kernels_avx2.cpp).
extern const SimdOps kScalarOps;
extern const SimdOps kAvx2Ops;  ///< name == nullptr when compiled out
}  // namespace simd_detail

}  // namespace gcnt
