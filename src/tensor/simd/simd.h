#pragma once
// Vectorized microkernel backend for the dense/sparse hot loops.
//
// Every inner loop the compute kernels spend their time in (GEMM row
// update, SpMM row accumulation, dot products, the bias/ReLU epilogues,
// the vec_ops.h row helpers, and the int8 quantized tier) funnels
// through one table of function pointers — SimdOps — resolved once per
// process by runtime CPU detection. Three implementations are built into
// every binary:
//
//   * scalar — portable fixed-width-blocked loops, no ISA requirements.
//     The per-element accumulation order of the fp32 ops is exactly the
//     historical scalar kernels', so results on this target reproduce
//     pre-SIMD builds bit-for-bit.
//   * avx2   — AVX2 + FMA intrinsics (x86-64 only), compiled in a
//     separate translation unit with -mavx2 -mfma and only ever invoked
//     after a CPUID check, so the binary stays runnable on older CPUs.
//   * avx512 — AVX-512 F/BW/VL intrinsics (x86-64 only), again a
//     separate TU behind CPUID. 16-lane kernels with masked-tail
//     handling: remainder elements are processed by masked loads/stores
//     with the same per-element operation as the vector body, so tails
//     never change results.
//
// Target resolution, highest priority first:
//   1. set_simd_target(t)  — programmatic override (tests, benches,
//      the gcnt --simd flag)
//   2. GCNT_SIMD=auto|avx512|avx2|scalar — environment, read once per
//      process (an unavailable request logs a warning and falls back to
//      the best available target)
//   3. best target the CPU supports (avx512 > avx2 > scalar)
//
// Determinism contract (see docs/API.md "SIMD backend"):
//   * For a FIXED target, every kernel built on these ops is bitwise
//     deterministic across thread counts, SpMM tile widths, and runs —
//     vector lanes map one-to-one onto output elements for the
//     elementwise ops (axpy, bias/ReLU epilogues, scale), so no
//     floating-point reassociation happens there at all.
//   * ACROSS targets the fp32 results differ within a small tolerance:
//     the AVX2/AVX-512 ops contract multiply-add pairs to FMA (one
//     rounding instead of two) and dot() accumulates in lane-blocked
//     partial sums.
//   * The int8 ops (dot_u8s8, axpy_dq8, quantize_u8, dequantize_u8) are
//     bitwise identical ACROSS targets as well: integer accumulation is
//     exact on every path, the dequantizing float steps are per-element
//     with a fixed operation sequence (fmaf / single multiply), and
//     quantization rounds to nearest-even on every target.
//
// The active target is published to the stats registry as the
// "simd.target" gauge (0 = scalar, 1 = avx2, 2 = avx512) and recorded by
// the bench JSON writer as "schema.simd" so perf results always carry
// the path that produced them.

#include <cstddef>
#include <cstdint>

namespace gcnt {

enum class SimdTarget : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// The microkernel table. All pointers are always non-null.
struct SimdOps {
  /// Human-readable target name ("scalar", "avx2", "avx512").
  const char* name;

  /// y[i] += a * x[i] for i in [0, n).
  void (*axpy)(float* y, const float* x, float a, std::size_t n);

  /// sum of a[i] * b[i] over [0, n), fp32 accumulation. The scalar
  /// target sums in ascending-i order; AVX2/AVX-512 sum lane-blocked
  /// partials.
  float (*dot)(const float* a, const float* b, std::size_t n);

  /// y[i] += bias[i] (row-broadcast bias epilogue).
  void (*bias_add)(float* y, const float* bias, std::size_t n);

  /// y[i] = max(y[i] + bias[i], 0) — fused bias + ReLU epilogue.
  void (*bias_relu)(float* y, const float* bias, std::size_t n);

  /// y[i] = max(y[i], 0) in place.
  void (*relu)(float* y, std::size_t n);

  /// y[i] *= a.
  void (*scale)(float* y, float a, std::size_t n);

  // ---- int8 quantized tier (gcn/quant.h) ----------------------------
  // Activation codes are 7-bit unsigned (0..127) with an explicit zero
  // point; weights are signed 8-bit (-127..127). The 7-bit activation
  // range is a hard precondition of dot_u8s8: it bounds every
  // maddubs-style pair sum to |2 * 127 * 127| < 2^15, so the widening
  // 16-bit step can never saturate and integer accumulation stays exact
  // (and therefore bitwise identical) on every target.

  /// Exact int32 dot product: sum of a[i] * b[i] with a unsigned 7-bit
  /// and b signed 8-bit codes. Integer accumulation — associative, so
  /// bitwise identical across targets, threads, and blocking.
  std::int32_t (*dot_u8s8)(const std::uint8_t* a, const std::int8_t* b,
                           std::size_t n);

  /// Dequantizing axpy for int8 SpMM with fp32 accumulation:
  /// y[i] = fmaf(a, float(int(codes[i]) - zp), y[i]). The integer
  /// subtract and int->float conversion are exact and the single fused
  /// multiply-add is used on every target (scalar uses std::fmaf), so
  /// results are bitwise identical across targets.
  void (*axpy_dq8)(float* y, const std::uint8_t* codes, float a,
                   std::int32_t zp, std::size_t n);

  /// codes[i] = clamp(rint(x[i] * inv_scale) + zp, 0, 127), rounding to
  /// nearest-even (cvtps semantics on every target). Inputs are clamped
  /// to [-256, 256] before conversion so overflow/NaN cannot produce
  /// target-dependent codes (NaN quantizes to code 0).
  void (*quantize_u8)(std::uint8_t* codes, const float* x, float inv_scale,
                      std::int32_t zp, std::size_t n);

  /// y[i] = float(int(codes[i]) - zp) * scale — one multiply per
  /// element, bitwise identical across targets.
  void (*dequantize_u8)(float* y, const std::uint8_t* codes, float scale,
                        std::int32_t zp, std::size_t n);
};

/// The resolved microkernel table (override > GCNT_SIMD > CPU detect).
/// Cheap enough to call per kernel invocation: one relaxed atomic load.
const SimdOps& simd_ops();

/// The resolved dispatch target.
SimdTarget simd_target();

/// Name of the resolved dispatch target ("scalar" / "avx2" / "avx512").
const char* simd_target_name();

/// True when this host can execute `target`.
bool simd_target_available(SimdTarget target);

/// Forces the dispatch target. Returns false (and changes nothing) when
/// the host cannot execute it. Must not race with running kernels.
bool set_simd_target(SimdTarget target);

/// Drops the programmatic override; resolution falls back to
/// GCNT_SIMD / CPU detection on next use.
void reset_simd_target();

namespace simd_detail {
/// The built-in tables (kernels_scalar.cpp / kernels_avx2.cpp /
/// kernels_avx512.cpp).
extern const SimdOps kScalarOps;
extern const SimdOps kAvx2Ops;    ///< name == nullptr when compiled out
extern const SimdOps kAvx512Ops;  ///< name == nullptr when compiled out
}  // namespace simd_detail

}  // namespace gcnt
