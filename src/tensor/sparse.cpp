#include "tensor/sparse.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/debug_assert.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "tensor/simd/simd.h"

namespace gcnt {

namespace {

// Below these sizes the pool dispatch overhead exceeds the kernel cost and
// the work runs inline on the calling thread.
constexpr std::size_t kMinParallelRows = 128;
constexpr std::size_t kMinParallelNnz = 1 << 15;

// 0 = no programmatic override (fall back to GCNT_SPMM_TILE / untiled).
std::atomic<std::size_t> tile_override{0};

std::size_t env_tile_cols() {
  static const std::size_t cached = [] {
    const char* env = std::getenv("GCNT_SPMM_TILE");
    if (env == nullptr) return std::numeric_limits<std::size_t>::max();
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed > 0 ? static_cast<std::size_t>(parsed)
                      : std::numeric_limits<std::size_t>::max();
  }();
  return cached;
}

/// Parallel occurrence count: counts[i + 1] = #occurrences of i in `index`.
/// Per-block histograms reduced in fixed block order keep the result (and
/// integer sums make it trivially) identical for any thread count.
void count_occurrences(const std::vector<std::uint32_t>& index,
                       std::vector<std::uint32_t>& counts) {
  const BlockPlan plan = plan_blocks(index.size(), kMinParallelNnz);
  if (plan.count <= 1) {
    for (std::uint32_t i : index) {
      GCNT_DEBUG_ASSERT(i + 1 < counts.size(),
                        "count_occurrences: index out of range");
      ++counts[i + 1];
    }
    return;
  }
  std::vector<std::vector<std::uint32_t>> local(plan.count);
  run_blocks(plan, [&](std::size_t block, std::size_t begin, std::size_t end) {
    auto& histogram = local[block];
    histogram.assign(counts.size(), 0);
    for (std::size_t k = begin; k < end; ++k) {
      GCNT_DEBUG_ASSERT(index[k] + 1 < counts.size(),
                        "count_occurrences: index out of range");
      ++histogram[index[k] + 1];
    }
  });
  parallel_blocks(counts.size(), kMinParallelRows,
                  [&](std::size_t begin, std::size_t end) {
                    for (const auto& histogram : local) {
                      for (std::size_t i = begin; i < end; ++i) {
                        counts[i] += histogram[i];
                      }
                    }
                  });
}

/// The CSR index arrays (row_ptr, col_index, per-row cursors) are
/// 32-bit. Anything that must be representable as an index — row ids,
/// column ids, nonzero offsets — is checked through here so a graph
/// beyond the index width raises a typed resource error instead of
/// wrapping. 0xFFFFFFFF itself is excluded: row_ptr holds nnz as its
/// last entry and BFS-style consumers reserve it as a sentinel.
std::uint32_t checked_index32(std::size_t value, const char* what) {
  if (value >= 0xFFFFFFFFull) {
    throw Error(ErrorKind::kResource,
                std::string(what) + " exceeds 32-bit sparse index range (" +
                    std::to_string(value) + ")");
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

std::size_t spmm_tile_cols() {
  const std::size_t configured = tile_override.load(std::memory_order_relaxed);
  return configured != 0 ? configured : env_tile_cols();
}

void set_spmm_tile_cols(std::size_t n) {
  tile_override.store(n, std::memory_order_relaxed);
}

void CooMatrix::add_checked(std::uint32_t r, std::uint32_t c, float value) {
  if (r >= rows || c >= cols) {
    throw std::out_of_range("CooMatrix::add_checked: coordinate out of range");
  }
  row_index.push_back(r);
  col_index.push_back(c);
  values.push_back(value);
}

void CooMatrix::reshape(std::size_t r, std::size_t c) {
  if (r < rows || c < cols) {
    throw std::invalid_argument("CooMatrix::reshape: shrinking not allowed");
  }
  rows = r;
  cols = c;
}

CsrMatrix CsrMatrix::from_coo(const CooMatrix& coo) {
  GCNT_KERNEL_SCOPE("csr_build");
  // Checked narrowing before any allocation: past ~2^32 nonzeros the
  // 32-bit row_ptr / per-row cursors would wrap (and a 2^32-row shape
  // would allocate terabytes of row_ptr first).
  checked_index32(coo.rows, "CsrMatrix::from_coo: row count");
  checked_index32(coo.cols, "CsrMatrix::from_coo: column count");
  checked_index32(coo.nnz(), "CsrMatrix::from_coo: nonzero count");
  CsrMatrix csr;
  csr.rows_ = coo.rows;
  csr.cols_ = coo.cols;
  csr.row_ptr_.assign(coo.rows + 1, 0);

  count_occurrences(coo.row_index, csr.row_ptr_);
  for (std::size_t r = 0; r < coo.rows; ++r) {
    csr.row_ptr_[r + 1] += csr.row_ptr_[r];
  }

  // Scatter entries into row buckets (serial: the per-row cursors make the
  // insertion order part of the duplicate-merge contract below).
  std::vector<std::uint32_t> cursor(csr.row_ptr_.begin(),
                                    csr.row_ptr_.end() - 1);
  csr.col_index_.assign(coo.nnz(), 0);
  csr.values_.assign(coo.nnz(), 0.0f);
  for (std::size_t k = 0; k < coo.nnz(); ++k) {
    const std::uint32_t slot = cursor[coo.row_index[k]]++;
    csr.col_index_[slot] = coo.col_index[k];
    csr.values_[slot] = coo.values[k];
  }

  // Merge duplicate columns within each row (sorting by insertion-stable
  // counting per row keeps this O(nnz + cols) without a comparator sort).
  std::vector<std::uint32_t> merged_cols;
  std::vector<float> merged_vals;
  merged_cols.reserve(csr.col_index_.size());
  merged_vals.reserve(csr.values_.size());
  std::vector<std::uint32_t> new_row_ptr(csr.rows_ + 1, 0);
  std::vector<std::int64_t> seen_at(csr.cols_, -1);
  for (std::size_t r = 0; r < csr.rows_; ++r) {
    const std::size_t begin = csr.row_ptr_[r];
    const std::size_t end = csr.row_ptr_[r + 1];
    const std::size_t out_begin = merged_cols.size();
    for (std::size_t k = begin; k < end; ++k) {
      const std::uint32_t c = csr.col_index_[k];
      if (seen_at[c] >= static_cast<std::int64_t>(out_begin)) {
        merged_vals[static_cast<std::size_t>(seen_at[c])] += csr.values_[k];
      } else {
        seen_at[c] = static_cast<std::int64_t>(merged_cols.size());
        merged_cols.push_back(c);
        merged_vals.push_back(csr.values_[k]);
      }
    }
    new_row_ptr[r + 1] = static_cast<std::uint32_t>(merged_cols.size());
  }
  csr.col_index_ = std::move(merged_cols);
  csr.values_ = std::move(merged_vals);
  csr.row_ptr_ = std::move(new_row_ptr);
  return csr;
}

void CsrMatrix::spmm(const Matrix& dense, Matrix& out, float alpha,
                     float beta) const {
  GCNT_KERNEL_SCOPE("spmm");
  if (dense.rows() != cols_) {
    throw std::invalid_argument("spmm: dimension mismatch");
  }
  const std::size_t n = dense.cols();
  if (beta == 0.0f) {
    // Like gemm: beta == 0 always reshapes (reusing capacity), so a
    // workspace buffer can be fed back across layers of different width.
    out.resize(rows_, n, 0.0f);
  } else {
    if (out.rows() != rows_ || out.cols() != n) {
      throw std::invalid_argument("spmm: output shape mismatch");
    }
    out.scale(beta);
  }
  // Row-blocked across the kernel pool, column-tiled within each block:
  // each output row is produced by exactly one block, and each output
  // element accumulates its nonzeros in fixed ascending-k order, so the
  // result is bitwise identical for any thread count *and* any tile
  // width. A tile bounds the slice of every gathered dense row touched
  // per pass, keeping the high-reuse rows resident in cache when the
  // dense operand is wide.
  const std::size_t tile = std::min(spmm_tile_cols(), n);
  const SimdOps& ops = simd_ops();
  parallel_blocks(
      rows_, kMinParallelRows,
      [&](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t j0 = 0; j0 < n; j0 += tile) {
          const std::size_t j1 = std::min(n, j0 + tile);
          for (std::size_t r = row_begin; r < row_end; ++r) {
            float* orow = out.row(r);
            for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
              GCNT_DEBUG_ASSERT(col_index_[k] < cols_,
                                "spmm: column index out of range");
              const float av = alpha * values_[k];
              ops.axpy(orow + j0, dense.row(col_index_[k]) + j0, av, j1 - j0);
            }
          }
        }
      });
}

void CsrMatrix::spmm_rows(const std::vector<std::uint32_t>& row_ids,
                          const Matrix& dense, Matrix& out,
                          float alpha) const {
  GCNT_KERNEL_SCOPE("spmm_rows");
  if (dense.rows() != cols_) {
    throw std::invalid_argument("spmm_rows: dimension mismatch");
  }
  for (const std::uint32_t r : row_ids) {
    if (r >= rows_) {
      throw std::out_of_range("spmm_rows: row id out of range");
    }
  }
  const std::size_t n = dense.cols();
  out.resize(row_ids.size(), n, 0.0f);
  // Same ascending-k per-element order as spmm(), so compact row i is
  // bit-identical to full-output row row_ids[i] for any thread count.
  const SimdOps& ops = simd_ops();
  parallel_blocks(row_ids.size(), kMinParallelRows,
                  [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      const std::uint32_t r = row_ids[i];
                      float* orow = out.row(i);
                      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1];
                           ++k) {
                        GCNT_DEBUG_ASSERT(col_index_[k] < cols_,
                                          "spmm_rows: column index out of "
                                          "range");
                        const float av = alpha * values_[k];
                        ops.axpy(orow, dense.row(col_index_[k]), av, n);
                      }
                    }
                  });
}

void CsrMatrix::spmm_bias_relu(const Matrix& dense, const Matrix& bias,
                               Matrix& out) const {
  GCNT_KERNEL_SCOPE("spmm_bias_relu");
  if (dense.rows() != cols_) {
    throw std::invalid_argument("spmm_bias_relu: dimension mismatch");
  }
  const std::size_t n = dense.cols();
  if (bias.rows() != 1 || bias.cols() != n) {
    throw std::invalid_argument("spmm_bias_relu: bias shape mismatch");
  }
  out.resize(rows_, n, 0.0f);
  // Same row-block x column-tile walk as spmm(); the bias+ReLU epilogue
  // runs on each (row, tile) slice right after its nonzero loop, while
  // the slice is still cache-hot. Each slice is written by exactly one
  // block and the epilogue is elementwise, so the bitwise guarantees of
  // spmm() carry over unchanged.
  const std::size_t tile = std::min(spmm_tile_cols(), n);
  const SimdOps& ops = simd_ops();
  const float* bias_row = bias.row(0);
  parallel_blocks(
      rows_, kMinParallelRows,
      [&](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t j0 = 0; j0 < n; j0 += tile) {
          const std::size_t j1 = std::min(n, j0 + tile);
          for (std::size_t r = row_begin; r < row_end; ++r) {
            float* orow = out.row(r);
            for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
              GCNT_DEBUG_ASSERT(col_index_[k] < cols_,
                                "spmm_bias_relu: column index out of range");
              ops.axpy(orow + j0, dense.row(col_index_[k]) + j0, values_[k],
                       j1 - j0);
            }
            ops.bias_relu(orow + j0, bias_row + j0, j1 - j0);
          }
        }
      });
}

CsrMatrix CsrMatrix::from_parts(std::size_t rows, std::size_t cols,
                                std::vector<std::uint32_t> row_ptr,
                                std::vector<std::uint32_t> col_index,
                                std::vector<float> values) {
  checked_index32(rows, "CsrMatrix::from_parts: row count");
  checked_index32(cols, "CsrMatrix::from_parts: column count");
  checked_index32(values.size(), "CsrMatrix::from_parts: nonzero count");
  const auto fail = [](const char* what) {
    throw Error(ErrorKind::kInternal,
                std::string("CsrMatrix::from_parts: ") + what);
  };
  if (row_ptr.size() != rows + 1) fail("row_ptr size mismatch");
  if (row_ptr.front() != 0) fail("row_ptr must start at 0");
  if (col_index.size() != values.size()) fail("col_index/values mismatch");
  if (row_ptr.back() != values.size()) fail("row_ptr end != nnz");
  for (std::size_t r = 0; r < rows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) fail("row_ptr not monotone");
  }
  for (const std::uint32_t c : col_index) {
    if (c >= cols) fail("column index out of range");
  }
  CsrMatrix csr;
  csr.rows_ = rows;
  csr.cols_ = cols;
  csr.row_ptr_ = std::move(row_ptr);
  csr.col_index_ = std::move(col_index);
  csr.values_ = std::move(values);
  return csr;
}

CsrMatrix CsrMatrix::transpose() const {
  GCNT_KERNEL_SCOPE("csr_transpose");
  checked_index32(rows_, "CsrMatrix::transpose: row count");
  checked_index32(cols_, "CsrMatrix::transpose: column count");
  checked_index32(nnz(), "CsrMatrix::transpose: nonzero count");
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  count_occurrences(col_index_, t.row_ptr_);
  for (std::size_t r = 0; r < cols_; ++r) t.row_ptr_[r + 1] += t.row_ptr_[r];
  std::vector<std::uint32_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  t.col_index_.assign(nnz(), 0);
  t.values_.assign(nnz(), 0.0f);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::uint32_t slot = cursor[col_index_[k]]++;
      t.col_index_[slot] = static_cast<std::uint32_t>(r);
      t.values_[slot] = values_[k];
    }
  }
  return t;
}

}  // namespace gcnt
