// CI trace validator: checks that a file produced by GCNT_TRACE (or
// `gcnt --trace`) is structurally valid Chrome trace-event JSON.
//
//   trace_check <trace.json> [--require name1,name2,...] [--min-tids N]
//               [--min-events N] [--min-request-trees N]
//
// Beyond parseability it verifies every "ph":"X" span carries
// name/pid/tid/ts/dur with dur >= 0 and that per-thread span completion
// times are monotonically non-decreasing (the writer drains each ring
// buffer in record order). Spans carrying a "rid" arg (request-scoped
// serve spans) must form a connected tree per rid: exactly one
// serve.request root, the serve.queue_wait sibling ending by the root's
// start, and every other span nested inside the root — orphaned spans
// fail validation even across the reader->worker thread hand-off.
// --require fails unless every listed span name appears; --min-tids /
// --min-events put floors on the distinct recording threads and total
// span count; --min-request-trees requires at least N valid request
// trees. Prints a per-name summary either way.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "common/trace.h"

namespace {

std::vector<std::string> split_names(const std::string& list) {
  std::vector<std::string> names;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > begin) names.push_back(list.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return names;
}

int usage() {
  std::cerr << "usage: trace_check <trace.json> [--require name1,name2,...]"
               " [--min-tids N] [--min-events N] [--min-request-trees N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required;
  std::size_t min_tids = 0;
  std::size_t min_events = 0;
  std::size_t min_request_trees = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require") == 0 && i + 1 < argc) {
      required = split_names(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-tids") == 0 && i + 1 < argc) {
      min_tids = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--min-events") == 0 && i + 1 < argc) {
      min_events = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--min-request-trees") == 0 &&
               i + 1 < argc) {
      min_request_trees = std::strtoull(argv[++i], nullptr, 10);
    } else if (path.empty() && argv[i][0] != '-') {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  const gcnt::TraceValidation result = gcnt::validate_trace_file(path);
  if (!result.ok) {
    std::cerr << "trace_check: INVALID " << path << ": " << result.error
              << "\n";
    return 1;
  }
  std::cout << "trace_check: " << path << ": " << result.span_count
            << " spans across " << result.thread_count << " thread(s), "
            << result.request_tree_count << " request tree(s)\n";
  for (const std::string& name : result.names) {
    std::cout << "  span " << name << "\n";
  }

  int failures = 0;
  const std::set<std::string> seen(result.names.begin(), result.names.end());
  for (const std::string& name : required) {
    if (seen.count(name) == 0) {
      std::cerr << "trace_check: required span \"" << name << "\" missing\n";
      ++failures;
    }
  }
  if (result.thread_count < min_tids) {
    std::cerr << "trace_check: only " << result.thread_count
              << " recording thread(s), need >= " << min_tids << "\n";
    ++failures;
  }
  if (result.span_count < min_events) {
    std::cerr << "trace_check: only " << result.span_count
              << " span(s), need >= " << min_events << "\n";
    ++failures;
  }
  if (result.request_tree_count < min_request_trees) {
    std::cerr << "trace_check: only " << result.request_tree_count
              << " request tree(s), need >= " << min_request_trees << "\n";
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
