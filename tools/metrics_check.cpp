// CI observability validator: checks a Prometheus-style exposition (as
// produced by `gcnt metrics` / the kMetrics opcode) and/or a JSON-lines
// access log (as produced by `gcnt serve --access-log`).
//
//   metrics_check [--exposition file [--require series1,series2,...]]
//                 [--access-log file [--expect-lines N]
//                  [--require-keys key1,key2,...]]
//
// Exposition checks: the file parses line-by-line (# comments skipped,
// every sample line is "<series> <number>"), and every --require entry
// matches at least one series (exact match, or a prefix match when the
// entry has no "{" — so "gcnt_serve_request_ns" accepts its quantile
// series). Access-log checks: every line parses as a JSON object, every
// --require-keys key is present in every line, and with --expect-lines
// the line count equals N exactly (the daemon writes exactly one line
// per completed request, so the expected count is computable from the
// workload). Exit 0 on success, 1 on any failure, 2 on usage errors.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/stats.h"

namespace {

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > begin) out.push_back(list.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int usage() {
  std::cerr << "usage: metrics_check"
               " [--exposition file [--require s1,s2,...]]\n"
               "                     [--access-log file [--expect-lines N]"
               " [--require-keys k1,k2,...]]\n";
  return 2;
}

int check_exposition(const std::string& path,
                     const std::vector<std::string>& required) {
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "metrics_check: cannot read " << path << "\n";
    return 1;
  }
  std::map<std::string, double> series;
  std::string error;
  if (!gcnt::parse_prometheus_text(text, series, error)) {
    std::cerr << "metrics_check: INVALID exposition " << path << ": " << error
              << "\n";
    return 1;
  }
  std::cout << "metrics_check: " << path << ": " << series.size()
            << " series\n";
  int failures = 0;
  for (const std::string& want : required) {
    bool found = series.count(want) > 0;
    if (!found && want.find('{') == std::string::npos) {
      // A bare metric name also matches its labelled series (quantiles).
      for (const auto& [key, value] : series) {
        (void)value;
        if (key.compare(0, want.size(), want) == 0 &&
            (key.size() == want.size() || key[want.size()] == '{')) {
          found = true;
          break;
        }
      }
    }
    if (!found) {
      std::cerr << "metrics_check: required series \"" << want
                << "\" missing from " << path << "\n";
      ++failures;
    }
  }
  return failures;
}

int check_access_log(const std::string& path, long expect_lines,
                     const std::vector<std::string>& required_keys) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "metrics_check: cannot read " << path << "\n";
    return 1;
  }
  int failures = 0;
  long lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    gcnt::json::Value value;
    std::string error;
    if (!gcnt::json::parse(line, value, error)) {
      std::cerr << "metrics_check: " << path << " line " << lines
                << " is not valid JSON: " << error << "\n";
      ++failures;
      continue;
    }
    if (value.type != gcnt::json::Value::Type::kObject) {
      std::cerr << "metrics_check: " << path << " line " << lines
                << " is not a JSON object\n";
      ++failures;
      continue;
    }
    for (const std::string& key : required_keys) {
      if (value.find(key) == nullptr) {
        std::cerr << "metrics_check: " << path << " line " << lines
                  << " missing key \"" << key << "\"\n";
        ++failures;
      }
    }
  }
  std::cout << "metrics_check: " << path << ": " << lines
            << " access-log line(s)\n";
  if (expect_lines >= 0 && lines != expect_lines) {
    std::cerr << "metrics_check: " << path << " has " << lines
              << " line(s), expected exactly " << expect_lines << "\n";
    ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string exposition_path;
  std::string access_log_path;
  std::vector<std::string> required_series;
  std::vector<std::string> required_keys;
  long expect_lines = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--exposition") == 0 && i + 1 < argc) {
      exposition_path = argv[++i];
    } else if (std::strcmp(argv[i], "--require") == 0 && i + 1 < argc) {
      required_series = split_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--access-log") == 0 && i + 1 < argc) {
      access_log_path = argv[++i];
    } else if (std::strcmp(argv[i], "--expect-lines") == 0 && i + 1 < argc) {
      expect_lines = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--require-keys") == 0 && i + 1 < argc) {
      required_keys = split_list(argv[++i]);
    } else {
      return usage();
    }
  }
  if (exposition_path.empty() && access_log_path.empty()) return usage();

  int failures = 0;
  if (!exposition_path.empty()) {
    failures += check_exposition(exposition_path, required_series);
  }
  if (!access_log_path.empty()) {
    failures += check_access_log(access_log_path, expect_lines, required_keys);
  }
  return failures == 0 ? 0 : 1;
}
