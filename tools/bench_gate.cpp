// CI bench-regression gate: compares a flat {"name": value} JSON produced
// by `microbench` (GCNT_BENCH_JSON=... — see bench/bench_common.h) against
// a committed baseline and fails when throughput regresses beyond the
// allowed fraction.
//
//   bench_gate <baseline.json> <current.json> [max_regression] [key_prefix]
//
// max_regression defaults to 0.25 (fail when current < 75% of baseline);
// key_prefix defaults to "BM_Spmm" and may be a comma-separated list
// ("BM_Spmm,BM_EncoderGemm,BM_CooToCsr") for a per-kernel breakdown —
// entries matching none of the prefixes are reported for context but
// never fail. Keys are "<benchmark name>.items_per_second" (higher is
// better); keys ending in ".real_time_ns" or "_ms" compare inverted
// (lower is better — the latter covers the serve loadgen's latency
// percentiles, e.g. "serve.p99_ms"; "serve.qps" stays higher-is-better).
// Keys starting with "schema." are metadata, never compared.
// Keys starting with "quant.agreement" are accuracy gates, not
// throughput: they always gate (no prefix opt-in needed) and admit zero
// regression tolerance regardless of max_regression — the committed
// baseline value IS the contract (int8 inference is bitwise
// deterministic, so agreement cannot legitimately drift down).
// Baseline keys missing from the current run are skipped with a note, so
// a filtered CI run gates only what it measured.

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// Parses a flat JSON object of string->number pairs. Tolerates arbitrary
/// whitespace; no nesting, arrays, or escaped quotes (the writer never
/// emits them).
bool parse_flat_json(const std::string& path,
                     std::map<std::string, double>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_gate: cannot open " << path << "\n";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    std::size_t cursor = key_end + 1;
    while (cursor < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[cursor])) ||
            text[cursor] == ':')) {
      ++cursor;
    }
    char* end = nullptr;
    const double value = std::strtod(text.c_str() + cursor, &end);
    if (end != text.c_str() + cursor) out[key] = value;
    pos = end != nullptr && end > text.c_str() + cursor
              ? static_cast<std::size_t>(end - text.c_str())
              : key_end + 1;
  }
  return true;
}

bool lower_is_better(const std::string& key) {
  // Latency-style keys compare inverted: google-benchmark "...real_time_ns"
  // and the serve loadgen's millisecond percentiles ("serve.p99_ms").
  for (const std::string suffix : {".real_time_ns", "_ms"}) {
    if (key.size() >= suffix.size() &&
        key.compare(key.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> split_prefixes(const std::string& list) {
  std::vector<std::string> prefixes;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > begin) prefixes.push_back(list.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return prefixes;
}

bool matches_any(const std::string& key,
                 const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes) {
    if (key.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

/// Accuracy keys: zero regression tolerance, gated unconditionally.
bool is_exact_key(const std::string& key) {
  const std::string prefix = "quant.agreement";
  return key.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: bench_gate <baseline.json> <current.json>"
                 " [max_regression=0.25] [key_prefix=BM_Spmm]\n";
    return 2;
  }
  const double max_regression = argc > 3 ? std::atof(argv[3]) : 0.25;
  const std::vector<std::string> gate_prefixes =
      split_prefixes(argc > 4 ? argv[4] : "BM_Spmm");

  std::map<std::string, double> baseline;
  std::map<std::string, double> current;
  if (!parse_flat_json(argv[1], baseline) ||
      !parse_flat_json(argv[2], current)) {
    return 2;
  }

  int failures = 0;
  std::size_t gated = 0;
  for (const auto& [key, base_value] : baseline) {
    if (key.compare(0, 7, "schema.") == 0) continue;  // format metadata
    const auto it = current.find(key);
    if (it == current.end()) {
      std::cout << "skip  " << key << " (not in current run)\n";
      continue;
    }
    if (base_value == 0.0) continue;
    // Normalize to "higher is better" for a single comparison path.
    const double ratio = lower_is_better(key) ? base_value / it->second
                                              : it->second / base_value;
    const bool exact = is_exact_key(key);
    const bool gates = exact || matches_any(key, gate_prefixes);
    const bool regressed = ratio < (exact ? 1.0 : 1.0 - max_regression);
    gated += gates ? 1 : 0;
    std::cout << (regressed ? (gates ? "FAIL  " : "warn  ") : "ok    ")
              << key << "  baseline=" << base_value
              << " current=" << it->second << " ratio=" << ratio << "\n";
    if (gates && regressed) ++failures;
  }
  if (gated == 0) {
    std::cerr << "bench_gate: no gated keys (prefixes '"
              << (argc > 4 ? argv[4] : "BM_Spmm")
              << "') were compared — treating as failure\n";
    return 1;
  }
  if (failures > 0) {
    std::cerr << "bench_gate: " << failures << " gated benchmark(s) regressed"
              << " more than " << max_regression * 100 << "%\n";
    return 1;
  }
  std::cout << "bench_gate: " << gated << " gated benchmark(s) within "
            << max_regression * 100 << "% of baseline\n";
  return 0;
}
