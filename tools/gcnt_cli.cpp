// gcnt — command-line front end for the library.
//
//   gcnt generate --gates N --seed S --out design.bench [--verilog]
//   gcnt stats    design.bench
//   gcnt scoap    design.bench [--worst K]
//   gcnt label    design.bench [--batches B] [--rate R]
//   gcnt atpg     design.bench [--sample N] [--patterns out.txt]
//   gcnt train    design.bench --model model.txt [--epochs E]
//                 [--checkpoint [file]] [--checkpoint-interval K] [--resume]
//   gcnt infer    design.bench --model model.txt [--out pred.txt]
//   gcnt opi      design.bench --model model.txt --out modified.bench
//                 [--journal [file]] [--resume]
//   gcnt flow     [design.bench] [--gates N] [--epochs E] [--atpg]
//                 [--checkpoint base] [--resume]
//   gcnt serve    --model model.txt (--socket path | --port P | --stdio)
//                 [--workers N] [--queue N] [--batch N] [--max-sessions N]
//                 [--read-timeout MS] [--idle-timeout MS] [--max-conns N]
//                 [--watchdog MS] [--watchdog-action log|abort|quarantine]
//                 [--brownout-queue N]
//   gcnt ping     (--socket path | --port P) [--timeout MS]
//
// `serve` runs the inference daemon: model loaded once, netlists resident
// as named sessions, requests framed over the socket (src/serve/). SIGINT
// or SIGTERM shuts it down cleanly; see docs/API.md ("Serving" and
// "Serve resilience").
//
// --resume continues an interrupted train/opi/flow run from its
// checkpoint / insertion journal (crash-safe: every artifact is written
// atomically and checksummed; see docs/API.md). Failures exit with
// sysexits-style codes: 64 usage, 65 corrupt, 70 internal, 71 resource,
// 74 i/o, 75 deadline.
//
// Global observability flags (any command): --trace out.json writes a
// Chrome trace-event file, --stats prints the stats registry to stderr,
// --stats-json out.json writes it as JSON. GCNT_TRACE / GCNT_STATS do the
// same via the environment.
//
// Performance knobs (infer/opi/flow/serve): --simd auto|scalar|avx2|avx512
// pins the microkernel backend and --precision fp32|int8 selects the
// inference tier. Each flag outranks its environment variable (GCNT_SIMD
// / GCNT_PRECISION); see docs/API.md ("SIMD backend" and "Quantized
// inference") for the full precedence and fallback rules.
//
// Netlist files ending in .v are read/written as structural Verilog,
// anything else as ISCAS .bench.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <map>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "atpg/atpg.h"
#include "sim/logic_sim.h"
#include "common/artifact.h"
#include "common/error.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/trace.h"
#include "common/log.h"
#include "data/dataset.h"
#include "dft/gcn_opi.h"
#include "gcn/graph_tensors.h"
#include "gcn/quant.h"
#include "gcn/serialize.h"
#include "gcn/trainer.h"
#include "gcn/workspace.h"
#include "gen/generator.h"
#include "nn/loss.h"
#include "netlist/bench_io.h"
#include "netlist/verilog_io.h"
#include "serve/client.h"
#include "serve/server.h"
#include "tensor/simd/simd.h"

namespace {

using namespace gcnt;

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  std::size_t get_size(const std::string& key, std::size_t fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stoull(it->second);
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

// --simd <auto|scalar|avx2|avx512> mirrors GCNT_SIMD one notch higher in
// precedence (flag > env > CPU detect; docs/API.md "SIMD backend"). An
// unavailable target warns and keeps the best the host supports — the
// same graceful fallback as the environment variable, so scripted CI
// legs can request avx512 on any runner without failing.
void apply_simd_flag(const Args& args) {
  if (!args.has("simd")) return;
  const std::string value = args.get("simd", "auto");
  if (value == "auto") {
    reset_simd_target();
    return;
  }
  SimdTarget target = SimdTarget::kScalar;
  if (value == "avx2") {
    target = SimdTarget::kAvx2;
  } else if (value == "avx512") {
    target = SimdTarget::kAvx512;
  } else if (value != "scalar") {
    throw Error(ErrorKind::kUsage,
                "--simd must be auto, scalar, avx2, or avx512 (got " +
                    value + ")");
  }
  if (!set_simd_target(target)) {
    log_warn("--simd ", value, " unavailable on this host; using ",
             simd_target_name());
  }
}

// --precision <fp32|int8>, falling back to GCNT_PRECISION then fp32.
// Unknown values warn and resolve to fp32 (resolve_precision), matching
// the env-var behavior exactly.
Precision cli_precision(const Args& args) {
  return args.has("precision")
             ? resolve_precision(args.get("precision", "fp32").c_str())
             : resolve_precision();
}

bool is_verilog_path(const std::string& path) {
  return path.size() >= 2 && path.substr(path.size() - 2) == ".v";
}

Netlist read_netlist_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error(ErrorKind::kIo, "cannot open " + path);
  return is_verilog_path(path) ? read_verilog(in, path) : read_bench(in, path);
}

void write_netlist_file(const Netlist& netlist, const std::string& path) {
  atomic_write_file(path, [&](std::ostream& out) {
    if (is_verilog_path(path)) {
      write_verilog(netlist, out);
    } else {
      write_bench(netlist, out);
    }
  });
}

int cmd_generate(const Args& args) {
  GeneratorConfig config;
  config.target_gates = args.get_size("gates", 10000);
  config.seed = args.get_size("seed", 1);
  config.primary_inputs = args.get_size("inputs", 64);
  config.primary_outputs = args.get_size("outputs", 32);
  config.flip_flops = args.get_size("flops", config.target_gates / 24);
  config.trap_fraction = args.get_double("traps", 0.02);
  const Netlist netlist = generate_circuit(config);
  const std::string out = args.get("out", "design.bench");
  write_netlist_file(netlist, out);
  std::cout << "wrote " << netlist.size() << " nodes / "
            << netlist.edge_count() << " edges to " << out << "\n";
  return 0;
}

int cmd_stats(const Args& args) {
  const Netlist netlist = read_netlist_file(args.positional.at(0));
  const auto problems = netlist.validate();
  Table table("Netlist statistics", {"Quantity", "Value"});
  table.add_row({"Name", netlist.name()});
  table.add_row({"Nodes", std::to_string(netlist.size())});
  table.add_row({"Edges", std::to_string(netlist.edge_count())});
  table.add_row({"Primary inputs",
                 std::to_string(netlist.primary_inputs().size())});
  table.add_row({"Primary outputs",
                 std::to_string(netlist.primary_outputs().size())});
  table.add_row({"Flip-flops", std::to_string(netlist.flip_flops().size())});
  table.add_row({"Observe points",
                 std::to_string(netlist.observe_points().size())});
  std::uint32_t max_level = 0;
  for (std::uint32_t level : netlist.logic_levels()) {
    max_level = std::max(max_level, level);
  }
  table.add_row({"Logic depth", std::to_string(max_level)});
  table.add_row({"Well-formed", problems.empty() ? "yes" : problems.front()});
  table.print(std::cout);
  return problems.empty() ? 0 : 1;
}

int cmd_scoap(const Args& args) {
  const Netlist netlist = read_netlist_file(args.positional.at(0));
  const auto measures = compute_scoap(netlist);
  const std::size_t worst = args.get_size("worst", 10);
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < netlist.size(); ++v) {
    if (is_logic(netlist.type(v))) nodes.push_back(v);
  }
  std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    return measures.co[a] > measures.co[b];
  });
  if (nodes.size() > worst) nodes.resize(worst);
  Table table("Least observable nodes (SCOAP)",
              {"Node", "Type", "CC0", "CC1", "CO"});
  for (NodeId v : nodes) {
    table.add_row({netlist.node_name(v),
                   std::string(cell_type_name(netlist.type(v))),
                   std::to_string(measures.cc0[v]),
                   std::to_string(measures.cc1[v]),
                   std::to_string(measures.co[v])});
  }
  table.print(std::cout);
  return 0;
}

int cmd_label(const Args& args) {
  const Netlist netlist = read_netlist_file(args.positional.at(0));
  LabelerOptions options;
  options.batches = args.get_size("batches", 16);
  options.min_observed_rate = args.get_double("rate", 0.01);
  const auto labels = label_difficult_to_observe(netlist, options);
  std::size_t positives = 0;
  for (NodeId v = 0; v < netlist.size(); ++v) {
    if (labels[v] == 1) {
      ++positives;
      if (positives <= 20) {
        std::cout << netlist.node_name(v) << "\n";
      }
    }
  }
  if (positives > 20) std::cout << "... (" << positives - 20 << " more)\n";
  std::cout << positives << " difficult-to-observe nodes of "
            << netlist.size() << "\n";
  return 0;
}

int cmd_atpg(const Args& args) {
  const Netlist netlist = read_netlist_file(args.positional.at(0));
  AtpgOptions options;
  options.fault_sample = args.get_size("sample", 0);
  options.collect_patterns = args.has("patterns");
  const AtpgResult result = run_atpg(netlist, options);
  if (options.collect_patterns) {
    const std::string path = args.get("patterns", "patterns.txt");
    atomic_write_file(path, [&](std::ostream& out) {
      // Header: source signal order, then one 0/1 line per pattern.
      LogicSimulator sim(netlist);
      out << "#";
      for (NodeId s : sim.sources()) out << " " << netlist.node_name(s);
      out << "\n";
      for (const auto& pattern : result.patterns) {
        for (bool bit : pattern) out << (bit ? '1' : '0');
        out << "\n";
      }
    });
    std::cout << "wrote " << result.patterns.size() << " patterns to "
              << path << "\n";
  }
  Table table("ATPG results", {"Metric", "Value"});
  table.add_row({"Total faults", std::to_string(result.total_faults)});
  table.add_row({"Detected", std::to_string(result.detected_faults)});
  table.add_row({"Untestable", std::to_string(result.untestable_faults)});
  table.add_row({"Aborted", std::to_string(result.aborted_faults)});
  table.add_row({"Patterns", std::to_string(result.pattern_count)});
  table.add_row({"Fault coverage", Table::percent(result.fault_coverage())});
  table.add_row({"Test coverage", Table::percent(result.test_coverage())});
  table.print(std::cout);
  return 0;
}

int cmd_train(const Args& args) {
  Netlist netlist = read_netlist_file(args.positional.at(0));
  LabelerOptions labeler;
  labeler.batches = args.get_size("batches", 16);
  Dataset dataset = make_dataset(std::move(netlist), labeler);
  dataset.tensors.standardize_features();
  std::cout << "labeled " << dataset.positives() << " positives\n";

  GcnConfig config;
  config.embed_dims = {32, 64, 128};
  config.fc_dims = {64, 64, 128};
  GcnModel model(config);
  TrainerOptions options;
  options.epochs = args.get_size("epochs", 200);
  options.learning_rate = 1e-2f;
  options.positive_class_weight =
      static_cast<float>(args.get_double("weight", 8.0));
  options.eval_interval = std::max<std::size_t>(1, options.epochs / 10);
  const std::string path = args.get("model", "model.txt");
  // Checkpointing is opt-in (--checkpoint [file] or --resume); the
  // default path sits next to the model artifact.
  if (args.has("checkpoint") || args.has("resume")) {
    const std::string checkpoint = args.get("checkpoint", "1");
    options.checkpoint_path = checkpoint == "1" ? path + ".ckpt" : checkpoint;
    options.checkpoint_interval = args.get_size("checkpoint-interval", 1);
  }
  Trainer trainer(model, options);
  const TrainGraph data{&dataset.tensors, {}};
  const auto history =
      args.has("resume") ? trainer.resume({data}, &data)
                         : trainer.train({data}, &data);
  std::cout << "final loss " << Table::num(history.back().loss, 4) << "\n";

  save_model_file(model, path);
  std::cout << "saved model to " << path << "\n";
  return 0;
}

// Single-shot whole-graph inference: netlist -> tensors -> logits.
// Prints a summary; --out writes one "name p(positive) predicted" line
// per node. --precision int8 runs the quantized tier (docs/API.md
// "Quantized inference").
int cmd_infer(const Args& args) {
  apply_simd_flag(args);
  const std::string path = args.positional.empty()
                               ? args.get("netlist", "")
                               : args.positional.at(0);
  if (path.empty()) {
    throw Error(ErrorKind::kUsage, "infer needs a netlist argument");
  }
  const Netlist netlist = read_netlist_file(path);
  GcnModel model = load_model_file(args.get("model", "model.txt"));
  if (cli_precision(args) == Precision::kInt8 &&
      model.precision() != Precision::kInt8) {
    model.set_precision(Precision::kInt8);
  }
  GraphTensors tensors = build_graph_tensors(netlist);
  tensors.standardize_features();
  ForwardWorkspace ws;
  Matrix logits;
  model.infer(tensors, ws, logits);
  const Matrix probabilities = softmax(logits);
  std::size_t positives = 0;
  for (std::size_t v = 0; v < probabilities.rows(); ++v) {
    if (probabilities.at(v, 1) >= 0.5f) ++positives;
  }
  if (args.has("out")) {
    const std::string out = args.get("out", "predictions.txt");
    atomic_write_file(out, [&](std::ostream& os) {
      os << "# node p(positive) predicted\n";
      for (NodeId v = 0; v < netlist.size(); ++v) {
        const float p = probabilities.at(v, 1);
        os << netlist.node_name(v) << " " << p << " "
           << (p >= 0.5f ? 1 : 0) << "\n";
      }
    });
    std::cout << "wrote per-node predictions to " << out << "\n";
  }
  std::cout << positives << " predicted difficult-to-observe nodes of "
            << netlist.size() << " (" << precision_name(model.precision())
            << ", simd " << simd_target_name() << ")\n";
  return 0;
}

int cmd_opi(const Args& args) {
  Netlist netlist = read_netlist_file(args.positional.at(0));
  GcnModel model = load_model_file(args.get("model", "model.txt"));
  // int8 requests quantize the model here; the incremental/sharded
  // engines inside run_gcn_opi keep their fp32 bit-identity contract and
  // tick quant.fallback instead (docs/API.md "Quantized inference").
  if (cli_precision(args) == Precision::kInt8 &&
      model.precision() != Precision::kInt8) {
    model.set_precision(Precision::kInt8);
  }
  GcnOpiOptions options;
  options.max_iterations = args.get_size("iterations", 12);
  // Journaling is opt-in (--journal [file] or --resume); the default path
  // sits next to the output artifact and is removed when the sweep
  // completes.
  if (args.has("journal") || args.has("resume")) {
    const std::string journal = args.get("journal", "1");
    options.journal_path =
        journal == "1" ? args.get("out", "modified.bench") + ".journal"
                       : journal;
    options.journal_design = args.positional.at(0);
    options.resume = args.has("resume");
  }
  options.shards = args.get_size("shards", 0);
  options.shard_halo = static_cast<int>(args.get_size("halo", 1));
  options.shard_spill_dir = args.get("spill-dir", "");
  const auto result = run_gcn_opi(netlist, {&model}, options);
  std::cout << "inserted " << result.inserted.size() << " observation points"
            << " in " << result.iterations << " iterations ("
            << result.final_positive_predictions
            << " residual positive predictions)\n";
  const std::string out = args.get("out", "modified.bench");
  write_netlist_file(netlist, out);
  std::cout << "wrote modified netlist to " << out << "\n";
  return 0;
}

// End-to-end pipeline in one process: generate (or read) -> SCOAP ->
// label -> train a small cascade stage -> GCN-OPI -> optional ATPG.
// Primarily an observability driver: with --trace one run produces spans
// for every hot path in the library.
int cmd_flow(const Args& args) {
  apply_simd_flag(args);
  Netlist netlist;
  std::string design;
  if (!args.positional.empty()) {
    design = args.positional.at(0);
    netlist = read_netlist_file(design);
  } else {
    GeneratorConfig config;
    config.target_gates = args.get_size("gates", 25000);
    config.seed = args.get_size("seed", 1);
    config.flip_flops = config.target_gates / 24;
    // Generation is seed-deterministic, so a resumed flow regenerates the
    // identical starting netlist; the identity string pins that.
    design = "gen-" + std::to_string(config.target_gates) + "-" +
             std::to_string(config.seed);
    netlist = generate_circuit(config);
    std::cout << "generated " << netlist.size() << " nodes / "
              << netlist.edge_count() << " edges\n";
  }
  const bool resume = args.has("resume");
  const std::string checkpoint_base = args.get("checkpoint", "flow");

  LabelerOptions labeler;
  labeler.batches = args.get_size("batches", 4);
  Dataset dataset = make_dataset(std::move(netlist), labeler);
  dataset.tensors.standardize_features();
  std::cout << "labeled " << dataset.positives() << " positives of "
            << dataset.netlist.size() << " nodes\n";

  GcnConfig config;
  config.embed_dims = {32, 64, 128};
  config.fc_dims = {64, 64, 128};
  GcnModel model(config);
  TrainerOptions train_options;
  train_options.epochs = args.get_size("epochs", 8);
  train_options.learning_rate = 1e-2f;
  train_options.eval_interval = std::max<std::size_t>(
      1, train_options.epochs / 2);
  if (resume || args.has("checkpoint")) {
    train_options.checkpoint_path = checkpoint_base + ".ckpt";
  }
  Trainer trainer(model, train_options);
  const TrainGraph data{&dataset.tensors, {}};
  const auto history = resume ? trainer.resume({data}, nullptr)
                              : trainer.train({data}, nullptr);
  std::cout << "trained " << history.size() << " epochs, final loss "
            << Table::num(history.back().loss, 4) << "\n";

  // Quantize after training (calibration reads the trained weights); the
  // OPI engines below fall back to fp32 with a quant.fallback tick, so
  // this mainly exercises the flag plumbing end to end under --trace.
  if (cli_precision(args) == Precision::kInt8) {
    model.set_precision(Precision::kInt8);
  }

  GcnOpiOptions opi_options;
  opi_options.max_iterations = args.get_size("iterations", 2);
  if (resume || args.has("checkpoint")) {
    opi_options.journal_path = checkpoint_base + ".journal";
    opi_options.journal_design = design;
    opi_options.resume = resume;
  }
  opi_options.shards = args.get_size("shards", 0);
  opi_options.shard_halo = static_cast<int>(args.get_size("halo", 1));
  opi_options.shard_spill_dir = args.get("spill-dir", "");
  const auto result = run_gcn_opi(dataset.netlist, {&model}, opi_options);
  std::cout << "inserted " << result.inserted.size()
            << " observation points in " << result.iterations
            << " iterations\n";

  if (args.has("atpg")) {
    AtpgOptions atpg_options;
    atpg_options.fault_sample = args.get_size("sample", 512);
    const AtpgResult atpg_result = run_atpg(dataset.netlist, atpg_options);
    std::cout << "atpg: " << atpg_result.detected_faults << "/"
              << atpg_result.total_faults << " faults detected with "
              << atpg_result.pattern_count << " patterns\n";
  }

  if (args.has("out")) {
    const std::string out = args.get("out", "modified.bench");
    write_netlist_file(dataset.netlist, out);
    std::cout << "wrote modified netlist to " << out << "\n";
  }
  return 0;
}

serve::ServeServer* g_serve_server = nullptr;

// Only sets an atomic flag; the daemon's acceptor notices within its
// poll tick and runs the real shutdown from a normal thread.
void handle_stop_signal(int) {
  if (g_serve_server != nullptr) g_serve_server->request_stop();
}

int cmd_serve(const Args& args) {
  apply_simd_flag(args);
  serve::ServeOptions options;
  options.model_path = args.get("model", "");
  options.precision = cli_precision(args);
  options.unix_socket = args.get("socket", "");
  if (args.has("port")) {
    options.tcp_port = static_cast<int>(args.get_size("port", 0));
  }
  options.stdio = args.has("stdio");
  options.workers = args.get_size("workers", 2);
  options.queue_limit = args.get_size("queue", 64);
  options.batch_limit = args.get_size("batch", 16);
  options.max_sessions = args.get_size("max-sessions", 64);
  options.access_log = args.get("access-log", "");
  if (options.access_log.empty()) {
    const char* env = std::getenv("GCNT_ACCESS_LOG");
    if (env != nullptr) options.access_log = env;
  }
  options.slow_ring = args.get_size("slow-ring", 16);

  // Resilience knobs (docs/API.md "Serve resilience"). The hygiene
  // defaults are generous enough to never bite a healthy client but
  // still reap wedged peers; 0 disables a knob entirely.
  options.read_timeout_ms = args.get_size("read-timeout", 30000);
  options.idle_timeout_ms = args.get_size("idle-timeout", 300000);
  options.max_connections = args.get_size("max-conns", 256);
  options.watchdog_budget_ms = args.get_size("watchdog", 10000);
  const std::string action = args.get("watchdog-action", "log");
  if (action == "log") {
    options.watchdog_action = serve::WatchdogAction::kLog;
  } else if (action == "abort") {
    options.watchdog_action = serve::WatchdogAction::kAbort;
  } else if (action == "quarantine") {
    options.watchdog_action = serve::WatchdogAction::kQuarantine;
  } else {
    throw Error(ErrorKind::kUsage,
                "--watchdog-action must be log, abort, or quarantine (got " +
                    action + ")");
  }
  options.brownout_queue = args.get_size("brownout-queue", 0);

  // The daemon always keeps stats on: kMetrics scrapes and `gcnt top`
  // are useless without them, and the cost is relaxed atomic adds.
  set_stats_enabled(true);
  serve::ServeServer server(std::move(options));
  server.start();
  g_serve_server = &server;
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  if (args.has("port")) {
    // Scripts using --port 0 read the ephemeral port from stdout.
    std::cout << "listening on 127.0.0.1:" << server.bound_tcp_port()
              << std::endl;
  }
  if (args.has("stdio")) server.run_stdio();
  server.wait();
  g_serve_server = nullptr;
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  return 0;
}

/// Connects to a running daemon for the client-side subcommands
/// (`ping`, `metrics`, `top`). Bounded timeouts (--timeout MS overrides
/// both) so a dead daemon means a fast typed `io` failure (exit 74), not
/// a hang; the connect error says so explicitly.
serve::ServeClient connect_serve_client(const Args& args) {
  serve::ClientOptions options;
  options.connect_timeout_ms = args.get_size("timeout", 2000);
  options.recv_timeout_ms = args.get_size("timeout", 5000);
  options.send_timeout_ms = options.recv_timeout_ms;
  const std::string socket_path = args.get("socket", "");
  try {
    if (!socket_path.empty()) {
      return serve::ServeClient::connect_unix(socket_path, options);
    }
    if (args.has("port")) {
      return serve::ServeClient::connect_tcp(
          static_cast<int>(args.get_size("port", 0)), options);
    }
  } catch (const Error& e) {
    if (e.kind() == ErrorKind::kIo) {
      throw Error(ErrorKind::kIo,
                  std::string(e.what()) + " — is the daemon running?");
    }
    throw;
  }
  throw Error(ErrorKind::kUsage,
              "need --socket <path> or --port <p> to reach the daemon");
}

int cmd_ping(const Args& args) {
  serve::ServeClient client = connect_serve_client(args);
  const serve::ServeClient::Health health = client.ping();
  std::cout << "ok: queue " << health.queue_depth << ", workers "
            << health.workers << ", model generation "
            << health.model_generation << ", sessions " << health.sessions
            << ", brownout " << (health.brownout ? "on" : "off") << "\n";
  return 0;
}

int cmd_metrics(const Args& args) {
  serve::ServeClient client = connect_serve_client(args);
  const bool slow = args.has("slow");
  const serve::ServeClient::MetricsResult result = client.metrics(slow);
  std::cout << result.exposition;
  if (slow) std::cout << result.slow_json << "\n";
  return 0;
}

/// One parsed scrape plus the client-side time it was taken.
struct TopSample {
  std::map<std::string, double> series;
  std::chrono::steady_clock::time_point taken;

  double get(const std::string& key, double fallback = 0.0) const {
    const auto it = series.find(key);
    return it == series.end() ? fallback : it->second;
  }
};

TopSample scrape_top_sample(serve::ServeClient& client) {
  TopSample sample;
  const serve::ServeClient::MetricsResult result = client.metrics(false);
  std::string error;
  if (!parse_prometheus_text(result.exposition, sample.series, error)) {
    throw Error(ErrorKind::kCorrupt, "bad metrics exposition: " + error);
  }
  sample.taken = std::chrono::steady_clock::now();
  return sample;
}

/// Quantile of serve.request_ns in milliseconds, preferring the windowed
/// (since-last-scrape) series when the server had a previous scrape.
double top_latency_ms(const TopSample& s, const char* q) {
  const std::string windowed =
      std::string("gcnt_serve_request_ns_window{quantile=\"") + q + "\"}";
  const auto it = s.series.find(windowed);
  const double ns =
      it != s.series.end()
          ? it->second
          : s.get(std::string("gcnt_serve_request_ns{quantile=\"") + q +
                  "\"}");
  return ns / 1e6;
}

void render_top_tick(std::ostream& out, const TopSample& prev,
                     const TopSample& cur, bool plain) {
  const double elapsed =
      std::chrono::duration<double>(cur.taken - prev.taken).count();
  const double dt = elapsed > 0 ? elapsed : 1.0;
  const auto rate = [&](const std::string& key) {
    return (cur.get(key) - prev.get(key)) / dt;
  };
  const double qps = rate("gcnt_serve_requests_total");
  const double eps = rate("gcnt_serve_errors_total");
  const double queue_depth = cur.get("gcnt_serve_queue_depth");
  const double workers = cur.get("gcnt_serve_workers", 1.0);
  // Utilization: worker-busy nanoseconds per wall nanosecond per worker.
  const double busy_ns = cur.get("gcnt_serve_request_ns_sum") -
                         prev.get("gcnt_serve_request_ns_sum");
  const double util =
      std::clamp(busy_ns / (dt * 1e9 * std::max(workers, 1.0)), 0.0, 1.0);

  std::ostringstream ops;
  for (const auto& [key, value] : cur.series) {
    const std::string prefix = "gcnt_serve_op_";
    const std::string suffix = "_total";
    if (key.size() <= prefix.size() + suffix.size() ||
        key.compare(0, prefix.size(), prefix) != 0 ||
        key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const double r = (value - prev.get(key)) / dt;
    if (r <= 0.0) continue;
    const std::string op = key.substr(
        prefix.size(), key.size() - prefix.size() - suffix.size());
    ops << (ops.tellp() > 0 ? "  " : "") << op << " " << std::fixed
        << std::setprecision(1) << r << "/s";
  }

  out << std::fixed;
  if (plain) {
    out << "qps " << std::setprecision(1) << qps << "  err/s "
        << std::setprecision(1) << eps << "  p50 " << std::setprecision(3)
        << top_latency_ms(cur, "0.5") << "ms  p99 " << std::setprecision(3)
        << top_latency_ms(cur, "0.99") << "ms  queue " << std::setprecision(0)
        << queue_depth << "  util " << std::setprecision(0) << util * 100
        << "%";
    if (ops.tellp() > 0) out << "  | " << ops.str();
    out << "\n";
    out.flush();
    return;
  }
  out << "\x1b[H\x1b[2J";  // home + clear: live refresh
  out << "gcnt top — serve daemon\n\n"
      << "  requests/s   " << std::setprecision(1) << qps << "\n"
      << "  errors/s     " << std::setprecision(1) << eps << "\n"
      << "  p50 latency  " << std::setprecision(3)
      << top_latency_ms(cur, "0.5") << " ms\n"
      << "  p99 latency  " << std::setprecision(3)
      << top_latency_ms(cur, "0.99") << " ms\n"
      << "  queue depth  " << std::setprecision(0) << queue_depth << "\n"
      << "  workers      " << std::setprecision(0) << workers
      << "  (util " << std::setprecision(0) << util * 100 << "%)\n";
  if (ops.tellp() > 0) out << "\n  per-op: " << ops.str() << "\n";
  out.flush();
}

int cmd_top(const Args& args) {
  serve::ServeClient client = connect_serve_client(args);
  const std::size_t interval_ms = args.get_size("interval", 1000);
  const std::size_t count = args.get_size("count", 0);  // 0 = until ^C
  const bool plain = args.has("plain") || ::isatty(STDOUT_FILENO) == 0;

  TopSample prev = scrape_top_sample(client);
  for (std::size_t tick = 0; count == 0 || tick < count; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    const TopSample cur = scrape_top_sample(client);
    render_top_tick(std::cout, prev, cur, plain);
    prev = cur;
  }
  return 0;
}

int usage() {
  std::cerr << "usage: gcnt <command> [args]\n"
            << "  generate --gates N --seed S --out design.bench\n"
            << "  stats    <netlist>\n"
            << "  scoap    <netlist> [--worst K]\n"
            << "  label    <netlist> [--batches B] [--rate R]\n"
            << "  atpg     <netlist> [--sample N]\n"
            << "  train    <netlist> --model model.txt [--epochs E]\n"
            << "           [--checkpoint [file]] [--checkpoint-interval K] "
               "[--resume]\n"
            << "  infer    <netlist> --model model.txt [--out pred.txt]\n"
            << "  opi      <netlist> --model model.txt --out out.bench\n"
            << "           [--journal [file]] [--resume]\n"
            << "           [--shards K] [--halo D] [--spill-dir dir]\n"
            << "  flow     [<netlist>] [--gates N] [--epochs E] [--atpg]\n"
            << "           [--checkpoint base] [--resume]\n"
            << "           [--shards K] [--halo D] [--spill-dir dir]\n"
            << "  serve    --model model.txt (--socket path | --port P | "
               "--stdio)\n"
            << "           [--workers N] [--queue N] [--batch N] "
               "[--max-sessions N]\n"
            << "           [--access-log file] [--slow-ring N]\n"
            << "           [--read-timeout MS] [--idle-timeout MS] "
               "[--max-conns N]\n"
            << "           [--watchdog MS] [--watchdog-action "
               "log|abort|quarantine]\n"
            << "           [--brownout-queue N]\n"
            << "  ping     (--socket path | --port P) [--timeout MS]\n"
            << "  metrics  (--socket path | --port P) [--slow] "
               "[--timeout MS]\n"
            << "  top      (--socket path | --port P) [--interval MS] "
               "[--count N] [--plain]\n"
            << "global flags: --trace out.json | --stats | --stats-json "
               "out.json\n"
            << "infer/opi/flow/serve: --precision fp32|int8; "
               "infer/flow/serve: --simd auto|scalar|avx2|avx512\n"
            << "  (each flag outranks its env var GCNT_PRECISION / "
               "GCNT_SIMD)\n"
            << "netlists ending in .v are treated as structural Verilog\n"
            << "exit codes: 64 usage, 65 corrupt/version, 70 internal, "
               "71 resource, 74 i/o, 75 deadline\n";
  return exit_code_for(ErrorKind::kUsage);
}

int dispatch(const Args& args) {
  if (args.command == "generate") return cmd_generate(args);
  if (args.command == "stats") return cmd_stats(args);
  if (args.command == "scoap") return cmd_scoap(args);
  if (args.command == "label") return cmd_label(args);
  if (args.command == "atpg") return cmd_atpg(args);
  if (args.command == "train") return cmd_train(args);
  if (args.command == "infer") return cmd_infer(args);
  if (args.command == "opi") return cmd_opi(args);
  if (args.command == "flow") return cmd_flow(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "ping") return cmd_ping(args);
  if (args.command == "metrics") return cmd_metrics(args);
  if (args.command == "top") return cmd_top(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      const std::string key = argv[i] + 2;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "1";
      }
    } else {
      args.positional.push_back(argv[i]);
    }
  }

  const std::string trace_path = args.get("trace", "");
  trace_set_thread_name("main");
  if (!trace_path.empty()) trace_start();
  if (args.has("stats") || args.has("stats-json")) set_stats_enabled(true);

  // Failures map to distinct sysexits-style codes (docs/API.md) so
  // wrappers can tell a bad invocation from a corrupt artifact from an
  // environment problem without parsing stderr.
  int rc = 0;
  try {
    rc = dispatch(args);
  } catch (const Error& e) {
    std::cerr << "error [" << error_kind_name(e.kind()) << "]: " << e.what()
              << "\n";
    rc = exit_code_for(e.kind());
  } catch (const std::bad_alloc&) {
    std::cerr << "error [resource]: out of memory\n";
    rc = exit_code_for(ErrorKind::kResource);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error [usage]: " << e.what() << "\n";
    rc = exit_code_for(ErrorKind::kUsage);
  } catch (const std::exception& e) {
    std::cerr << "error [internal]: " << e.what() << "\n";
    rc = exit_code_for(ErrorKind::kInternal);
  }

  publish_kernel_pool_stats();
  if (!trace_path.empty()) {
    if (trace_stop(trace_path)) {
      std::cerr << "wrote trace to " << trace_path << "\n";
    } else {
      std::cerr << "error: failed to write trace to " << trace_path << "\n";
      if (rc == 0) rc = 1;
    }
  }
  const std::string stats_json = args.get("stats-json", "");
  if (!stats_json.empty()) {
    try {
      atomic_write_file(stats_json, [](std::ostream& out) {
        StatsRegistry::instance().write_json(out);
      });
      std::cerr << "wrote stats to " << stats_json << "\n";
    } catch (const Error& e) {
      std::cerr << "error [" << error_kind_name(e.kind())
                << "]: " << e.what() << "\n";
      if (rc == 0) rc = exit_code_for(e.kind());
    }
  }
  if (args.has("stats")) StatsRegistry::instance().write_text(std::cerr);
  return rc;
}
