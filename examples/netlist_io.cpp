// Working with external netlists: parse an ISCAS-style .bench file (a path
// may be given as argv[1]; c17 is embedded as the default), inspect SCOAP
// testability, insert an observation point at the least observable node,
// and write the modified netlist back out in .bench syntax.

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/table.h"
#include "netlist/bench_io.h"
#include "scoap/scoap.h"

namespace {

constexpr const char* kC17 = R"(# ISCAS-85 c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace gcnt;

  Netlist netlist;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    netlist = read_bench(in, argv[1]);
  } else {
    netlist = read_bench_string(kC17, "c17");
  }

  const auto problems = netlist.validate();
  if (!problems.empty()) {
    std::cerr << "netlist is not well-formed: " << problems.front() << "\n";
    return 1;
  }
  std::cout << "parsed '" << netlist.name() << "': " << netlist.size()
            << " nodes, " << netlist.primary_inputs().size() << " PIs, "
            << netlist.primary_outputs().size() << " POs, "
            << netlist.flip_flops().size() << " DFFs\n";

  auto scoap = compute_scoap(netlist);
  Table table("SCOAP measures", {"Node", "Type", "CC0", "CC1", "CO"});
  NodeId worst = kInvalidNode;
  std::uint32_t worst_co = 0;
  for (NodeId v = 0; v < netlist.size(); ++v) {
    if (!is_logic(netlist.type(v))) continue;
    table.add_row({netlist.node_name(v),
                   std::string(cell_type_name(netlist.type(v))),
                   std::to_string(scoap.cc0[v]), std::to_string(scoap.cc1[v]),
                   std::to_string(scoap.co[v])});
    if (scoap.co[v] >= worst_co) {
      worst_co = scoap.co[v];
      worst = v;
    }
  }
  table.print(std::cout);

  std::cout << "\ninserting an observation point at the least observable "
               "node: "
            << netlist.node_name(worst) << " (CO " << worst_co << ")\n";
  netlist.insert_observe_point(worst);
  update_observability_after_observe(netlist, worst, scoap);
  std::cout << "its CO is now " << scoap.co[worst] << "\n\n";

  std::cout << "modified netlist in .bench syntax:\n"
            << write_bench_string(netlist);
  return 0;
}
