// Scalability demo: the sparse whole-graph inference path (Eq. 2/3) on a
// large netlist — the paper's headline engineering claim. Generates a
// 200k-node design, reports adjacency sparsity, and times one full GCN
// inference plus an incremental observation-point update (three appended
// COO tuples + a cone-local SCOAP refresh, no rebuild).

#include <iostream>

#include "common/table.h"
#include "common/timer.h"
#include "gcn/model.h"
#include "gen/generator.h"

int main() {
  using namespace gcnt;

  GeneratorConfig config;
  config.seed = 7;
  config.target_gates = 200000;
  config.primary_inputs = 128;
  config.primary_outputs = 64;
  config.flip_flops = config.target_gates / 24;
  config.trap_fraction = 0.0;

  Timer build_timer;
  const Netlist netlist = generate_circuit(config);
  std::cout << "generated " << netlist.size() << " nodes / "
            << netlist.edge_count() << " edges in "
            << Table::num(build_timer.seconds(), 2) << "s\n";

  Timer tensor_timer;
  GraphTensors tensors = build_graph_tensors(netlist);
  std::cout << "SCOAP + tensors in " << Table::num(tensor_timer.seconds(), 2)
            << "s; adjacency sparsity "
            << Table::percent(
                   build_merged_adjacency(tensors, 0.5f, 0.5f).sparsity(), 4)
            << "\n";

  GcnConfig model_config;
  model_config.embed_dims = {32, 64, 128};
  model_config.fc_dims = {64, 64, 128};
  GcnModel model(model_config);

  Timer warm;  // first call touches all memory
  (void)model.infer(tensors);
  std::cout << "full-graph inference (cold): " << Table::num(warm.seconds(), 2)
            << "s\n";
  Timer hot;
  (void)model.infer(tensors);
  std::cout << "full-graph inference (warm): " << Table::num(hot.seconds(), 2)
            << "s for " << netlist.size() << " nodes\n";

  // Incremental OP update: the paper's Section 4 graph-modification path.
  Netlist modified = netlist;
  ScoapMeasures scoap = compute_scoap(modified);
  NodeId target = kInvalidNode;
  for (NodeId v = modified.size() / 2; v < modified.size(); ++v) {
    if (is_logic(modified.type(v))) {
      target = v;
      break;
    }
  }
  Timer incremental;
  const NodeId op = modified.insert_observe_point(target);
  update_observability_after_observe(modified, target, scoap);
  append_observe_point(tensors, modified, target, op, scoap,
                       modified.fanin_cone(target));
  tensors.rebuild_csr();
  std::cout << "incremental OP insertion + tensor update: "
            << Table::num(incremental.milliseconds(), 1) << " ms\n";
  return 0;
}
