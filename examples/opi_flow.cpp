// Observation-point insertion, end to end (the paper's Section 4 flow):
// train a GCN on three designs, then drive iterative impact-ranked OP
// insertion on a fourth, and measure what the test engineer cares about —
// #OPs, #patterns, fault coverage — against the analytic baseline flow.

#include <iostream>

#include "atpg/atpg.h"
#include "common/table.h"
#include "data/dataset.h"
#include "dft/baseline_opi.h"
#include "dft/gcn_opi.h"
#include "gcn/trainer.h"

int main() {
  using namespace gcnt;

  std::cout << "building four labeled designs (~2k gates each)...\n";
  LabelerOptions labeler;
  labeler.batches = 8;
  const auto suite = make_benchmark_suite(2000, labeler);
  const Dataset& target = suite[0];

  std::cout << "training the classifier on B2..B4...\n";
  GcnConfig config;
  config.embed_dims = {32, 64, 128};
  config.fc_dims = {64, 64, 128};
  GcnModel model(config);
  TrainerOptions options;
  options.epochs = 80;
  options.learning_rate = 1e-2f;
  options.positive_class_weight = 4.0f;
  options.eval_interval = options.epochs;
  Trainer trainer(model, options);
  std::vector<TrainGraph> training;
  for (std::size_t i = 1; i < suite.size(); ++i) {
    training.push_back(TrainGraph{&suite[i].tensors, {}});
  }
  trainer.train(training, nullptr);

  AtpgOptions atpg;

  std::cout << "running the analytic baseline flow on B1...\n";
  Netlist baseline_netlist = target.netlist;
  const auto baseline = run_baseline_opi(baseline_netlist);
  const auto baseline_atpg = run_atpg(baseline_netlist, atpg);

  std::cout << "running the GCN-guided iterative flow on B1...\n";
  Netlist gcn_netlist = target.netlist;
  const auto gcn = run_gcn_opi(gcn_netlist, {&model});
  const auto gcn_atpg = run_atpg(gcn_netlist, atpg);

  Table table("OPI flows on design B1",
              {"Flow", "#OPs", "#PAs", "Fault coverage", "Test coverage"});
  table.add_row({"Analytic baseline", std::to_string(baseline.inserted.size()),
                 std::to_string(baseline_atpg.pattern_count),
                 Table::percent(baseline_atpg.fault_coverage()),
                 Table::percent(baseline_atpg.test_coverage())});
  table.add_row({"GCN iterative", std::to_string(gcn.inserted.size()),
                 std::to_string(gcn_atpg.pattern_count),
                 Table::percent(gcn_atpg.fault_coverage()),
                 Table::percent(gcn_atpg.test_coverage())});
  table.print(std::cout);
  std::cout << "GCN flow converged after " << gcn.iterations
            << " iterations with " << gcn.final_positive_predictions
            << " residual positive predictions\n";
  return 0;
}
