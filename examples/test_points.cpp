// Combined test-point insertion (Section 2.2: the methodology applies to
// control points as well as observation points; Touba et al. insert both).
//
// This example takes a design with both controllability and observability
// problems, inserts control points for the former and observation points
// for the latter, and shows the random-pattern fault coverage climbing at
// each step — the classic DFT story in one run.

#include <iostream>

#include "atpg/atpg.h"
#include "common/table.h"
#include "cop/cop.h"
#include "dft/baseline_opi.h"
#include "dft/cpi.h"
#include "gen/generator.h"

int main() {
  using namespace gcnt;

  GeneratorConfig config;
  config.seed = 22;
  config.target_gates = 2500;
  config.primary_inputs = 24;
  config.primary_outputs = 12;
  config.flip_flops = 100;
  config.trap_fraction = 0.06;     // plenty of hard logic
  config.trap_enable_width = 11;
  Netlist netlist = generate_circuit(config);
  std::cout << "design: " << netlist.size() << " nodes\n";

  // Random patterns only — test points exist to help exactly this.
  AtpgOptions atpg;
  atpg.deterministic_topoff = false;
  atpg.max_random_batches = 24;

  Table table("Random-pattern coverage as test points are inserted",
              {"Step", "#CPs", "#OPs", "Coverage", "#Patterns"});

  const auto snapshot = [&](const std::string& step, std::size_t cps,
                            std::size_t ops) {
    const AtpgResult result = run_atpg(netlist, atpg);
    table.add_row({step, std::to_string(cps), std::to_string(ops),
                   Table::percent(result.fault_coverage()),
                   std::to_string(result.pattern_count)});
  };

  snapshot("original", 0, 0);

  CpiOptions cpi;
  cpi.probability_threshold = 0.02;
  const auto control = run_baseline_cpi(netlist, cpi);
  snapshot("+ control points", control.inserted.size(), 0);

  BaselineOpiOptions opi;
  const auto observe = run_baseline_opi(netlist, opi);
  snapshot("+ observation points", control.inserted.size(),
           observe.inserted.size());

  table.print(std::cout);

  const auto problems = netlist.validate();
  std::cout << (problems.empty() ? "modified netlist is well-formed\n"
                                 : "VALIDATION FAILED\n");
  return problems.empty() ? 0 : 1;
}
