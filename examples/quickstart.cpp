// Quickstart: the whole public API in one small program.
//
//   1. generate (or parse) a gate-level netlist,
//   2. run SCOAP testability analysis,
//   3. label difficult-to-observe nodes with the behavioral oracle,
//   4. train the paper's GCN on the graph,
//   5. predict and report classification quality.
//
// Runs in well under a minute on a laptop core.

#include <iostream>

#include "common/metrics.h"
#include "common/table.h"
#include "data/dataset.h"
#include "gcn/trainer.h"
#include "gen/generator.h"

int main() {
  using namespace gcnt;

  // 1. A ~3k-gate synthetic design with deliberate hard-to-observe logic.
  GeneratorConfig generator;
  generator.seed = 2019;
  generator.target_gates = 3000;
  generator.primary_inputs = 32;
  generator.primary_outputs = 16;
  generator.flip_flops = 120;
  generator.trap_fraction = 0.03;
  Netlist netlist = generate_circuit(generator);
  std::cout << "generated '" << netlist.name() << "': " << netlist.size()
            << " nodes, " << netlist.edge_count() << " edges\n";

  // 2 + 3. Testability measures and labels (make_dataset bundles SCOAP,
  // logic levels, tensor construction and the labeling oracle).
  Dataset dataset = make_dataset(std::move(netlist));
  std::cout << "labeled: " << dataset.positives()
            << " difficult-to-observe nodes of " << dataset.netlist.size()
            << " (" << Table::percent(static_cast<double>(dataset.positives()) /
                                      static_cast<double>(dataset.netlist.size()))
            << ")\n";

  // 4. Train the paper's architecture (D=3, K=32/64/128, FC=64/64/128/2)
  // on a balanced subset of this design.
  GcnConfig config;
  config.embed_dims = {32, 64, 128};
  config.fc_dims = {64, 64, 128};
  GcnModel model(config);

  TrainerOptions options;
  options.epochs = 150;
  options.learning_rate = 1e-2f;
  options.eval_interval = 25;
  Trainer trainer(model, options);
  const TrainGraph data{&dataset.tensors, balanced_rows(dataset, 1)};
  const auto history = trainer.train({data}, &data);
  std::cout << "trained " << options.epochs << " epochs; final loss "
            << Table::num(history.back().loss, 4) << ", balanced accuracy "
            << Table::num(history.back().train_accuracy, 3) << "\n";

  // 5. Whole-graph prediction (sparse-matrix inference) and quality on the
  // full, imbalanced node population.
  const auto probabilities = model.predict_positive_probability(dataset.tensors);
  std::vector<std::int32_t> predictions(probabilities.size());
  for (std::size_t i = 0; i < probabilities.size(); ++i) {
    predictions[i] = probabilities[i] >= 0.5f ? 1 : 0;
  }
  const auto cm = evaluate_binary(predictions, dataset.tensors.labels);
  std::cout << "full-graph prediction: precision "
            << Table::num(cm.precision(), 3) << ", recall "
            << Table::num(cm.recall(), 3) << ", F1 " << Table::num(cm.f1(), 3)
            << "\n";
  std::cout << "learned aggregation weights: w_pr = "
            << Table::num(model.w_pr(), 3)
            << ", w_su = " << Table::num(model.w_su(), 3) << "\n";
  return 0;
}
