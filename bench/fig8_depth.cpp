// Figure 8 reproduction: training/testing accuracy vs. epoch for search
// depth D = 1, 2, 3 on balanced data (train B2-B4, test B1).
//
// Paper shape: accuracy improves with depth; D=3 reaches ~93% test
// accuracy, D=1 plateaus markedly lower.

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "common/timer.h"

int main() {
  using namespace gcnt;
  const auto suite = bench::load_suite();
  const std::size_t epochs = bench::bench_epochs();
  constexpr std::size_t kHeldOut = 0;

  const auto training = bench::balanced_training_set(suite, kHeldOut);
  const TrainGraph test{&suite[kHeldOut].tensors,
                        balanced_rows(suite[kHeldOut], 99)};

  std::cout << "# Figure 8: accuracy vs epoch per search depth D\n";
  std::cout << "depth,epoch,train_accuracy,test_accuracy,loss\n";

  Table summary("Figure 8 summary: final accuracy per search depth",
                {"D", "Train acc", "Test acc", "Time (s)"});
  for (int depth = 1; depth <= 3; ++depth) {
    GcnModel model(bench::paper_model_config(depth));
    TrainerOptions options;
    options.epochs = epochs;
    options.learning_rate = 1e-2f;
    options.eval_interval = std::max<std::size_t>(1, epochs / 30);
    Trainer trainer(model, options);
    Timer timer;
    const auto history = trainer.train(training, &test);
    const double elapsed = timer.seconds();
    for (const EpochRecord& record : history) {
      if (record.epoch % options.eval_interval != 0 &&
          record.epoch + 1 != epochs) {
        continue;
      }
      std::cout << depth << "," << record.epoch << ","
                << Table::num(record.train_accuracy, 4) << ","
                << Table::num(record.test_accuracy, 4) << ","
                << Table::num(record.loss, 4) << "\n";
    }
    summary.add_row({std::to_string(depth),
                     Table::num(history.back().train_accuracy, 3),
                     Table::num(history.back().test_accuracy, 3),
                     Table::num(elapsed, 1)});
  }
  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\nPaper reference: D=3 > D=2 > D=1; D=3 test accuracy ~93%\n";
  return 0;
}
