// Figure 10 reproduction: inference runtime vs graph size, comparing
//
//   * ours     — whole-graph sparse-matrix inference (Eq. 3),
//   * exact    — per-node recursion without sharing (lower bound on [12]),
//   * sampled  — GraphSAGE-style fixed-fanout sampled recursion, the cost
//                model of the released implementation of [12] the paper
//                measured (25/10/10 neighbors per hop, with replacement).
//
// Paper shape: the sparse engine handles 10^6 nodes in seconds while the
// recursion-based pipeline takes >1 hour — three orders of magnitude.
// The per-node baselines are timed on a node sample and extrapolated
// (marked with *) once a full run would exceed the time budget.

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "common/timer.h"
#include "gcn/graphsage_inference.h"
#include "gcn/recursive_inference.h"
#include "gen/generator.h"

namespace {

using namespace gcnt;

/// Times `infer_node` on `sample` nodes and extrapolates to the full graph.
template <typename Engine>
double extrapolated_seconds(Engine&& engine, std::size_t node_count,
                            std::size_t sample) {
  Timer timer;
  const std::size_t step = std::max<std::size_t>(1, node_count / sample);
  std::size_t measured = 0;
  for (NodeId v = 0; v < node_count; v += step) {
    (void)engine.infer_node(v);
    ++measured;
  }
  return timer.seconds() * static_cast<double>(node_count) /
         static_cast<double>(measured);
}

}  // namespace

int main() {
  const std::size_t cap = bench::bench_max_nodes();
  GcnModel model(bench::paper_model_config());

  std::cout << "# Figure 10: inference runtime vs number of nodes\n";
  std::cout << "nodes,edges,ours_s,recursive_exact_s,graphsage_sampled_s"
               " (star = extrapolated from a node sample)\n";

  Table table("Figure 10: inference runtime (seconds)",
              {"#Nodes", "Ours (sparse)", "Recursion (exact)",
               "Recursion ([12]-style sampled)"});

  for (std::size_t gates :
       {1000ul, 3000ul, 10000ul, 30000ul, 100000ul, 300000ul, 1000000ul}) {
    if (gates > cap) break;
    GeneratorConfig config;
    config.seed = 0xF16;
    config.target_gates = gates;
    config.primary_inputs = 64;
    config.primary_outputs = 32;
    config.flip_flops = gates / 24;
    config.trap_fraction = 0.0;  // timing only
    const Netlist netlist = generate_circuit(config);
    const GraphTensors tensors = build_graph_tensors(netlist);
    const std::size_t n = netlist.size();

    Timer ours_timer;
    (void)model.infer(tensors);
    const double ours = ours_timer.seconds();

    // Exact recursion: full run while cheap, sampled extrapolation after.
    const bool exact_sampled = n > 30000;
    RecursiveInference exact(model, netlist, tensors.features);
    double exact_seconds;
    if (exact_sampled) {
      exact_seconds = extrapolated_seconds(exact, n, 1500);
    } else {
      Timer timer;
      (void)exact.infer_all();
      exact_seconds = timer.seconds();
    }

    // GraphSAGE-style sampled recursion is ~2500 matvecs per node; always
    // extrapolate from a sample.
    GraphSageInference sampled(model, netlist, tensors.features);
    const double sampled_seconds = extrapolated_seconds(sampled, n, 300);

    std::cout << n << "," << netlist.edge_count() << ","
              << Table::num(ours, 4) << ","
              << Table::num(exact_seconds, 3) << (exact_sampled ? "*" : "")
              << "," << Table::num(sampled_seconds, 2) << "*\n";
    table.add_row({std::to_string(n), Table::num(ours, 4),
                   Table::num(exact_seconds, 3) + (exact_sampled ? "*" : ""),
                   Table::num(sampled_seconds, 2) + "*"});
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nPaper reference: sparse engine ~1.5 s at 10^6 nodes; "
               "recursion-based [12] > 1 hour (3 orders of magnitude)\n";
  return 0;
}
