// Figure 10 reproduction: inference runtime vs graph size, comparing
//
//   * ours     — whole-graph sparse-matrix inference (Eq. 3),
//   * exact    — per-node recursion without sharing (lower bound on [12]),
//   * sampled  — GraphSAGE-style fixed-fanout sampled recursion, the cost
//                model of the released implementation of [12] the paper
//                measured (25/10/10 neighbors per hop, with replacement).
//
// Paper shape: the sparse engine handles 10^6 nodes in seconds while the
// recursion-based pipeline takes >1 hour — three orders of magnitude.
// The per-node baselines are timed on a node sample and extrapolated
// (marked with *) once a full run would exceed the time budget.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "common/trace.h"
#include "gcn/graphsage_inference.h"
#include "gcn/recursive_inference.h"
#include "gen/generator.h"

namespace {

using namespace gcnt;

/// Times `infer_node` on `sample` nodes and extrapolates to the full graph.
template <typename Engine>
double extrapolated_seconds(Engine&& engine, std::size_t node_count,
                            std::size_t sample) {
  Timer timer;
  const std::size_t step = std::max<std::size_t>(1, node_count / sample);
  std::size_t measured = 0;
  for (NodeId v = 0; v < node_count; v += step) {
    (void)engine.infer_node(v);
    ++measured;
  }
  return timer.seconds() * static_cast<double>(node_count) /
         static_cast<double>(measured);
}

/// Thread-count sweep over the parallel kernels at the largest swept size:
/// times SpMM aggregation and full sparse inference at 1/2/4/N kernel
/// threads and checks the outputs stay bitwise identical (the determinism
/// guarantee of common/parallel.h). Speedups are relative to 1 thread.
void thread_sweep(const GcnModel& model, const GraphTensors& tensors,
                  std::size_t node_count) {
  std::vector<std::size_t> counts{1, 2, 4, 8};
  const std::size_t hardware = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  if (hardware > counts.back()) counts.push_back(hardware);

  std::cout << "\n# SpMM/inference thread sweep at " << node_count
            << " nodes\nthreads,spmm_s,spmm_speedup,infer_s,infer_speedup,"
               "identical\n";
  Table table("Thread sweep at " + std::to_string(node_count) + " nodes",
              {"Threads", "SpMM (s)", "SpMM x", "Inference (s)",
               "Inference x", "Identical"});

  const Matrix embedding(tensors.node_count(), 64, 0.5f);
  Matrix spmm_reference;
  Matrix infer_reference;
  double spmm_base = 0.0;
  double infer_base = 0.0;
  for (const std::size_t threads : counts) {
    set_kernel_threads(threads);
    Matrix spmm_out;
    Timer spmm_timer;
    tensors.pred.spmm(embedding, spmm_out);
    const double spmm_seconds = spmm_timer.seconds();
    Timer infer_timer;
    const Matrix logits = model.infer(tensors);
    const double infer_seconds = infer_timer.seconds();

    bool identical = true;
    if (threads == counts.front()) {
      spmm_reference = std::move(spmm_out);
      infer_reference = logits;
      spmm_base = spmm_seconds;
      infer_base = infer_seconds;
    } else {
      identical = spmm_out == spmm_reference && logits == infer_reference;
    }
    const double spmm_speedup = spmm_base / std::max(spmm_seconds, 1e-12);
    const double infer_speedup = infer_base / std::max(infer_seconds, 1e-12);
    std::cout << threads << "," << Table::num(spmm_seconds, 4) << ","
              << Table::num(spmm_speedup, 2) << ","
              << Table::num(infer_seconds, 4) << ","
              << Table::num(infer_speedup, 2) << ","
              << (identical ? "yes" : "NO") << "\n";
    table.add_row({std::to_string(threads), Table::num(spmm_seconds, 4),
                   Table::num(spmm_speedup, 2), Table::num(infer_seconds, 4),
                   Table::num(infer_speedup, 2), identical ? "yes" : "NO"});
  }
  set_kernel_threads(0);
  std::cout << "\n";
  table.print(std::cout);
}

/// Column-tile sweep for the cache-blocked SpMM at the largest swept size:
/// times aggregation over a 128-wide embedding per tile width (0 =
/// untiled) and checks the outputs stay bitwise identical — tiling is a
/// locality knob, never a numerics knob.
void tile_sweep(const GraphTensors& tensors, std::size_t node_count) {
  std::cout << "\n# SpMM column-tile sweep at " << node_count
            << " nodes (128-wide embedding)\ntile,spmm_s,speedup,identical\n";
  Table table("SpMM tile sweep at " + std::to_string(node_count) + " nodes",
              {"Tile", "SpMM (s)", "Speedup", "Identical"});

  const Matrix embedding(tensors.node_count(), 128, 0.5f);
  Matrix reference;
  double base = 0.0;
  for (const std::size_t tile : {0ul, 16ul, 32ul, 64ul, 128ul}) {
    set_spmm_tile_cols(tile);
    Matrix out;
    Timer timer;
    tensors.pred.spmm(embedding, out);
    const double seconds = timer.seconds();
    set_spmm_tile_cols(0);

    bool identical = true;
    if (base == 0.0) {
      reference = std::move(out);
      base = seconds;
    } else {
      identical = out == reference;
    }
    const double speedup = base / std::max(seconds, 1e-12);
    std::cout << (tile == 0 ? std::string("untiled") : std::to_string(tile))
              << "," << Table::num(seconds, 4) << ","
              << Table::num(speedup, 2) << "," << (identical ? "yes" : "NO")
              << "\n";
    table.add_row({tile == 0 ? std::string("untiled") : std::to_string(tile),
                   Table::num(seconds, 4), Table::num(speedup, 2),
                   identical ? "yes" : "NO"});
  }
  std::cout << "\n";
  table.print(std::cout);
}

/// Precision sweep at the largest swept size: one full sparse inference
/// per tier (fp32, then int8 after calibrating the same weights), plus a
/// thread-count rerun of the int8 tier to confirm its bitwise
/// determinism contract (gcn/quant.h). Returns the flat entries for
/// GCNT_BENCH_JSON; leaves the model back on fp32.
std::vector<std::pair<std::string, double>> precision_sweep(
    GcnModel& model, const GraphTensors& tensors, std::size_t node_count) {
  std::cout << "\n# Inference precision sweep at " << node_count
            << " nodes\nprecision,infer_s,speedup,deterministic\n";
  Table table("Precision sweep at " + std::to_string(node_count) + " nodes",
              {"Precision", "Inference (s)", "Speedup", "Deterministic"});

  set_kernel_threads(8);
  Timer fp32_timer;
  (void)model.infer(tensors);
  const double fp32_seconds = fp32_timer.seconds();

  model.set_precision(Precision::kInt8);
  Timer int8_timer;
  const Matrix int8_logits = model.infer(tensors);
  const double int8_seconds = int8_timer.seconds();
  set_kernel_threads(2);
  const Matrix int8_rerun = model.infer(tensors);
  const bool deterministic = int8_rerun == int8_logits;
  set_kernel_threads(0);
  model.set_precision(Precision::kFp32);

  const double speedup = fp32_seconds / std::max(int8_seconds, 1e-12);
  std::cout << "fp32," << Table::num(fp32_seconds, 4) << ",1.00,yes\n"
            << "int8," << Table::num(int8_seconds, 4) << ","
            << Table::num(speedup, 2) << ","
            << (deterministic ? "yes" : "NO") << "\n\n";
  table.add_row({"fp32", Table::num(fp32_seconds, 4), "1.00", "yes"});
  table.add_row({"int8", Table::num(int8_seconds, 4),
                 Table::num(speedup, 2), deterministic ? "yes" : "NO"});
  table.print(std::cout);

  return {{"fig10.infer_fp32_s", fp32_seconds},
          {"fig10.infer_int8_s", int8_seconds},
          {"fig10.quant_speedup", speedup}};
}

}  // namespace

int main() {
  trace_set_thread_name("main");
  const std::size_t cap = bench::bench_max_nodes();
  GcnModel model(bench::paper_model_config());

  std::cout << "# Figure 10: inference runtime vs number of nodes\n";
  std::cout << "nodes,edges,ours_s,recursive_exact_s,graphsage_sampled_s"
               " (star = extrapolated from a node sample)\n";

  Table table("Figure 10: inference runtime (seconds)",
              {"#Nodes", "Ours (sparse)", "Recursion (exact)",
               "Recursion ([12]-style sampled)"});

  GraphTensors last_tensors;
  std::size_t last_nodes = 0;

  for (std::size_t gates :
       {1000ul, 3000ul, 10000ul, 30000ul, 100000ul, 300000ul, 1000000ul}) {
    if (gates > cap) break;
    GeneratorConfig config;
    config.seed = 0xF16;
    config.target_gates = gates;
    config.primary_inputs = 64;
    config.primary_outputs = 32;
    config.flip_flops = gates / 24;
    config.trap_fraction = 0.0;  // timing only
    const Netlist netlist = generate_circuit(config);
    GraphTensors tensors = build_graph_tensors(netlist);
    const std::size_t n = netlist.size();
    TraceSpan size_span("fig10.size");
    size_span.arg("nodes", static_cast<double>(n));
    size_span.arg("edges", static_cast<double>(netlist.edge_count()));

    Timer ours_timer;
    (void)model.infer(tensors);
    const double ours = ours_timer.seconds();

    // Exact recursion: full run while cheap, sampled extrapolation after.
    const bool exact_sampled = n > 30000;
    RecursiveInference exact(model, netlist, tensors.features);
    double exact_seconds;
    if (exact_sampled) {
      exact_seconds = extrapolated_seconds(exact, n, 1500);
    } else {
      Timer timer;
      (void)exact.infer_all();
      exact_seconds = timer.seconds();
    }

    // GraphSAGE-style sampled recursion is ~2500 matvecs per node; always
    // extrapolate from a sample.
    GraphSageInference sampled(model, netlist, tensors.features);
    const double sampled_seconds = extrapolated_seconds(sampled, n, 300);

    std::cout << n << "," << netlist.edge_count() << ","
              << Table::num(ours, 4) << ","
              << Table::num(exact_seconds, 3) << (exact_sampled ? "*" : "")
              << "," << Table::num(sampled_seconds, 2) << "*\n";
    table.add_row({std::to_string(n), Table::num(ours, 4),
                   Table::num(exact_seconds, 3) + (exact_sampled ? "*" : ""),
                   Table::num(sampled_seconds, 2) + "*"});
    last_tensors = std::move(tensors);
    last_nodes = n;
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nPaper reference: sparse engine ~1.5 s at 10^6 nodes; "
               "recursion-based [12] > 1 hour (3 orders of magnitude)\n";

  if (last_nodes > 0) {
    thread_sweep(model, last_tensors, last_nodes);
    tile_sweep(last_tensors, last_nodes);
    const auto entries = precision_sweep(model, last_tensors, last_nodes);
    if (const char* path = std::getenv("GCNT_BENCH_JSON")) {
      if (!bench::write_bench_json(path, entries)) {
        std::cerr << "fig10: failed to write GCNT_BENCH_JSON to " << path
                  << "\n";
        return 1;
      }
    }
  }
  publish_kernel_pool_stats();
  if (stats_enabled()) StatsRegistry::instance().write_text(std::cerr);
  return 0;
}
