// Figure 9 reproduction: F1-score of a single GCN vs the 3-stage
// multi-stage GCN on the full (imbalanced) node population of each design,
// leave-one-design-out.
//
// Paper shape: multi-stage F1 >> single-GCN F1 on all four designs.

#include <iostream>

#include "bench_common.h"
#include "common/metrics.h"
#include "common/table.h"
#include "gcn/multistage.h"

int main() {
  using namespace gcnt;
  const auto suite = bench::load_suite();

  Table table("Figure 9: F1-score on imbalanced data",
              {"Design", "GCN-S (single)", "GCN-M (multi-stage)"});

  for (std::size_t held_out = 0; held_out < suite.size(); ++held_out) {
    std::vector<const GraphTensors*> training;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      if (i != held_out) training.push_back(&suite[i].tensors);
    }

    MultiStageOptions options;
    options.model = bench::paper_model_config();
    options.trainer.epochs = bench::bench_epochs() / 2;
    options.trainer.learning_rate = 1e-2f;
    options.trainer.eval_interval = options.trainer.epochs;

    // Single GCN: one stage trained unweighted on the imbalanced data.
    MultiStageOptions single_options = options;
    single_options.stages = 1;
    MultiStageClassifier single(single_options);
    single.fit(training);
    const auto single_f1 =
        evaluate_binary(single.predict(suite[held_out].tensors),
                        suite[held_out].tensors.labels)
            .f1();

    // Multi-stage cascade (Section 3.3): 3 stages.
    options.stages = 3;
    MultiStageClassifier cascade(options);
    cascade.fit(training);
    const auto multi_f1 =
        evaluate_binary(cascade.predict(suite[held_out].tensors),
                        suite[held_out].tensors.labels)
            .f1();

    table.add_row({suite[held_out].name(), Table::num(single_f1),
                   Table::num(multi_f1)});
  }

  table.print(std::cout);
  std::cout << "\nPaper reference: GCN-M F1 ~0.53-0.62 vs GCN-S ~0.2-0.4 "
               "(multi-stage wins on every design)\n";
  return 0;
}
