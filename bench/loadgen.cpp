// Load generator for the `gcnt serve` daemon: replays a mixed
// infer / append-observe workload against a running server at a target
// QPS from several client threads, and reports p50/p99 latency and
// sustained throughput as bench JSON (schema v4, "serve.*" keys) for
// tools/bench_gate.
//
//   loadgen (--socket path | --port P)
//           [--sessions N] [--gates G] [--seed S]
//           [--requests N] [--threads T] [--qps Q]
//           [--edit-every K] [--reload] [--shutdown]
//           [--expect-overload] [--json out.json]
//
// Default mode loads --sessions circuits as resident sessions, then
// issues --requests total requests round-robin across --threads
// connections: every --edit-every'th request on a session inserts an
// observation point (the incremental path), the rest are whole-graph
// infers. --qps 0 runs unpaced (throughput mode). --reload issues one
// model hot-reload at the halfway point — latency of requests riding
// across the swap is included in the percentiles, which is the point.
// After the run a kMetrics scrape reports the server-side queue-wait
// p99 (emitted as the serve.queue_wait_p99_us JSON key).
//
// --expect-overload instead runs the admission-control probe: on one
// connection it pipelines two slow session loads (the first occupies a
// worker, the second the queue) followed by a ping burst, and requires
// at least one typed `resource` rejection. Exit code 1 when the daemon
// misbehaves in either mode (unexpected error kind, no rejection in the
// overload probe, reload generation not advancing).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/error.h"
#include "common/stats.h"
#include "common/timer.h"
#include "gen/generator.h"
#include "netlist/bench_io.h"
#include "serve/client.h"

namespace {

using namespace gcnt;

struct Options {
  std::string socket;
  int port = -1;
  std::size_t sessions = 2;
  std::size_t gates = 2000;
  std::uint64_t seed = 9;
  std::size_t requests = 200;
  std::size_t threads = 2;
  double qps = 0.0;  // 0 = unpaced
  std::size_t edit_every = 16;
  bool reload = false;
  bool do_shutdown = false;
  bool expect_overload = false;
  std::string json;
};

Options parse(int argc, char** argv) {
  Options options;
  std::map<std::string, std::string> kv;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw Error(ErrorKind::kUsage, "unexpected argument " + arg);
    }
    arg = arg.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv[arg] = argv[++i];
    } else {
      kv[arg] = "1";
    }
  }
  const auto get = [&](const char* key, const std::string& fallback) {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  };
  options.socket = get("socket", "");
  options.port = std::stoi(get("port", "-1"));
  options.sessions = std::stoull(get("sessions", "2"));
  options.gates = std::stoull(get("gates", "2000"));
  options.seed = std::stoull(get("seed", "9"));
  options.requests = std::stoull(get("requests", "200"));
  options.threads = std::max<std::size_t>(1, std::stoull(get("threads", "2")));
  options.qps = std::stod(get("qps", "0"));
  options.edit_every = std::stoull(get("edit-every", "16"));
  options.reload = kv.count("reload") > 0;
  options.do_shutdown = kv.count("shutdown") > 0;
  options.expect_overload = kv.count("expect-overload") > 0;
  options.json = get("json", "");
  if (options.socket.empty() && options.port < 0) {
    throw Error(ErrorKind::kUsage, "loadgen needs --socket or --port");
  }
  return options;
}

serve::ServeClient connect(const Options& options) {
  return options.socket.empty()
             ? serve::ServeClient::connect_tcp(options.port)
             : serve::ServeClient::connect_unix(options.socket);
}

/// Valid observation-point targets in the canonical (round-tripped)
/// netlist, spread across the graph so the edits touch distinct cones.
std::vector<NodeId> observe_targets(const Netlist& netlist,
                                    std::size_t count) {
  std::vector<NodeId> targets;
  const std::size_t step =
      std::max<std::size_t>(1, netlist.size() / (count * 4 + 1));
  for (NodeId v = 0; v < netlist.size() && targets.size() < count;
       v += static_cast<NodeId>(step)) {
    const CellType t = netlist.type(v);
    if (is_sink(t) || t == CellType::kInput) continue;
    targets.push_back(v);
  }
  return targets;
}

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

int run_overload_probe(const Options& options) {
  // Two pipelined loads occupy the worker and (with --queue 1 on the
  // server) the queue; the ping burst behind them must see typed
  // `resource` rejections from admission control.
  GeneratorConfig config;
  config.seed = options.seed;
  config.target_gates = std::max<std::size_t>(options.gates, 40000);
  const std::string big = write_bench_string(generate_circuit(config));

  serve::ServeClient client = connect(options);
  const auto send_load = [&](const std::string& name, std::uint32_t id) {
    serve::Frame frame;
    frame.opcode = static_cast<std::uint8_t>(serve::Op::kLoadSession);
    frame.request_id = id;
    serve::WireWriter writer(frame.body);
    writer.str(name);
    writer.u8(1);  // inline .bench text
    writer.str(big);
    writer.u8(0);
    serve::write_frame(client.write_fd(), frame);
  };
  send_load("overload1", 1);
  send_load("overload2", 2);
  const std::size_t pings = std::min<std::size_t>(options.requests, 64);
  for (std::size_t i = 0; i < pings; ++i) {
    serve::Frame frame;
    frame.opcode = static_cast<std::uint8_t>(serve::Op::kPing);
    frame.request_id = static_cast<std::uint32_t>(100 + i);
    serve::write_frame(client.write_fd(), frame);
  }

  std::size_t ok = 0, rejected = 0;
  bool first_load_ok = false;
  for (std::size_t i = 0; i < pings + 2; ++i) {
    serve::Frame response;
    ErrorKind kind = ErrorKind::kInternal;
    std::string message;
    if (serve::read_frame(client.write_fd(), response, kind, message) !=
        serve::ReadStatus::kFrame) {
      std::cerr << "loadgen: transport failure mid-probe: " << message
                << "\n";
      return 1;
    }
    serve::WireReader reader(response.body);
    const std::uint8_t status = reader.u8();
    if (status == serve::kStatusOk) {
      ++ok;
      if (response.request_id == 1) first_load_ok = true;
    } else if (serve::error_kind_for_status(status) ==
               ErrorKind::kResource) {
      ++rejected;
    } else {
      std::cerr << "loadgen: unexpected error reply: " << reader.str()
                << "\n";
      return 1;
    }
  }
  client.close_session("overload1");
  try {
    client.close_session("overload2");  // may have been rejected
  } catch (const Error&) {
  }
  std::cout << "overload probe: " << ok << " ok, " << rejected
            << " rejected (queue-full resource errors)\n";
  if (!first_load_ok) {
    std::cerr << "loadgen: first load should have been admitted\n";
    return 1;
  }
  if (rejected == 0) {
    std::cerr << "loadgen: expected at least one overload rejection\n";
    return 1;
  }
  return 0;
}

struct SessionPlan {
  std::string name;
  std::vector<NodeId> targets;       ///< valid OP targets, used once each
  std::atomic<std::size_t> cursor{0};
};

int run_mixed(const Options& options) {
  // Prepare canonical circuits and load them as resident sessions.
  std::vector<std::unique_ptr<SessionPlan>> plans;
  {
    serve::ServeClient setup = connect(options);
    for (std::size_t s = 0; s < options.sessions; ++s) {
      GeneratorConfig config;
      config.seed = options.seed + s;
      config.target_gates = options.gates;
      const std::string text =
          write_bench_string(generate_circuit(config));
      const Netlist canonical = read_bench_string(text);
      auto plan = std::make_unique<SessionPlan>();
      plan->name = "lg" + std::to_string(s);
      plan->targets = observe_targets(canonical, 256);
      setup.load_session_inline(plan->name, text, /*standardize=*/false);
      plans.push_back(std::move(plan));
    }
  }

  std::atomic<std::size_t> ticket{0};
  std::atomic<std::size_t> ok{0}, edits{0}, rejected{0}, errors{0};
  std::atomic<std::uint64_t> reload_generation{0};
  std::vector<std::vector<double>> latencies(options.threads);
  const std::size_t reload_ticket =
      options.reload ? options.requests / 2 : options.requests + 1;

  Timer wall;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < options.threads; ++t) {
    threads.emplace_back([&, t] {
      serve::ServeClient client = connect(options);
      std::vector<double>& mine = latencies[t];
      for (;;) {
        const std::size_t n = ticket.fetch_add(1);
        if (n >= options.requests) return;
        if (options.qps > 0.0) {
          std::this_thread::sleep_until(
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(n) / options.qps)));
        }
        SessionPlan& plan = *plans[n % plans.size()];
        const bool edit =
            options.edit_every > 0 && n % options.edit_every == 1;
        Timer latency;
        try {
          if (n == reload_ticket) {
            reload_generation.store(client.reload());
          } else if (edit) {
            const std::size_t i = plan.cursor.fetch_add(1);
            if (i < plan.targets.size()) {
              client.append_observe(plan.name, plan.targets[i]);
              edits.fetch_add(1);
            } else {
              client.infer(plan.name);  // targets exhausted
            }
          } else {
            const Matrix logits = client.infer(plan.name);
            if (logits.rows() == 0) {
              errors.fetch_add(1);
              continue;
            }
          }
          mine.push_back(latency.milliseconds());
          ok.fetch_add(1);
        } catch (const Error& e) {
          if (e.kind() == ErrorKind::kResource) {
            rejected.fetch_add(1);
          } else {
            errors.fetch_add(1);
            std::cerr << "loadgen: request " << n << " failed ["
                      << error_kind_name(e.kind()) << "]: " << e.what()
                      << "\n";
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed = wall.seconds();

  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  const double p50 = percentile(all, 0.50);
  const double p99 = percentile(all, 0.99);
  const double qps =
      elapsed > 0.0 ? static_cast<double>(ok.load()) / elapsed : 0.0;

  std::cout << "loadgen: " << ok.load() << "/" << options.requests
            << " ok (" << edits.load() << " edits, " << rejected.load()
            << " overload-rejected, " << errors.load() << " errors) in "
            << elapsed << "s\n"
            << "  p50 " << p50 << " ms, p99 " << p99 << " ms, sustained "
            << qps << " qps\n";
  if (options.reload) {
    std::cout << "  hot reload -> generation " << reload_generation.load()
              << "\n";
  }

  int rc = 0;
  if (errors.load() != 0) rc = 1;
  if (options.reload && reload_generation.load() < 2) {
    std::cerr << "loadgen: hot reload did not advance the generation\n";
    rc = 1;
  }

  // Server-side queue-wait p99 from a kMetrics scrape: the client-side
  // percentiles above include the network and decode, this one isolates
  // time spent waiting in the daemon's bounded queue.
  double queue_wait_p99_us = 0.0;
  try {
    serve::ServeClient scraper = connect(options);
    const serve::ServeClient::MetricsResult metrics = scraper.metrics();
    std::map<std::string, double> series;
    std::string parse_error;
    if (parse_prometheus_text(metrics.exposition, series, parse_error)) {
      const auto it =
          series.find("gcnt_serve_queue_wait_us{quantile=\"0.99\"}");
      if (it != series.end()) queue_wait_p99_us = it->second;
      std::cout << "  server queue-wait p99 " << queue_wait_p99_us
                << " us (" << series.size() << " metric series)\n";
    } else {
      std::cerr << "loadgen: bad metrics exposition: " << parse_error << "\n";
      rc = 1;
    }
  } catch (const Error& e) {
    std::cerr << "loadgen: metrics scrape failed: " << e.what() << "\n";
    rc = 1;
  }

  if (options.do_shutdown) {
    serve::ServeClient finisher = connect(options);
    finisher.shutdown();
  }

  if (!options.json.empty()) {
    const bool written = bench::write_bench_json(
        options.json,
        {{"serve.qps", qps},
         {"serve.p50_ms", p50},
         {"serve.p99_ms", p99},
         {"serve.requests", static_cast<double>(options.requests)},
         {"serve.edits", static_cast<double>(edits.load())},
         {"serve.overload_rejected",
          static_cast<double>(rejected.load())},
         {"serve.errors", static_cast<double>(errors.load())},
         {"serve.queue_wait_p99_us", queue_wait_p99_us}});
    if (!written) {
      std::cerr << "loadgen: cannot write " << options.json << "\n";
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options options = parse(argc, argv);
    return options.expect_overload ? run_overload_probe(options)
                                   : run_mixed(options);
  } catch (const Error& e) {
    std::cerr << "loadgen: [" << error_kind_name(e.kind()) << "] "
              << e.what() << "\n";
    return exit_code_for(e.kind());
  } catch (const std::exception& e) {
    std::cerr << "loadgen: " << e.what() << "\n";
    return 1;
  }
}
