// Load generator for the `gcnt serve` daemon: replays a mixed
// infer / append-observe workload against a running server at a target
// QPS from several client threads, and reports p50/p99 latency and
// sustained throughput as bench JSON (schema v4, "serve.*" keys) for
// tools/bench_gate.
//
//   loadgen (--socket path | --port P)
//           [--sessions N] [--gates G] [--seed S]
//           [--requests N] [--threads T] [--qps Q]
//           [--edit-every K] [--reload] [--shutdown]
//           [--expect-overload] [--json out.json]
//           [--deadline-ms MS] [--retries N] [--backoff-ms MS]
//           [--connect-timeout-ms MS] [--recv-timeout-ms MS] [--chaos]
//
// Default mode loads --sessions circuits as resident sessions, then
// issues --requests total requests round-robin across --threads
// connections: every --edit-every'th request on a session inserts an
// observation point (the incremental path), the rest are whole-graph
// infers. --qps 0 runs unpaced (throughput mode). --reload issues one
// model hot-reload at the halfway point — latency of requests riding
// across the swap is included in the percentiles, which is the point.
// After the run a kMetrics scrape reports the server-side queue-wait
// p99 (emitted as the serve.queue_wait_p99_us JSON key).
//
// --expect-overload instead runs the admission-control probe: on one
// connection it pipelines two slow session loads (the first occupies a
// worker, the second the queue) followed by a ping burst, and requires
// at least one typed `resource` rejection. Exit code 1 when the daemon
// misbehaves in either mode (unexpected error kind, no rejection in the
// overload probe, reload generation not advancing).
//
// Resilience: a client whose connection dies mid-stream (ECONNRESET, a
// torn reply) counts the request as an error outcome and reconnects —
// it never kills the process, and the JSON stays valid. --retries N
// arms the client-side retry policy (idempotent ops only). --chaos runs
// the fault-tolerance contract instead of the performance one: typed
// errors are expected (the daemon is being fault-injected via
// GCNT_FAULT_INJECT), exit code 1 only when the daemon stops answering,
// a session leaks, no request succeeds at all, or — with --edit-every 0
// — two successful infers of the same session disagree bit-for-bit.
// Pure-infer runs print `loadgen: logits fnv 0x********` (XOR of
// per-session FNV-1a checksums) so CI can diff a faulted run against a
// clean one.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/error.h"
#include "common/stats.h"
#include "common/timer.h"
#include "gen/generator.h"
#include "netlist/bench_io.h"
#include "serve/client.h"

namespace {

using namespace gcnt;

struct Options {
  std::string socket;
  int port = -1;
  std::size_t sessions = 2;
  std::size_t gates = 2000;
  std::uint64_t seed = 9;
  std::size_t requests = 200;
  std::size_t threads = 2;
  double qps = 0.0;  // 0 = unpaced
  std::size_t edit_every = 16;
  bool reload = false;
  bool do_shutdown = false;
  bool expect_overload = false;
  bool chaos = false;
  std::uint32_t deadline_ms = 0;
  std::size_t retries = 1;  ///< total attempts per call (1 = no retry)
  std::uint64_t backoff_ms = 10;
  std::uint64_t connect_timeout_ms = 2000;
  std::uint64_t recv_timeout_ms = 0;
  std::string json;
};

Options parse(int argc, char** argv) {
  Options options;
  std::map<std::string, std::string> kv;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw Error(ErrorKind::kUsage, "unexpected argument " + arg);
    }
    arg = arg.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv[arg] = argv[++i];
    } else {
      kv[arg] = "1";
    }
  }
  const auto get = [&](const char* key, const std::string& fallback) {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  };
  options.socket = get("socket", "");
  options.port = std::stoi(get("port", "-1"));
  options.sessions = std::stoull(get("sessions", "2"));
  options.gates = std::stoull(get("gates", "2000"));
  options.seed = std::stoull(get("seed", "9"));
  options.requests = std::stoull(get("requests", "200"));
  options.threads = std::max<std::size_t>(1, std::stoull(get("threads", "2")));
  options.qps = std::stod(get("qps", "0"));
  options.edit_every = std::stoull(get("edit-every", "16"));
  options.reload = kv.count("reload") > 0;
  options.do_shutdown = kv.count("shutdown") > 0;
  options.expect_overload = kv.count("expect-overload") > 0;
  options.chaos = kv.count("chaos") > 0;
  options.deadline_ms =
      static_cast<std::uint32_t>(std::stoull(get("deadline-ms", "0")));
  options.retries =
      std::max<std::size_t>(1, std::stoull(get("retries", "1")));
  options.backoff_ms = std::stoull(get("backoff-ms", "10"));
  options.connect_timeout_ms =
      std::stoull(get("connect-timeout-ms", "2000"));
  options.recv_timeout_ms = std::stoull(get("recv-timeout-ms", "0"));
  options.json = get("json", "");
  if (options.socket.empty() && options.port < 0) {
    throw Error(ErrorKind::kUsage, "loadgen needs --socket or --port");
  }
  return options;
}

serve::ClientOptions client_options(const Options& options) {
  serve::ClientOptions opts;
  opts.connect_timeout_ms = options.connect_timeout_ms;
  opts.recv_timeout_ms = options.recv_timeout_ms;
  opts.send_timeout_ms = options.recv_timeout_ms;
  opts.deadline_ms = options.deadline_ms;
  opts.retry.max_attempts = options.retries;
  opts.retry.base_backoff_ms = options.backoff_ms;
  return opts;
}

serve::ServeClient connect(const Options& options) {
  const serve::ClientOptions opts = client_options(options);
  return options.socket.empty()
             ? serve::ServeClient::connect_tcp(options.port, opts)
             : serve::ServeClient::connect_unix(options.socket, opts);
}

/// Control-plane connection (session setup, cleanup, metrics scrape):
/// same timeouts and retries as the workload, but never a deadline —
/// --deadline-ms shapes the measured request stream, and shedding a
/// session load or a close would wreck the run instead of measuring it.
serve::ServeClient control_connect(const Options& options) {
  serve::ClientOptions opts = client_options(options);
  opts.deadline_ms = 0;
  return options.socket.empty()
             ? serve::ServeClient::connect_tcp(options.port, opts)
             : serve::ServeClient::connect_unix(options.socket, opts);
}

/// Valid observation-point targets in the canonical (round-tripped)
/// netlist, spread across the graph so the edits touch distinct cones.
std::vector<NodeId> observe_targets(const Netlist& netlist,
                                    std::size_t count) {
  std::vector<NodeId> targets;
  const std::size_t step =
      std::max<std::size_t>(1, netlist.size() / (count * 4 + 1));
  for (NodeId v = 0; v < netlist.size() && targets.size() < count;
       v += static_cast<NodeId>(step)) {
    const CellType t = netlist.type(v);
    if (is_sink(t) || t == CellType::kInput) continue;
    targets.push_back(v);
  }
  return targets;
}

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

int run_overload_probe(const Options& options) {
  // Two pipelined loads occupy the worker and (with --queue 1 on the
  // server) the queue; the ping burst behind them must see typed
  // `resource` rejections from admission control.
  GeneratorConfig config;
  config.seed = options.seed;
  config.target_gates = std::max<std::size_t>(options.gates, 40000);
  const std::string big = write_bench_string(generate_circuit(config));

  serve::ServeClient client = connect(options);
  const auto send_load = [&](const std::string& name, std::uint32_t id) {
    serve::Frame frame;
    frame.opcode = static_cast<std::uint8_t>(serve::Op::kLoadSession);
    frame.request_id = id;
    serve::WireWriter writer(frame.body);
    writer.str(name);
    writer.u8(1);  // inline .bench text
    writer.str(big);
    writer.u8(0);
    serve::write_frame(client.write_fd(), frame);
  };
  send_load("overload1", 1);
  send_load("overload2", 2);
  const std::size_t pings = std::min<std::size_t>(options.requests, 64);
  for (std::size_t i = 0; i < pings; ++i) {
    serve::Frame frame;
    frame.opcode = static_cast<std::uint8_t>(serve::Op::kPing);
    frame.request_id = static_cast<std::uint32_t>(100 + i);
    serve::write_frame(client.write_fd(), frame);
  }

  std::size_t ok = 0, rejected = 0;
  bool first_load_ok = false;
  for (std::size_t i = 0; i < pings + 2; ++i) {
    serve::Frame response;
    ErrorKind kind = ErrorKind::kInternal;
    std::string message;
    if (serve::read_frame(client.write_fd(), response, kind, message) !=
        serve::ReadStatus::kFrame) {
      std::cerr << "loadgen: transport failure mid-probe: " << message
                << "\n";
      return 1;
    }
    serve::WireReader reader(response.body);
    const std::uint8_t status = reader.u8();
    if (status == serve::kStatusOk) {
      ++ok;
      if (response.request_id == 1) first_load_ok = true;
    } else if (serve::error_kind_for_status(status) ==
               ErrorKind::kResource) {
      ++rejected;
    } else {
      std::cerr << "loadgen: unexpected error reply: " << reader.str()
                << "\n";
      return 1;
    }
  }
  client.close_session("overload1");
  try {
    client.close_session("overload2");  // may have been rejected
  } catch (const Error&) {
  }
  std::cout << "overload probe: " << ok << " ok, " << rejected
            << " rejected (queue-full resource errors)\n";
  if (!first_load_ok) {
    std::cerr << "loadgen: first load should have been admitted\n";
    return 1;
  }
  if (rejected == 0) {
    std::cerr << "loadgen: expected at least one overload rejection\n";
    return 1;
  }
  return 0;
}

struct SessionPlan {
  std::string name;
  std::vector<NodeId> targets;       ///< valid OP targets, used once each
  std::atomic<std::size_t> cursor{0};
  // Bit-identity check (pure-infer runs): the first successful infer
  // pins the session's logits checksum; later infers must match it.
  std::mutex fnv_mutex;
  bool have_fnv = false;
  std::uint32_t fnv = 0;
};

/// FNV-1a over the raw logits bytes, row by row.
std::uint32_t fnv1a_logits(const Matrix& logits) {
  std::uint32_t hash = 2166136261u;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto* bytes =
        reinterpret_cast<const unsigned char*>(logits.row(r));
    for (std::size_t i = 0; i < logits.cols() * sizeof(float); ++i) {
      hash = (hash ^ bytes[i]) * 16777619u;
    }
  }
  return hash;
}

int run_mixed(const Options& options) {
  // Prepare canonical circuits and load them as resident sessions.
  std::vector<std::unique_ptr<SessionPlan>> plans;
  {
    serve::ServeClient setup = control_connect(options);
    for (std::size_t s = 0; s < options.sessions; ++s) {
      GeneratorConfig config;
      config.seed = options.seed + s;
      config.target_gates = options.gates;
      const std::string text =
          write_bench_string(generate_circuit(config));
      const Netlist canonical = read_bench_string(text);
      auto plan = std::make_unique<SessionPlan>();
      plan->name = "lg" + std::to_string(s);
      plan->targets = observe_targets(canonical, 256);
      setup.load_session_inline(plan->name, text, /*standardize=*/false);
      plans.push_back(std::move(plan));
    }
  }

  std::atomic<std::size_t> ticket{0};
  std::atomic<std::size_t> ok{0}, edits{0}, rejected{0}, errors{0};
  std::atomic<std::size_t> shed{0}, brownouts{0}, io_errors{0};
  std::atomic<bool> bitfail{false};
  std::atomic<std::uint64_t> reload_generation{0};
  std::vector<std::vector<double>> latencies(options.threads);
  const std::size_t reload_ticket =
      options.reload ? options.requests / 2 : options.requests + 1;
  // Pure-infer runs pin the logits bits: no edits means every reply for
  // a session must be bit-identical (brownout included — stale == fresh
  // when nothing was edited).
  const bool check_bits = options.edit_every == 0;

  Timer wall;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < options.threads; ++t) {
    threads.emplace_back([&, t] {
      // The client lives outside the request try/catch: a connection
      // that dies mid-stream (ECONNRESET, torn reply) is an error
      // OUTCOME, not a process abort — drop it and reconnect lazily.
      std::unique_ptr<serve::ServeClient> client;
      std::vector<double>& mine = latencies[t];
      for (;;) {
        const std::size_t n = ticket.fetch_add(1);
        if (n >= options.requests) return;
        if (options.qps > 0.0) {
          std::this_thread::sleep_until(
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(n) / options.qps)));
        }
        SessionPlan& plan = *plans[n % plans.size()];
        const bool edit =
            options.edit_every > 0 && n % options.edit_every == 1;
        Timer latency;
        try {
          if (!client) {
            client = std::make_unique<serve::ServeClient>(connect(options));
          }
          if (n == reload_ticket) {
            reload_generation.store(client->reload());
          } else if (edit) {
            const std::size_t i = plan.cursor.fetch_add(1);
            if (i < plan.targets.size()) {
              client->append_observe(plan.name, plan.targets[i]);
              edits.fetch_add(1);
            } else {
              client->infer(plan.name);  // targets exhausted
            }
          } else {
            const Matrix logits = client->infer(plan.name);
            if (logits.rows() == 0) {
              errors.fetch_add(1);
              continue;
            }
            if (client->last_brownout()) brownouts.fetch_add(1);
            if (check_bits) {
              const std::uint32_t hash = fnv1a_logits(logits);
              std::lock_guard<std::mutex> lock(plan.fnv_mutex);
              if (!plan.have_fnv) {
                plan.have_fnv = true;
                plan.fnv = hash;
              } else if (plan.fnv != hash) {
                bitfail.store(true);
                std::cerr << "loadgen: session " << plan.name
                          << " logits changed bits across requests\n";
              }
            }
          }
          mine.push_back(latency.milliseconds());
          ok.fetch_add(1);
        } catch (const Error& e) {
          if (e.kind() == ErrorKind::kResource) {
            rejected.fetch_add(1);
          } else if (e.kind() == ErrorKind::kDeadline) {
            shed.fetch_add(1);
          } else {
            errors.fetch_add(1);
            if (e.kind() == ErrorKind::kIo ||
                e.kind() == ErrorKind::kCorrupt) {
              // Transport is suspect: reconnect before the next ticket.
              io_errors.fetch_add(1);
              client.reset();
            }
            if (!options.chaos) {
              std::cerr << "loadgen: request " << n << " failed ["
                        << error_kind_name(e.kind()) << "]: " << e.what()
                        << "\n";
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed = wall.seconds();

  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  const double p50 = percentile(all, 0.50);
  const double p99 = percentile(all, 0.99);
  const double qps =
      elapsed > 0.0 ? static_cast<double>(ok.load()) / elapsed : 0.0;

  std::cout << "loadgen: " << ok.load() << "/" << options.requests
            << " ok (" << edits.load() << " edits, " << rejected.load()
            << " overload-rejected, " << shed.load() << " deadline-shed, "
            << brownouts.load() << " brownout, " << errors.load()
            << " errors) in " << elapsed << "s\n"
            << "  p50 " << p50 << " ms, p99 " << p99 << " ms, sustained "
            << qps << " qps\n";
  if (options.reload) {
    std::cout << "  hot reload -> generation " << reload_generation.load()
              << "\n";
  }
  if (check_bits) {
    std::uint32_t combined = 0;
    for (const auto& plan : plans) combined ^= plan->fnv;
    std::cout << "loadgen: logits fnv 0x" << std::hex << std::setw(8)
              << std::setfill('0') << combined << std::dec
              << std::setfill(' ') << "\n";
  }

  int rc = 0;
  if (options.chaos) {
    // Chaos contract: faults make individual requests fail with typed
    // errors — that is the daemon WORKING. Fail only on the survivable
    // invariants: some request must succeed, and bits must never drift.
    if (ok.load() == 0) {
      std::cerr << "loadgen: chaos run had zero successful requests\n";
      rc = 1;
    }
  } else if (errors.load() != 0) {
    rc = 1;
  }
  if (bitfail.load()) {
    std::cerr << "loadgen: logits were not bit-stable\n";
    rc = 1;
  }
  if (options.reload && reload_generation.load() < 2) {
    std::cerr << "loadgen: hot reload did not advance the generation\n";
    rc = 1;
  }

  if (options.chaos) {
    // Leak check: close every session so CI can assert the daemon ends
    // with zero residents. Faults are still armed, so each close retries
    // on fresh connections; a torn reply can hide a close that landed,
    // which the later `unknown session` answer confirms. A daemon that
    // cannot answer any of this is dead — exactly what the chaos
    // harness exists to catch.
    for (const auto& plan : plans) {
      bool closed = false;
      for (int attempt = 0; attempt < 8 && !closed; ++attempt) {
        try {
          serve::ServeClient cleaner = control_connect(options);
          cleaner.close_session(plan->name);
          closed = true;
        } catch (const Error& e) {
          if (e.kind() == ErrorKind::kUsage) closed = true;  // already gone
        }
      }
      if (!closed) {
        std::cerr << "loadgen: could not close session " << plan->name
                  << " after chaos run\n";
        rc = 1;
      }
    }
  }

  // Server-side queue-wait p99 from a kMetrics scrape: the client-side
  // percentiles above include the network and decode, this one isolates
  // time spent waiting in the daemon's bounded queue.
  double queue_wait_p99_us = 0.0;
  bool scraped = false;
  // In chaos mode the scrape doubles as the liveness check, and faults
  // are still armed — retry it on fresh connections before declaring
  // the daemon dead.
  const int scrape_attempts = options.chaos ? 8 : 1;
  for (int attempt = 0; attempt < scrape_attempts && !scraped; ++attempt) {
    try {
      serve::ServeClient scraper = control_connect(options);
      const serve::ServeClient::MetricsResult metrics = scraper.metrics();
      std::map<std::string, double> series;
      std::string parse_error;
      if (parse_prometheus_text(metrics.exposition, series, parse_error)) {
        const auto it =
            series.find("gcnt_serve_queue_wait_us{quantile=\"0.99\"}");
        if (it != series.end()) queue_wait_p99_us = it->second;
        std::cout << "  server queue-wait p99 " << queue_wait_p99_us
                  << " us (" << series.size() << " metric series)\n";
        scraped = true;
      } else {
        std::cerr << "loadgen: bad metrics exposition: " << parse_error
                  << "\n";
      }
    } catch (const Error& e) {
      if (attempt + 1 == scrape_attempts) {
        std::cerr << "loadgen: metrics scrape failed: " << e.what() << "\n";
      }
    }
  }
  if (!scraped) rc = 1;

  if (options.do_shutdown) {
    serve::ServeClient finisher = connect(options);
    finisher.shutdown();
  }

  if (!options.json.empty()) {
    // Chaos runs report the resilience contract, not throughput — their
    // keys never collide with the perf baseline's serve.qps/p99 gates.
    const bool written =
        options.chaos
            ? bench::write_bench_json(
                  options.json,
                  {{"serve.survived", rc == 0 ? 1.0 : 0.0},
                   {"serve.chaos_requests",
                    static_cast<double>(options.requests)},
                   {"serve.chaos_ok", static_cast<double>(ok.load())},
                   {"serve.chaos_faulted",
                    static_cast<double>(errors.load() + shed.load() +
                                        rejected.load())},
                   {"serve.chaos_bit_identical",
                    bitfail.load() ? 0.0 : 1.0}})
            : bench::write_bench_json(
                  options.json,
                  {{"serve.qps", qps},
                   {"serve.p50_ms", p50},
                   {"serve.p99_ms", p99},
                   {"serve.requests", static_cast<double>(options.requests)},
                   {"serve.edits", static_cast<double>(edits.load())},
                   {"serve.overload_rejected",
                    static_cast<double>(rejected.load())},
                   {"serve.errors", static_cast<double>(errors.load())},
                   {"serve.deadline_shed", static_cast<double>(shed.load())},
                   {"serve.brownout",
                    static_cast<double>(brownouts.load())},
                   {"serve.queue_wait_p99_us", queue_wait_p99_us}});
    if (!written) {
      std::cerr << "loadgen: cannot write " << options.json << "\n";
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options options = parse(argc, argv);
    return options.expect_overload ? run_overload_probe(options)
                                   : run_mixed(options);
  } catch (const Error& e) {
    std::cerr << "loadgen: [" << error_kind_name(e.kind()) << "] "
              << e.what() << "\n";
    return exit_code_for(e.kind());
  } catch (const std::exception& e) {
    std::cerr << "loadgen: " << e.what() << "\n";
    return 1;
  }
}
