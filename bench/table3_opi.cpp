// Table 3 reproduction: testability results of the GCN-guided iterative
// OPI flow vs the analytic "industrial tool" baseline, both evaluated by
// the same ATPG engine (#OPs inserted, #patterns, fault coverage).
//
// Paper: GCN flow reaches equal coverage with 0.89x the OPs and 0.94x the
// patterns of the commercial tool.

#include <iostream>

#include "atpg/atpg.h"
#include "bench_common.h"
#include "common/table.h"
#include "dft/baseline_opi.h"
#include "dft/gcn_opi.h"

int main() {
  using namespace gcnt;
  const auto suite = bench::load_suite();

  Table table("Table 3: testability results comparison",
              {"Design", "Tool #OPs", "Tool #PAs", "Tool Cov", "GCN #OPs",
               "GCN #PAs", "GCN Cov"});

  double tool_ops = 0, tool_pas = 0, tool_cov = 0;
  double gcn_ops = 0, gcn_pas = 0, gcn_cov = 0;

  for (std::size_t held_out = 0; held_out < suite.size(); ++held_out) {
    const Dataset& design = suite[held_out];

    // Train the classifier on the other three designs (inductive use), with
    // a class weight so positives survive on imbalanced data.
    GcnModel model(bench::paper_model_config());
    TrainerOptions options;
    options.epochs = bench::bench_epochs() / 2;
    options.learning_rate = 1e-2f;
    options.positive_class_weight = 4.0f;
    options.eval_interval = options.epochs;
    Trainer trainer(model, options);
    std::vector<TrainGraph> training;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      if (i != held_out) training.push_back(TrainGraph{&suite[i].tensors, {}});
    }
    trainer.train(training, nullptr);

    AtpgOptions atpg;
    atpg.seed = 17;

    Netlist tool_netlist = design.netlist;
    const auto tool = run_baseline_opi(tool_netlist, BaselineOpiOptions{});
    const auto tool_result = run_atpg(tool_netlist, atpg);

    Netlist gcn_netlist = design.netlist;
    GcnOpiOptions gcn_options;
    gcn_options.standardize_features = true;  // model trained on std features
    const auto gcn = run_gcn_opi(gcn_netlist, {&model}, gcn_options);
    const auto gcn_result = run_atpg(gcn_netlist, atpg);

    table.add_row({design.name(), std::to_string(tool.inserted.size()),
                   std::to_string(tool_result.pattern_count),
                   Table::percent(tool_result.test_coverage()),
                   std::to_string(gcn.inserted.size()),
                   std::to_string(gcn_result.pattern_count),
                   Table::percent(gcn_result.test_coverage())});

    tool_ops += static_cast<double>(tool.inserted.size());
    tool_pas += static_cast<double>(tool_result.pattern_count);
    tool_cov += tool_result.test_coverage();
    gcn_ops += static_cast<double>(gcn.inserted.size());
    gcn_pas += static_cast<double>(gcn_result.pattern_count);
    gcn_cov += gcn_result.test_coverage();
  }

  const double designs = static_cast<double>(suite.size());
  table.add_row({"Average", Table::num(tool_ops / designs, 0),
                 Table::num(tool_pas / designs, 0),
                 Table::percent(tool_cov / designs),
                 Table::num(gcn_ops / designs, 0),
                 Table::num(gcn_pas / designs, 0),
                 Table::percent(gcn_cov / designs)});
  table.add_row({"Ratio", "1.00", "1.00", "1.00",
                 Table::num(gcn_ops / tool_ops, 2),
                 Table::num(gcn_pas / tool_pas, 2),
                 Table::num(gcn_cov / tool_cov, 2)});
  table.print(std::cout);
  std::cout << "\nPaper reference ratios (GCN flow / industrial tool): "
               "#OPs 0.89, #PAs 0.94, coverage 1.00\n";
  return 0;
}
