// Quantized-inference agreement gate: trains the paper's GCN on the
// Table 2 suite (B1-B4), then compares fp32 and int8 argmax
// classifications node-for-node on every design. The int8 tier is only
// useful if it reaches the same test decisions, so this harness
// self-gates: overall agreement below 99% exits nonzero.
//
// With GCNT_BENCH_JSON set it writes the "quant.agreement" key, which
// tools/bench_gate treats as an accuracy contract (zero regression
// tolerance against the committed baseline — the baseline value is the
// floor, not a measurement). Deterministic given fixed bench knobs: fp32
// training is bitwise reproducible per dispatch target (and identical
// across avx2/avx512), and int8 inference is bitwise deterministic
// across targets outright.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "gcn/quant.h"

namespace {

using namespace gcnt;

std::vector<int> argmax_predictions(const Matrix& logits) {
  std::vector<int> pred(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    pred[r] = logits.at(r, 1) > logits.at(r, 0) ? 1 : 0;
  }
  return pred;
}

}  // namespace

int main() {
  const auto suite = bench::load_suite();

  // One model over the whole suite: agreement measures fp32-vs-int8
  // consistency, not generalization, so no design is held out.
  GcnModel model(bench::paper_model_config());
  TrainerOptions options;
  options.epochs = bench::bench_epochs();
  options.learning_rate = 1e-2f;
  options.eval_interval = options.epochs;
  Trainer trainer(model, options);
  trainer.train(bench::balanced_training_set(suite, suite.size()), nullptr);

  std::vector<Matrix> fp32_logits;
  fp32_logits.reserve(suite.size());
  for (const Dataset& design : suite) {
    fp32_logits.push_back(model.infer(design.tensors));
  }
  model.set_precision(Precision::kInt8);  // calibrates the trained weights

  Table table("Quantization agreement (fp32 vs int8 argmax, all nodes)",
              {"Design", "Nodes", "Disagree", "Agreement"});
  std::size_t agree = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const Matrix int8_logits = model.infer(suite[i].tensors);
    const auto fp32_pred = argmax_predictions(fp32_logits[i]);
    const auto int8_pred = argmax_predictions(int8_logits);
    std::size_t same = 0;
    for (std::size_t r = 0; r < fp32_pred.size(); ++r) {
      same += fp32_pred[r] == int8_pred[r] ? 1 : 0;
    }
    agree += same;
    total += fp32_pred.size();
    table.add_row({suite[i].name(), std::to_string(fp32_pred.size()),
                   std::to_string(fp32_pred.size() - same),
                   Table::num(static_cast<double>(same) /
                              static_cast<double>(fp32_pred.size()))});
  }
  const double agreement =
      total == 0 ? 0.0
                 : static_cast<double>(agree) / static_cast<double>(total);
  table.print(std::cout);
  std::cout << "\noverall quant.agreement = " << agreement
            << " (gate: >= 0.99)\n";

  if (const char* path = std::getenv("GCNT_BENCH_JSON")) {
    if (!bench::write_bench_json(path, {{"quant.agreement", agreement}})) {
      std::cerr << "quant_agreement: failed to write GCNT_BENCH_JSON to "
                << path << "\n";
      return 1;
    }
  }
  if (agreement < 0.99) {
    std::cerr << "quant_agreement: FAIL — int8 agreement " << agreement
              << " below the 0.99 gate\n";
    return 1;
  }
  return 0;
}
