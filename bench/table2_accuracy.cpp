// Table 2 reproduction: balanced-dataset accuracy of LR / RF / SVM / MLP
// (on handcrafted fan-in/fan-out cone features) vs the GCN, leave-one-
// design-out across B1-B4.
//
// Paper: LR 0.777 < RF 0.792 < SVM 0.814 < MLP 0.856 < GCN 0.931.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "common/metrics.h"
#include "common/table.h"
#include "ml/features.h"
#include "ml/linear_models.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"

namespace {

using namespace gcnt;

/// Stacks cone features + labels for the balanced rows of several designs.
void build_feature_set(const std::vector<Dataset>& suite,
                       std::size_t held_out, const ConeFeatureOptions& cone,
                       Matrix& x, std::vector<std::int32_t>& y) {
  std::vector<Matrix> blocks;
  y.clear();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    if (i == held_out) continue;
    const auto rows = balanced_rows(suite[i], 7000 + i);
    blocks.push_back(extract_cone_features(suite[i].netlist,
                                           suite[i].tensors.features, rows,
                                           cone));
    for (std::uint32_t r : rows) y.push_back(suite[i].tensors.labels[r]);
  }
  std::size_t total = 0;
  for (const auto& block : blocks) total += block.rows();
  x.resize(total, cone_feature_dim(cone));
  std::size_t at = 0;
  for (const auto& block : blocks) {
    for (std::size_t r = 0; r < block.rows(); ++r, ++at) {
      for (std::size_t c = 0; c < block.cols(); ++c) {
        x.at(at, c) = block.at(r, c);
      }
    }
  }
}

double accuracy_on(const std::vector<std::int32_t>& predictions,
                   const Dataset& design,
                   const std::vector<std::uint32_t>& rows) {
  std::size_t correct = 0;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    correct += predictions[k] == design.tensors.labels[rows[k]] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

}  // namespace

int main() {
  const auto suite = bench::load_suite();

  // Scaled version of the paper's 500+500-node cones (its designs are two
  // orders of magnitude larger than ours).
  ConeFeatureOptions cone;
  cone.fanin_nodes = 50;
  cone.fanout_nodes = 50;

  Table table("Table 2: accuracy comparison on balanced dataset",
              {"Design", "LR", "RF", "SVM", "MLP", "GCN"});
  std::vector<double> sums(5, 0.0);

  for (std::size_t held_out = 0; held_out < suite.size(); ++held_out) {
    const Dataset& design = suite[held_out];
    const auto test_rows = balanced_rows(design, 99);

    Matrix train_x;
    std::vector<std::int32_t> train_y;
    build_feature_set(suite, held_out, cone, train_x, train_y);
    const Matrix test_x = extract_cone_features(
        design.netlist, design.tensors.features, test_rows, cone);

    std::vector<double> row_accuracy;

    std::vector<std::unique_ptr<BinaryClassifier>> classical;
    classical.push_back(std::make_unique<LogisticRegression>());
    classical.push_back(std::make_unique<RandomForest>());
    classical.push_back(std::make_unique<LinearSvm>());
    {
      MlpOptions mlp_options;  // the GCN's FC head on handcrafted features
      mlp_options.hidden_dims = {64, 64, 128};
      classical.push_back(std::make_unique<MlpClassifier>(mlp_options));
    }
    for (auto& model : classical) {
      model->fit(train_x, train_y);
      row_accuracy.push_back(
          accuracy_on(model->predict(test_x), design, test_rows));
    }

    // GCN, same split.
    GcnModel gcn(bench::paper_model_config());
    TrainerOptions options;
    options.epochs = bench::bench_epochs();
    options.learning_rate = 1e-2f;
    options.eval_interval = options.epochs;  // evaluate only at the end
    Trainer trainer(gcn, options);
    const auto training = bench::balanced_training_set(suite, held_out);
    const TrainGraph test{&design.tensors, test_rows};
    const auto history = trainer.train(training, &test);
    row_accuracy.push_back(history.back().test_accuracy);

    table.add_row({design.name(), Table::num(row_accuracy[0]),
                   Table::num(row_accuracy[1]), Table::num(row_accuracy[2]),
                   Table::num(row_accuracy[3]), Table::num(row_accuracy[4])});
    for (std::size_t c = 0; c < 5; ++c) sums[c] += row_accuracy[c];
  }

  std::vector<std::string> average{"Average"};
  for (double s : sums) {
    average.push_back(Table::num(s / static_cast<double>(suite.size())));
  }
  table.add_row(average);
  table.print(std::cout);
  std::cout << "\nPaper reference averages: LR 0.777, RF 0.792, SVM 0.814, "
               "MLP 0.856, GCN 0.931\n";
  return 0;
}
