// Ablation (extends Fig. 4 / Section 3.3): how the cascade's stage count
// shapes F1 and how each stage filters the population, plus the learned
// aggregation weights w_pr / w_su (the design choice of Eq. 1 to weight
// predecessors and successors differently).

#include <iostream>

#include "bench_common.h"
#include "common/metrics.h"
#include "common/table.h"
#include "gcn/multistage.h"

int main() {
  using namespace gcnt;
  const auto suite = bench::load_suite();
  constexpr std::size_t kHeldOut = 0;

  std::vector<const GraphTensors*> training;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    if (i != kHeldOut) training.push_back(&suite[i].tensors);
  }

  Table table("Ablation: cascade stage count (held-out design B1)",
              {"Stages", "F1", "Precision", "Recall", "Stage-1 survivors"});

  for (std::size_t stages = 1; stages <= 4; ++stages) {
    MultiStageOptions options;
    options.stages = stages;
    options.model = bench::paper_model_config();
    options.trainer.epochs = bench::bench_epochs() / 3;
    options.trainer.learning_rate = 1e-2f;
    options.trainer.eval_interval = options.trainer.epochs;

    MultiStageClassifier cascade(options);
    cascade.fit(training);
    const auto cm = evaluate_binary(cascade.predict(suite[kHeldOut].tensors),
                                    suite[kHeldOut].tensors.labels);
    table.add_row({std::to_string(stages), Table::num(cm.f1()),
                   Table::num(cm.precision()), Table::num(cm.recall()),
                   std::to_string(cascade.survivors_per_stage().front())});

    if (stages == 3) {
      std::cout << "3-stage cascade learned aggregation weights:\n";
      for (std::size_t s = 0; s < cascade.stage_models().size(); ++s) {
        const GcnModel& m = cascade.stage_models()[s];
        std::cout << "  stage " << s + 1 << ": w_pr = "
                  << Table::num(m.w_pr(), 3)
                  << ", w_su = " << Table::num(m.w_su(), 3) << "\n";
      }
    }
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: F1 rises sharply from 1 stage to 2-3 "
               "stages, then saturates; w_pr != w_su (the asymmetric "
               "aggregation of Eq. 1 is used by the model)\n";
  return 0;
}
