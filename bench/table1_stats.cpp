// Table 1 reproduction: statistics of the benchmark designs.
//
// Paper (1.4M-node industrial designs):
//   Design  #Nodes    #Edges    #POS   #NEG      (POS rate ~0.64%)
//   B1      1384264   2102622   8894   1375370
//   B2      1456453   2182639   9755   1446698
//   B3      1416382   2137364   9043   1407338
//   B4      1397586   2124516   8978   1388608
//
// Ours are scale-reduced synthetic stand-ins; the reproduced *shape* is the
// edge/node ratio (~1.5), the positive rate (<~1%), and the adjacency
// sparsity (>99.9%), which are what the GCN and the sparse engine react to.

#include <iostream>

#include "bench_common.h"
#include "common/table.h"

int main() {
  using namespace gcnt;
  const auto suite = bench::load_suite();

  Table table("Table 1: statistics of benchmarks (scaled reproduction)",
              {"Design", "#Nodes", "#Edges", "#POS", "#NEG", "POS rate",
               "Sparsity"});
  for (const Dataset& design : suite) {
    const auto merged = build_merged_adjacency(design.tensors, 0.5f, 0.5f);
    table.add_row({design.name(), std::to_string(design.netlist.size()),
                   std::to_string(design.netlist.edge_count()),
                   std::to_string(design.positives()),
                   std::to_string(design.negatives()),
                   Table::percent(static_cast<double>(design.positives()) /
                                  static_cast<double>(design.netlist.size())),
                   Table::percent(merged.sparsity(), 4)});
  }
  table.print(std::cout);

  std::cout << "\nPaper reference (1.4M-node industrial designs): POS rate "
               "0.62-0.67%, edges/node ~1.5, sparsity > 99.95%\n";
  return 0;
}
