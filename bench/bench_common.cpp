#include "bench_common.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/artifact.h"
#include "common/error.h"
#include "common/log.h"
#include "common/table.h"
#include "common/timer.h"
#include "gcn/graph_tensors.h"
#include "gcn/quant.h"
#include "gen/generator.h"
#include "netlist/bench_io.h"
#include "tensor/simd/simd.h"

namespace gcnt::bench {

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(raw, nullptr, 10));
}

std::filesystem::path cache_dir() {
  return std::filesystem::path("gcnt_bench_cache");
}

/// Cache layout per design: <dir>/<gates>_<name>.bench + .labels (one
/// label per line, node order).
bool load_cached(std::size_t gates, const std::string& name,
                 Netlist& netlist, std::vector<std::int32_t>& labels) {
  const auto base = cache_dir() / (std::to_string(gates) + "_" + name);
  std::ifstream bench_in(base.string() + ".bench");
  std::ifstream labels_in(base.string() + ".labels");
  if (!bench_in || !labels_in) return false;
  try {
    netlist = read_bench(bench_in, name);
  } catch (const std::exception&) {
    return false;
  }
  labels.clear();
  int label = 0;
  while (labels_in >> label) labels.push_back(label);
  return labels.size() == netlist.size();
}

void store_cache(std::size_t gates, const Dataset& dataset) {
  std::error_code ec;
  std::filesystem::create_directories(cache_dir(), ec);
  if (ec) return;
  const auto base =
      cache_dir() / (std::to_string(gates) + "_" + dataset.name());
  // Atomic writes keep a killed bench run from leaving a torn cache that
  // the next run would half-load; a cache miss is always safe.
  try {
    atomic_write_file(base.string() + ".bench", [&](std::ostream& out) {
      write_bench(dataset.netlist, out);
    });
    atomic_write_file(base.string() + ".labels", [&](std::ostream& out) {
      for (std::int32_t label : dataset.tensors.labels) {
        out << label << "\n";
      }
    });
  } catch (const Error&) {
    // The cache is an optimization; benches run fine without it.
  }
}

}  // namespace

std::size_t bench_gates() { return env_size("GCNT_BENCH_GATES", 8000); }
std::size_t bench_epochs() { return env_size("GCNT_BENCH_EPOCHS", 150); }
std::size_t bench_max_nodes() {
  return env_size("GCNT_BENCH_MAX_NODES", 1000000);
}

GcnConfig paper_model_config(int depth, std::uint64_t seed) {
  GcnConfig config;
  config.depth = depth;
  config.embed_dims = {32, 64, 128};
  config.fc_dims = {64, 64, 128};
  config.num_classes = 2;
  config.seed = seed;
  return config;
}

std::vector<Dataset> load_suite() {
  const std::size_t gates = bench_gates();
  std::vector<Dataset> suite;
  suite.reserve(4);
  for (int i = 0; i < 4; ++i) {
    const std::string name = "B" + std::to_string(i + 1);
    Netlist cached;
    std::vector<std::int32_t> labels;
    if (load_cached(gates, name, cached, labels)) {
      Dataset dataset;
      dataset.netlist = std::move(cached);
      dataset.scoap = compute_scoap(dataset.netlist);
      dataset.levels = dataset.netlist.logic_levels();
      dataset.tensors = build_graph_tensors(dataset.netlist, dataset.scoap,
                                            dataset.levels);
      dataset.tensors.labels = std::move(labels);
      for (std::uint32_t v = 0; v < dataset.netlist.size(); ++v) {
        (dataset.tensors.labels[v] == 1 ? dataset.positive_rows
                                        : dataset.negative_rows)
            .push_back(v);
      }
      suite.push_back(std::move(dataset));
      continue;
    }
    Timer timer;
    LabelerOptions labeler;  // empirical oracle, default budget
    Dataset dataset = make_dataset(generate_benchmark_design(i, gates), labeler);
    log_info("built + labeled ", dataset.name(), " (", dataset.netlist.size(),
             " nodes) in ", Table::num(timer.seconds(), 1), "s");
    store_cache(gates, dataset);
    suite.push_back(std::move(dataset));
  }
  // All benches train/evaluate on standardized features (stored affine, so
  // incremental OPI updates stay consistent).
  for (Dataset& dataset : suite) dataset.tensors.standardize_features();
  return suite;
}

bool write_bench_json(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& entries) {
  try {
    atomic_write_file(path, [&](std::ostream& out) {
      out << "{\n";
      // v3 added SIMD dispatch + graph reordering provenance; v4 the
      // serve daemon's loadgen keys ("serve.qps", "serve.p99_ms" — see
      // bench/loadgen.cpp); v5 the sharded out-of-core keys ("shard.*" —
      // see bench/fig10_sharded.cpp); v6 the quantized tier: a
      // "schema.precision" string plus numeric "simd.target" /
      // "precision" gauges so every bench file carries the resolved
      // dispatch path and inference tier that produced it. String-valued
      // "schema." entries are metadata; bench_gate ignores them when
      // comparing.
      out << "  \"schema.version\": 6,\n";
      out << "  \"schema.simd\": \"" << simd_target_name() << "\",\n";
      out << "  \"schema.precision\": \""
          << precision_name(resolve_precision()) << "\",\n";
      out << "  \"schema.reorder\": \""
          << (graph_reorder() == GraphReorder::kRcm ? "rcm" : "off")
          << "\",\n";
      // Numeric gauges use the stats-registry encodings ("simd.target":
      // 0 scalar / 1 avx2 / 2 avx512; "precision": 0 fp32 / 1 int8).
      out << "  \"simd.target\": " << static_cast<int>(simd_target())
          << ",\n";
      out << "  \"precision\": "
          << static_cast<int>(resolve_precision())
          << (entries.empty() ? "\n" : ",\n");
      for (std::size_t i = 0; i < entries.size(); ++i) {
        out << "  \"" << entries[i].first << "\": " << entries[i].second
            << (i + 1 < entries.size() ? ",\n" : "\n");
      }
      out << "}\n";
    });
  } catch (const Error&) {
    return false;
  }
  return true;
}

std::vector<TrainGraph> balanced_training_set(
    const std::vector<Dataset>& suite, std::size_t held_out) {
  std::vector<TrainGraph> training;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    if (i == held_out) continue;
    training.push_back(
        TrainGraph{&suite[i].tensors, balanced_rows(suite[i], 7000 + i)});
  }
  return training;
}

}  // namespace gcnt::bench
